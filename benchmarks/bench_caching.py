"""EXT-CACHE — cross-query computation sharing (Section 3 "Preparation").

Paper claim: preparation "is often the most time consuming step. In our
full paper, we present a strategy to share computations between queries,
and therefore reduce the amount of data to read."

Regenerated as a realistic exploration session: the analyst sweeps the
crime threshold (6 related queries over the same table).  We compare
cold mode (fresh engine per query — no sharing) against shared mode (one
engine, persistent statistics cache) and report per-query latency and
cache counters.

Expected shape: the first shared query pays the global-statistics cost;
every subsequent query is several times faster than cold, because the
outside group is derived algebraically instead of re-scanned.
"""

from __future__ import annotations

import time

from repro.core.pipeline import Ziggy
from repro.experiments.reporting import Reporter
from repro.experiments.workloads import threshold_sweep_predicates


def test_cross_query_sharing(benchmark, crime_table):
    predicates = threshold_sweep_predicates(
        crime_table, "violent_crime_rate",
        quantiles=(0.95, 0.92, 0.9, 0.85, 0.8, 0.75))

    def run_workload(shared: bool) -> list[float]:
        engine = Ziggy(crime_table, share_statistics=True) if shared else None
        laps = []
        for pred in predicates:
            z = engine if shared else Ziggy(crime_table,
                                            share_statistics=False)
            start = time.perf_counter()
            z.characterize(pred)
            laps.append(time.perf_counter() - start)
        return laps

    run_workload(True)  # warmup (numpy/scipy caches)
    cold = run_workload(False)
    shared_engine = Ziggy(crime_table, share_statistics=True)
    shared = []
    for pred in predicates:
        start = time.perf_counter()
        shared_engine.characterize(pred)
        shared.append(time.perf_counter() - start)

    benchmark.pedantic(lambda: shared_engine.characterize(predicates[2]),
                       rounds=3, iterations=1, warmup_rounds=1)

    reporter = Reporter("EXT-CACHE", "cross-query computation sharing "
                        "(threshold-sweep session, 6 queries)")
    rows = []
    for i, pred in enumerate(predicates):
        speedup = cold[i] / shared[i] if shared[i] > 0 else float("inf")
        rows.append([f"q{i + 1}", f"{cold[i] * 1000:.0f}",
                     f"{shared[i] * 1000:.0f}", f"{speedup:.1f}x"])
    rows.append(["TOTAL", f"{sum(cold) * 1000:.0f}",
                 f"{sum(shared) * 1000:.0f}",
                 f"{sum(cold) / sum(shared):.1f}x"])
    reporter.add_table(["query", "cold (ms)", "shared (ms)", "speedup"],
                       rows, title="per-query latency")
    counters = shared_engine.cache_counters()
    reporter.add_text(
        f"cache counters after the session: {counters.hits} hits, "
        f"{counters.misses} misses "
        f"(hit rate {counters.hits / (counters.hits + counters.misses):.0%})")
    reporter.flush()

    # Shape: follow-up queries are meaningfully faster with sharing.
    tail_cold = sum(cold[1:])
    tail_shared = sum(shared[1:])
    assert tail_shared < tail_cold * 0.8, (
        f"sharing should cut follow-up cost: {tail_shared:.3f}s vs "
        f"{tail_cold:.3f}s cold")
    assert counters.hits > 0
