"""FIG1 — Figure 1: four characteristic views on the US Crime dataset.

Paper artifact: four scatter plots showing that high-crime cities have
(1) high population & density, (2) low education & salary, (3) low rent
& home-ownership, (4) younger populations & more mono-parental families.

Regenerated here: Ziggy characterizes the top-decile crime selection and
we report, for each narrated phenomenon, which reported view covers its
columns, the mean-shift directions, and one of the scatter plots.

Shape check (vs the paper): all four phenomena must be recovered with the
narrated directions.
"""

from __future__ import annotations

import numpy as np

from repro.app.render import ascii_scatter
from repro.core.config import ZiggyConfig
from repro.core.pipeline import Ziggy
from repro.data.crime import CRIME_PHENOMENA
from repro.experiments.reporting import Reporter

#: Other crime indicators are excluded like in the paper's Figure 1 —
#: "crime is high where crime is high" is not an insight.
ANALYST_CONFIG = ZiggyConfig(
    max_views=10,
    excluded_columns=("property_crime_rate", "n_murders",
                      "n_police_officers"),
)


def _direction_map(result):
    directions = {}
    for vr in result.views:
        for comp in vr.components:
            if comp.component == "mean_shift":
                directions[comp.columns[0]] = (comp.direction, vr)
    return directions


def test_figure1_characteristic_views(benchmark, crime_table, crime_query):
    ziggy = Ziggy(crime_table, config=ANALYST_CONFIG)
    result = benchmark.pedantic(
        lambda: Ziggy(crime_table, config=ANALYST_CONFIG,
                      share_statistics=False).characterize(crime_query),
        rounds=3, iterations=1, warmup_rounds=1)

    reporter = Reporter("FIG1", "characteristic views of high-crime cities "
                        "(paper Figure 1)")
    rows = []
    directions = _direction_map(result)
    recovered = 0
    for name, (columns, expected) in CRIME_PHENOMENA.items():
        for col, want in zip(columns, expected):
            got, view = directions.get(col, ("(not in any view)", None))
            ok = got == want
            recovered += int(ok)
            rows.append([name, col, want, got,
                         ", ".join(view.columns) if view else "-",
                         "yes" if ok else "NO"])
    reporter.add_table(
        ["phenomenon", "column", "paper direction", "measured", "in view",
         "match"], rows, title="Figure 1 phenomena recovery")

    listing = [[i, ", ".join(v.columns), round(v.score, 3),
                round(v.tightness, 3), f"{v.p_value:.1e}"]
               for i, v in enumerate(result.views, start=1)]
    reporter.add_table(["rank", "view", "score", "tightness", "p"],
                       listing, title="reported views (ranked)")

    # One Figure-1-style plot: the density view.
    sel = ziggy.database.select("us_crime", crime_query)
    x = np.log10(crime_table.column("population").numeric_values())
    y = np.log10(crime_table.column("pop_density").numeric_values())
    reporter.add_text(ascii_scatter(
        x[sel.mask], y[sel.mask], x[~sel.mask], y[~sel.mask],
        x_label="log10(population)", y_label="log10(pop_density)",
        width=50, height=14))
    reporter.flush()

    # Shape assertion: every narrated direction recovered.
    total = sum(len(cols) for cols, _ in CRIME_PHENOMENA.values())
    assert recovered == total, f"only {recovered}/{total} directions match"
