"""FIG2 — Figure 2: the problem setting (inside/outside split).

Paper artifact: a schematic showing columns C1..CM split into C^I (the
user's selection) and C^O (the rest).  Regenerated as the invariants the
schematic encodes: for a set of exploration queries, the engine's
Selection partitions every column into disjoint, covering inside/outside
slices, and characterization operates on exactly that split.

Benchmark: the cost of producing the split (query execution + masking),
i.e. the engine layer alone.
"""

from __future__ import annotations

import numpy as np

from repro.engine.database import Database
from repro.experiments.reporting import Reporter
from repro.experiments.workloads import threshold_sweep_predicates


def test_figure2_problem_setting(benchmark, crime_table):
    db = Database()
    db.register(crime_table)
    predicates = threshold_sweep_predicates(
        crime_table, "violent_crime_rate",
        quantiles=(0.95, 0.9, 0.8, 0.6, 0.4))

    benchmark(lambda: db.select("us_crime", predicates[1]))

    reporter = Reporter("FIG2", "problem setting: C^I / C^O split "
                        "(paper Figure 2)")
    rows = []
    for pred in predicates:
        sel = db.select("us_crime", pred)
        inside = sel.inside()
        outside = sel.outside()
        # Partition invariants of the schematic.
        assert inside.n_rows == sel.n_inside
        assert outside.n_rows == sel.n_outside
        assert inside.n_rows + outside.n_rows == crime_table.n_rows
        assert inside.n_columns == outside.n_columns == crime_table.n_columns
        pop = crime_table.column("population").numeric_values()
        assert np.array_equal(
            np.sort(np.concatenate([pop[sel.mask], pop[~sel.mask]])),
            np.sort(pop))
        rows.append([pred.split(">")[1].strip()[:8], sel.n_inside,
                     sel.n_outside, f"{sel.selectivity:.1%}",
                     crime_table.n_columns])
    reporter.add_table(
        ["crime threshold", "|C^I| rows", "|C^O| rows", "selectivity",
         "columns M"],
        rows, title="selection splits for a threshold sweep")
    reporter.flush()
