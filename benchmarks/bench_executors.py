"""BENCH executors — thread pool vs process shards under concurrency.

The executor refactor exists for one number: characterization throughput
on a multi-core host.  A thread backend is GIL-bound — N concurrent
characterizations of N *distinct* tables still serialize onto roughly
one core — while the process-shard backend routes each table's work to
its own worker process and runs them genuinely in parallel.

This benchmark measures that, service-level, per backend:

* build K distinct tables (different content, different fingerprints —
  so the shard router spreads them across workers);
* submit one characterization **job** per table simultaneously;
* measure the wall-clock time until every job is ``done``.

It writes machine-readable ``BENCH_executors.json`` (alongside the
shared-cache benchmark's artifact) and prints a short table.  The
recorded ``cpu_count`` qualifies the speedup: on a single-core host the
process backend cannot win (there is nothing to parallelize onto, and it
pays the relay overhead), so the regression gate only arms when at
least ``--gate-cores`` cores are present.

Usage::

    PYTHONPATH=src python benchmarks/bench_executors.py [--smoke]
        [--tables K] [--workers N] [--rows R] [--repeats M]
        [--out BENCH_executors.json]
"""

from __future__ import annotations

import argparse
import json
import os
import statistics
import sys
import time

import numpy as np

from repro.data.crime import make_crime
from repro.runtime import ZiggyRuntime
from repro.service import CharacterizeRequest, ZiggyService
from repro.service.protocol import BatchRequest

#: Fraction of rows each benchmark predicate selects (top tail).
QUANTILE = 0.8

#: Row-fraction cuts for the batch comparison's predicates per table.
BATCH_QUANTILES = (0.5, 0.7, 0.9)


def build_tables(n_tables: int, n_rows: int, n_shards: int) -> list:
    """K tables with distinct content (and therefore fingerprints).

    Seeds are searched (deterministically) so the tables spread across
    the executor's shards: the benchmark measures parallel execution,
    not the luck of a hash distribution.
    """
    from repro.runtime import shard_index

    tables = []
    taken: set[int] = set()
    seed = 101
    for index in range(n_tables):
        for _attempt in range(32):
            table = make_crime(n_rows=n_rows, seed=seed)
            table.name = f"crime_{index}"
            seed += 1
            shard = shard_index(table.fingerprint(), n_shards)
            if shard not in taken or len(taken) == n_shards:
                taken.add(shard)
                break
        tables.append(table)
    return tables


def predicate_for(table) -> str:
    values = table.column("violent_crime_rate").numeric_values()
    cut = float(np.nanquantile(values, QUANTILE))
    return f"violent_crime_rate > {cut:.6f}"


def run_round(backend: str, tables: list, workers: int) -> dict:
    """One cold round: fresh service, K simultaneous jobs, wall time."""
    service = ZiggyService(max_workers=workers, runtime=ZiggyRuntime(),
                           executor=backend)
    try:
        for table in tables:
            service.register_table(table)
        requests = [CharacterizeRequest(where=predicate_for(table),
                                        table=table.name,
                                        client_id=f"bench-{table.name}")
                    for table in tables]
        start = time.perf_counter()
        job_ids = [service.submit(request).job_id for request in requests]
        snapshots = [service.wait(job_id, timeout=600)
                     for job_id in job_ids]
        wall_ms = (time.perf_counter() - start) * 1000.0
        statuses = [snapshot.status for snapshot in snapshots]
        n_views = [snapshot.result.n_views if snapshot.result else 0
                   for snapshot in snapshots]
        # every job must stream events end to end, whatever the backend
        events_ok = all(
            service.job_events(job_id, timeout=5)[1]
            and service.job_events(job_id, timeout=5)[0][-1].kind == "result"
            for job_id in job_ids)
        return {"wall_ms": wall_ms, "statuses": statuses,
                "n_views": n_views, "events_ok": events_ok,
                "executor": service.executor.describe()}
    finally:
        service.shutdown(wait=False)


def batch_predicates_for(table) -> list:
    values = table.column("violent_crime_rate").numeric_values()
    return [f"violent_crime_rate > {float(np.nanquantile(values, q)):.6f}"
            for q in BATCH_QUANTILES]


def run_batch_round(backend: str, tables: list, workers: int) -> dict:
    """Shard-grouped vs interleaved submission of one warm batch.

    The same entries — every batch predicate of every table — go
    through the service twice after a warm-up pass:

    * **interleaved**: one job per predicate, submitted round-robin
      across the tables (the access pattern a naive client produces);
    * **grouped**: one ``characterize_many`` call, whose shard-aware
      scheduler turns the entries into one batch task per table.

    Both passes run on warm statistics caches, so the numbers isolate
    scheduling overhead (submission count, event relay, interleaving)
    rather than cache effects; the acceptance bar is grouped being no
    slower than interleaved.
    """
    service = ZiggyService(max_workers=workers, runtime=ZiggyRuntime(),
                           executor=backend)
    try:
        for table in tables:
            service.register_table(table)
        per_table = {table.name: batch_predicates_for(table)
                     for table in tables}
        # Warm every table's statistics cache (whichever process owns it).
        for table in tables:
            service.characterize(CharacterizeRequest(
                where=predicate_for(table), table=table.name))
        entries = [(table.name, where)
                   for index in range(len(BATCH_QUANTILES))
                   for table in tables
                   for where in [per_table[table.name][index]]]
        start = time.perf_counter()
        job_ids = [service.submit(CharacterizeRequest(
            where=where, table=table_name)).job_id
            for table_name, where in entries]
        snapshots = [service.wait(job_id, timeout=600)
                     for job_id in job_ids]
        interleaved_ms = (time.perf_counter() - start) * 1000.0
        if any(s.status != "done" for s in snapshots):
            raise RuntimeError(f"{backend}: interleaved jobs failed: "
                               f"{[s.status for s in snapshots]}")
        start = time.perf_counter()
        response = service.characterize_many(BatchRequest(items=entries))
        grouped_ms = (time.perf_counter() - start) * 1000.0
        if len(response.results) != len(entries):
            raise RuntimeError(f"{backend}: batch returned "
                               f"{len(response.results)} results for "
                               f"{len(entries)} entries")
        return {
            "entries": len(entries),
            "interleaved_ms": round(interleaved_ms, 1),
            "grouped_ms": round(grouped_ms, 1),
            "grouped_vs_interleaved": round(
                grouped_ms / max(interleaved_ms, 1e-9), 3),
        }
    finally:
        service.shutdown(wait=False)


def run_benchmark(n_tables: int, n_rows: int, workers: int,
                  repeats: int) -> dict:
    tables = build_tables(n_tables, n_rows, n_shards=workers)
    report: dict = {
        "benchmark": "executors",
        "cpu_count": os.cpu_count(),
        "n_tables": n_tables,
        "rows_per_table": n_rows,
        "columns_per_table": tables[0].n_columns,
        "workers": workers,
        "repeats": repeats,
        "backends": {},
    }
    for backend in ("thread", "process"):
        walls: list[float] = []
        last: dict = {}
        for _ in range(repeats):
            last = run_round(backend, tables, workers)
            if any(status != "done" for status in last["statuses"]):
                raise RuntimeError(
                    f"{backend}: jobs did not finish: {last['statuses']}")
            if not last["events_ok"]:
                raise RuntimeError(f"{backend}: event streams incomplete")
            walls.append(last["wall_ms"])
        report["backends"][backend] = {
            "wall_ms": [round(w, 1) for w in walls],
            "median_wall_ms": round(statistics.median(walls), 1),
            "per_job_ms": round(statistics.median(walls) / n_tables, 1),
            "n_views": last["n_views"],
            "executor": last["executor"],
        }
    thread_ms = report["backends"]["thread"]["median_wall_ms"]
    process_ms = report["backends"]["process"]["median_wall_ms"]
    report["speedup_process_vs_thread"] = round(
        thread_ms / max(process_ms, 1e-9), 3)
    shards = report["backends"]["process"]["executor"]["shards"]
    report["shards_used"] = sum(1 for names in shards.values() if names)
    report["batch"] = {backend: run_batch_round(backend, tables, workers)
                       for backend in ("thread", "process")}
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="concurrent characterization throughput per "
                    "executor backend")
    parser.add_argument("--smoke", action="store_true",
                        help="small tables / single repeat (CI gate)")
    parser.add_argument("--tables", type=int, default=4,
                        help="distinct tables = concurrent jobs "
                             "(default 4)")
    parser.add_argument("--workers", type=int, default=None,
                        help="backend workers (default: --tables)")
    parser.add_argument("--rows", type=int, default=None,
                        help="rows per table (default 1994; 400 in smoke)")
    parser.add_argument("--repeats", type=int, default=None,
                        help="measurement repeats (default 3; 1 in smoke)")
    parser.add_argument("--gate-cores", type=int, default=4,
                        help="arm the speedup regression gate only when "
                             "at least this many cores exist (default 4)")
    parser.add_argument("--out", default="BENCH_executors.json",
                        help="output JSON path")
    args = parser.parse_args(argv)

    n_rows = args.rows if args.rows else (400 if args.smoke else 1994)
    repeats = args.repeats if args.repeats else (1 if args.smoke else 3)
    workers = args.workers if args.workers else args.tables

    report = run_benchmark(n_tables=args.tables, n_rows=n_rows,
                           workers=workers, repeats=repeats)
    report["mode"] = "smoke" if args.smoke else "full"

    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")

    print(f"BENCH executors ({report['mode']}): {args.tables} concurrent "
          f"jobs on distinct {n_rows}x{report['columns_per_table']} tables, "
          f"{workers} workers, {report['cpu_count']} cpu(s)")
    print(f"{'backend':<9} {'wall(ms)':>10} {'per-job(ms)':>12}")
    for backend, row in report["backends"].items():
        print(f"{backend:<9} {row['median_wall_ms']:>10.1f} "
              f"{row['per_job_ms']:>12.1f}")
    print(f"speedup (process vs thread): x{report['speedup_process_vs_thread']}"
          f"   shards used: {report['shards_used']}")
    print(f"{'batch':<9} {'grouped(ms)':>12} {'interleaved(ms)':>16} "
          f"{'ratio':>7}")
    for backend, row in report["batch"].items():
        print(f"{backend:<9} {row['grouped_ms']:>12.1f} "
              f"{row['interleaved_ms']:>16.1f} "
              f"{row['grouped_vs_interleaved']:>7.3f}")
    print(f"wrote {args.out}")

    # Sanity gates.  Correctness gates always arm; the multi-core
    # speedup gate arms only where the hardware can show one.
    if report["shards_used"] < min(args.tables, workers, 2):
        print("ERROR: fingerprint sharding left all tables on one shard",
              file=sys.stderr)
        return 1
    cpus = report["cpu_count"] or 1
    if cpus >= args.gate_cores and report["speedup_process_vs_thread"] < 1.05:
        print(f"ERROR: process backend not faster than threads on a "
              f"{cpus}-core host "
              f"(x{report['speedup_process_vs_thread']})", file=sys.stderr)
        return 1
    if cpus < args.gate_cores:
        print(f"note: {cpus} core(s) — speedup gate not armed "
              f"(needs {args.gate_cores})")
    # Shard-grouped batch submission must not lose to interleaved
    # submission on warm tables (15% tolerance absorbs timer noise on
    # busy CI runners; the gate needs real cores to be meaningful).
    if cpus >= args.gate_cores:
        for backend, row in report["batch"].items():
            if row["grouped_ms"] > row["interleaved_ms"] * 1.15:
                print(f"ERROR: {backend}: shard-grouped batch submission "
                      f"slower than interleaved on warm tables "
                      f"({row['grouped_ms']}ms vs "
                      f"{row['interleaved_ms']}ms)", file=sys.stderr)
                return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
