"""EXT-ACC — view recovery accuracy vs baselines on planted ground truth.

Extension experiment (the demo paper defers evaluation to the companion
full paper): plant characteristic views of each effect kind (mean shift,
spread change, correlation break) at several strengths, and measure
column-level F1 for Ziggy against the black-box baselines the paper
cites (KL divergence, centroid distance), PCA, and the exhaustive
pair-scoring upper bound.

Expected shape: Ziggy ~matches the black-box methods on mean effects,
beats centroid/PCA decisively on spread and correlation effects (they
are blind to them by construction), and tracks the exhaustive scorer.
"""

from __future__ import annotations

from repro.baselines.beam import ExhaustivePairSearch
from repro.baselines.centroid import CentroidDistanceSearch
from repro.baselines.kl import KLDivergenceSearch
from repro.baselines.pca import PCACharacterizer
from repro.baselines.ziggy_adapter import ZiggyMethod
from repro.data.planted import make_planted
from repro.experiments.metrics import column_recovery
from repro.experiments.reporting import Reporter

METHODS = [
    ZiggyMethod(),
    KLDivergenceSearch(),
    CentroidDistanceSearch(),
    PCACharacterizer(),
    ExhaustivePairSearch(),
]

SETTINGS = [
    ("mean", 0.6), ("mean", 1.2),
    ("spread", 0.8), ("spread", 1.5),
    ("correlation", 0.8), ("correlation", 1.0),
]

N_SEEDS = 3


def _dataset(kind: str, effect: float, seed: int):
    return make_planted(n_rows=2000, n_columns=36, n_views=3, view_dim=2,
                        kinds=(kind,), effect=effect, seed=seed)


def _mean_f1(method, kind, effect):
    total = 0.0
    for seed in range(N_SEEDS):
        ds = _dataset(kind, effect, seed=100 + seed)
        views = method.find_views(ds.selection, max_views=4, max_dim=2)
        total += column_recovery(views, ds.truth).f1
    return total / N_SEEDS


def test_accuracy_vs_baselines(benchmark):
    benchmark.pedantic(
        lambda: METHODS[0].find_views(_dataset("mean", 1.2, 100).selection,
                                      max_views=4, max_dim=2),
        rounds=3, iterations=1, warmup_rounds=1)

    scores: dict[tuple[str, str, float], float] = {}
    for method in METHODS:
        for kind, effect in SETTINGS:
            scores[(method.name, kind, effect)] = _mean_f1(method, kind,
                                                           effect)

    reporter = Reporter("EXT-ACC", "column-recovery F1 on planted views "
                        f"(3 planted views, mean of {N_SEEDS} seeds)")
    header = ["method"] + [f"{k}@{e}" for k, e in SETTINGS]
    rows = []
    for method in METHODS:
        rows.append([method.name] + [
            round(scores[(method.name, k, e)], 2) for k, e in SETTINGS])
    reporter.add_table(header, rows, title="F1 by effect kind and strength")
    reporter.add_text(
        "expected shape: ziggy ~ kl ~ exhaustive on mean effects; "
        "centroid and pca collapse on spread/correlation effects "
        "(blind by construction), ziggy does not.")
    reporter.flush()

    # Shape assertions.
    assert scores[("ziggy", "mean", 1.2)] >= 0.6
    assert scores[("ziggy", "spread", 1.5)] >= 0.6
    assert scores[("ziggy", "correlation", 1.0)] >= 0.5
    # Ziggy beats the mean-only baseline where it is blind.
    assert scores[("ziggy", "spread", 1.5)] > \
        scores[("centroid_distance", "spread", 1.5)] + 0.2
    assert scores[("ziggy", "correlation", 1.0)] > \
        scores[("centroid_distance", "correlation", 1.0)] + 0.2
    # And PCA (no exploration context) does not dominate anywhere it
    # matters.
    assert scores[("ziggy", "mean", 1.2)] >= scores[("pca", "mean", 1.2)]
