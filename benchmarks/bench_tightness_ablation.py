"""EXT-TIGHT — ablation: the MIN_tight constraint (Eq. 2-3).

The tightness constraint is what keeps views "coherent (i.e., they
describe the same aspect of the data)".  This sweep varies MIN_tight on
the US Crime dataset and reports how the view population responds, plus
a slice of the dendrogram — the paper's own tuning aid ("it provides a
dendrogram, i.e., visual support to help setting the parameter").

Expected shape: higher MIN_tight -> fewer multi-column candidates, views
shrink towards singletons, and measured view tightness rises monotonely.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import ZiggyConfig
from repro.core.pipeline import Ziggy
from repro.experiments.reporting import Reporter

TIGHTNESS_GRID = (0.1, 0.25, 0.4, 0.55, 0.7, 0.85)


def test_tightness_sweep(benchmark, crime_table, crime_query):
    engine = Ziggy(crime_table, share_statistics=True)

    benchmark.pedantic(
        lambda: engine.characterize(
            crime_query, config=ZiggyConfig(min_tightness=0.4)),
        rounds=3, iterations=1, warmup_rounds=1)

    # Sweep with D=4 so the constraint, not the dimension cap, shapes
    # the views (with D=2 the cap masks most of MIN_tight's effect).
    max_dim = 4

    reporter = Reporter("EXT-TIGHT", "MIN_tight ablation on US Crime "
                        "(Eq. 2-3)")
    rows = []
    mean_dims = []
    min_tightnesses = []
    for value in TIGHTNESS_GRID:
        config = ZiggyConfig(min_tightness=value, max_views=10,
                             max_view_dim=max_dim)
        result = engine.characterize(crime_query, config=config)
        dims = [v.view.dimension for v in result.views]
        multi = [v for v in result.views if v.view.dimension > 1]
        observed_min = min((v.tightness for v in multi), default=1.0)
        mean_dims.append(float(np.mean(dims)) if dims else 0.0)
        min_tightnesses.append(observed_min)
        rows.append([value, len(result.views), len(multi),
                     f"{np.mean(dims):.2f}" if dims else "-",
                     f"{observed_min:.2f}",
                     f"{result.views[0].score:.1f}" if result.views else "-"])
    reporter.add_table(
        ["MIN_tight", "views", "multi-col views", "mean dim",
         "min observed tightness", "top score"],
        rows, title="constraint sweep")

    dendro = engine.dendrogram_text()
    if dendro:
        head = "\n".join(dendro.splitlines()[:25])
        reporter.add_text("dendrogram head (the paper's tuning aid):\n"
                          + head)
    reporter.flush()

    # Shape: every multi-column view satisfies its constraint, and the
    # view population shrinks in dimension as the constraint tightens.
    for value, observed in zip(TIGHTNESS_GRID, min_tightnesses):
        assert observed >= value or observed == 1.0
    assert mean_dims[-1] <= mean_dims[0] + 1e-9
