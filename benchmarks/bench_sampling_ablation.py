"""EXT-SAMPLE — ablation: stratified row sampling in preparation.

The paper's introduction cites BlinkDB's sampling as one exploration-
system strategy; our ``sample_rows`` extension applies the same
speed/accuracy trade-off to the preparation stage (the dominant cost per
FIG4).  Sweep the sample budget on a large planted table and report
runtime and recovery vs the exact run.

Expected shape: runtime drops roughly with the sample size while the
planted views keep being recovered until the budget gets so small the
tests lose power.
"""

from __future__ import annotations

from repro.baselines.ziggy_adapter import ZiggyMethod
from repro.core.config import ZiggyConfig
from repro.core.pipeline import Ziggy
from repro.data.planted import make_planted
from repro.experiments.harness import repeat_time
from repro.experiments.metrics import column_recovery
from repro.experiments.reporting import Reporter

BUDGETS = (500, 1000, 2000, 4000, 8000, None)  # None = exact


def test_sampling_tradeoff(benchmark):
    ds = make_planted(n_rows=40_000, n_columns=40, n_views=3, view_dim=2,
                      kinds=("mean", "spread", "correlation"),
                      effect=1.2, seed=71, selectivity=0.12)

    benchmark.pedantic(
        lambda: Ziggy(ds.table, config=ZiggyConfig(sample_rows=2000),
                      share_statistics=False)
        .characterize_selection(ds.selection),
        rounds=3, iterations=1, warmup_rounds=1)

    reporter = Reporter("EXT-SAMPLE", "stratified-sampling ablation "
                        "(40k x 40 planted table)")
    rows = []
    f1_of: dict = {}
    time_of: dict = {}
    for budget in BUDGETS:
        config = ZiggyConfig(sample_rows=budget)

        def run(config=config):
            engine = Ziggy(ds.table, config=config, share_statistics=False)
            return engine.characterize_selection(ds.selection)

        median = repeat_time(run, repeats=2, warmup=1)
        result = run()
        views = [v.view for v in result.views]
        f1 = column_recovery(views, ds.truth).f1
        f1_of[budget] = f1
        time_of[budget] = median
        label = budget if budget is not None else "exact"
        rows.append([label, f"{median * 1000:.0f}", round(f1, 2),
                     len(result.views)])
    reporter.add_table(["sample budget", "median (ms)", "column F1",
                        "views"], rows, title="speed/accuracy trade-off")
    speedup = time_of[None] / time_of[2000]
    reporter.add_text(f"2000-row sample vs exact: {speedup:.1f}x faster "
                      f"at F1 {f1_of[2000]:.2f} vs {f1_of[None]:.2f}")
    reporter.flush()

    # Shape: sampling cuts cost without destroying recovery at sane
    # budgets.
    assert time_of[2000] < time_of[None]
    assert f1_of[2000] >= f1_of[None] - 0.25
    assert f1_of[None] >= 0.6

    # Keep the adapter import exercised so the harness comparison stays
    # wired (ziggy enters the same loop as the baselines).
    assert ZiggyMethod().name == "ziggy"
