"""EXT-WEIGHTS — ablation: user-defined component weights (Section 2.2).

Paper claim: "The weights in the final sum are defined by the user.
Thanks to this mechanism, our explorers can express their preference for
one type of difference over the others."

Regenerated on a synthetic table with three disjoint planted phenomena —
one pure mean shift, one pure spread change, one pure correlation break —
under four weight profiles.  The top-ranked view must follow the user's
preference.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import ZiggyConfig
from repro.core.pipeline import Ziggy
from repro.engine.database import Database
from repro.engine.table import Table
from repro.experiments.reporting import Reporter


def _three_phenomena_table():
    rng = np.random.default_rng(61)
    n = 3000
    driver = rng.normal(size=n)
    selected = driver > 1.0

    def pair(loading=0.85):
        f = rng.normal(size=n)
        noise = np.sqrt(1 - loading ** 2)
        return (f * loading + rng.normal(size=n) * noise,
                f * loading + rng.normal(size=n) * noise)

    mean_a, mean_b = pair()
    mean_a = mean_a + selected * 1.2
    mean_b = mean_b + selected * 1.2
    spread_a, spread_b = pair()
    spread_a = np.where(selected, spread_a * 2.5, spread_a)
    spread_b = np.where(selected, spread_b * 2.5, spread_b)
    corr_a, corr_b = pair()
    redraw = rng.normal(size=(n, 2))
    corr_a = np.where(selected, redraw[:, 0], corr_a)
    corr_b = np.where(selected, redraw[:, 1], corr_b)
    cols = {"driver": driver,
            "mean_a": mean_a, "mean_b": mean_b,
            "spread_a": spread_a, "spread_b": spread_b,
            "corr_a": corr_a, "corr_b": corr_b}
    for j in range(8):
        cols[f"noise_{j}"] = rng.normal(size=n)
    return Table.from_dict(cols, name="weights_ablation")


PROFILES = [
    ("uniform", {}),
    ("means only", {"spread_shift": 0.0, "correlation_shift": 0.0}),
    ("spreads only", {"mean_shift": 0.0, "correlation_shift": 0.0,
                      "missing_shift": 0.0}),
    ("correlations only", {"mean_shift": 0.0, "spread_shift": 0.0,
                           "missing_shift": 0.0}),
]

EXPECTED_TOP = {
    "means only": {"mean_a", "mean_b"},
    "spreads only": {"spread_a", "spread_b"},
    "correlations only": {"corr_a", "corr_b"},
}


def test_weight_preferences(benchmark):
    table = _three_phenomena_table()
    db = Database()
    db.register(table)
    engine = Ziggy(db, share_statistics=True)

    benchmark.pedantic(lambda: engine.characterize("driver > 1"),
                       rounds=3, iterations=1, warmup_rounds=1)

    reporter = Reporter("EXT-WEIGHTS", "component-weight preferences "
                        "(Section 2.2 user weights)")
    rows = []
    tops = {}
    for label, weights in PROFILES:
        config = ZiggyConfig(weights=weights, max_views=4)
        result = engine.characterize("driver > 1", config=config)
        ranked = " > ".join("{" + ",".join(v.columns) + "}"
                            for v in result.views[:3])
        tops[label] = set(result.views[0].columns) if result.views else set()
        rows.append([label, ranked])
    reporter.add_table(["weight profile", "ranking (top 3 views)"], rows,
                       title="how preferences reorder the output")
    reporter.add_text("each phenomenon pair is planted with exactly one "
                      "kind of difference; the top view must follow the "
                      "user's declared preference.")
    reporter.flush()

    for label, expected in EXPECTED_TOP.items():
        assert tops[label] & expected, (
            f"{label}: top view {tops[label]} ignores the preference")
