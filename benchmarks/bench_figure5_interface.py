"""FIG5 — Figure 5: the demo interface.

Paper artifact: a snapshot of the web UI — query box on top, ranked
views on the left, details and explanations on the right.  Regenerated
through the session/API layer: one full interaction (type query -> view
list -> click view 1 -> read explanation) whose transcript reproduces
the panel structure, driven through the JSON API exactly as the web
front-end would.
"""

from __future__ import annotations

from repro.app.api import ZiggyApi
from repro.app.session import ZiggySession
from repro.experiments.reporting import Reporter


def test_figure5_interface(benchmark, crime_table, crime_query):
    def one_interaction():
        session = ZiggySession()
        session.add_table(crime_table)
        api = ZiggyApi(session)
        response = api.handle({"action": "query", "where": crime_query})
        detail = api.handle({"action": "view_detail", "rank": 1})
        return response, detail

    response, detail = benchmark.pedantic(one_interaction, rounds=3,
                                          iterations=1, warmup_rounds=1)
    assert response["ok"] and detail["ok"]
    assert response["n_views"] >= 4

    reporter = Reporter("FIG5", "demo interface panels (paper Figure 5)")
    reporter.add_text(f"[query panel]\n> SELECT * FROM us_crime WHERE "
                      f"{crime_query}")
    rows = [[v["rank"], ", ".join(v["columns"]), round(v["score"], 2),
             "yes" if v["significant"] else "no"]
            for v in response["views"]]
    reporter.add_table(["rank", "view", "score", "significant"], rows,
                       title="[views panel — left side]")
    reporter.add_text("[details panel — right side]\n" + detail["panel"])
    explanations = "\n".join(
        f"  {v['rank']}. {v['explanation']}" for v in response["views"][:4])
    reporter.add_text("[explanations]\n" + explanations)
    timing = response["timings_ms"]
    reporter.add_text(f"(server-side latency: "
                      f"{sum(timing.values()):.0f} ms)")
    reporter.flush()

    # The interface contract of the figure.
    for view in response["views"]:
        assert view["explanation"]
        assert view["columns"]
    assert "View 1" in detail["panel"]
