"""Shared fixtures for the benchmark suite.

Datasets are generated once per session at the paper's published sizes
(Box Office 900x12, US Crime 1994x128, Innovation 6823x519).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.boxoffice import make_boxoffice
from repro.data.crime import high_crime_predicate, make_crime
from repro.data.innovation import make_innovation


@pytest.fixture(scope="session")
def crime_table():
    """US Crime at the paper's size: 1994 communities x 128 indicators."""
    return make_crime()


@pytest.fixture(scope="session")
def boxoffice_table():
    """Box Office at the paper's size: 900 movies x 12 columns."""
    return make_boxoffice()


@pytest.fixture(scope="session")
def innovation_table():
    """Countries & Innovation at the paper's size: 6823 x 519."""
    return make_innovation()


@pytest.fixture(scope="session")
def crime_query(crime_table):
    """The running example's predicate: top-decile violent crime."""
    return high_crime_predicate(crime_table, quantile=0.9)


@pytest.fixture(scope="session")
def noise_table():
    """Pure-noise table for the false-positive-rate experiment: no column
    has any real relationship with any selection."""
    rng = np.random.default_rng(99)
    n, m = 2000, 40
    data = {f"noise_{j:02d}": rng.normal(size=n) for j in range(m)}
    from repro.engine.table import Table
    return Table.from_dict(data, name="pure_noise")
