"""EXT-ROWS — runtime scaling with table length n.

Two experiments share this module:

* the original pytest-benchmark series (cold cache, 1k -> 32k rows):
  preparation scans the data, so the expected shape is ~linear growth in
  n with a fixed search/post overhead;
* the **warm series** (``__main__``): repeated queries against a
  sketch-warmed :class:`TieredStatsCache`, where per-query scoring is
  answered from the table's reservoir sample.  Since the sample size is
  fixed, warm per-query time must grow **sub-linearly** in n — the gate
  asserts < 1.6x per row-count doubling (a linear path would be ~2x).
  A rank-fidelity section re-runs the same characterization through the
  exact tier and checks the top views agree.

Usage::

    PYTHONPATH=src python benchmarks/bench_runtime_rows.py [--smoke]
        [--out BENCH_runtime_rows.json]

``--smoke`` shrinks the series so CI finishes in seconds.
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time

import numpy as np

from repro.core.pipeline import Ziggy
from repro.core.stats_cache import StatsCache, TieredStatsCache
from repro.data.planted import make_planted
from repro.engine.database import Database

ROW_COUNTS = (1000, 2000, 4000, 8000, 16000, 32000)

#: Warm-series row counts; every step doubles, so consecutive ratios are
#: directly comparable against the sub-linear gate.
WARM_ROW_COUNTS = (8000, 16000, 32000)
WARM_ROW_COUNTS_SMOKE = (8000, 16000)

#: Growth gate per doubling of rows for the warm (sketch-tier) series.
MAX_WARM_GROWTH_PER_DOUBLING = 1.6

#: Moderate-selectivity thresholds: both groups keep enough sampled rows
#: for the default error bound to decide, so every query stays sketched.
WARM_QUANTILES = (0.3, 0.4, 0.5, 0.6, 0.7)


def _dataset(n_rows: int, n_columns: int = 64):
    return make_planted(n_rows=n_rows, n_columns=n_columns, n_views=2,
                        view_dim=2, kinds=("mean",), effect=1.0,
                        seed=7)


def test_runtime_vs_rows(benchmark):
    from repro.experiments.harness import repeat_time
    from repro.experiments.reporting import Reporter

    datasets = {n: _dataset(n) for n in ROW_COUNTS}

    benchmark.pedantic(
        lambda: Ziggy(datasets[4000].table, share_statistics=False)
        .characterize_selection(datasets[4000].selection),
        rounds=3, iterations=1, warmup_rounds=1)

    reporter = Reporter("EXT-ROWS", "runtime vs row count "
                        "(M=64 columns, cold cache)")
    rows = []
    times = {}
    for n in ROW_COUNTS:
        ds = datasets[n]

        def run(ds=ds):
            return Ziggy(ds.table, share_statistics=False) \
                .characterize_selection(ds.selection)

        median = repeat_time(run, repeats=3 if n <= 8000 else 2, warmup=1)
        times[n] = median
        rows.append([n, f"{median * 1000:.0f}",
                     f"{median / n * 1e6:.1f}"])
    reporter.add_table(["rows n", "median (ms)", "us per row"], rows,
                       title="scaling series")
    reporter.add_text("expected shape: ~linear in n once the fixed "
                      "search/post overhead is amortized "
                      "(us-per-row flattens).")
    reporter.flush()

    # Shape: 32x the rows costs far less than 32x the time of the 1k run
    # (fixed overhead dominates small inputs) and stays sub-quadratic.
    assert times[32000] < 32 * times[1000] * 1.5
    assert times[32000] > times[1000]


# ---------------------------------------------------------------------------
# Warm (sketch-tier) series — the __main__ benchmark
# ---------------------------------------------------------------------------


def _warm_predicates(table) -> list[str]:
    """Distinct moderate-selectivity predicates on one background column."""
    column = table.numeric_column_names()[0]
    values = table.column(column).numeric_values()
    return [f"{column} > {float(np.nanquantile(values, q)):.6f}"
            for q in WARM_QUANTILES]


def _warm_series_point(n_rows: int, repeats: int) -> dict:
    """Median warm per-query latency at one table size, tiered vs exact."""
    ds = _dataset(n_rows)
    db = Database()
    db.register(ds.table)
    predicates = _warm_predicates(ds.table)

    laps: dict[str, list[float]] = {"tiered": [], "exact": []}
    counters = {}
    for tier in ("tiered", "exact"):
        cache = TieredStatsCache() if tier == "tiered" else StatsCache()
        if tier == "tiered":
            cache.ensure_sketch(ds.table)
        engine = Ziggy(db, cache=cache)
        # Warm the table-level state: the selection-based cold run pays
        # global stats + dependency matrix; the first predicate pays the
        # dependency matrix of the predicate-excluded column set.
        engine.characterize_selection(ds.selection)
        engine.characterize(predicates[0])
        for _ in range(repeats):
            for predicate in predicates[1:]:
                start = time.perf_counter()
                engine.characterize(predicate)
                laps[tier].append((time.perf_counter() - start) * 1000.0)
        if tier == "tiered":
            counters = {
                "sketch_hits": cache.counters.sketch_hits,
                "sketch_fallbacks": cache.counters.sketch_fallbacks,
            }
    return {
        "rows": n_rows,
        "warm_query_ms": round(statistics.median(laps["tiered"]), 3),
        "warm_query_exact_ms": round(statistics.median(laps["exact"]), 3),
        **counters,
    }


def _rank_fidelity(n_rows: int) -> dict:
    """Top-view agreement between the sketch tier and the exact tier."""
    ds = _dataset(n_rows)
    db = Database()
    db.register(ds.table)

    tiered_cache = TieredStatsCache()
    tiered_cache.ensure_sketch(ds.table)
    tiered = Ziggy(db, cache=tiered_cache) \
        .characterize_selection(ds.selection)
    exact = Ziggy(db, cache=StatsCache()) \
        .characterize_selection(ds.selection)

    tiered_views = [sorted(v.columns) for v in tiered.views]
    exact_views = [sorted(v.columns) for v in exact.views]
    truth = {frozenset(view.columns) for view in ds.truth}
    k = len(truth)
    top_tiered = {frozenset(v) for v in tiered_views[:k]}
    top_exact = {frozenset(v) for v in exact_views[:k]}
    return {
        "rows": n_rows,
        "sketch_served": tiered_cache.counters.sketch_hits > 0,
        "tiered_top_views": [list(v) for v in tiered_views[:k + 1]],
        "exact_top_views": [list(v) for v in exact_views[:k + 1]],
        # Set-valued on purpose: the planted views are near-ties by
        # construction (same effect kind and strength), so the order
        # *within* the top-k may legitimately differ between tiers —
        # what must agree is which views occupy the top-k at all.
        "topk_sets_match": top_tiered == top_exact,
        "tiered_topk_is_truth": top_tiered == truth,
        "exact_topk_is_truth": top_exact == truth,
        "tiered_truth_recall": round(
            len({frozenset(v) for v in tiered_views} & truth)
            / max(1, len(truth)), 3),
        "exact_truth_recall": round(
            len({frozenset(v) for v in exact_views} & truth)
            / max(1, len(truth)), 3),
    }


def run_benchmark(row_counts: tuple[int, ...], repeats: int) -> dict:
    series = [_warm_series_point(n, repeats) for n in row_counts]
    growth = []
    for prev, cur in zip(series, series[1:]):
        growth.append({
            "rows": f"{prev['rows']}->{cur['rows']}",
            "tiered": round(cur["warm_query_ms"]
                            / max(prev["warm_query_ms"], 1e-9), 3),
            "exact": round(cur["warm_query_exact_ms"]
                           / max(prev["warm_query_exact_ms"], 1e-9), 3),
        })
    return {
        "benchmark": "runtime_rows_warm",
        "columns": 64,
        "repeats": repeats,
        "max_growth_per_doubling": MAX_WARM_GROWTH_PER_DOUBLING,
        "warm_series": series,
        "growth_per_doubling": growth,
        "rank_fidelity": _rank_fidelity(row_counts[-1]),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="warm-query scaling of the sketch tier vs row count")
    parser.add_argument("--smoke", action="store_true",
                        help="short series / single repeat (CI gate)")
    parser.add_argument("--repeats", type=int, default=None,
                        help="measurement repeats (default 3; 1 in smoke)")
    parser.add_argument("--out", default="BENCH_runtime_rows.json",
                        help="output JSON path")
    args = parser.parse_args(argv)

    row_counts = WARM_ROW_COUNTS_SMOKE if args.smoke else WARM_ROW_COUNTS
    repeats = args.repeats if args.repeats else (1 if args.smoke else 3)
    report = run_benchmark(row_counts, repeats)
    report["mode"] = "smoke" if args.smoke else "full"

    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")

    print(f"BENCH runtime_rows ({report['mode']}): warm series at "
          f"M=64, rows {list(row_counts)}, {repeats} repeat(s)")
    print(f"{'rows':>7} {'tiered(ms)':>11} {'exact(ms)':>10} "
          f"{'hits':>5} {'fallbacks':>9}")
    for point in report["warm_series"]:
        print(f"{point['rows']:>7} {point['warm_query_ms']:>11.1f} "
              f"{point['warm_query_exact_ms']:>10.1f} "
              f"{point['sketch_hits']:>5} {point['sketch_fallbacks']:>9}")
    for step in report["growth_per_doubling"]:
        print(f"growth {step['rows']}: tiered x{step['tiered']} "
              f"(exact x{step['exact']})")
    fidelity = report["rank_fidelity"]
    print(f"rank fidelity @ {fidelity['rows']} rows: "
          f"topk_sets_match={fidelity['topk_sets_match']} "
          f"tiered_topk_is_truth={fidelity['tiered_topk_is_truth']} "
          f"truth recall tiered={fidelity['tiered_truth_recall']} "
          f"exact={fidelity['exact_truth_recall']}")
    print(f"wrote {args.out}")

    # Gates: warm growth must stay sub-linear, every query must actually
    # ride the sketch, and the tiers must agree on the top view.
    failed = False
    for step in report["growth_per_doubling"]:
        if step["tiered"] >= MAX_WARM_GROWTH_PER_DOUBLING:
            print(f"ERROR: warm growth {step['rows']} is x{step['tiered']} "
                  f"(gate < x{MAX_WARM_GROWTH_PER_DOUBLING})",
                  file=sys.stderr)
            failed = True
    for point in report["warm_series"]:
        if point["sketch_hits"] <= 0:
            print(f"ERROR: no sketch hits at {point['rows']} rows",
                  file=sys.stderr)
            failed = True
    if not fidelity["sketch_served"]:
        print("ERROR: rank-fidelity run never touched the sketch tier",
              file=sys.stderr)
        failed = True
    if not fidelity["topk_sets_match"]:
        print("ERROR: tiered and exact tiers disagree on the top-k views",
              file=sys.stderr)
        failed = True
    if not fidelity["tiered_topk_is_truth"]:
        print("ERROR: sketch tier's top-k views are not the planted truth",
              file=sys.stderr)
        failed = True
    if fidelity["tiered_truth_recall"] < fidelity["exact_truth_recall"]:
        print("ERROR: sketch tier recalls fewer planted views than exact",
              file=sys.stderr)
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
