"""EXT-ROWS — runtime scaling with table length n.

Extension experiment: characterization time as rows grow 1k -> 32k at
fixed M=64 (cold cache).  Preparation scans the data, so the expected
shape is ~linear growth in n with a fixed search/post overhead — i.e.
the per-row marginal cost flattens.
"""

from __future__ import annotations

from repro.core.pipeline import Ziggy
from repro.data.planted import make_planted
from repro.experiments.harness import repeat_time
from repro.experiments.reporting import Reporter

ROW_COUNTS = (1000, 2000, 4000, 8000, 16000, 32000)


def _dataset(n_rows: int):
    return make_planted(n_rows=n_rows, n_columns=64, n_views=2,
                        view_dim=2, kinds=("mean",), effect=1.0,
                        seed=7)


def test_runtime_vs_rows(benchmark):
    datasets = {n: _dataset(n) for n in ROW_COUNTS}

    benchmark.pedantic(
        lambda: Ziggy(datasets[4000].table, share_statistics=False)
        .characterize_selection(datasets[4000].selection),
        rounds=3, iterations=1, warmup_rounds=1)

    reporter = Reporter("EXT-ROWS", "runtime vs row count "
                        "(M=64 columns, cold cache)")
    rows = []
    times = {}
    for n in ROW_COUNTS:
        ds = datasets[n]

        def run(ds=ds):
            return Ziggy(ds.table, share_statistics=False) \
                .characterize_selection(ds.selection)

        median = repeat_time(run, repeats=3 if n <= 8000 else 2, warmup=1)
        times[n] = median
        rows.append([n, f"{median * 1000:.0f}",
                     f"{median / n * 1e6:.1f}"])
    reporter.add_table(["rows n", "median (ms)", "us per row"], rows,
                       title="scaling series")
    reporter.add_text("expected shape: ~linear in n once the fixed "
                      "search/post overhead is amortized "
                      "(us-per-row flattens).")
    reporter.flush()

    # Shape: 32x the rows costs far less than 32x the time of the 1k run
    # (fixed overhead dominates small inputs) and stays sub-quadratic.
    assert times[32000] < 32 * times[1000] * 1.5
    assert times[32000] > times[1000]
