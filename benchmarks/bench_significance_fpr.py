"""EXT-FPR — spurious-findings control (Section 3 "Post-Processing").

Paper claim: the post-processing stage "evaluates the statistical
robustness of the views.  The aim is to control spurious findings, that
is, differences caused by chance."

Regenerated on pure-noise data: every selection is an arbitrary slice of
i.i.d. Gaussians, so *every* reported view is by definition spurious.
We measure the average number of views reported per query with the
significance filter off, with the paper's "retain the lowest value"
aggregation, and with the Bonferroni correction it recommends.

The paper's scheme corrects multiplicity *within* each view, so with C
candidate views roughly ``alpha * C`` spurious views still pass per null
query; our ``multiplicity="table_wide"`` extension additionally corrects
across candidates.

Expected shape: filter off >> per-view corrections (~ alpha * C) >>
table-wide correction (~ 0).
"""

from __future__ import annotations

from repro.core.config import ZiggyConfig
from repro.core.pipeline import Ziggy
from repro.experiments.reporting import Reporter
from repro.experiments.workloads import random_predicates

N_QUERIES = 12


def _views_per_query(table, predicates, config) -> float:
    engine = Ziggy(table, config=config, share_statistics=True)
    total = 0
    for pred in predicates:
        try:
            result = engine.characterize(pred)
        except Exception:
            continue
        total += len(result.views)
    return total / len(predicates)


def test_spurious_findings_control(benchmark, noise_table):
    predicates = random_predicates(noise_table, n_queries=N_QUERIES,
                                   selectivity=(0.1, 0.3), seed=5)
    configs = [
        ("no filter", ZiggyConfig(significance_filter=False)),
        ("min p (paper's 'lowest value')",
         ZiggyConfig(aggregation="min")),
        ("holm", ZiggyConfig(aggregation="holm")),
        ("bonferroni (paper's correction)",
         ZiggyConfig(aggregation="bonferroni")),
        ("fisher", ZiggyConfig(aggregation="fisher")),
        ("bonferroni + table-wide (extension)",
         ZiggyConfig(aggregation="bonferroni", multiplicity="table_wide")),
    ]

    benchmark.pedantic(
        lambda: Ziggy(noise_table, share_statistics=False).characterize(
            predicates[0]),
        rounds=3, iterations=1, warmup_rounds=1)

    reporter = Reporter("EXT-FPR", "false views per null query "
                        f"(pure-noise table, {N_QUERIES} random selections)")
    rates = {}
    rows = []
    for label, config in configs:
        rate = _views_per_query(noise_table, predicates, config)
        rates[label] = rate
        rows.append([label, f"{rate:.2f}"])
    reporter.add_table(["aggregation / filter", "avg spurious views"],
                       rows, title="every reported view here is a false "
                       "positive by construction")
    n_cols = noise_table.n_columns
    reporter.add_text(
        f"per-view corrections admit ~alpha * C candidates "
        f"(C ~ {n_cols} here, alpha = 0.05 -> ~{0.05 * n_cols:.1f}); "
        "the table-wide extension bounds the per-query count by alpha.")
    reporter.flush()

    # Shape: the filter works, and each strengthening tightens it.
    assert rates["no filter"] > \
        rates["bonferroni (paper's correction)"]
    assert rates["min p (paper's 'lowest value')"] >= \
        rates["bonferroni (paper's correction)"]
    # Per-view control admits about alpha * C false views (C ~ 40 here).
    assert rates["bonferroni (paper's correction)"] <= 0.15 * n_cols
    # Table-wide control nearly eliminates them.
    assert rates["bonferroni + table-wide (extension)"] <= 0.5
    assert rates["bonferroni + table-wide (extension)"] <= \
        rates["bonferroni (paper's correction)"]
