"""BENCH shared-cache — cold vs warm cross-client characterization.

The runtime's `SharedStatsRegistry` extends the paper's computation
sharing across clients: the first client pays for a table's global
statistics, every later client reuses them.  This benchmark measures
that, service-level:

* **cold** — client "alice" sweeps N predicates against a service with a
  fresh runtime (first query pays the preparation cost);
* **warm** — client "bob" runs the same sweep on the *same* service
  (every table-level statistic is a cross-client hit).

It writes a machine-readable ``BENCH_shared_cache.json`` so the perf
trajectory can be tracked across commits, and prints a short table.

Usage::

    PYTHONPATH=src python benchmarks/bench_shared_cache.py [--smoke]
        [--out BENCH_shared_cache.json] [--rows N] [--repeats K]

``--smoke`` shrinks the dataset so CI finishes in seconds.
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time

from repro.data.crime import make_crime
from repro.experiments.workloads import threshold_sweep_predicates
from repro.runtime import ZiggyRuntime
from repro.service import BatchRequest, ZiggyService

QUANTILES = (0.95, 0.92, 0.9, 0.85, 0.8, 0.75)


def run_client(service: ZiggyService, client_id: str,
               predicates: tuple[str, ...]) -> list[float]:
    """One client's sweep; returns per-query latencies in ms."""
    laps: list[float] = []
    for predicate in predicates:
        start = time.perf_counter()
        service.characterize_many(BatchRequest(predicates=(predicate,),
                                               client_id=client_id))
        laps.append((time.perf_counter() - start) * 1000.0)
    return laps


def run_benchmark(n_rows: int, repeats: int) -> dict:
    table = make_crime(n_rows=n_rows)
    predicates = tuple(threshold_sweep_predicates(
        table, "violent_crime_rate", quantiles=QUANTILES))

    # Warm numpy/BLAS caches with a throwaway runtime, so the cold phase
    # measures our cold path and not the interpreter's.
    warmup = ZiggyService(runtime=ZiggyRuntime())
    warmup.register_table(table)
    run_client(warmup, "warmup", predicates[:1])
    warmup.shutdown(wait=False)

    cold_runs: list[list[float]] = []
    warm_runs: list[list[float]] = []
    registry_stats: dict = {}
    cache_stats: dict = {}
    for _ in range(repeats):
        runtime = ZiggyRuntime()
        service = ZiggyService(runtime=runtime)
        service.register_table(table)
        cold_runs.append(run_client(service, "alice", predicates))
        warm_runs.append(run_client(service, "bob", predicates))
        registry_stats = runtime.stats.stats().to_dict()
        cache = (service.session("bob").engine_for(table.name).cache)
        cache_stats = {
            "hits": cache.counters.hits,
            "misses": cache.counters.misses,
            "hit_rate": cache.counters.hits
            / max(1, cache.counters.hits + cache.counters.misses),
        }
        service.shutdown(wait=False)

    def summarize(runs: list[list[float]]) -> dict:
        per_query = [statistics.median(r[i] for r in runs)
                     for i in range(len(predicates))]
        totals = [sum(r) for r in runs]
        return {
            "per_query_ms": [round(v, 3) for v in per_query],
            "total_ms": round(statistics.median(totals), 3),
            "first_query_ms": round(per_query[0], 3),
            "steady_state_ms": round(statistics.median(per_query[1:]), 3),
        }

    cold = summarize(cold_runs)
    warm = summarize(warm_runs)
    return {
        "benchmark": "shared_cache",
        "table": {"name": table.name, "rows": table.n_rows,
                  "columns": table.n_columns},
        "n_predicates": len(predicates),
        "repeats": repeats,
        "cold": cold,
        "warm": warm,
        "speedup_total": round(cold["total_ms"] / max(warm["total_ms"], 1e-9), 3),
        "speedup_first_query": round(
            cold["first_query_ms"] / max(warm["first_query_ms"], 1e-9), 3),
        "registry": registry_stats,
        "cache": cache_stats,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="cold vs warm cross-client characterization latency")
    parser.add_argument("--smoke", action="store_true",
                        help="small dataset / single repeat (CI gate)")
    parser.add_argument("--rows", type=int, default=None,
                        help="crime-table rows (default: 1994, the paper's "
                             "size; 400 in smoke mode)")
    parser.add_argument("--repeats", type=int, default=None,
                        help="measurement repeats (default 3; 1 in smoke)")
    parser.add_argument("--out", default="BENCH_shared_cache.json",
                        help="output JSON path")
    args = parser.parse_args(argv)

    n_rows = args.rows if args.rows else (400 if args.smoke else 1994)
    repeats = args.repeats if args.repeats else (1 if args.smoke else 3)
    report = run_benchmark(n_rows=n_rows, repeats=repeats)
    report["mode"] = "smoke" if args.smoke else "full"

    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")

    print(f"BENCH shared_cache ({report['mode']}): "
          f"{report['table']['rows']}x{report['table']['columns']} crime, "
          f"{report['n_predicates']} predicates, {repeats} repeat(s)")
    print(f"{'phase':<8} {'first(ms)':>10} {'steady(ms)':>11} {'total(ms)':>10}")
    for phase in ("cold", "warm"):
        row = report[phase]
        print(f"{phase:<8} {row['first_query_ms']:>10.1f} "
              f"{row['steady_state_ms']:>11.1f} {row['total_ms']:>10.1f}")
    print(f"speedup: total x{report['speedup_total']}, "
          f"first-query x{report['speedup_first_query']}")
    registry = report["registry"]
    print(f"registry: hits={registry['hits']} misses={registry['misses']} "
          f"cross_client_hits={registry['cross_client_hits']}")
    print(f"wrote {args.out}")

    # Sanity gates so CI fails loudly when sharing regresses.
    if registry["cross_client_hits"] < 1:
        print("ERROR: no cross-client registry hit recorded", file=sys.stderr)
        return 1
    if report["cache"]["hits"] <= 0:
        print("ERROR: stats cache recorded no hits", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
