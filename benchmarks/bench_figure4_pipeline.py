"""FIG4 — Figure 4: Ziggy's tuple-description pipeline.

Paper artifact: the three-stage pipeline (Preparation -> View Search ->
Post-processing), with the note that preparation "is often the most time
consuming step".  Regenerated as a per-stage timing breakdown on all
three demo datasets.

Shape check: preparation dominates on every dataset.
"""

from __future__ import annotations

import numpy as np

from repro.core.pipeline import Ziggy
from repro.experiments.reporting import Reporter


def _predicate_for(table, column, quantile=0.9):
    values = table.column(column).numeric_values()
    threshold = float(np.nanquantile(values[~np.isnan(values)], quantile))
    return f"{column} > {threshold:.6f}"


def test_figure4_pipeline_stages(benchmark, crime_table, boxoffice_table,
                                 innovation_table, crime_query):
    benchmark.pedantic(
        lambda: Ziggy(crime_table, share_statistics=False).characterize(
            crime_query),
        rounds=3, iterations=1, warmup_rounds=1)

    cases = [
        (boxoffice_table, _predicate_for(boxoffice_table, "gross")),
        (crime_table, crime_query),
        (innovation_table, _predicate_for(innovation_table, "patents_00")),
    ]
    reporter = Reporter("FIG4", "pipeline stage timings (paper Figure 4)")
    rows = []
    for table, predicate in cases:
        result = Ziggy(table, share_statistics=False).characterize(predicate)
        prep = result.timings["preparation"]
        search = result.timings["view_search"]
        post = result.timings["post_processing"]
        total = result.total_time
        rows.append([
            table.name, table.n_rows, table.n_columns,
            f"{prep * 1000:.0f}", f"{search * 1000:.0f}",
            f"{post * 1000:.0f}",
            f"{prep / total:.0%}", len(result.views),
        ])
        # The paper's observation must hold.
        assert prep > search + post, (
            f"{table.name}: preparation does not dominate")
    reporter.add_table(
        ["dataset", "rows", "cols", "prep (ms)", "search (ms)",
         "post (ms)", "prep share", "views"],
        rows, title="per-stage wall time (cold cache)")
    reporter.add_text(
        "paper: 'During the preparation step ... This is often the most "
        "time consuming step.' — confirmed on all three datasets.")
    reporter.flush()
