"""BENCH gateway — concurrent SSE fan-out on both HTTP front-ends.

The async gateway exists to hold thousands of idle-but-live event
streams without a thread apiece.  Three sections:

* **fanout** — N raw-socket SSE subscribers attach to one job, the job
  then emits timestamped events, and every subscriber's receipt latency
  is measured (emission ``perf_counter`` stamp rides in the event
  payload; same process, same clock).  Configurations: the threaded
  baseline at 100 clients, the async gateway at 100 clients, and the
  async gateway at the C10k-direction scale point (1,000 clients).
* **eviction** — one deliberately stalled subscriber (tiny SO_RCVBUF,
  never reads) among healthy ones; the stalled client must be evicted
  while every healthy client still receives the full stream.
* **gates** — the async gateway must complete the scale run for every
  subscriber, and its p99 latency at 100 clients must be no worse than
  the threaded baseline at 100 clients (within ``--gate-factor``).

Writes ``BENCH_gateway.json`` and prints a short table.  Usage::

    PYTHONPATH=src python benchmarks/bench_gateway.py [--smoke]
        [--out BENCH_gateway.json] [--clients N] [--scale-clients N]
        [--events N] [--gate-factor F]

Exit code 1 when a gate fails, so CI trips loudly.
"""

from __future__ import annotations

import argparse
import json
import selectors
import socket
import sys
import threading
import time

from repro.data.boxoffice import make_boxoffice
from repro.gateway import GatewayPolicy, make_frontend
from repro.runtime import ZiggyRuntime
from repro.service import ZiggyService
from repro.service.protocol import job_event_from_stage

RECV_CHUNK = 1 << 16


def _percentile(sorted_values: list[float], q: float) -> float:
    if not sorted_values:
        return float("nan")
    index = min(len(sorted_values) - 1,
                max(0, round(q * (len(sorted_values) - 1))))
    return sorted_values[index]


class ServedGateway:
    """A front-end served on a daemon thread; context-managed teardown."""

    def __init__(self, frontend: str, policy: GatewayPolicy | None = None):
        self.service = ZiggyService(max_workers=2, runtime=ZiggyRuntime())
        self.service.register_table(make_boxoffice(n_rows=60, seed=3))
        self.server = make_frontend(self.service, frontend=frontend,
                                    port=0, policy=policy)
        self.thread = threading.Thread(target=self.server.serve_forever,
                                       daemon=True)
        self.thread.start()
        self.host, self.port = self.server.server_address[:2]

    def submit_emitter(self, n_events: int, payload_pad: str = "",
                       gate: threading.Event | None = None) -> str:
        """A job that (optionally after ``gate``) emits stamped events."""

        def work(progress):
            if gate is not None:
                gate.wait(timeout=120)
            for i in range(n_events):
                progress("note", {"i": i, "t": time.perf_counter(),
                                  "pad": payload_pad})
            return "ok"

        return self.service.jobs.submit(
            work, event_mapper=job_event_from_stage)

    def close(self):
        self.server.close(shutdown_service=True, wait=False)
        self.thread.join(timeout=30)


class Subscriber:
    """One raw-socket SSE client parsed incrementally off a selector."""

    def __init__(self, host: str, port: int, job_id: str,
                 rcvbuf: int | None = None):
        self.sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        if rcvbuf is not None:
            self.sock.setsockopt(socket.SOL_SOCKET, socket.SO_RCVBUF, rcvbuf)
        self.sock.connect((host, port))
        request = (f"GET /v2/jobs/{job_id}/events HTTP/1.1\r\n"
                   f"Host: {host}:{port}\r\n"
                   "Accept: text/event-stream\r\n"
                   "Connection: close\r\n\r\n")
        self.sock.sendall(request.encode("ascii"))
        self.sock.setblocking(False)
        self.buffer = b""
        self.notes = 0
        self.done = False
        self.eof = False
        self.latencies_ms: list[float] = []

    def feed(self, chunk: bytes, now: float):
        self.buffer += chunk
        while b"\n\n" in self.buffer:
            block, self.buffer = self.buffer.split(b"\n\n", 1)
            self._consume(block, now)

    def _consume(self, block: bytes, now: float):
        kind, data = None, None
        for line in block.split(b"\n"):
            if line.startswith(b"event: "):
                kind = line[7:]
            elif line.startswith(b"data: "):
                data = line[6:]
        if kind == b"note" and data is not None:
            self.notes += 1
            stamp = json.loads(data)["t"]
            self.latencies_ms.append((now - stamp) * 1000.0)
        elif kind == b"done":
            self.done = True

    def close(self):
        try:
            self.sock.close()
        except OSError:
            pass


def pump(subscribers: list[Subscriber], deadline: float,
         stop_when=None) -> None:
    """Drive every subscriber off one selector until done/EOF/deadline."""
    sel = selectors.DefaultSelector()
    live = 0
    for sub in subscribers:
        sel.register(sub.sock, selectors.EVENT_READ, sub)
        live += 1
    try:
        while live and time.perf_counter() < deadline:
            if stop_when is not None and stop_when():
                break
            for key, _ in sel.select(timeout=0.5):
                sub = key.data
                try:
                    chunk = sub.sock.recv(RECV_CHUNK)
                except BlockingIOError:
                    continue
                except OSError:
                    chunk = b""
                now = time.perf_counter()
                if chunk:
                    sub.feed(chunk, now)
                if not chunk or sub.done:
                    sub.eof = not chunk
                    sel.unregister(sub.sock)
                    sub.close()
                    live -= 1
    finally:
        sel.close()


def bench_fanout(frontend: str, n_clients: int, n_events: int,
                 timeout: float = 300.0) -> dict:
    served = ServedGateway(frontend)
    try:
        gate = threading.Event()
        job_id = served.submit_emitter(n_events, gate=gate)
        subscribers = [Subscriber(served.host, served.port, job_id)
                       for _ in range(n_clients)]
        start = time.perf_counter()
        gate.set()
        pump(subscribers, deadline=start + timeout)
        wall = time.perf_counter() - start
    finally:
        served.close()

    completed = sum(1 for s in subscribers if s.done)
    latencies = sorted(lat for s in subscribers for lat in s.latencies_ms)
    return {
        "frontend": frontend,
        "clients": n_clients,
        "events_per_client": n_events,
        "completed": completed,
        "deliveries": len(latencies),
        "p50_ms": round(_percentile(latencies, 0.50), 3),
        "p99_ms": round(_percentile(latencies, 0.99), 3),
        "max_ms": round(latencies[-1], 3) if latencies else None,
        "wall_seconds": round(wall, 3),
    }


def bench_eviction(frontend: str, n_healthy: int, n_events: int) -> dict:
    policy = GatewayPolicy(sse_write_timeout=1.0, sse_buffer_bytes=8192,
                           keepalive_seconds=0.2)
    served = ServedGateway(frontend, policy=policy)
    try:
        gate = threading.Event()
        job_id = served.submit_emitter(n_events, payload_pad="x" * 512,
                                       gate=gate)
        stalled = Subscriber(served.host, served.port, job_id, rcvbuf=4096)
        time.sleep(0.2)  # let the stalled stream attach before the burst
        healthy = [Subscriber(served.host, served.port, job_id)
                   for _ in range(n_healthy)]
        start = time.perf_counter()
        gate.set()
        pump(healthy, deadline=start + 120.0)
        healthy_wall = time.perf_counter() - start

        # Wait for the server to give up on the stalled stream before
        # touching its socket: reading from it would unblock the very
        # write the eviction timeout is waiting on.
        import urllib.request

        def read_evicted() -> int:
            with urllib.request.urlopen(
                    f"http://{served.host}:{served.port}/healthz",
                    timeout=30) as reply:
                return json.load(reply)["gateway"]["evicted"]

        deadline = time.perf_counter() + 60.0
        evicted = 0
        while time.perf_counter() < deadline:
            evicted = read_evicted()
            if evicted:
                break
            time.sleep(0.2)

        # The stalled socket was torn down server-side; draining it
        # now must hit EOF (or a reset) in short order.
        deadline = time.perf_counter() + 30.0
        stalled.sock.setblocking(True)
        stalled.sock.settimeout(5.0)
        stalled_eof = False
        while time.perf_counter() < deadline:
            try:
                if not stalled.sock.recv(RECV_CHUNK):
                    stalled_eof = True
                    break
            except socket.timeout:
                continue
            except OSError:
                stalled_eof = True
                break
        stalled.close()
    finally:
        served.close()

    return {
        "frontend": frontend,
        "healthy_clients": n_healthy,
        "healthy_completed": sum(1 for s in healthy if s.done),
        "events_per_client": n_events,
        "healthy_wall_seconds": round(healthy_wall, 3),
        "evicted": evicted,
        "stalled_connection_closed": stalled_eof,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized run: small client counts")
    parser.add_argument("--out", default="BENCH_gateway.json")
    parser.add_argument("--clients", type=int, default=None,
                        help="baseline comparison client count (default 100)")
    parser.add_argument("--scale-clients", type=int, default=None,
                        help="async scale point (default 1000)")
    parser.add_argument("--events", type=int, default=None,
                        help="events per job in the fanout runs")
    parser.add_argument("--gate-factor", type=float, default=None,
                        help="async p99 may be at most this multiple of "
                             "the threaded baseline p99 (default 1.25; "
                             "2.5 under --smoke, where tiny client counts "
                             "measure constant overhead, not fan-out)")
    args = parser.parse_args(argv)

    gate_factor = args.gate_factor or (2.5 if args.smoke else 1.25)
    clients = args.clients or (20 if args.smoke else 100)
    scale_clients = args.scale_clients or (100 if args.smoke else 1000)
    events = args.events or (10 if args.smoke else 20)
    scale_events = max(3, events // 4)

    configs = [("threaded", clients, events),
               ("async", clients, events),
               ("async", scale_clients, scale_events)]
    fanout = {}
    for frontend, n_clients, n_events in configs:
        label = f"{frontend}@{n_clients}"
        print(f"fanout {label}: {n_events} events/client ...",
              flush=True)
        row = fanout[label] = bench_fanout(frontend, n_clients, n_events)
        print(f"  completed {row['completed']}/{n_clients}, "
              f"p50 {row['p50_ms']}ms, p99 {row['p99_ms']}ms, "
              f"wall {row['wall_seconds']}s", flush=True)

    eviction = {}
    for frontend in ("threaded", "async"):
        print(f"eviction {frontend}: 1 stalled + healthy readers ...",
              flush=True)
        row = eviction[frontend] = bench_eviction(
            frontend, n_healthy=5 if args.smoke else 20,
            n_events=150 if args.smoke else 300)
        print(f"  healthy {row['healthy_completed']}"
              f"/{row['healthy_clients']}, evicted {row['evicted']}, "
              f"stalled closed: {row['stalled_connection_closed']}",
              flush=True)

    base = fanout[f"threaded@{clients}"]
    async_base = fanout[f"async@{clients}"]
    scale = fanout[f"async@{scale_clients}"]
    gates = {
        "async_scale_completes": {
            "required": scale_clients,
            "completed": scale["completed"],
            "ok": scale["completed"] == scale_clients,
        },
        "async_p99_vs_threaded": {
            "threaded_p99_ms": base["p99_ms"],
            "async_p99_ms": async_base["p99_ms"],
            "factor": gate_factor,
            "ok": async_base["p99_ms"]
                <= base["p99_ms"] * gate_factor,
        },
        "eviction_isolates_stall": {
            "ok": all(row["evicted"] >= 1
                      and row["stalled_connection_closed"]
                      and row["healthy_completed"]
                          == row["healthy_clients"]
                      for row in eviction.values()),
        },
    }

    report = {
        "bench": "gateway",
        "smoke": args.smoke,
        "fanout": fanout,
        "eviction": eviction,
        "gates": gates,
        "ok": all(gate["ok"] for gate in gates.values()),
    }
    with open(args.out, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")

    print(f"\nwrote {args.out}")
    for name, gate in gates.items():
        print(f"gate {name}: {'ok' if gate['ok'] else 'FAILED'}")
    return 0 if report["ok"] else 1


if __name__ == "__main__":
    sys.exit(main())
