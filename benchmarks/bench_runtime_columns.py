"""EXT-COLS — runtime scaling with table width M.

Extension experiment: characterization time as the column count grows
from 16 to 512 at fixed n=2000 (block-correlated synthetic data, cold
cache).  The paper's widest demo dataset has 519 columns, so the sweep
covers the demo's full operating range.

Expected shape: super-linear but polynomial growth dominated by the
pairwise preparation work (the O(M^2) moment matrices + pair components),
with the search stage (O(M^3) worst-case linkage) still a minority cost
at 512 columns.
"""

from __future__ import annotations

import numpy as np

from repro.core.pipeline import Ziggy
from repro.data.planted import make_planted
from repro.experiments.harness import repeat_time
from repro.experiments.reporting import Reporter

WIDTHS = (16, 32, 64, 128, 256, 512)


def _dataset(n_columns: int):
    return make_planted(n_rows=2000, n_columns=n_columns, n_views=2,
                        view_dim=2, kinds=("mean",), effect=1.0,
                        seed=n_columns)


def test_runtime_vs_columns(benchmark):
    datasets = {m: _dataset(m) for m in WIDTHS}

    benchmark.pedantic(
        lambda: Ziggy(datasets[64].table, share_statistics=False)
        .characterize_selection(datasets[64].selection),
        rounds=3, iterations=1, warmup_rounds=1)

    reporter = Reporter("EXT-COLS", "runtime vs column count "
                        "(n=2000 rows, cold cache)")
    rows = []
    times = {}
    for m in WIDTHS:
        ds = datasets[m]

        def run(ds=ds):
            return Ziggy(ds.table, share_statistics=False) \
                .characterize_selection(ds.selection)

        median = repeat_time(run, repeats=3 if m <= 128 else 2, warmup=1)
        result = run()
        times[m] = median
        prep_share = result.timings["preparation"] / result.total_time
        rows.append([m, f"{median * 1000:.0f}",
                     f"{prep_share:.0%}", len(result.views)])
    reporter.add_table(
        ["columns M", "median (ms)", "prep share", "views"], rows,
        title="scaling series (paper demo max: 519 columns)")
    ratio = times[512] / times[64]
    reporter.add_text(f"512 vs 64 columns: {ratio:.1f}x "
                      f"(64x more pairwise work at 8x the width)")
    reporter.flush()

    # Shape: growth is polynomial, not explosive; the demo-scale width
    # stays interactive-ish (well under a minute).
    assert times[512] < 60.0
    assert times[512] > times[16]
