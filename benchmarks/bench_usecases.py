"""UC1-3 — Section 4.2: the three demo use cases at published sizes.

Paper artifact: the demo walks Box Office (900x12), US Crime (1994x128)
and Countries & Innovation (6823x519) with ready-made queries.  The
table reports, per dataset, the selection size, views found, end-to-end
latency and the top explanation — including the paper's claim that Ziggy
"can highlight complex phenomena" at 519 columns and that the
"seemingly superfluous" boarded-windows proxy surfaces on US Crime.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import ZiggyConfig
from repro.core.pipeline import Ziggy
from repro.experiments.reporting import Reporter


def _quantile_predicate(table, column, q=0.9):
    values = table.column(column).numeric_values()
    threshold = float(np.nanquantile(values[~np.isnan(values)], q))
    return f"{column} > {threshold:.6f}"


def test_usecases_three_datasets(benchmark, boxoffice_table, crime_table,
                                 innovation_table, crime_query):
    cases = [
        ("UC1 boxoffice", boxoffice_table,
         _quantile_predicate(boxoffice_table, "gross"), ZiggyConfig()),
        ("UC2 us_crime", crime_table, crime_query,
         ZiggyConfig(max_views=10,
                     excluded_columns=("property_crime_rate", "n_murders",
                                       "n_police_officers"))),
        ("UC3 innovation", innovation_table,
         _quantile_predicate(innovation_table, "patents_00"),
         ZiggyConfig(max_views=6)),
    ]

    benchmark.pedantic(
        lambda: Ziggy(boxoffice_table, share_statistics=False).characterize(
            cases[0][2]),
        rounds=3, iterations=1, warmup_rounds=1)

    reporter = Reporter("UC1-3", "the three demo use cases (Section 4.2)")
    rows = []
    results = {}
    for name, table, predicate, config in cases:
        result = Ziggy(table, config=config,
                       share_statistics=False).characterize(predicate)
        results[name] = result
        rows.append([name, f"{table.n_rows}x{table.n_columns}",
                     result.n_inside, len(result.views),
                     f"{result.total_time:.2f}s"])
    reporter.add_table(
        ["use case", "shape", "selected", "views", "latency"], rows,
        title="end-to-end runs at the paper's dataset sizes")
    for name, result in results.items():
        top = result.best()
        reporter.add_text(f"{name} top view: {top.explanation}")
    reporter.flush()

    # Shape checks from the narrative.
    assert len(results["UC3 innovation"].views) >= 3, \
        "519-column dataset must still yield views"
    crime_cols = {c for v in results["UC2 us_crime"].views
                  for c in v.columns}
    assert "pct_boarded_windows" in crime_cols, \
        "the 'seemingly superfluous' proxy variable must surface"
    for result in results.values():
        assert all(v.significant for v in result.views)
