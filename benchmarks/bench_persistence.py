"""BENCH persistence — journal write overhead and snapshot-warmed starts.

Durability must be close to free, or nobody turns it on.  Two sections:

* **journal** — the same job workload through a ``ZiggyService`` with and
  without a ``--state-dir``; the journal's framed-append-per-event cost
  must stay under the gate (default <5% wall-clock overhead, the
  acceptance bar of the durable-state subsystem).  A raw append
  microbenchmark reports the per-record cost for context.
* **warm_start** — first-query latency of a cold boot versus a boot that
  restored the previous run's warm-cache snapshots; the warmed start
  must re-prepare **nothing** (cache misses == 0).

Writes ``BENCH_persistence.json`` and prints a short table.  Usage::

    PYTHONPATH=src python benchmarks/bench_persistence.py [--smoke]
        [--out BENCH_persistence.json] [--rows N] [--repeats K]
        [--gate-pct 5.0]

Exit code 1 when a gate fails, so CI trips loudly.
"""

from __future__ import annotations

import argparse
import json
import shutil
import statistics
import sys
import tempfile
import time

from repro.data.boxoffice import make_boxoffice
from repro.data.crime import make_crime
from repro.persistence import JobJournal, event_record
from repro.runtime import ZiggyRuntime
from repro.service import BatchRequest, CharacterizeRequest, ZiggyService

#: Crime-table predicates: realistic job sizes (the journal's cost is
#: per event, independent of table size, so toy tables would report an
#: inflated overhead ratio no deployment ever sees).
PREDICATES = (
    "violent_crime_rate > 0.2",
    "violent_crime_rate > 0.35",
    "pct_unemployed > 0.1",
    "avg_salary < 32000",
)

#: Boxoffice predicate for the warm-start section (small table: the
#: cold/warm delta is preparation, which needs no size to show).
WARM_PREDICATE = "gross > 200000000"


def run_job_workload(table, state_dir: str | None,
                     jobs_per_predicate: int) -> float:
    """Submit-and-wait the job workload; returns wall-clock seconds."""
    service = ZiggyService(executor="inline", runtime=ZiggyRuntime(),
                           state_dir=state_dir, snapshot_interval=0)
    service.register_table(table)
    start = time.perf_counter()
    for _ in range(jobs_per_predicate):
        for where in PREDICATES:
            snapshot = service.submit(CharacterizeRequest(
                where=where, table=table.name))
            done = service.wait(snapshot.job_id, timeout=300)
            if done.status != "done":  # a failed job would fake speed
                raise RuntimeError(
                    f"bench job {where!r} ended {done.status}: {done.error}")
    elapsed = time.perf_counter() - start
    service.shutdown()
    return elapsed


def bench_journal(table, repeats: int, jobs_per_predicate: int) -> dict:
    memory_runs, durable_runs = [], []
    for _ in range(repeats):
        memory_runs.append(run_job_workload(table, None, jobs_per_predicate))
        state_dir = tempfile.mkdtemp(prefix="bench-persist-")
        try:
            durable_runs.append(
                run_job_workload(table, state_dir, jobs_per_predicate))
        finally:
            shutil.rmtree(state_dir, ignore_errors=True)
    memory_s = statistics.median(memory_runs)
    durable_s = statistics.median(durable_runs)
    n_jobs = jobs_per_predicate * len(PREDICATES)

    # Raw append cost, for context (framed JSON + flush, no fsync).
    append_dir = tempfile.mkdtemp(prefix="bench-journal-")
    try:
        journal = JobJournal(append_dir, fsync="never")
        record = event_record("job-000001", 1, "view-ranked",
                              {"rank": 1, "columns": ["a", "b"],
                               "score": 1.5, "explanation": "x" * 120})
        n_appends = 5000
        start = time.perf_counter()
        for _ in range(n_appends):
            journal.append(record)
        append_s = time.perf_counter() - start
        journal.close()
    finally:
        shutil.rmtree(append_dir, ignore_errors=True)

    return {
        "n_jobs": n_jobs,
        "repeats": repeats,
        "in_memory_s": round(memory_s, 4),
        "durable_s": round(durable_s, 4),
        "overhead_pct": round((durable_s - memory_s) / memory_s * 100.0, 2),
        "append_us": round(append_s / n_appends * 1e6, 2),
        "appends_per_s": round(n_appends / append_s),
    }


def first_query_ms(table, state_dir: str | None) -> "tuple[float, dict]":
    """One fresh service's first batch latency plus its cache counters."""
    service = ZiggyService(executor="inline", runtime=ZiggyRuntime(),
                           state_dir=state_dir, snapshot_interval=0)
    service.register_table(table)
    if state_dir is not None:
        service.recover()
    start = time.perf_counter()
    response = service.characterize_many(BatchRequest(
        predicates=(WARM_PREDICATE,), table=table.name))
    elapsed_ms = (time.perf_counter() - start) * 1000.0
    counters = {"hits": response.cache_hits, "misses": response.cache_misses}
    service.shutdown()
    return elapsed_ms, counters


def bench_warm_start(table, repeats: int) -> dict:
    cold_ms, warm_ms = [], []
    warm_counters: dict = {}
    for _ in range(repeats):
        state_dir = tempfile.mkdtemp(prefix="bench-warmstart-")
        try:
            # Cold boot: empty state directory, preparation paid in full.
            cold, _ = first_query_ms(table, state_dir)
            cold_ms.append(cold)
            # The clean shutdown above wrote snapshots; the next boot
            # on the same directory answers from them.
            warm, warm_counters = first_query_ms(table, state_dir)
            warm_ms.append(warm)
        finally:
            shutil.rmtree(state_dir, ignore_errors=True)
    cold = statistics.median(cold_ms)
    warm = statistics.median(warm_ms)
    return {
        "repeats": repeats,
        "cold_first_query_ms": round(cold, 3),
        "warm_first_query_ms": round(warm, 3),
        "speedup": round(cold / max(warm, 1e-9), 3),
        "warm_cache": warm_counters,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="journal overhead + snapshot-warmed start latency")
    parser.add_argument("--smoke", action="store_true",
                        help="small table / fewer jobs (CI gate)")
    parser.add_argument("--rows", type=int, default=None,
                        help="crime rows for the journal section "
                             "(default 1994, the paper's size; 600 in "
                             "smoke)")
    parser.add_argument("--repeats", type=int, default=None,
                        help="measurement repeats (default 3; 2 in smoke)")
    parser.add_argument("--jobs", type=int, default=None,
                        help="jobs per predicate per run (default 3; 2 in "
                             "smoke)")
    parser.add_argument("--gate-pct", type=float, default=5.0,
                        help="max tolerated journal overhead percent")
    parser.add_argument("--out", default="BENCH_persistence.json",
                        help="output JSON path")
    args = parser.parse_args(argv)

    n_rows = args.rows if args.rows else (600 if args.smoke else 1994)
    repeats = args.repeats if args.repeats else (2 if args.smoke else 3)
    jobs = args.jobs if args.jobs else (2 if args.smoke else 3)

    table = make_crime(n_rows=n_rows, seed=13)
    warm_table = make_boxoffice(n_rows=200, seed=13)
    report = {
        "benchmark": "persistence",
        "mode": "smoke" if args.smoke else "full",
        "table": {"name": table.name, "rows": table.n_rows,
                  "columns": table.n_columns},
        "journal": bench_journal(table, repeats, jobs),
        "warm_start": bench_warm_start(warm_table, repeats),
    }

    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")

    journal = report["journal"]
    warm = report["warm_start"]
    print(f"BENCH persistence ({report['mode']}): "
          f"{n_rows}x{table.n_columns} crime, "
          f"{journal['n_jobs']} jobs/run, {repeats} repeat(s)")
    print(f"journal: in-memory {journal['in_memory_s']}s vs durable "
          f"{journal['durable_s']}s -> overhead {journal['overhead_pct']}% "
          f"(raw append {journal['append_us']}us)")
    print(f"warm start: cold {warm['cold_first_query_ms']}ms vs warmed "
          f"{warm['warm_first_query_ms']}ms "
          f"(x{warm['speedup']}, warm cache {warm['warm_cache']})")
    print(f"wrote {args.out}")

    failed = False
    if journal["overhead_pct"] >= args.gate_pct:
        print(f"ERROR: journal overhead {journal['overhead_pct']}% "
              f"breaches the {args.gate_pct}% gate", file=sys.stderr)
        failed = True
    if warm["warm_cache"].get("misses") != 0:
        print("ERROR: snapshot-warmed first query re-prepared statistics "
              f"(counters {warm['warm_cache']})", file=sys.stderr)
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
