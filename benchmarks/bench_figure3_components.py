"""FIG3 — Figure 3: the Zig-Components.

Paper artifact: three panels illustrating the difference between the
means, between the standard deviations, and between the correlation
coefficients.  Regenerated on controlled two-Gaussian data where the
ground-truth gaps are known: each component must report an effect close
to the planted value and a significant p-value, and must report ~zero on
an identical-distribution control.
"""

from __future__ import annotations

import numpy as np

from repro.core.components.base import ColumnSlice, PairSlice
from repro.core.components.correlation import CorrelationShiftComponent
from repro.core.components.numeric import (
    MeanShiftComponent,
    SpreadShiftComponent,
)
from repro.experiments.reporting import Reporter
from repro.stats.correlation import fisher_z, pearson


def _make_slices(rng, n=4000):
    """Planted gaps: mean +1 SD, SD ratio e, correlation 0.8 vs 0.1."""
    inside_mean = rng.normal(1.0, 1.0, n)
    outside_mean = rng.normal(0.0, 1.0, 3 * n)
    inside_sd = rng.normal(0.0, np.e, n)
    outside_sd = rng.normal(0.0, 1.0, 3 * n)
    x_in = rng.normal(size=n)
    y_in = 0.8 * x_in + np.sqrt(1 - 0.64) * rng.normal(size=n)
    x_out = rng.normal(size=3 * n)
    y_out = 0.1 * x_out + np.sqrt(1 - 0.01) * rng.normal(size=3 * n)
    control = rng.normal(size=n), rng.normal(size=3 * n)
    return {
        "mean": ColumnSlice("mean_col", False, inside_mean, outside_mean),
        "sd": ColumnSlice("sd_col", False, inside_sd, outside_sd),
        "corr": PairSlice(
            x=ColumnSlice("x", False), y=ColumnSlice("y", False),
            r_inside=pearson(x_in, y_in), r_outside=pearson(x_out, y_out),
            n_inside=n, n_outside=3 * n),
        "control": ColumnSlice("ctl", False, control[0], control[1]),
    }


def test_figure3_zig_components(benchmark):
    rng = np.random.default_rng(17)
    slices = _make_slices(rng)
    mean_comp = MeanShiftComponent()
    sd_comp = SpreadShiftComponent()
    corr_comp = CorrelationShiftComponent()

    benchmark(lambda: (mean_comp.compute(slices["mean"]),
                       sd_comp.compute(slices["sd"]),
                       corr_comp.compute(slices["corr"])))

    out_mean = mean_comp.compute(slices["mean"])
    out_sd = sd_comp.compute(slices["sd"])
    out_corr = corr_comp.compute(slices["corr"])
    out_ctl_mean = mean_comp.compute(slices["control"])
    out_ctl_sd = sd_comp.compute(slices["control"])

    expected_corr_gap = fisher_z(0.8) - fisher_z(0.1)
    reporter = Reporter("FIG3", "Zig-Components on controlled gaps "
                        "(paper Figure 3)")
    reporter.add_table(
        ["zig-component", "planted effect", "measured", "direction",
         "p-value", "test"],
        [
            ["difference of means (Hedges g)", 1.0,
             round(out_mean.raw, 3), out_mean.direction,
             f"{out_mean.test.p_value:.1e}", out_mean.test.name],
            ["difference of std devs (log ratio)", 1.0,
             round(out_sd.raw, 3), out_sd.direction,
             f"{out_sd.test.p_value:.1e}", out_sd.test.name],
            ["difference of correlations (Fisher z)",
             round(expected_corr_gap, 3), round(out_corr.raw, 3),
             out_corr.direction, f"{out_corr.test.p_value:.1e}",
             out_corr.test.name],
            ["control: identical distributions", 0.0,
             round(out_ctl_mean.raw, 3), out_ctl_mean.direction,
             f"{out_ctl_mean.test.p_value:.2f}", out_ctl_mean.test.name],
            ["control: identical spreads", 0.0,
             round(out_ctl_sd.raw, 3), out_ctl_sd.direction,
             f"{out_ctl_sd.test.p_value:.2f}", out_ctl_sd.test.name],
        ],
        title="component readings")
    reporter.flush()

    # Shape assertions: planted effects recovered, control silent.
    assert abs(out_mean.raw - 1.0) < 0.15
    assert abs(out_sd.raw - 1.0) < 0.15
    assert abs(out_corr.raw - expected_corr_gap) < 0.2
    assert out_mean.test.p_value < 1e-10
    assert out_sd.test.p_value < 1e-10
    assert out_corr.test.p_value < 1e-10
    assert abs(out_ctl_mean.raw) < 0.1
    assert out_ctl_mean.test.p_value > 0.01
