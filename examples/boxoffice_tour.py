"""Box Office tour: the demo's introductory dataset, via the session API.

Shows the interactive surface (Figure 5): the query box, the ranked view
list, the detail panel, weight adjustment, and the dendrogram that helps
tune MIN_tight.

Run:  python examples/boxoffice_tour.py
"""

from repro import load_dataset
from repro.app import ZiggySession

session = ZiggySession()
session.add_table(load_dataset("boxoffice"))

# --- Query 1: what makes a blockbuster? ---------------------------------
print(">>> session.run('gross > 250000000')\n")
session.run("gross > 250000000")
print(session.view_list())
print()
print(session.view_detail(1))
print()

# --- The user cares about spread, not means: reweight -------------------
print(">>> session.set_weights(mean_shift=0.2, spread_shift=2.0)\n")
session.set_weights(mean_shift=0.2, spread_shift=2.0)
session.run("gross > 250000000")
print(session.view_list())
print()

# --- Back to defaults; look at flops instead ------------------------------
session.set_weights(mean_shift=1.0, spread_shift=1.0)
print(">>> flops: expensive movies that under-performed\n")
session.run("budget > 100000000 AND gross < budget")
for line in session.explanations():
    print(f"* {line}")
print()

# --- The tuning aid --------------------------------------------------------
print(">>> session.dendrogram()  (support for setting MIN_tight)\n")
print(session.dendrogram())
