"""Hypothesis generation on the 519-column Countries & Innovation panel.

Section 4.2: "We will show that Ziggy can highlight complex phenomena,
in effect generating hypotheses for future exploration."  At 519 columns
no one can eyeball a result set; Ziggy's views *are* the reading aid.

Also demonstrates the two search strategies (complete-linkage clustering
vs clique search) and a higher dimension cap.

Run:  python examples/innovation_hypotheses.py   (takes ~30s: 6823 x 519)
"""

import time

from repro import Ziggy, ZiggyConfig, load_dataset

table = load_dataset("innovation")
print(f"dataset: {table.n_rows} rows x {table.n_columns} columns\n")

# --- Hypothesis pass 1: very innovative region-years ----------------------
config = ZiggyConfig(max_views=6, max_view_dim=3, min_tightness=0.4)
ziggy = Ziggy(table, config=config)

t0 = time.perf_counter()
result = ziggy.characterize("patents_00 > 1.5 AND rnd_spending_00 > 1.0")
elapsed = time.perf_counter() - t0
print(f"characterized in {elapsed:.1f}s "
      f"({result.n_columns_considered} columns considered)\n")
print("Hypotheses (each view = 'these indicators move together and are")
print("unusual for innovative regions — investigate'):\n")
for i, view in enumerate(result.views, start=1):
    print(f"{i}. {view.explanation}")

# --- Same question, clique strategy ------------------------------------------
print("\n--- clique-based search (the paper's alternative partitioner) ---")
clique_cfg = config.with_overrides(search_strategy="clique")
t0 = time.perf_counter()
result2 = ziggy.characterize("patents_00 > 1.5 AND rnd_spending_00 > 1.0",
                             config=clique_cfg)
print(f"({time.perf_counter() - t0:.1f}s — reuses the shared statistics cache)")
for i, view in enumerate(result2.views, start=1):
    print(f"{i}. {', '.join(view.columns)}  score={view.score:.2f}")

# --- Low-income innovators: a sharper hypothesis --------------------------------
print("\n--- refining: innovative regions with low income class ---")
result3 = ziggy.characterize(
    "patents_00 > 1.0 AND income_class IN ('low', 'middle')")
for i, view in enumerate(result3.views[:4], start=1):
    print(f"{i}. {view.explanation}")
