"""Tour of the columnar engine substrate (the MonetDB stand-in).

Ziggy's bottom layer: typed columns, the SQL-subset query language,
selection masks, CSV round-tripping.  Useful when embedding the engine
under your own exploration front-end.

Run:  python examples/engine_tour.py
"""

import io

import numpy as np

from repro.engine import Database, Table, read_csv, write_csv

# --- Build a table three different ways ------------------------------------
t1 = Table.from_dict({
    "city": ["Utrecht", "Amsterdam", "Rotterdam", "Eindhoven", "Groningen"],
    "population": [361924, 921402, 656050, 246417, 234649],
    "density": [3543, 5276, 3144, 2806, 2871],
    "coastal": [False, True, True, False, False],
}, name="cities")
print(t1.preview())
print()

rows = [("a", 1.0), ("b", 2.0), ("c", None)]
t2 = Table.from_rows(["key", "value"], rows, name="kv")

csv_text = "name,score,active\nx,1.5,true\ny,2.5,false\nz,,true\n"
t3 = read_csv(io.StringIO(csv_text), name="from_csv")
print(f"inferred types: "
      f"{[f'{c.name}:{c.ctype.value}' for c in t3.columns]}")
print()

# --- The query language ------------------------------------------------------
db = Database()
db.register(t1)
result = db.query(
    "SELECT city, population FROM cities "
    "WHERE density > 3000 AND NOT coastal ORDER BY population DESC LIMIT 3")
print(result.preview())
print()

# Selections: the object Ziggy characterizes — a mask over the base table.
sel = db.select("cities", "population BETWEEN 200000 AND 700000")
print(sel.describe())
print(f"inside rows: {sel.n_inside}, fingerprint: {sel.fingerprint}")
print()

# Expressions support arithmetic, functions, LIKE, IN, IS NULL...
fancy = db.select(
    "cities",
    "log(population) > 12.5 OR city LIKE '%dam' OR city IN ('Eindhoven')")
print(fancy.describe())
print()

# Equivalent spellings share a canonical fingerprint (powers the cache):
a = db.select("cities", "population = 361924")
b = db.select("cities", "population == 361924.0")
print(f"fingerprints equal across spellings: {a.fingerprint == b.fingerprint}")
print()

# --- CSV round-trip -------------------------------------------------------------
buf = io.StringIO()
write_csv(t1, buf)
print("CSV out:")
print(buf.getvalue())

# --- NULL semantics (SQL three-valued logic) --------------------------------------
t4 = Table.from_dict({"x": np.array([1.0, np.nan, 3.0])}, name="nulls")
db.register(t4)
print("x > 2        ->", db.select("nulls", "x > 2").n_inside, "row(s)")
print("NOT (x > 2)  ->", db.select("nulls", "NOT (x > 2)").n_inside,
      "row(s)  (NULL is excluded from both)")
print("x IS NULL    ->", db.select("nulls", "x IS NULL").n_inside, "row(s)")
