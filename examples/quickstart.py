"""Quickstart: characterize a query in five lines.

Run:  python examples/quickstart.py
"""

from repro import Ziggy, load_dataset

# 1. Load a dataset (a 1994 x 128 socio-economic table; use read_csv for
#    your own data).
table = load_dataset("us_crime")

# 2. Build the engine.
ziggy = Ziggy(table)

# 3. Characterize a selection: which columns make high-crime communities
#    different from everything else?
result = ziggy.characterize("violent_crime_rate > 0.25")

# 4. Inspect.
print(result.describe())
print()
for view in result.views:
    print(f"* {view.explanation}")
