"""Extending Ziggy: a custom Zig-Component with its own phrase rule.

The paper's architecture makes the dissimilarity *composite*: users add
indicators and weight them.  This example adds a tail-weight component
(does the selection have heavier tails than the rest?) and registers a
phrase rule so explanations speak about it natively.

Run:  python examples/custom_components.py
"""

import numpy as np

from repro import Ziggy, ZiggyConfig, load_dataset
from repro.core.components import (
    ColumnSlice,
    ComponentOutcome,
    ZigComponent,
    default_registry,
)
from repro.core.explain import register_phrase_rule
from repro.stats.tests_ import mann_whitney_u_test


class TailWeightComponent(ZigComponent):
    """Difference in excess kurtosis between selection and complement.

    Positive raw value = the selection is more heavy-tailed / outlier-
    prone than the rest of the data.
    """

    name = "tail_weight"
    arity = 1
    applies_to_numeric = True
    applies_to_categorical = False

    def compute(self, data: ColumnSlice) -> ComponentOutcome | None:
        data.ensure_stats()
        a, b = data.inside_stats, data.outside_stats
        if a is None or b is None or a.n < 8 or b.n < 8:
            return None
        gap = a.kurtosis_excess - b.kurtosis_excess
        if gap != gap:
            return None
        # Significance proxy: Mann-Whitney on absolute deviations.
        test = None
        if data.inside is not None and data.outside is not None:
            dev_in = np.abs(data.inside - a.mean)
            dev_out = np.abs(data.outside - b.mean)
            test = mann_whitney_u_test(dev_in, dev_out)
        return ComponentOutcome(
            raw=gap,
            direction="higher" if gap >= 0 else "lower",
            test=test,
            detail={"kurtosis_inside": a.kurtosis_excess,
                    "kurtosis_outside": b.kurtosis_excess},
        )


def tail_phrase(score):
    if score.direction == "higher":
        return "markedly heavier tails (outlier-prone values)"
    return "lighter tails (fewer outliers)"


# 1. Register the component and its phrase rule.
registry = default_registry().copy()
registry.register(TailWeightComponent())
register_phrase_rule("tail_weight", tail_phrase, replace=True)

# 2. Activate it with a weight (custom components are opt-in).
config = ZiggyConfig(weights={"tail_weight": 1.5})

# 3. Use it.
table = load_dataset("boxoffice")
ziggy = Ziggy(table, config=config, registry=registry)
result = ziggy.characterize("critic_score > 80")

print(result.describe())
print()
for view in result.views:
    print(f"* {view.explanation}")

print("\ncomponents evaluated on the top view:")
best = result.best()
if best is not None:
    for comp in best.components:
        print(f"  {comp.component:<18} raw={comp.raw:+.3f} "
              f"normalized={comp.normalized:.3f} p={comp.p_value:.3g}")
