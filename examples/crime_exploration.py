"""The paper's running example: exploring violent crime in US cities.

Walks the exact scenario of the paper's introduction: an analyst selects
the communities with the highest crime rates and asks Ziggy why her
selection is special.  Reproduces the four characteristic views of
Figure 1 as ASCII scatter plots, then demonstrates refining the query
and re-characterizing (the trial-and-error loop the cache accelerates).

Run:  python examples/crime_exploration.py
"""

import numpy as np

from repro import Ziggy, ZiggyConfig, load_dataset
from repro.app.render import ascii_scatter
from repro.data.crime import CRIME_PHENOMENA, high_crime_predicate

table = load_dataset("us_crime")
ziggy = Ziggy(table, config=ZiggyConfig(max_views=10))

predicate = high_crime_predicate(table, quantile=0.9)
print(f"Seed query: SELECT * FROM us_crime WHERE {predicate}\n")

result = ziggy.characterize(predicate)
print(result.describe())
print()

# --- The Figure-1 panels: plot each narrated phenomenon -----------------
selection = ziggy.database.select("us_crime", predicate)
mask = selection.mask
print("The four phenomena of Figure 1, as Ziggy renders them:\n")
for name, (columns, directions) in CRIME_PHENOMENA.items():
    x = table.column(columns[0]).numeric_values()
    y = table.column(columns[1]).numeric_values()
    # Log-scale the heavy-tailed axes so the plot is readable.
    if name == "density":
        x, y = np.log10(x), np.log10(y)
        labels = (f"log10({columns[0]})", f"log10({columns[1]})")
    else:
        labels = columns
    print(f"--- {name}: expected {dict(zip(columns, directions))}")
    print(ascii_scatter(x[mask], y[mask], x[~mask], y[~mask],
                        x_label=labels[0], y_label=labels[1],
                        width=48, height=12))
    found = result.view_for(columns[0]) or result.view_for(columns[1])
    if found:
        print(f"Ziggy's take: {found.explanation}")
    print()

# --- Refine the query (the exploration loop) ------------------------------
print("Refining: restrict to large communities only...\n")
refined = f"({predicate}) AND population > 100000"
result2 = ziggy.characterize(refined)
print(result2.describe())
counters = ziggy.cache_counters()
print(f"\nstatistics cache after two queries: "
      f"{counters.hits} hits / {counters.misses} misses")
