"""Tour of the v2 service API: batches, jobs, progressive results, HTTP.

Run:  python examples/service_tour.py
"""

import threading

from repro import BatchRequest, CharacterizeRequest, ZiggyService, load_dataset
from repro.service.client import ZiggyClient
from repro.service.server import make_server

# 1. A service owns the catalog, per-client sessions, and a job pool.
service = ZiggyService(max_workers=2)
service.register_table(load_dataset("boxoffice", n_rows=500))

# 2. Synchronous characterization with pagination.
response = service.characterize(
    CharacterizeRequest(where="gross > 200000000", page_size=3))
print(f"{response.n_views} views for {response.predicate!r} "
      f"(showing page 1: {len(response.views.items)})")
for view in response.views.items:
    print(f"  {view['rank']}. {view['explanation']}")

# 3. A 10-predicate batch: one engine, shared statistics cache.
predicates = [f"gross > {g}" for g in range(100_000_000, 300_000_000,
                                            20_000_000)]
batch = service.characterize_many(BatchRequest(predicates=predicates))
print(f"\nbatch: {len(batch.results)} predicates in "
      f"{batch.total_time_ms:.0f} ms "
      f"(cache: {batch.cache_hits} hits / {batch.cache_misses} misses)")

# 4. Jobs: submit, watch progressive results, fetch the outcome.
streamed = []
job = service.submit(
    CharacterizeRequest(where="budget > 50000000", client_id="jobs"),
    on_progress=lambda stage, payload: streamed.append(stage))
final = service.wait(job.job_id, timeout=60)
print(f"\njob {final.job_id}: {final.status}, "
      f"{len(final.partial_views)} views streamed, "
      f"{final.result.n_views} survived validation")

# 5. The same service over HTTP (stdlib server + client).
server = make_server(service, port=0)
threading.Thread(target=server.serve_forever, daemon=True).start()
host, port = server.server_address[:2]
client = ZiggyClient(f"http://{host}:{port}")
print(f"\nHTTP on {client.base_url}: health={client.health()['ok']}, "
      f"tables={[t.name for t in client.tables().tables]}")
remote = client.characterize("gross > 250000000", page_size=2)
print(f"remote characterize: {remote.n_views} views")
legacy = client.legacy({"action": "query", "where": "gross > 200000000"})
print(f"legacy /v1 endpoint: ok={legacy['ok']}, "
      f"n_views={legacy['n_views']}")

server.shutdown()
server.server_close()
service.shutdown()
