"""In-process crash-restart recovery tests.

A "crash" here is simply a service that is never shut down cleanly: the
journal flushes every append to the OS, so a successor opening the same
state directory sees everything up to the last completed write —
exactly the live-server SIGKILL situation (exercised for real, over
HTTP, in ``test_crash_restart.py``) without the subprocess overhead.

Every service gets its own :class:`ZiggyRuntime`, so warm behaviour can
only come from the snapshot store, never from process-global sharing.
"""

import os
import time

import pytest

from repro.data.boxoffice import make_boxoffice
from repro.errors import JobNotFoundError
from repro.persistence import (DurableState, event_record, state_record,
                               submit_record)
from repro.persistence.recovery import COORDINATOR_RESTART_KIND
from repro.runtime import ZiggyRuntime
from repro.service import BatchRequest, CharacterizeRequest, ZiggyService

PREDICATE = "gross > 200000000"
OTHER_PREDICATE = "gross > 150000000"


@pytest.fixture
def state_dir(tmp_path) -> str:
    return str(tmp_path / "state")


@pytest.fixture(scope="module")
def table():
    return make_boxoffice(n_rows=150, seed=7)


def make_service(state_dir, table, executor="inline", **kwargs) -> ZiggyService:
    service = ZiggyService(executor=executor, state_dir=state_dir,
                           snapshot_interval=0, runtime=ZiggyRuntime(),
                           **kwargs)
    service.register_table(table)
    return service


def forge_in_flight_journal(state_dir, job_id="job-000007",
                            where=OTHER_PREDICATE) -> CharacterizeRequest:
    """A journal as a coordinator killed mid-job would leave it."""
    request = CharacterizeRequest(where=where, table="boxoffice")
    state = DurableState(state_dir, snapshot_interval=0)
    state.journal.append(submit_record(job_id, request.to_dict()))
    state.journal.append(state_record(job_id, "running"))
    state.journal.close()
    return request


class TestTerminalRestore:
    def test_done_job_answers_identically_after_restart(self, state_dir,
                                                        table):
        first = make_service(state_dir, table)
        snap = first.submit(CharacterizeRequest(where=PREDICATE,
                                                table="boxoffice"))
        done = first.wait(snap.job_id, timeout=120)
        assert done.status == "done"
        # No shutdown: the successor replays the crash-consistent journal.
        second = make_service(state_dir, table)
        report = second.recover()
        assert report.restored_terminal == 1
        restored = second.job_status(snap.job_id)
        assert restored.status == "done"
        assert restored.result is not None
        assert restored.result.to_dict() == done.result.to_dict()
        assert restored.timings_ms == done.timings_ms
        second.shutdown()

    def test_failed_job_keeps_original_error_code(self, state_dir, table):
        first = make_service(state_dir, table)
        snap = first.submit(CharacterizeRequest(where="gross >>> nonsense",
                                                table="boxoffice"))
        failed = first.wait(snap.job_id, timeout=120)
        assert failed.status == "failed"
        second = make_service(state_dir, table)
        second.recover()
        restored = second.job_status(snap.job_id)
        assert restored.status == "failed"
        assert restored.error is not None
        assert restored.error.code == failed.error.code
        assert restored.error.message == failed.error.message
        second.shutdown()

    def test_event_log_and_cursors_survive(self, state_dir, table):
        first = make_service(state_dir, table)
        snap = first.submit(CharacterizeRequest(where=PREDICATE,
                                                table="boxoffice"))
        first.wait(snap.job_id, timeout=120)
        before, finished = first.job_events(snap.job_id, after_seq=0,
                                            timeout=5)
        assert finished
        second = make_service(state_dir, table)
        second.recover()
        after, finished = second.job_events(snap.job_id, after_seq=0,
                                            timeout=5)
        assert finished
        assert [e.kind for e in after] == [e.kind for e in before]
        assert [e.seq for e in after] == [e.seq for e in before]
        # A client resuming mid-stream gets exactly the unseen tail.
        cursor = len(before) - 2
        tail, _ = second.job_events(snap.job_id, after_seq=cursor, timeout=5)
        assert [e.seq for e in tail] == [cursor + 1, cursor + 2]
        second.shutdown()

    def test_id_allocation_continues_past_restored_ids(self, state_dir,
                                                       table):
        first = make_service(state_dir, table)
        snap = first.submit(CharacterizeRequest(where=PREDICATE,
                                                table="boxoffice"))
        first.wait(snap.job_id, timeout=120)
        second = make_service(state_dir, table)
        second.recover()
        fresh = second.submit(CharacterizeRequest(where=PREDICATE,
                                                  table="boxoffice"))
        assert fresh.job_id != snap.job_id
        assert int(fresh.job_id.split("-")[1]) \
            > int(snap.job_id.split("-")[1])
        second.wait(fresh.job_id, timeout=120)
        second.shutdown()


class TestResumePolicy:
    def test_in_flight_job_resumes_and_matches_uninterrupted_run(
            self, state_dir, table):
        request = forge_in_flight_journal(state_dir)
        service = make_service(state_dir, table, executor="thread")
        report = service.recover(policy="resume")
        assert report.resumed == 1
        resumed = service.wait("job-000007", timeout=120)
        assert resumed.status == "done"
        # The resumed result equals a never-interrupted run of the same
        # request (deterministic pipeline, fresh in-memory service).
        control = ZiggyService(executor="inline", runtime=ZiggyRuntime())
        control.register_table(table)
        expected = control.characterize(request)
        assert resumed.result.views.items == expected.views.items
        assert resumed.result.n_views == expected.n_views
        control.shutdown()
        service.shutdown()

    def test_resume_stamps_coordinator_restart_and_stays_monotonic(
            self, state_dir, table):
        forge_in_flight_journal(state_dir)
        service = make_service(state_dir, table, executor="thread")
        service.recover(policy="resume")
        service.wait("job-000007", timeout=120)
        events, finished = service.job_events("job-000007", after_seq=0,
                                              timeout=5)
        assert finished
        kinds = [e.kind for e in events]
        assert COORDINATOR_RESTART_KIND in kinds
        assert kinds.index(COORDINATOR_RESTART_KIND) \
            < kinds.index("prepared")
        assert [e.seq for e in events] == list(range(1, len(events) + 1))
        service.shutdown()

    def test_non_repro_resume_fault_degrades_to_interrupted(
            self, state_dir, table, monkeypatch):
        """A wedged backend raising something other than ReproError must
        not fail the boot — recovery never makes a healthy server
        unstartable."""
        forge_in_flight_journal(state_dir)
        service = make_service(state_dir, table, executor="thread")

        def wedged(job_id, request):
            raise RuntimeError("backend wedged")

        monkeypatch.setattr(service, "resume_job", wedged)
        report = service.recover(policy="resume")
        assert report.resumed == 0
        assert report.interrupted == 1
        job = service.job_status("job-000007")
        assert job.status == "interrupted"
        events, _ = service.job_events("job-000007", after_seq=0, timeout=5)
        assert "recovery-error" in [e.kind for e in events]
        service.shutdown()

    def test_restored_event_gaps_never_duplicate_seqs(self, state_dir,
                                                      table):
        """A journal with a seq gap (a dropped append, a corrupt record
        skipped on replay) must restore without re-issuing a taken seq:
        new events continue after the last journaled seq, and cursors
        resolve by seq, not index."""
        request = CharacterizeRequest(where=OTHER_PREDICATE,
                                      table="boxoffice")
        state = DurableState(state_dir, snapshot_interval=0)
        state.journal.append(submit_record("job-000009", request.to_dict()))
        state.journal.append(event_record("job-000009", 1, "prepared",
                                          {"n": 1}))
        state.journal.append(event_record("job-000009", 3, "progress",
                                          {"k": 2}))
        state.journal.append(state_record("job-000009", "running"))
        state.journal.close()
        service = make_service(state_dir, table, executor="thread")
        service.recover(policy="resume")
        service.wait("job-000009", timeout=120)
        events, finished = service.job_events("job-000009", after_seq=0,
                                              timeout=5)
        assert finished
        seqs = [e.seq for e in events]
        assert seqs == sorted(seqs)
        assert len(seqs) == len(set(seqs))
        # The restart marker landed after the gap, not inside it.
        assert seqs[2] > 3
        # A cursor across the gap yields exactly the strictly-later tail.
        tail, _ = service.job_events("job-000009", after_seq=3, timeout=5)
        assert [e.seq for e in tail] == [s for s in seqs if s > 3]
        service.shutdown()

    def test_unresumable_request_degrades_to_interrupted(self, state_dir,
                                                         table):
        forge_in_flight_journal(state_dir, where="gross > 1",
                                job_id="job-000003")
        # Sabotage the payload: a submit record whose request cannot be
        # parsed (missing 'where') must not fail the boot.
        state = DurableState(state_dir, snapshot_interval=0)
        state.journal.append(submit_record("job-000004", {"table": "x"}))
        state.journal.close()
        service = make_service(state_dir, table, executor="thread")
        report = service.recover(policy="resume")
        assert report.resumed == 1
        assert report.interrupted == 1
        assert service.job_status("job-000004").status == "interrupted"
        service.wait("job-000003", timeout=120)
        service.shutdown()


class TestFailAndDiscardPolicies:
    def test_fail_policy_marks_interrupted_terminally(self, state_dir,
                                                      table):
        forge_in_flight_journal(state_dir)
        service = make_service(state_dir, table)
        report = service.recover(policy="fail")
        assert report.interrupted == 1
        job = service.job_status("job-000007")
        assert job.status == "interrupted"
        assert job.finished
        assert job.error.code == "interrupted"
        service.shutdown()
        # Interrupted is terminal *across* restarts too.
        successor = make_service(state_dir, table)
        successor_report = successor.recover(policy="resume")
        assert successor_report.resumed == 0
        assert successor.job_status("job-000007").status == "interrupted"
        successor.shutdown()

    def test_discard_policy_forgets_durably(self, state_dir, table):
        forge_in_flight_journal(state_dir)
        service = make_service(state_dir, table)
        report = service.recover(policy="discard")
        assert report.discarded == 1
        with pytest.raises(JobNotFoundError):
            service.job_status("job-000007")
        service.shutdown()
        successor = make_service(state_dir, table)
        assert successor.recover(policy="resume").jobs_seen == 0
        successor.shutdown()


class TestSnapshotsAndJournalHygiene:
    def test_snapshot_warmed_restart_answers_with_zero_misses(
            self, state_dir, table):
        first = make_service(state_dir, table)
        cold = first.characterize_many(BatchRequest(
            predicates=(PREDICATE,), table="boxoffice"))
        assert cold.cache_misses > 0
        first.shutdown()  # clean drain writes the snapshot blobs
        second = make_service(state_dir, table)
        second.recover()
        warm = second.characterize_many(BatchRequest(
            predicates=(PREDICATE,), table="boxoffice"))
        # The acceptance bar: a known table's first characterization
        # after a snapshot-warmed boot re-prepares nothing.
        assert warm.cache_misses == 0
        assert warm.cache_hits > 0
        assert second.state.snapshots.counters.loaded == 1
        second.shutdown()

    def test_background_cadence_writes_snapshots_while_serving(
            self, state_dir, table):
        service = ZiggyService(executor="inline", state_dir=state_dir,
                               snapshot_interval=0.1,
                               runtime=ZiggyRuntime())
        service.register_table(table)
        service.characterize_many(BatchRequest(predicates=(PREDICATE,),
                                               table="boxoffice"))
        deadline = time.monotonic() + 30
        while not service.state.snapshots.fingerprints():
            assert time.monotonic() < deadline, \
                "snapshot daemon wrote nothing within 30s"
            time.sleep(0.05)
        assert table.fingerprint() in service.state.snapshots.fingerprints()
        # A second pass with no new statistics writes nothing new.
        saved_before = service.state.snapshots.counters.saved
        assert service.state.snapshot_pass() == 0
        assert service.state.snapshots.counters.saved == saved_before
        service.shutdown()

    def test_clean_shutdown_compacts_journal_to_live_jobs(self, state_dir,
                                                          table):
        service = make_service(state_dir, table)
        snaps = [service.submit(CharacterizeRequest(where=PREDICATE,
                                                    table="boxoffice"))
                 for _ in range(2)]
        for snap in snaps:
            service.wait(snap.job_id, timeout=120)
        service.shutdown()
        assert service.state.journal.counters.compactions >= 1
        successor = make_service(state_dir, table)
        report = successor.recover()
        assert report.jobs_seen == 2
        assert report.restored_terminal == 2
        assert report.replay["corrupt"] == 0
        successor.shutdown()

    def test_mid_run_compaction_loses_nothing(self, state_dir, table):
        service = make_service(state_dir, table)
        first = service.submit(CharacterizeRequest(where=PREDICATE,
                                                   table="boxoffice"))
        service.wait(first.job_id, timeout=120)
        assert service.jobs.compact_journal() > 0
        second = service.submit(CharacterizeRequest(
            where=OTHER_PREDICATE, table="boxoffice"))
        service.wait(second.job_id, timeout=120)
        # Crash-style restart: both the pre- and post-compaction jobs
        # replay, results intact.
        successor = make_service(state_dir, table)
        report = successor.recover()
        assert report.restored_terminal == 2
        for job_id in (first.job_id, second.job_id):
            assert successor.job_status(job_id).status == "done"
            assert successor.job_status(job_id).result is not None
        successor.shutdown()

    def test_retention_prunes_survive_restart(self, state_dir, table):
        service = ZiggyService(executor="inline", state_dir=state_dir,
                               snapshot_interval=0, runtime=ZiggyRuntime())
        service.register_table(table)
        service.jobs.max_finished = 2
        # The inline backend completes each job before submit returns,
        # so retention prunes the oldest as later submissions arrive.
        for _ in range(4):
            service.submit(CharacterizeRequest(where=PREDICATE,
                                               table="boxoffice"))
        service.jobs.prune()
        live = set(service.jobs.job_ids())
        assert len(live) == 2
        successor = make_service(state_dir, table)
        report = successor.recover()
        assert set(successor.jobs.job_ids()) == live
        assert report.jobs_seen == 2
        successor.shutdown()

    def test_worker_sigkill_respawn_events_are_journaled(self, tmp_path):
        """Self-healing × durability: a worker SIGKILLed mid-job heals
        via respawn (PR 4), and the ``worker-restart`` seam it stamps on
        the event log survives a coordinator restart (this PR)."""
        from helpers.faults import kill_worker
        from repro.data.crime import make_crime
        from repro.runtime.executors import ProcessShardExecutor

        state_dir = str(tmp_path / "state")
        crime = make_crime(n_rows=600, seed=11)
        executor = ProcessShardExecutor(workers=1, max_restarts=2,
                                        max_retries=1)
        service = ZiggyService(executor=executor, state_dir=state_dir,
                               snapshot_interval=0, runtime=ZiggyRuntime())
        try:
            service.register_table(crime)
            snap = service.submit(CharacterizeRequest(
                where="violent_crime_rate > 0.2", table="us_crime",
                options={"dependency_method": "nmi"}))
            deadline = time.monotonic() + 120
            while service.job_status(snap.job_id).status != "running":
                assert time.monotonic() < deadline
                time.sleep(0.05)
            kill_worker(executor, 0)
            done = service.wait(snap.job_id, timeout=300)
            assert done.status == "done"
            events, _ = service.job_events(snap.job_id, after_seq=0,
                                           timeout=5)
            assert "worker-restart" in [e.kind for e in events]
        finally:
            service.shutdown(wait=False)
        successor = make_service(state_dir, crime, executor="thread")
        report = successor.recover()
        assert report.restored_terminal == 1
        restored, _ = successor.job_events(snap.job_id, after_seq=0,
                                           timeout=5)
        assert [e.kind for e in restored] == [e.kind for e in events]
        assert "worker-restart" in [e.kind for e in restored]
        successor.shutdown()

    def test_compaction_waits_for_recovery(self, state_dir, table):
        """The snapshot daemon firing between boot and recovery must not
        compact a pre-existing journal: the live job table is still
        empty, so compaction would silently delete every journaled job
        before recovery could replay them."""
        forge_in_flight_journal(state_dir)
        state = DurableState(state_dir, snapshot_interval=0,
                             compact_bytes=1)  # any journal "outgrows" this
        service = ZiggyService(executor="thread", persistence=state,
                               runtime=ZiggyRuntime())
        service.register_table(table)
        assert not state.compaction_safe()
        assert not state.maybe_compact()
        assert state.journal.counters.compactions == 0
        report = service.recover(policy="resume")
        assert report.resumed == 1
        assert state.compaction_safe()
        assert state.maybe_compact()
        service.wait("job-000007", timeout=120)
        service.shutdown()

    def test_unrecovered_shutdown_preserves_journal(self, state_dir, table):
        """A service that opens a pre-existing journal but never recovers
        must not compact it away on drain — the next boot still gets to
        replay the history."""
        forge_in_flight_journal(state_dir)
        service = make_service(state_dir, table)
        service.shutdown()
        assert service.state.journal.counters.compactions == 0
        successor = make_service(state_dir, table)
        report = successor.recover(policy="fail")
        assert report.jobs_seen == 1
        assert successor.job_status("job-000007").status == "interrupted"
        successor.shutdown()

    def test_fresh_state_dir_is_owner_only(self, state_dir):
        import stat
        state = DurableState(state_dir, snapshot_interval=0)
        assert stat.S_IMODE(os.stat(state.state_dir).st_mode) == 0o700
        state.close()

    def test_recover_without_state_dir_is_a_noop(self, table):
        service = ZiggyService(executor="inline", runtime=ZiggyRuntime())
        service.register_table(table)
        assert service.recover() is None
        assert service.state is None
        service.shutdown()
