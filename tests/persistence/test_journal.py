"""Tests for the append-only job journal: framing, corruption handling,
rotation, compaction, and record folding."""

import json
import os
import struct

import pytest

from repro.errors import PersistenceError
from repro.persistence.journal import (
    MAGIC,
    JobJournal,
    event_record,
    fold_records,
    prune_record,
    state_record,
    submit_record,
)


def make_journal(tmp_path, **kwargs) -> JobJournal:
    return JobJournal(str(tmp_path / "journal"), **kwargs)


def segment_paths(journal: JobJournal) -> list:
    return sorted(os.path.join(journal.root, name)
                  for name in os.listdir(journal.root)
                  if name.endswith(".log"))


class TestFraming:
    def test_round_trip(self, tmp_path):
        journal = make_journal(tmp_path)
        journal.append(submit_record("job-000001", {"where": "x > 1"}))
        journal.append(event_record("job-000001", 1, "prepared", {"n": 3}))
        journal.append(state_record("job-000001", "done",
                                    result={"ok": True},
                                    timings={"run": 4.5}))
        records, stats = journal.replay()
        journal.close()
        assert [r["t"] for r in records] == ["submit", "event", "state"]
        assert records[0]["payload"] == {"where": "x > 1"}
        assert records[2]["result"] == {"ok": True}
        assert stats.corrupt == 0
        assert stats.records == 3

    def test_unicode_payloads_survive(self, tmp_path):
        journal = make_journal(tmp_path)
        journal.append(submit_record("job-000001", {"where": "naïve ≠ 1"}))
        records, _ = journal.replay()
        journal.close()
        assert records[0]["payload"]["where"] == "naïve ≠ 1"

    def test_bad_fsync_policy_rejected(self, tmp_path):
        with pytest.raises(PersistenceError, match="fsync"):
            make_journal(tmp_path, fsync="sometimes")

    def test_append_after_close_is_noop(self, tmp_path):
        journal = make_journal(tmp_path)
        journal.close()
        journal.append(submit_record("job-000001", {}))  # must not raise
        journal.flush(sync=True)


class TestCorruption:
    def test_torn_tail_is_skipped_not_fatal(self, tmp_path):
        journal = make_journal(tmp_path)
        journal.append(submit_record("job-000001", {"where": "x > 1"}))
        journal.append(state_record("job-000001", "running"))
        journal.close()
        path = segment_paths(journal)[0]
        # Simulate a crash mid-write: append half a record.
        with open(path, "ab") as fh:
            payload = json.dumps({"t": "state"}).encode()
            fh.write(struct.pack(">II", len(payload), 0) + payload[:3])
        reopened = JobJournal(journal.root)
        records, stats = reopened.replay()
        reopened.close()
        assert [r["t"] for r in records] == ["submit", "state"]
        assert stats.corrupt == 1

    def test_crc_mismatch_stops_the_segment(self, tmp_path):
        journal = make_journal(tmp_path)
        journal.append(submit_record("job-000001", {"where": "x > 1"}))
        journal.append(state_record("job-000001", "done"))
        journal.close()
        path = segment_paths(journal)[0]
        # Flip one byte inside the *first* record's payload.
        with open(path, "r+b") as fh:
            fh.seek(len(MAGIC) + struct.calcsize(">II") + 4)
            byte = fh.read(1)
            fh.seek(-1, os.SEEK_CUR)
            fh.write(bytes([byte[0] ^ 0xFF]))
        records, stats = JobJournal(journal.root).replay()
        # Everything from the corrupt record on is dropped.
        assert records == []
        assert stats.corrupt == 1

    def test_foreign_file_header_rejected(self, tmp_path):
        journal = make_journal(tmp_path)
        journal.close()
        with open(os.path.join(journal.root, "journal-00000099.log"),
                  "wb") as fh:
            fh.write(b"definitely not a journal")
        records, stats = JobJournal(journal.root).replay()
        assert records == []
        assert stats.corrupt == 1

    def test_later_segments_still_replay_after_corrupt_one(self, tmp_path):
        journal = make_journal(tmp_path)
        journal.append(submit_record("job-000001", {}))
        journal.close()
        # Corrupt segment 1 entirely, then write a healthy segment 2
        # through a fresh journal (new process -> new segment).
        with open(segment_paths(journal)[0], "r+b") as fh:
            fh.write(b"garbage!!")
        second = JobJournal(journal.root)
        second.append(submit_record("job-000002", {}))
        records, stats = second.replay()
        second.close()
        assert [r["job"] for r in records] == ["job-000002"]
        assert stats.corrupt == 1


class TestRotationAndCompaction:
    def test_segments_rotate_at_threshold(self, tmp_path):
        journal = make_journal(tmp_path, max_segment_bytes=4096)
        big = {"blob": "x" * 512}
        for i in range(40):
            journal.append(event_record("job-000001", i + 1, "view", big))
        assert journal.counters.rotations > 0
        records, stats = journal.replay()
        journal.close()
        assert len(records) == 40
        assert stats.segments == journal.counters.rotations + 1

    def test_fresh_journal_never_appends_to_predecessor_segment(
            self, tmp_path):
        first = make_journal(tmp_path)
        first.append(submit_record("job-000001", {}))
        first.close()
        second = JobJournal(first.root)
        second.append(submit_record("job-000002", {}))
        second.close()
        assert len(segment_paths(second)) == 2

    def test_compaction_rewrites_and_deletes_history(self, tmp_path):
        journal = make_journal(tmp_path, max_segment_bytes=4096)
        for i in range(1, 31):
            job = f"job-{i:06d}"
            journal.append(submit_record(job, {"where": f"x > {i}"}))
            journal.append(state_record(job, "done", timings={}))
        before = journal.total_bytes()
        # Keep only two jobs, as a compaction from the live table would.
        live = [submit_record("job-000029", {"where": "x > 29"}),
                state_record("job-000029", "done", timings={}),
                submit_record("job-000030", {"where": "x > 30"})]
        written = journal.compact(live)
        assert written == 3
        assert journal.total_bytes() < before
        records, stats = journal.replay()
        assert stats.corrupt == 0
        folded = fold_records(records)
        assert set(folded) == {"job-000029", "job-000030"}
        assert folded["job-000029"].finished
        assert not folded["job-000030"].finished
        # Appends continue normally after a compaction.
        journal.append(state_record("job-000030", "done", timings={}))
        records, _ = journal.replay()
        journal.close()
        assert fold_records(records)["job-000030"].finished


class TestStartupHygiene:
    def test_stale_compaction_tmp_files_are_swept(self, tmp_path):
        journal = make_journal(tmp_path)
        journal.append(submit_record("job-000001", {}))
        journal.close()
        # A predecessor that died between its compaction temp write and
        # the os.replace leaves this behind; nothing will ever rename it.
        stale = os.path.join(journal.root, "journal-00000042.log.tmp")
        with open(stale, "wb") as fh:
            fh.write(MAGIC)
        successor = make_journal(tmp_path)
        assert not os.path.exists(stale)
        records, stats = successor.replay()
        assert len(records) == 1
        assert stats.corrupt == 0
        successor.close()

    def test_preexisting_segments_counted(self, tmp_path):
        first = make_journal(tmp_path)
        assert first.preexisting_segments == 0
        first.append(submit_record("job-000001", {}))
        first.close()
        second = make_journal(tmp_path)
        assert second.preexisting_segments == 1
        second.close()


class TestFolding:
    def test_later_state_wins_and_prune_deletes(self):
        records = [
            submit_record("job-000001", {"where": "a"}),
            submit_record("job-000002", {"where": "b"}),
            state_record("job-000001", "running"),
            event_record("job-000001", 1, "prepared", {"n": 2}),
            state_record("job-000001", "done", result={"r": 1},
                         timings={"run": 2.0}),
            prune_record(["job-000002"]),
        ]
        folded = fold_records(records)
        assert set(folded) == {"job-000001"}
        job = folded["job-000001"]
        assert job.status == "done"
        assert job.result == {"r": 1}
        assert job.events == [(1, "prepared", {"n": 2})]
        assert job.number == 1

    def test_event_before_submit_is_tolerated(self):
        folded = fold_records([
            event_record("job-000005", 2, "view", {"rank": 2}),
            event_record("job-000005", 1, "view", {"rank": 1}),
        ])
        job = folded["job-000005"]
        assert job.status == "pending"
        # Events come back sorted by sequence regardless of record order.
        assert [seq for seq, _, _ in job.events] == [1, 2]

    def test_duplicate_event_seqs_fold_to_one(self):
        """A compaction can legitimately rewrite an event that an
        in-flight append then re-records; the fold must dedupe by
        sequence number (later wins) so restored logs stay contiguous."""
        folded = fold_records([
            submit_record("job-000001", {}),
            event_record("job-000001", 1, "prepared", {"n": 2}),
            event_record("job-000001", 2, "view", {"rank": 1}),
            event_record("job-000001", 2, "view", {"rank": 1, "dup": True}),
        ])
        job = folded["job-000001"]
        assert [seq for seq, _, _ in job.events] == [1, 2]
        assert job.events[1][2] == {"rank": 1, "dup": True}

    def test_unknown_record_types_are_ignored(self):
        folded = fold_records([{"t": "future-extension", "x": 1},
                               submit_record("job-000001", {})])
        assert set(folded) == {"job-000001"}
