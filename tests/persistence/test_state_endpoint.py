"""HTTP-surface tests for durable state: ``/v2/state`` and the enriched
``/healthz`` (uptime, per-shard restarts, journal/snapshot stats)."""

import threading

import pytest

from repro.data.boxoffice import make_boxoffice
from repro.gateway import make_frontend
from repro.runtime import ZiggyRuntime
from repro.service.client import ZiggyClient
from repro.service.service import ZiggyService


@pytest.fixture(scope="module")
def table():
    return make_boxoffice(n_rows=120, seed=5)


@pytest.fixture(params=("threaded", "async"))
def live_server(request, tmp_path, table):
    """A served durable service; yields (client, service, server).

    Parametrized over both front-ends: the durable-state surface must
    not depend on the transport.
    """
    service = ZiggyService(executor="inline",
                           state_dir=str(tmp_path / "state"),
                           snapshot_interval=0, runtime=ZiggyRuntime())
    service.register_table(table)
    service.recover()
    server = make_frontend(service, frontend=request.param)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    try:
        yield ZiggyClient(f"http://{host}:{port}"), service, server
    finally:
        server.close(wait=False)
        thread.join(timeout=10)


class TestHealthz:
    def test_reports_uptime_restarts_and_persistence(self, live_server):
        client, service, _ = live_server
        health = client.health()
        assert health["ok"]
        assert health["uptime_seconds"] >= 0.0
        assert health["restarts"] == {}  # local backend: no shards died
        persistence = health["persistence"]
        assert persistence["enabled"]
        assert persistence["state_dir"] == service.state.state_dir
        assert persistence["journal"]["segments"] >= 1
        assert "snapshots" in persistence

    def test_in_memory_service_reports_disabled(self, table):
        service = ZiggyService(executor="inline", runtime=ZiggyRuntime())
        service.register_table(table)
        server = make_frontend(service)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        try:
            health = ZiggyClient(f"http://{host}:{port}").health()
            assert health["persistence"] == {"enabled": False}
        finally:
            server.close(wait=False)
            thread.join(timeout=10)


class TestStateEndpoint:
    def test_state_report_round_trips(self, live_server):
        client, service, _ = live_server
        job = client.submit("gross > 200000000", table="boxoffice")
        client.wait(job.job_id, timeout=120)
        report = client.state()
        assert report.enabled
        assert report.state_dir == service.state.state_dir
        assert report.journal["appends"] > 0
        assert report.journal["fsync_policy"] == "rotate"
        assert report.jobs["live"] >= 1
        assert report.jobs["by_status"].get("done", 0) >= 1
        assert report.jobs["journal_errors"] == 0
        assert "registry" in report.runtime

    def test_recovery_section_appears_after_a_restart(self, tmp_path,
                                                      table, live_server):
        client, service, server = live_server
        job = client.submit("gross > 200000000", table="boxoffice")
        client.wait(job.job_id, timeout=120)
        server.close()  # clean drain: snapshots + compaction
        successor = ZiggyService(executor="inline",
                                 state_dir=str(tmp_path / "state"),
                                 snapshot_interval=0,
                                 runtime=ZiggyRuntime())
        successor.register_table(table)
        successor.recover()
        successor_server = make_frontend(successor)
        thread = threading.Thread(target=successor_server.serve_forever,
                                  daemon=True)
        thread.start()
        host, port = successor_server.server_address[:2]
        try:
            report = ZiggyClient(f"http://{host}:{port}").state()
            assert report.recovery is not None
            assert report.recovery["policy"] == "resume"
            assert report.recovery["restored_terminal"] == 1
            assert report.snapshots["loaded"] >= 1
        finally:
            successor_server.close(wait=False)
            thread.join(timeout=10)
