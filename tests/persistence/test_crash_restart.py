"""Live-server crash-restart recovery: SIGKILL mid-job, resume, verify.

The real thing, end to end: a ``repro serve`` subprocess with a state
directory is SIGKILLed while a characterization job is running, a
successor process starts on the same directory with ``--recover
resume``, and the test asserts the acceptance bar of the durable-state
subsystem:

* the killed job completes under its **original id** with results
  identical to an uninterrupted run;
* its event stream carries the ``coordinator-restart`` seam and stays
  monotonically numbered across the restart;
* the successor's warm state answers a repeat batch with **zero** cache
  misses, and ``/v2/state`` / ``/healthz`` report the recovery.

The crime table at 10k rows with the NMI dependency estimator keeps a
cold characterization running for seconds (the exact dependency matrix
is 128² column pairs over every row; only per-query statistics ride the
sketch tier), so the kill lands mid-job deterministically.
"""

import os
import re
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.service.client import ZiggyClient

SLOW_PREDICATE = "violent_crime_rate > 0.2"

#: The NMI dependency estimator turns this characterization into
#: seconds of work (128² column pairs binned over 10k rows), so the
#: SIGKILL lands mid-job deterministically; the option travels in the
#: journaled request, so the resumed run and the control run match.
SLOW_OPTIONS = {"dependency_method": "nmi"}

REPO_ROOT = Path(__file__).resolve().parents[2]


class ServeProcess:
    """A ``repro serve`` subprocess with line-buffered stdout capture."""

    def __init__(self, *extra_args: str):
        env = dict(os.environ)
        env["PYTHONPATH"] = (str(REPO_ROOT / "src")
                             + os.pathsep + env.get("PYTHONPATH", ""))
        env["PYTHONUNBUFFERED"] = "1"
        self.proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve",
             "--dataset", "us_crime", "--seed-rows", "10000",
             "--port", "0", "--quiet", *extra_args],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, env=env,
            text=True)
        self.lines: list[str] = []
        self._cond = threading.Condition()
        self._reader = threading.Thread(target=self._read, daemon=True)
        self._reader.start()

    def _read(self):
        assert self.proc.stdout is not None
        for line in self.proc.stdout:
            with self._cond:
                self.lines.append(line.rstrip("\n"))
                self._cond.notify_all()

    def wait_for_line(self, pattern: str, timeout: float = 120.0) -> str:
        """The first stdout line matching ``pattern`` (regex search)."""
        deadline = time.monotonic() + timeout
        seen = 0
        with self._cond:
            while True:
                for line in self.lines[seen:]:
                    if re.search(pattern, line):
                        return line
                seen = len(self.lines)
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise AssertionError(
                        f"no line matching {pattern!r} within {timeout}s; "
                        f"got: {self.lines!r}")
                self._cond.wait(min(remaining, 0.5))

    def base_url(self, timeout: float = 120.0) -> str:
        line = self.wait_for_line(r"serving .* on http://", timeout)
        match = re.search(r"on (http://[0-9.]+:\d+)", line)
        assert match, line
        return match.group(1)

    def sigkill(self):
        self.proc.send_signal(signal.SIGKILL)
        self.proc.wait(timeout=30)

    def stop(self):
        if self.proc.poll() is None:
            self.proc.terminate()
            try:
                self.proc.wait(timeout=15)
            except subprocess.TimeoutExpired:
                self.proc.kill()
                self.proc.wait(timeout=15)


@pytest.fixture(params=("threaded", "async"))
def frontend(request) -> str:
    """Both front-ends must survive SIGKILL and recover identically."""
    return request.param


def test_sigkill_mid_job_then_resume_matches_uninterrupted_run(tmp_path,
                                                               frontend):
    state_dir = str(tmp_path / "state")

    first = ServeProcess("--state-dir", state_dir, "--frontend", frontend)
    job_id = None
    try:
        client = ZiggyClient(first.base_url(), timeout=30)
        job_id = client.submit(SLOW_PREDICATE,
                               options=SLOW_OPTIONS).job_id

        # Wait until the job demonstrably started, give it a beat of
        # real work (the NMI matrix is seconds of it), then kill while
        # it is still running.
        deadline = time.monotonic() + 120
        while client.job(job_id).status != "running":
            assert time.monotonic() < deadline, "job never started"
            time.sleep(0.05)
        time.sleep(0.8)
        status = client.job(job_id).status
        assert status == "running", \
            f"job finished before the kill could land ({status})"
        first.sigkill()
    except BaseException:
        first.stop()
        raise

    second = ServeProcess("--state-dir", state_dir, "--recover", "resume",
                          "--frontend", frontend)
    try:
        recovery_line = second.wait_for_line(r"recovery \(resume\)")
        assert "1 resumed" in recovery_line, recovery_line
        client = ZiggyClient(second.base_url(), timeout=30)

        # The killed job completes under its original id...
        resumed = client.wait(job_id, timeout=300, poll=0.25)
        assert resumed.status == "done"
        assert resumed.result is not None

        # ...with results identical to an uninterrupted run of the same
        # request (deterministic pipeline, same table, same config).
        control = client.characterize(SLOW_PREDICATE, options=SLOW_OPTIONS)
        assert resumed.result.n_views == control.n_views
        assert resumed.result.views.items == control.views.items

        # The event stream shows the seam and replays monotonically.
        kinds, seqs = [], []
        for event in client.stream_events(job_id, timeout=60):
            kinds.append(event.kind)
            seqs.append(event.seq)
        assert "coordinator-restart" in kinds
        assert kinds[-1] == "done"
        body = seqs[:-1]  # the synthetic done marker reuses last+1
        assert body == sorted(body)

        # Warm state: a repeat batch re-prepares nothing.
        batch = client.characterize_many([SLOW_PREDICATE],
                                         options=SLOW_OPTIONS)
        assert batch.cache_misses == 0
        assert batch.cache_hits > 0

        # And the observability surfaces agree.
        report = client.state()
        assert report.enabled
        assert report.recovery["resumed"] == 1
        assert report.jobs["by_status"].get("done", 0) >= 1
        health = client.health()
        assert health["persistence"]["enabled"]
        assert health["persistence"]["journal"]["appends"] > 0
    finally:
        second.stop()


def test_sigkill_with_recover_fail_marks_job_interrupted(tmp_path,
                                                        frontend):
    state_dir = str(tmp_path / "state")
    first = ServeProcess("--state-dir", state_dir, "--frontend", frontend)
    try:
        client = ZiggyClient(first.base_url(), timeout=30)
        job_id = client.submit(SLOW_PREDICATE,
                               options=SLOW_OPTIONS).job_id
        deadline = time.monotonic() + 120
        while client.job(job_id).status != "running":
            assert time.monotonic() < deadline
            time.sleep(0.05)
        time.sleep(0.5)
        first.sigkill()
    except BaseException:
        first.stop()
        raise

    second = ServeProcess("--state-dir", state_dir, "--recover", "fail",
                          "--frontend", frontend)
    try:
        second.wait_for_line(r"1 interrupted")
        client = ZiggyClient(second.base_url(), timeout=30)
        job = client.job(job_id)
        assert job.status == "interrupted"
        assert job.finished
        assert job.error is not None
        assert job.error.code == "interrupted"
    finally:
        second.stop()
