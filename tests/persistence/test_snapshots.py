"""Tests for the warm-cache snapshot store: atomic blobs, fingerprint
verification, corruption tolerance, change detection."""

import os

from repro.core.stats_cache import StatsCache
from repro.persistence.snapshots import SnapshotStore


def warmed_cache(table) -> StatsCache:
    cache = StatsCache()
    for column in table.numeric_column_names()[:3]:
        cache.global_column_stats(table, column)
    return cache


def make_store(tmp_path) -> SnapshotStore:
    return SnapshotStore(str(tmp_path / "snapshots"))


class TestSaveLoad:
    def test_round_trip_restores_entries(self, tmp_path, boxoffice_small):
        store = make_store(tmp_path)
        cache = warmed_cache(boxoffice_small)
        fingerprint = boxoffice_small.fingerprint()
        assert store.save(fingerprint, cache, table_name="boxoffice")
        loaded = store.load(fingerprint)
        assert loaded is not None
        assert loaded.size == cache.size
        # Restored entries serve without recomputation: all hits.
        column = boxoffice_small.numeric_column_names()[0]
        loaded.global_column_stats(boxoffice_small, column)
        assert loaded.counters.misses == 0
        assert loaded.counters.hits == 1

    def test_empty_cache_is_not_saved(self, tmp_path, boxoffice_small):
        store = make_store(tmp_path)
        assert not store.save(boxoffice_small.fingerprint(), StatsCache())
        assert store.fingerprints() == ()

    def test_unchanged_cache_is_skipped(self, tmp_path, boxoffice_small):
        store = make_store(tmp_path)
        cache = warmed_cache(boxoffice_small)
        fingerprint = boxoffice_small.fingerprint()
        assert store.save(fingerprint, cache)
        assert not store.save(fingerprint, cache)  # same entries
        assert store.counters.skipped_unchanged == 1
        # Growth re-triggers the save.
        cache.global_column_stats(boxoffice_small,
                                  boxoffice_small.numeric_column_names()[4])
        assert store.save(fingerprint, cache)

    def test_replaced_entries_at_constant_size_resave(self, tmp_path,
                                                      boxoffice_small):
        store = make_store(tmp_path)
        cache = warmed_cache(boxoffice_small)
        fingerprint = boxoffice_small.fingerprint()
        assert store.save(fingerprint, cache)
        # Drop every entry and warm different columns: the count lands
        # back where it was, but the content is new — a size-based
        # detector would skip this save and warm restores would serve
        # the stale statistics forever.
        cache.clear()
        for column in boxoffice_small.numeric_column_names()[3:6]:
            cache.global_column_stats(boxoffice_small, column)
        assert cache.size == 3
        assert store.save(fingerprint, cache)
        loaded = store.load(fingerprint)
        loaded.global_column_stats(boxoffice_small,
                                   boxoffice_small.numeric_column_names()[3])
        assert loaded.counters.misses == 0

    def test_load_for_table_verifies_fingerprint(self, tmp_path,
                                                 boxoffice_small,
                                                 crime_small):
        store = make_store(tmp_path)
        store.save(boxoffice_small.fingerprint(),
                   warmed_cache(boxoffice_small))
        assert store.load_for_table(boxoffice_small) is not None
        assert store.load_for_table(crime_small) is None
        assert store.counters.misses == 1


class TestTrust:
    def test_corrupt_blob_is_dropped(self, tmp_path, boxoffice_small):
        store = make_store(tmp_path)
        fingerprint = boxoffice_small.fingerprint()
        store.save(fingerprint, warmed_cache(boxoffice_small))
        path = store._path(fingerprint)
        with open(path, "r+b") as fh:
            fh.seek(-20, os.SEEK_END)
            fh.write(b"\x00" * 8)
        assert store.load(fingerprint) is None
        assert store.counters.corrupt == 1

    def test_renamed_blob_fails_embedded_fingerprint_check(
            self, tmp_path, boxoffice_small, crime_small):
        store = make_store(tmp_path)
        source = boxoffice_small.fingerprint()
        target = crime_small.fingerprint()
        store.save(source, warmed_cache(boxoffice_small))
        # An operator (or attacker) renames one table's blob onto
        # another fingerprint: the embedded fingerprint disagrees.
        os.rename(store._path(source), store._path(target))
        assert store.load(target) is None
        assert store.counters.corrupt == 1

    def test_truncated_blob_is_dropped(self, tmp_path, boxoffice_small):
        store = make_store(tmp_path)
        fingerprint = boxoffice_small.fingerprint()
        store.save(fingerprint, warmed_cache(boxoffice_small))
        path = store._path(fingerprint)
        size = os.path.getsize(path)
        with open(path, "r+b") as fh:
            fh.truncate(size // 2)
        assert store.load(fingerprint) is None


class TestStartupHygiene:
    def test_stale_tmp_files_are_swept(self, tmp_path, boxoffice_small):
        store = make_store(tmp_path)
        fingerprint = boxoffice_small.fingerprint()
        store.save(fingerprint, warmed_cache(boxoffice_small))
        # A writer that died between its temp write and the os.replace.
        stale = store._path(fingerprint) + ".tmp-99999-88888"
        with open(stale, "wb") as fh:
            fh.write(b"half a blob")
        successor = SnapshotStore(store.root)
        assert not os.path.exists(stale)
        assert successor.load(fingerprint) is not None


class TestIntrospection:
    def test_describe_and_stats(self, tmp_path, boxoffice_small):
        store = make_store(tmp_path)
        fingerprint = boxoffice_small.fingerprint()
        store.save(fingerprint, warmed_cache(boxoffice_small),
                   table_name="boxoffice")
        described = store.describe()
        assert len(described) == 1
        assert described[0]["fingerprint"] == fingerprint
        assert described[0]["table"] == "boxoffice"
        assert described[0]["entries"] == 3
        stats = store.stats()
        assert stats["count"] == 1
        assert stats["saved"] == 1
        assert stats["bytes"] > 0
