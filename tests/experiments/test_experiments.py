"""Tests for metrics, workloads, reporting and timing utilities."""

import numpy as np
import pytest

from repro.core.views import View
from repro.data.planted import PlantedView
from repro.experiments.harness import Timer, repeat_time
from repro.experiments.metrics import (
    best_jaccard_matching,
    column_recovery,
    jaccard,
    rank_of_first_hit,
    view_recovery,
)
from repro.experiments.reporting import Reporter, format_table
from repro.experiments.workloads import (
    random_predicates,
    threshold_sweep_predicates,
)


def pv(*cols, kind="mean"):
    return PlantedView(columns=tuple(sorted(cols)), kind=kind, strength=1.0)


def v(*cols):
    return View(columns=tuple(cols))


class TestJaccard:
    def test_values(self):
        assert jaccard(("a", "b"), ("a", "b")) == 1.0
        assert jaccard(("a", "b"), ("b", "c")) == pytest.approx(1 / 3)
        assert jaccard(("a",), ("b",)) == 0.0
        assert jaccard((), ()) == 1.0


class TestColumnRecovery:
    def test_perfect(self):
        score = column_recovery([v("a", "b")], [pv("a", "b")])
        assert score.precision == 1.0
        assert score.recall == 1.0
        assert score.f1 == 1.0

    def test_partial(self):
        score = column_recovery([v("a", "x")], [pv("a", "b")])
        assert score.precision == 0.5
        assert score.recall == 0.5

    def test_empty_prediction(self):
        score = column_recovery([], [pv("a")])
        assert score.f1 == 0.0

    def test_no_truth(self):
        score = column_recovery([v("a")], [])
        assert score.recall == 1.0


class TestViewRecovery:
    def test_exact_match(self):
        score = view_recovery([v("a", "b"), v("c", "d")],
                              [pv("a", "b"), pv("c", "d")])
        assert score.f1 == 1.0

    def test_one_to_one_matching(self):
        # Two predicted views overlap the same truth: only one may match.
        score = view_recovery([v("a", "x"), v("b", "y")], [pv("a", "b")],
                              min_jaccard=0.3)
        assert score.recall == 1.0
        assert score.precision == 0.5

    def test_threshold(self):
        # Jaccard 1/3 < 0.5 default threshold.
        score = view_recovery([v("a", "x")], [pv("a", "b")])
        assert score.recall == 0.0

    def test_matching_greedy_best_first(self):
        matching = best_jaccard_matching(
            [v("a", "b"), v("a", "c")], [pv("a", "b"), pv("c", "d")])
        assert matching[0][2] == 1.0

    def test_rank_of_first_hit(self):
        predicted = [v("x", "y"), v("a", "b")]
        assert rank_of_first_hit(predicted, [pv("a", "b")]) == 2
        assert rank_of_first_hit([v("zzz",)], [pv("a", "b")]) is None


class TestWorkloads:
    def test_threshold_sweep(self, crime_small):
        preds = threshold_sweep_predicates(crime_small,
                                           "violent_crime_rate",
                                           quantiles=(0.9, 0.8))
        assert len(preds) == 2
        assert all("violent_crime_rate >" in p for p in preds)

    def test_sweep_thresholds_decreasing(self, crime_small):
        preds = threshold_sweep_predicates(crime_small, "population",
                                           quantiles=(0.9, 0.5))
        t1 = float(preds[0].split(">")[1])
        t2 = float(preds[1].split(">")[1])
        assert t1 > t2

    def test_random_predicates_parse_and_select(self, crime_small):
        from repro.engine.database import Database
        db = Database()
        db.register(crime_small)
        for pred in random_predicates(crime_small, n_queries=5, seed=3):
            sel = db.select("us_crime", pred)
            assert 0 <= sel.n_inside <= crime_small.n_rows

    def test_random_predicates_deterministic(self, crime_small):
        a = random_predicates(crime_small, n_queries=3, seed=7)
        b = random_predicates(crime_small, n_queries=3, seed=7)
        assert a == b

    def test_no_numeric_columns_raises(self):
        from repro.engine.table import Table
        t = Table.from_dict({"c": ["a", "b"]})
        with pytest.raises(ValueError):
            random_predicates(t)


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(["name", "value"],
                            [["alpha", 1.5], ["beta", 22222.123]],
                            title="demo")
        lines = text.splitlines()
        assert lines[0] == "== demo =="
        assert "alpha" in text
        assert len({len(l) for l in lines[1:]}) == 1  # rectangular

    def test_format_table_special_values(self):
        text = format_table(["v"], [[None], [float("nan")], [1e-9], [2e6]])
        assert "-" in text
        assert "nan" in text
        assert "e" in text  # scientific notation for extremes

    def test_reporter_flush(self, capsys):
        reporter = Reporter("TEST-ID", "a description")
        reporter.add_table(["a"], [[1]])
        reporter.add_text("free text")
        report = reporter.flush()
        captured = capsys.readouterr().out
        assert "TEST-ID" in captured
        assert "free text" in report


class TestTimer:
    def test_laps_accumulate(self):
        timer = Timer()
        with timer.lap("a"):
            pass
        with timer.lap("a"):
            pass
        with timer.lap("b"):
            pass
        assert set(timer.laps) == {"a", "b"}
        assert timer.total >= 0.0

    def test_repeat_time_returns_median(self):
        calls = []
        t = repeat_time(lambda: calls.append(1), repeats=3, warmup=1)
        assert len(calls) == 4
        assert t >= 0.0
