"""Shared fixtures for the test suite.

Dataset fixtures are session-scoped (generation is deterministic and the
tables are immutable), so the suite stays fast despite many integration
tests touching the same tables.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.boxoffice import make_boxoffice
from repro.data.crime import make_crime
from repro.engine.database import Database
from repro.engine.table import Table


@pytest.fixture
def rng() -> np.random.Generator:
    """A fresh deterministic generator per test."""
    return np.random.default_rng(1234)


@pytest.fixture
def tiny_table() -> Table:
    """A small mixed-type table with missing values in every type."""
    return Table.from_dict({
        "x": np.array([1.0, 2.0, 3.0, 4.0, 5.0, np.nan, 7.0, 8.0]),
        "y": np.array([2.0, 4.0, 6.0, 8.0, 10.0, 12.0, np.nan, 16.0]),
        "z": np.array([5.0, 4.0, 3.0, 2.0, 1.0, 0.0, -1.0, -2.0]),
        "cat": ["a", "b", "a", None, "b", "a", "c", "a"],
        "flag": [True, False, True, True, None, False, True, False],
    }, name="tiny")


@pytest.fixture
def tiny_db(tiny_table: Table) -> Database:
    """A database holding the tiny table."""
    db = Database()
    db.register(tiny_table)
    return db


@pytest.fixture(scope="session")
def crime_small() -> Table:
    """A reduced US-crime table (600 x 128) for pipeline tests."""
    return make_crime(n_rows=600, seed=5)


@pytest.fixture(scope="session")
def boxoffice_small() -> Table:
    """A reduced Box Office table (300 x 12)."""
    return make_boxoffice(n_rows=300, seed=9)


@pytest.fixture
def two_group_data(rng: np.random.Generator) -> tuple[np.ndarray, np.ndarray]:
    """Two clearly different Gaussian samples (shifted mean, wider SD)."""
    inside = rng.normal(loc=1.0, scale=2.0, size=300)
    outside = rng.normal(loc=0.0, scale=1.0, size=700)
    return inside, outside
