"""Tests for normalization and the Zig-Dissimilarity aggregation."""

import numpy as np
import pytest

from repro.core.components.base import ComponentOutcome
from repro.core.config import ZiggyConfig
from repro.core.dissimilarity import (
    ComponentCatalog,
    Normalizer,
    build_normalizer,
    make_component_score,
    score_view,
    zig_dissimilarity,
)
from repro.core.views import ComponentScore, View
from repro.errors import ConfigError


class TestBuildNormalizer:
    def test_robust_z_scales_by_population(self):
        population = [0.1, 0.12, 0.09, 0.11, 0.1, 2.0]
        norm = build_normalizer(population, "robust_z")
        assert norm.normalize(2.0) > 5.0          # clear outlier
        assert norm.normalize(0.1) < 1.0           # typical value

    def test_robust_z_sign_insensitive(self):
        norm = build_normalizer([0.5, -0.5, 0.4, -0.6], "robust_z")
        assert norm.normalize(-2.0) == norm.normalize(2.0)

    def test_rank_normalization_bounds(self):
        norm = build_normalizer([1.0, 2.0, 3.0, 4.0], "rank")
        assert norm.normalize(5.0) == 1.0
        assert norm.normalize(0.5) == 0.0
        assert 0.0 < norm.normalize(2.5) < 1.0

    def test_none_passthrough(self):
        norm = build_normalizer([1.0, 100.0], "none")
        assert norm.normalize(-3.0) == 3.0

    def test_degenerate_population(self):
        norm = build_normalizer([0.0, 0.0, 0.0], "robust_z")
        assert norm.normalize(1.0) > 0.0          # newcomer still scores
        assert norm.normalize(0.0) == 0.0

    def test_empty_population(self):
        norm = build_normalizer([], "robust_z")
        assert norm.normalize(1.0) == 1.0

    def test_nan_values_skipped(self):
        norm = build_normalizer([1.0, float("nan"), 2.0], "rank")
        assert norm.population.size == 2

    def test_unknown_method_raises(self):
        with pytest.raises(ConfigError):
            build_normalizer([1.0], "zscore")


class TestMakeComponentScore:
    def test_carries_fields(self):
        outcome = ComponentOutcome(raw=-1.5, direction="lower",
                                   detail={"k": 1})
        score = make_component_score("mean_shift", ("a",), outcome,
                                     Normalizer(method="none"), weight=2.0)
        assert score.raw == -1.5
        assert score.normalized == 1.5
        assert score.weighted == 3.0
        assert score.detail == {"k": 1}


def make_score(component="mean_shift", columns=("a",), normalized=1.0,
               weight=1.0):
    return ComponentScore(component=component, columns=columns, raw=1.0,
                          normalized=normalized, weight=weight, test=None,
                          direction="higher")


class TestZigDissimilarity:
    def test_mean_mode(self):
        cfg = ZiggyConfig(score_mode="mean")
        comps = (make_score(normalized=2.0), make_score(normalized=4.0))
        assert zig_dissimilarity(comps, cfg) == pytest.approx(3.0)

    def test_sum_mode(self):
        cfg = ZiggyConfig(score_mode="sum")
        comps = (make_score(normalized=2.0), make_score(normalized=4.0))
        assert zig_dissimilarity(comps, cfg) == pytest.approx(6.0)

    def test_weights_respected(self):
        cfg = ZiggyConfig(score_mode="mean")
        comps = (make_score(normalized=2.0, weight=3.0),
                 make_score(normalized=10.0, weight=1.0))
        assert zig_dissimilarity(comps, cfg) == pytest.approx(
            (6.0 + 10.0) / 4.0)

    def test_zero_weight_excluded(self):
        cfg = ZiggyConfig()
        comps = (make_score(normalized=100.0, weight=0.0),
                 make_score(normalized=2.0, weight=1.0))
        assert zig_dissimilarity(comps, cfg) == pytest.approx(2.0)

    def test_empty_zero(self):
        assert zig_dissimilarity((), ZiggyConfig()) == 0.0


class TestComponentCatalog:
    def make_catalog(self):
        catalog = ComponentCatalog()
        catalog.unary["a"] = [make_score(columns=("a",), normalized=1.0)]
        catalog.unary["b"] = [make_score(columns=("b",), normalized=3.0)]
        catalog.pairwise[("a", "b")] = [
            make_score("correlation_shift", ("a", "b"), normalized=2.0)]
        return catalog

    def test_components_for_view_collects_unary_and_pairs(self):
        catalog = self.make_catalog()
        comps = catalog.components_for_view(View(columns=("a", "b")))
        names = sorted(c.component for c in comps)
        assert names == ["correlation_shift", "mean_shift", "mean_shift"]

    def test_single_column_view_no_pairs(self):
        catalog = self.make_catalog()
        comps = catalog.components_for_view(View(columns=("a",)))
        assert len(comps) == 1

    def test_missing_column_empty(self):
        catalog = self.make_catalog()
        assert catalog.components_for_view(View(columns=("zzz",))) == ()

    def test_column_score_best_weighted(self):
        catalog = self.make_catalog()
        assert catalog.column_score("b") == 3.0
        assert catalog.column_score("zzz") == 0.0

    def test_score_view_end_to_end(self):
        catalog = self.make_catalog()
        cfg = ZiggyConfig(score_mode="mean")
        score, comps = score_view(View(columns=("a", "b")), catalog, cfg)
        assert score == pytest.approx((1.0 + 3.0 + 2.0) / 3.0)
        assert len(comps) == 3
