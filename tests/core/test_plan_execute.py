"""Tests for the plan/execute pipeline split and the typed event stream."""

import numpy as np
import pytest

from repro.core import events as ev
from repro.core.config import ZiggyConfig
from repro.core.events import StageEvent, legacy_stage
from repro.core.pipeline import CharacterizationPlan, PlanExecutor, Ziggy
from repro.core.preparation import PreparationEngine
from repro.engine.table import Table


@pytest.fixture
def planted_table(rng):
    n = 500
    driver = rng.normal(size=n)
    factor = rng.normal(size=n)
    shift = np.where(driver > 1.0, 2.5, 0.0)
    return Table.from_dict({
        "driver": driver,
        "signal_a": factor + rng.normal(scale=0.3, size=n) + shift,
        "signal_b": factor + rng.normal(scale=0.3, size=n) + shift,
        "noise_1": rng.normal(size=n),
        "noise_2": rng.normal(size=n),
    }, name="planted")


class TestPlanning:
    def test_plan_is_side_effect_free(self, planted_table):
        z = Ziggy(planted_table)
        plan = z.plan("driver > 1")
        assert isinstance(plan, CharacterizationPlan)
        assert "driver" in plan.predicate_text
        assert z.last_prepared is None    # nothing executed yet

    def test_plan_carries_engine_cache(self, planted_table):
        z = Ziggy(planted_table)
        assert z.plan("driver > 1").cache is z.cache

    def test_per_call_config_lands_in_plan(self, planted_table):
        z = Ziggy(planted_table)
        plan = z.plan("driver > 1", config=ZiggyConfig(max_views=1))
        assert plan.config.max_views == 1

    def test_same_plan_reexecutes_identically(self, planted_table):
        z = Ziggy(planted_table)
        plan = z.plan("driver > 1")
        r1 = z.execute(plan)
        r2 = z.execute(plan)
        assert [v.columns for v in r1.views] == [v.columns for v in r2.views]
        assert [v.score for v in r1.views] == \
            pytest.approx([v.score for v in r2.views])

    def test_executor_standalone(self, planted_table):
        """The executor works without the Ziggy facade."""
        z = Ziggy(planted_table)
        plan = z.plan("driver > 1")
        executor = PlanExecutor(PreparationEngine())
        result = executor.execute(plan)
        assert result.views
        assert executor.last_prepared is not None
        assert executor.last_search is not None


class TestEventStream:
    def run_with_events(self, planted_table, **kwargs):
        z = Ziggy(planted_table)
        seen: list[StageEvent] = []
        result = z.characterize("driver > 1", emit=seen.append, **kwargs)
        return result, seen

    def test_kinds_and_order(self, planted_table):
        result, seen = self.run_with_events(planted_table)
        kinds = [e.kind for e in seen]
        assert kinds[0] == ev.PREPARED
        assert kinds[1] == ev.COMPONENT_SCORED
        assert kinds[-1] == ev.RESULT
        assert ev.SEARCH_COMPLETE in kinds
        assert kinds.count(ev.VIEW_READY) == len(result.views)
        # every ranked view streams before the search completes
        assert kinds.index(ev.VIEW_RANKED) < kinds.index(ev.SEARCH_COMPLETE)

    def test_view_ready_payloads_are_ranked(self, planted_table):
        result, seen = self.run_with_events(planted_table)
        ready = [e.payload for e in seen if e.kind == ev.VIEW_READY]
        assert [rank for rank, _ in ready] == list(range(1, len(ready) + 1))
        assert [v for _, v in ready] == list(result.views)

    def test_result_event_carries_final_result(self, planted_table):
        result, seen = self.run_with_events(planted_table)
        assert seen[-1].payload is result

    def test_legacy_progress_is_projection_of_events(self, planted_table):
        z = Ziggy(planted_table)
        typed: list[StageEvent] = []
        legacy: list[tuple] = []
        z.characterize("driver > 1", emit=typed.append,
                       progress=lambda s, p: legacy.append((s, p)))
        assert [(legacy_stage(e.kind), e.payload) for e in typed] == legacy
        stages = [s for s, _ in legacy]
        assert "preparation" in stages
        assert "view" in stages
        assert stages[-1] == "result"

    def test_emit_exception_aborts_run(self, planted_table):
        z = Ziggy(planted_table)

        class Stop(Exception):
            pass

        def emit(event):
            if event.kind == ev.VIEW_RANKED:
                raise Stop()

        with pytest.raises(Stop):
            z.characterize("driver > 1", emit=emit)

    def test_batch_emits_batch_items(self, planted_table):
        z = Ziggy(planted_table)
        seen: list[StageEvent] = []
        results = z.characterize_many(["driver > 1", "driver > 0.5"],
                                      emit=seen.append)
        items = [e.payload for e in seen if e.kind == ev.BATCH_ITEM]
        assert [i for i, _ in items] == [0, 1]
        assert [r for _, r in items] == results
