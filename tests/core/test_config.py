"""Tests for ZiggyConfig validation."""

import pytest

from repro.core.config import ZiggyConfig
from repro.errors import ConfigError


class TestDefaults:
    def test_paper_defaults(self):
        cfg = ZiggyConfig()
        assert cfg.max_view_dim == 2          # scatter-plot-able views
        assert 0.0 <= cfg.min_tightness <= 1.0
        assert cfg.search_strategy == "linkage"
        assert cfg.aggregation == "bonferroni"

    def test_weight_for_defaults_to_one(self):
        cfg = ZiggyConfig()
        assert cfg.weight_for("mean_shift") == 1.0

    def test_weight_for_custom(self):
        cfg = ZiggyConfig(weights={"mean_shift": 0.5})
        assert cfg.weight_for("mean_shift") == 0.5
        assert cfg.weight_for("spread_shift") == 1.0


class TestValidation:
    @pytest.mark.parametrize("kwargs", [
        {"max_view_dim": 0},
        {"min_tightness": -0.1},
        {"min_tightness": 1.5},
        {"max_views": 0},
        {"dependency_method": "chi2"},
        {"search_strategy": "random"},
        {"normalization": "softmax"},
        {"aggregation": "mean"},
        {"alpha": 0.0},
        {"alpha": 1.5},
        {"min_group_size": 1},
        {"score_mode": "max"},
        {"mi_bins": 1},
        {"explanation_components": 0},
        {"weights": {"mean_shift": -1.0}},
    ])
    def test_invalid_values_raise(self, kwargs):
        with pytest.raises(ConfigError):
            ZiggyConfig(**kwargs)

    def test_error_message_names_field(self):
        with pytest.raises(ConfigError) as exc:
            ZiggyConfig(max_view_dim=-3)
        assert "max_view_dim" in str(exc.value)


class TestOverrides:
    def test_with_overrides_returns_new(self):
        cfg = ZiggyConfig()
        new = cfg.with_overrides(max_views=3)
        assert new.max_views == 3
        assert cfg.max_views != 3 or cfg is not new

    def test_with_overrides_validates(self):
        with pytest.raises(ConfigError):
            ZiggyConfig().with_overrides(alpha=2.0)

    def test_frozen(self):
        cfg = ZiggyConfig()
        with pytest.raises(AttributeError):
            cfg.max_views = 5  # type: ignore[misc]
