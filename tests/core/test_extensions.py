"""Tests for the extension features: row sampling and shape components."""

import numpy as np
import pytest

from repro.core.components.base import ColumnSlice
from repro.core.components.shape import SkewShiftComponent
from repro.core.config import ZiggyConfig
from repro.core.pipeline import Ziggy
from repro.engine.table import Table
from repro.errors import ConfigError


@pytest.fixture
def big_table(rng):
    n = 20_000
    driver = rng.normal(size=n)
    factor = rng.normal(size=n)
    shift = np.where(driver > 1.0, 2.0, 0.0)
    return Table.from_dict({
        "driver": driver,
        "sig_a": factor + rng.normal(scale=0.3, size=n) + shift,
        "sig_b": factor + rng.normal(scale=0.3, size=n) + shift,
        "noise_a": rng.normal(size=n),
        "noise_b": rng.normal(size=n),
    }, name="big")


class TestRowSampling:
    def test_sampled_run_finds_the_same_story(self, big_table):
        exact = Ziggy(big_table).characterize("driver > 1")
        sampled = Ziggy(big_table, config=ZiggyConfig(
            sample_rows=2000)).characterize("driver > 1")
        top_exact = set(exact.views[0].columns)
        top_sampled = set(sampled.views[0].columns)
        assert top_exact & top_sampled  # same leading phenomenon

    def test_sampling_noted(self, big_table):
        result = Ziggy(big_table, config=ZiggyConfig(
            sample_rows=2000)).characterize("driver > 1")
        assert any("stratified sample" in n for n in result.notes)

    def test_sampling_faster_on_wide_data(self, rng):
        n, m = 30_000, 40
        data = {f"c{j:02d}": rng.normal(size=n) for j in range(m)}
        data["driver"] = rng.normal(size=n)
        table = Table.from_dict(data, name="wide")
        import time
        t0 = time.perf_counter()
        Ziggy(table, share_statistics=False).characterize("driver > 1")
        exact_time = time.perf_counter() - t0
        t0 = time.perf_counter()
        Ziggy(table, config=ZiggyConfig(sample_rows=2000),
              share_statistics=False).characterize("driver > 1")
        sampled_time = time.perf_counter() - t0
        assert sampled_time < exact_time

    def test_small_table_untouched(self, big_table):
        small = big_table.head(500)
        result = Ziggy(small, config=ZiggyConfig(
            sample_rows=2000)).characterize("driver > 0.5")
        assert not any("sample" in n for n in result.notes)

    def test_both_groups_preserved(self, big_table):
        # Tiny selection must survive stratification.
        result = Ziggy(big_table, config=ZiggyConfig(
            sample_rows=1000)).characterize("driver > 2.5")
        assert result.n_inside >= 8

    def test_sampling_deterministic(self, big_table):
        cfg = ZiggyConfig(sample_rows=2000)
        a = Ziggy(big_table, config=cfg).characterize("driver > 1")
        b = Ziggy(big_table, config=cfg).characterize("driver > 1")
        assert [v.columns for v in a.views] == [v.columns for v in b.views]
        assert [v.score for v in a.views] == \
               pytest.approx([v.score for v in b.views])

    def test_invalid_budget_rejected(self):
        with pytest.raises(ConfigError):
            ZiggyConfig(sample_rows=10)


class TestSkewShift:
    def make_slice(self, rng, inside_skewed=True):
        inside = (rng.exponential(size=800) if inside_skewed
                  else rng.normal(size=800))
        outside = rng.normal(size=2000)
        return ColumnSlice("col", False, inside, outside)

    def test_detects_skew_gap(self, rng):
        outcome = SkewShiftComponent().compute(self.make_slice(rng))
        assert outcome.raw > 1.0
        assert outcome.direction == "higher"
        assert outcome.test is not None
        assert outcome.test.p_value < 0.05

    def test_null_quiet(self, rng):
        outcome = SkewShiftComponent().compute(
            self.make_slice(rng, inside_skewed=False))
        assert abs(outcome.raw) < 0.5

    def test_small_groups_skipped(self, rng):
        s = ColumnSlice("c", False, rng.normal(size=5),
                        rng.normal(size=100))
        assert SkewShiftComponent().compute(s) is None

    def test_opt_in_through_weights(self, rng):
        n = 4000
        driver = rng.normal(size=n)
        value = np.where(driver > 1.0, rng.exponential(size=n) * 2.0,
                         rng.normal(size=n))
        table = Table.from_dict({"driver": driver, "val": value,
                                 "noise": rng.normal(size=n)}, name="skew")
        inactive = Ziggy(table).characterize("driver > 1")
        comps = {c.component for v in inactive.views for c in v.components}
        assert "skew_shift" not in comps
        active = Ziggy(table, config=ZiggyConfig(
            weights={"skew_shift": 1.0})).characterize("driver > 1")
        comps = {c.component for v in active.views for c in v.components}
        assert "skew_shift" in comps

    def test_explanation_phrase(self, rng):
        from repro.core.explain.vocabulary import phrase_for
        from repro.core.views import ComponentScore
        score = ComponentScore("skew_shift", ("col",), 1.5, 2.0, 1.0,
                               None, "higher")
        assert "right-skewed" in phrase_for(score)
