"""Tests for complete-linkage clustering and the dendrogram."""

import numpy as np
import pytest

from repro.core.search.linkage import Dendrogram, complete_linkage
from repro.errors import SearchError


def block_distance_matrix():
    """Two tight blocks {0,1,2} and {3,4}, far from each other."""
    m = np.full((5, 5), 0.9)
    np.fill_diagonal(m, 0.0)
    for i in (0, 1, 2):
        for j in (0, 1, 2):
            if i != j:
                m[i, j] = 0.1
    m[3, 4] = m[4, 3] = 0.15
    return m


class TestCompleteLinkage:
    def test_recovers_blocks(self):
        dend = complete_linkage(block_distance_matrix(),
                                ("a", "b", "c", "d", "e"))
        clusters = dend.cut(0.5)
        assert sorted(map(sorted, clusters)) == [["a", "b", "c"], ["d", "e"]]

    def test_cut_at_zero_gives_singletons(self):
        dend = complete_linkage(block_distance_matrix(),
                                ("a", "b", "c", "d", "e"))
        clusters = dend.cut(0.0)
        assert len(clusters) == 5

    def test_cut_at_one_gives_everything(self):
        dend = complete_linkage(block_distance_matrix(),
                                ("a", "b", "c", "d", "e"))
        clusters = dend.cut(1.0)
        assert len(clusters) == 1
        assert len(clusters[0]) == 5

    def test_diameter_guarantee(self, rng):
        """Complete linkage: every cluster's pairwise distances <= cut."""
        m = 20
        d = rng.random((m, m))
        d = (d + d.T) / 2
        np.fill_diagonal(d, 0.0)
        labels = tuple(f"c{i}" for i in range(m))
        dend = complete_linkage(d, labels)
        for cut in (0.2, 0.4, 0.6):
            for cluster in dend.cut(cut):
                idx = [labels.index(c) for c in cluster]
                for i in idx:
                    for j in idx:
                        assert d[i, j] <= cut + 1e-12

    def test_merge_heights_monotone(self, rng):
        m = 15
        d = rng.random((m, m))
        d = (d + d.T) / 2
        np.fill_diagonal(d, 0.0)
        dend = complete_linkage(d, tuple(f"c{i}" for i in range(m)))
        heights = dend.merge_heights
        assert all(heights[i] <= heights[i + 1] + 1e-12
                   for i in range(len(heights) - 1))

    def test_matches_scipy(self, rng):
        from scipy.cluster.hierarchy import complete as scipy_complete
        from scipy.cluster.hierarchy import fcluster
        from scipy.spatial.distance import squareform
        m = 12
        d = rng.random((m, m))
        d = (d + d.T) / 2
        np.fill_diagonal(d, 0.0)
        labels = tuple(f"c{i}" for i in range(m))
        ours = complete_linkage(d, labels)
        z = scipy_complete(squareform(d, checks=False))
        for cut in (0.3, 0.5, 0.7):
            ours_clusters = {frozenset(c) for c in ours.cut(cut)}
            assignments = fcluster(z, t=cut, criterion="distance")
            theirs: dict[int, set] = {}
            for label, cl in zip(labels, assignments):
                theirs.setdefault(cl, set()).add(label)
            assert ours_clusters == {frozenset(v) for v in theirs.values()}

    def test_single_item(self):
        dend = complete_linkage(np.zeros((1, 1)), ("only",))
        assert dend.cut(0.5) == [("only",)]

    def test_two_items(self):
        d = np.array([[0.0, 0.4], [0.4, 0.0]])
        dend = complete_linkage(d, ("a", "b"))
        assert len(dend.cut(0.3)) == 2
        assert len(dend.cut(0.5)) == 1

    def test_nan_distances_treated_as_max(self):
        d = np.array([[0.0, np.nan], [np.nan, 0.0]])
        dend = complete_linkage(d, ("a", "b"))
        # They still merge eventually, at a height above any finite value.
        assert len(dend.cut(1.0)) == 2
        assert dend.root.height > 1.0

    def test_label_count_mismatch(self):
        with pytest.raises(SearchError):
            complete_linkage(np.zeros((2, 2)), ("a",))

    def test_nonsquare_raises(self):
        with pytest.raises(SearchError):
            complete_linkage(np.zeros((2, 3)), ("a", "b"))

    def test_zero_items_raises(self):
        with pytest.raises(SearchError):
            complete_linkage(np.zeros((0, 0)), ())


class TestDendrogram:
    @pytest.fixture
    def dend(self) -> Dendrogram:
        return complete_linkage(block_distance_matrix(),
                                ("a", "b", "c", "d", "e"))

    def test_root_covers_all(self, dend):
        assert dend.root.size == 5
        assert dend.n_leaves == 5

    def test_cut_nodes_match_cut(self, dend):
        nodes = dend.cut_nodes(0.5)
        groups = [tuple(dend.labels[i] for i in n.leaves) for n in nodes]
        assert {frozenset(g) for g in groups} == \
               {frozenset(g) for g in dend.cut(0.5)}

    def test_cut_ordering_largest_first(self, dend):
        clusters = dend.cut(0.5)
        sizes = [len(c) for c in clusters]
        assert sizes == sorted(sizes, reverse=True)

    def test_render_mentions_labels_and_heights(self, dend):
        text = dend.render()
        for label in ("a", "b", "c", "d", "e"):
            assert label in text
        assert "d=" in text
        assert "S>=" in text

    def test_leaves_are_a_permutation(self, dend):
        assert sorted(dend.root.leaves) == list(range(5))
