"""Tests for the dependency measure S and the dependency matrix."""

import numpy as np
import pytest

from repro.core.dependency import (
    DependencyMatrix,
    categorical_nmi,
    compute_dependency_matrix,
    correlation_ratio,
    cramers_v,
)
from repro.engine.table import Table
from repro.errors import InsufficientDataError, SearchError


@pytest.fixture
def structured_table(rng):
    n = 400
    factor = rng.normal(size=n)
    group = rng.integers(0, 3, size=n)
    return Table.from_dict({
        "a1": factor + rng.normal(scale=0.3, size=n),
        "a2": factor + rng.normal(scale=0.3, size=n),
        "b": rng.normal(size=n),
        "cat_dep": [("p", "q", "r")[g] for g in group],
        "cat_noise": [("x", "y")[int(v)] for v in rng.integers(0, 2, size=n)],
        "num_by_cat": group * 2.0 + rng.normal(scale=0.4, size=n),
    }, name="structured")


class TestCorrelationRatio:
    def test_strong_dependence(self, rng):
        codes = rng.integers(0, 3, size=500)
        values = codes * 5.0 + rng.normal(scale=0.1, size=500)
        assert correlation_ratio(codes, values) > 0.95

    def test_independence_near_zero(self, rng):
        codes = rng.integers(0, 3, size=2000)
        values = rng.normal(size=2000)
        assert correlation_ratio(codes, values) < 0.1

    def test_constant_numeric_zero(self):
        assert correlation_ratio(np.array([0, 1, 0, 1]),
                                 np.full(4, 3.0)) == 0.0

    def test_missing_codes_dropped(self, rng):
        codes = np.array([-1, 0, 1, 0, 1, -1])
        values = np.array([99.0, 1.0, 2.0, 1.0, 2.0, -99.0])
        assert correlation_ratio(codes, values) > 0.9

    def test_too_small_raises(self):
        with pytest.raises(InsufficientDataError):
            correlation_ratio(np.array([0]), np.array([1.0]))


class TestCramersV:
    def test_perfect_association(self):
        a = np.array([0, 0, 1, 1, 2, 2] * 20)
        assert cramers_v(a, a, 3, 3) == pytest.approx(1.0, abs=0.01)

    def test_independence(self, rng):
        a = rng.integers(0, 3, size=3000)
        b = rng.integers(0, 4, size=3000)
        assert cramers_v(a, b, 3, 4) < 0.1

    def test_degenerate_single_category(self):
        a = np.zeros(50, dtype=int)
        b = np.array([0, 1] * 25)
        assert cramers_v(a, b, 1, 2) == 0.0

    def test_bounded(self, rng):
        a = rng.integers(0, 5, size=200)
        b = (a + rng.integers(0, 2, size=200)) % 5
        assert 0.0 <= cramers_v(a, b, 5, 5) <= 1.0


class TestCategoricalNmi:
    def test_perfect(self):
        a = np.array([0, 1, 2] * 30)
        assert categorical_nmi(a, a, 3, 3) == pytest.approx(1.0)

    def test_empty(self):
        assert categorical_nmi(np.array([-1]), np.array([-1]), 2, 2) == 0.0


class TestDependencyMatrix:
    def test_pearson_blocks(self, structured_table):
        cols = structured_table.column_names
        dep = compute_dependency_matrix(structured_table, cols)
        assert dep.dependency("a1", "a2") > 0.7          # same factor
        assert dep.dependency("a1", "b") < 0.25          # independent
        assert dep.dependency("cat_dep", "num_by_cat") > 0.8   # eta
        assert dep.dependency("cat_dep", "cat_noise") < 0.2    # cramers v

    def test_symmetric_unit_diagonal(self, structured_table):
        dep = compute_dependency_matrix(structured_table,
                                        structured_table.column_names)
        m = dep.matrix
        assert np.allclose(m, m.T, equal_nan=True)
        assert np.allclose(np.diag(m), 1.0)

    def test_nmi_method_detects_nonlinear(self, rng):
        x = rng.normal(size=3000)
        t = Table.from_dict({"x": x, "parabola": x ** 2, "noise":
                             rng.normal(size=3000)})
        dep_nmi = compute_dependency_matrix(t, t.column_names, method="nmi")
        dep_pearson = compute_dependency_matrix(t, t.column_names)
        assert dep_nmi.dependency("x", "parabola") > 0.4
        assert dep_pearson.dependency("x", "parabola") < 0.2

    def test_spearman_method(self, rng):
        x = rng.normal(size=500)
        t = Table.from_dict({"x": x, "exp": np.exp(2 * x)})
        dep = compute_dependency_matrix(t, t.column_names, method="spearman")
        assert dep.dependency("x", "exp") == pytest.approx(1.0)

    def test_unknown_method_raises(self, structured_table):
        with pytest.raises(SearchError):
            compute_dependency_matrix(structured_table, ("a1", "a2"),
                                      method="cosine")

    def test_tightness_min_rule(self, structured_table):
        dep = compute_dependency_matrix(structured_table,
                                        structured_table.column_names)
        t_pair = dep.tightness(("a1", "a2"))
        t_triple = dep.tightness(("a1", "a2", "b"))
        assert t_triple <= t_pair
        assert t_triple == pytest.approx(
            min(dep.dependency("a1", "b"), dep.dependency("a2", "b"),
                dep.dependency("a1", "a2")))

    def test_tightness_singleton_is_one(self, structured_table):
        dep = compute_dependency_matrix(structured_table, ("a1",))
        assert dep.tightness(("a1",)) == 1.0

    def test_distance_matrix(self, structured_table):
        dep = compute_dependency_matrix(structured_table,
                                        structured_table.column_names)
        d = dep.distance_matrix()
        assert np.all(d >= 0.0) and np.all(d <= 1.0)
        assert np.allclose(np.diag(d), 0.0)

    def test_nan_dependency_treated_as_zero(self):
        t = Table.from_dict({"const": np.full(20, 1.0),
                             "x": np.arange(20.0)})
        dep = compute_dependency_matrix(t, t.column_names)
        assert dep.dependency("const", "x") == 0.0
        assert dep.tightness(("const", "x")) == 0.0

    def test_unknown_column_raises(self, structured_table):
        dep = compute_dependency_matrix(structured_table, ("a1", "a2"))
        with pytest.raises(SearchError):
            dep.dependency("a1", "ghost")

    def test_shape_mismatch_raises(self):
        with pytest.raises(SearchError):
            DependencyMatrix(names=("a",), matrix=np.eye(2), method="pearson")
