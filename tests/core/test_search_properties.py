"""Property-based tests for view search: the Eq. 5 constraint system must
hold for arbitrary dependency structure."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import ZiggyConfig
from repro.core.dependency import DependencyMatrix
from repro.core.dissimilarity import ComponentCatalog
from repro.core.search.candidates import linkage_candidates
from repro.core.search.clique import clique_candidates
from repro.core.search.linkage import complete_linkage
from repro.core.search.ranking import enforce_disjointness, rank_candidates
from repro.core.views import ComponentScore, View


@st.composite
def dependency_matrices(draw):
    m = draw(st.integers(min_value=2, max_value=12))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    rng = np.random.default_rng(seed)
    mat = rng.uniform(0.0, 1.0, size=(m, m))
    mat = (mat + mat.T) / 2
    np.fill_diagonal(mat, 1.0)
    names = tuple(f"c{i:02d}" for i in range(m))
    return DependencyMatrix(names=names, matrix=mat, method="pearson")


def catalog_for(dep: DependencyMatrix, seed: int = 0) -> ComponentCatalog:
    rng = np.random.default_rng(seed)
    catalog = ComponentCatalog()
    for name in dep.names:
        catalog.unary[name] = [ComponentScore(
            component="mean_shift", columns=(name,),
            raw=float(rng.normal()), normalized=float(rng.uniform(0, 5)),
            weight=1.0, test=None, direction="higher")]
    return catalog


tightness_values = st.sampled_from([0.1, 0.3, 0.5, 0.7, 0.9])
dims = st.integers(min_value=1, max_value=4)


@given(dependency_matrices(), tightness_values, dims)
@settings(max_examples=60, deadline=None)
def test_linkage_candidates_satisfy_constraints(dep, min_tight, max_dim):
    config = ZiggyConfig(min_tightness=min_tight, max_view_dim=max_dim)
    dend = complete_linkage(dep.distance_matrix(), dep.names)
    candidates = linkage_candidates(dend, config, ComponentCatalog())
    covered: set[str] = set()
    for view in candidates:
        assert view.dimension <= max_dim                      # Eq. 5 cap
        if view.dimension > 1:
            assert dep.tightness(view.columns) >= min_tight - 1e-9  # Eq. 3
        covered.update(view.columns)
    assert covered == set(dep.names)  # every column gets a candidate


@given(dependency_matrices(), tightness_values, dims)
@settings(max_examples=60, deadline=None)
def test_clique_candidates_satisfy_constraints(dep, min_tight, max_dim):
    config = ZiggyConfig(min_tightness=min_tight, max_view_dim=max_dim)
    candidates = clique_candidates(dep, config, catalog_for(dep))
    covered: set[str] = set()
    for view in candidates:
        assert view.dimension <= max_dim
        if view.dimension > 1:
            assert dep.tightness(view.columns) >= min_tight - 1e-9
        covered.update(view.columns)
    assert covered == set(dep.names)


@given(dependency_matrices(), tightness_values,
       st.integers(min_value=1, max_value=6))
@settings(max_examples=60, deadline=None)
def test_full_search_output_invariants(dep, min_tight, max_views):
    """Ranked + disjoint output: sorted scores, pairwise disjoint (Eq. 4),
    within the view budget."""
    config = ZiggyConfig(min_tightness=min_tight, max_views=max_views)
    dend = complete_linkage(dep.distance_matrix(), dep.names)
    candidates = linkage_candidates(dend, config, ComponentCatalog())
    ranked = rank_candidates(candidates, catalog_for(dep), dep, config)
    scores = [r.score for r in ranked]
    assert scores == sorted(scores, reverse=True)
    final = enforce_disjointness(ranked, config.max_views)
    assert len(final) <= max_views
    seen: set[str] = set()
    for result in final:
        assert not (set(result.columns) & seen)               # Eq. 4
        seen.update(result.columns)


@given(dependency_matrices())
@settings(max_examples=40, deadline=None)
def test_dendrogram_structural_invariants(dep):
    dend = complete_linkage(dep.distance_matrix(), dep.names)
    # Leaves are a permutation of all items.
    assert sorted(dend.root.leaves) == list(range(len(dep.names)))
    # Heights never decrease along the merge sequence.
    heights = dend.merge_heights
    assert all(heights[i] <= heights[i + 1] + 1e-9
               for i in range(len(heights) - 1))
    # Cutting at root height yields one cluster; at 0 yields singletons
    # unless there are exact-zero distances.
    assert len(dend.cut(dend.root.height)) == 1
    # Every internal node's height bounds its children's heights.

    def check(node):
        for child in node.children:
            assert child.height <= node.height + 1e-9
            check(child)

    check(dend.root)


@given(dependency_matrices(), tightness_values)
@settings(max_examples=40, deadline=None)
def test_linkage_and_clique_cover_same_columns(dep, min_tight):
    config = ZiggyConfig(min_tightness=min_tight)
    dend = complete_linkage(dep.distance_matrix(), dep.names)
    linkage_cols = {c for v in linkage_candidates(dend, config,
                                                  ComponentCatalog())
                    for c in v.columns}
    clique_cols = {c for v in clique_candidates(dep, config,
                                                catalog_for(dep))
                   for c in v.columns}
    assert linkage_cols == clique_cols == set(dep.names)


@given(st.integers(0, 5000))
@settings(max_examples=30, deadline=None)
def test_ranking_deterministic(seed):
    rng = np.random.default_rng(seed)
    m = 8
    mat = rng.uniform(size=(m, m))
    mat = (mat + mat.T) / 2
    np.fill_diagonal(mat, 1.0)
    dep = DependencyMatrix(names=tuple(f"c{i}" for i in range(m)),
                           matrix=mat, method="pearson")
    config = ZiggyConfig()
    views = [View(columns=(n,)) for n in dep.names]
    a = rank_candidates(views, catalog_for(dep, seed), dep, config)
    b = rank_candidates(list(reversed(views)), catalog_for(dep, seed), dep,
                        config)
    assert [r.columns for r in a] == [r.columns for r in b]
