"""Tests for the explanation generator."""

import pytest

from repro.core.config import ZiggyConfig
from repro.core.explain.generator import ExplanationGenerator, explain_view
from repro.core.explain.vocabulary import (
    phrase_for,
    register_phrase_rule,
)
from repro.core.views import ComponentScore, View, ViewResult
from repro.stats.tests_ import TestResult


def score(component, direction, columns=("population",), normalized=3.0,
          p=0.001, detail=None):
    return ComponentScore(
        component=component, columns=columns, raw=1.0,
        normalized=normalized, weight=1.0,
        test=TestResult(component, 1.0, p), direction=direction,
        detail=detail or {})


def result(components, columns=("population",), p_value=0.001):
    return ViewResult(view=View(columns=columns), score=1.0, tightness=0.9,
                      components=tuple(components), p_value=p_value,
                      significant=p_value <= 0.05)


class TestVocabulary:
    def test_mean_phrases(self):
        assert phrase_for(score("mean_shift", "higher")) == \
               "particularly high values"
        assert phrase_for(score("mean_shift", "lower", normalized=1.0)) == \
               "lower values"

    def test_spread_phrases(self):
        assert "low variance" in phrase_for(score("spread_shift", "lower"))
        assert "high variance" in phrase_for(
            score("spread_shift", "higher", normalized=1.0))

    def test_correlation_phrase_includes_coefficients(self):
        s = score("correlation_shift", "stronger",
                  columns=("a", "b"),
                  detail={"r_inside": 0.82, "r_outside": 0.31})
        text = phrase_for(s)
        assert "stronger correlation" in text
        assert "+0.82" in text and "+0.31" in text

    def test_frequency_phrase_names_categories(self):
        s = score("frequency_shift", "different",
                  detail={"over_represented": [("horror", 0.2)],
                          "under_represented": [("drama", -0.3)]})
        text = phrase_for(s)
        assert "'horror'" in text
        assert "'drama'" in text

    def test_missing_phrase_has_rates(self):
        s = score("missing_shift", "higher",
                  detail={"rate_inside": 0.25, "rate_outside": 0.05})
        text = phrase_for(s)
        assert "more missing values" in text
        assert "25%" in text

    def test_unknown_component_generic_fallback(self):
        text = phrase_for(score("my_custom_thing", "higher"))
        assert "my custom thing" in text

    def test_custom_rule_registration(self):
        register_phrase_rule("unit_test_comp", lambda s: "a test phrase",
                             replace=True)
        assert phrase_for(score("unit_test_comp", "higher")) == "a test phrase"

    def test_duplicate_rule_raises(self):
        register_phrase_rule("dup_comp", lambda s: "x", replace=True)
        with pytest.raises(ValueError):
            register_phrase_rule("dup_comp", lambda s: "y")


class TestGenerator:
    def test_paper_shape_sentence(self):
        """The canonical example: 'On the columns Population and Density,
        your selection has particularly high values and a low variance'."""
        vr = result(
            [score("mean_shift", "higher", ("Population",)),
             score("mean_shift", "higher", ("Density",)),
             score("spread_shift", "lower", ("Population",))],
            columns=("Population", "Density"))
        text = ExplanationGenerator(ZiggyConfig()).explain(vr)
        assert text.startswith("On the columns Density and Population, "
                               "your selection has")
        assert "particularly high values" in text
        assert "low variance" in text

    def test_single_column_singular_noun(self):
        vr = result([score("mean_shift", "higher")])
        text = explain_view(vr)
        assert text.startswith("On the column population,")

    def test_qualifier_for_partial_coverage(self):
        vr = result([score("mean_shift", "higher", ("a",))],
                    columns=("a", "b"))
        assert "(on a)" in explain_view(vr)

    def test_confidence_reported(self):
        vr = result([score("mean_shift", "higher")], p_value=0.02)
        text = explain_view(vr)
        assert "confidence" in text
        assert "98.0%" in text

    def test_insignificant_warning(self):
        vr = result([score("mean_shift", "higher")], p_value=0.5)
        assert "not statistically significant" in explain_view(vr)

    def test_component_count_limited(self):
        comps = [score(f"comp_{i}", "higher") for i in range(6)]
        vr = result(comps)
        cfg = ZiggyConfig(explanation_components=2)
        text = ExplanationGenerator(cfg).explain(vr)
        # Only 2 phrases: exactly one " and " joiner, no comma list.
        assert text.count("comp") <= 4  # 2 mentions in phrases (generic)

    def test_highest_confidence_components_chosen(self):
        weak = score("spread_shift", "higher", p=0.3)
        strong = score("mean_shift", "higher", p=0.0001)
        vr = result([weak, strong])
        cfg = ZiggyConfig(explanation_components=1)
        text = ExplanationGenerator(cfg).explain(vr)
        assert "high values" in text
        assert "variance" not in text

    def test_annotate_fills_all(self):
        views = [result([score("mean_shift", "higher")]),
                 result([score("spread_shift", "lower")])]
        annotated = ExplanationGenerator(ZiggyConfig()).annotate(views)
        assert all(v.explanation for v in annotated)

    def test_no_components_graceful(self):
        vr = result([])
        assert "no measurable difference" in explain_view(vr)
