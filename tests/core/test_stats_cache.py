"""Tests for the cross-query statistics cache."""

import numpy as np
import pytest

from repro.core.stats_cache import StatsCache
from repro.engine.database import Database
from repro.engine.table import Table
from repro.stats.correlation import masked_correlation_matrix
from repro.stats.descriptive import summarize


@pytest.fixture
def db_and_table(rng):
    n = 500
    x = rng.normal(size=n)
    table = Table.from_dict({
        "x": x,
        "y": x * 0.7 + rng.normal(scale=0.5, size=n),
        "z": rng.normal(size=n),
        "gappy": np.where(rng.random(n) < 0.1, np.nan, rng.normal(size=n)),
    }, name="cache_t")
    db = Database()
    db.register(table)
    return db, table


class TestColumnStats:
    def test_global_cached(self, db_and_table):
        db, table = db_and_table
        cache = StatsCache()
        a = cache.global_column_stats(table, "x")
        b = cache.global_column_stats(table, "x")
        assert a is b
        assert cache.counters.column_hits == 1
        assert cache.counters.column_misses == 1

    def test_inside_keyed_by_fingerprint(self, db_and_table):
        db, table = db_and_table
        cache = StatsCache()
        sel1 = db.select("cache_t", "x > 0")
        sel1_again = db.select("cache_t", "x > 0.0")  # same canonical form
        cache.inside_column_stats(sel1, "y")
        cache.inside_column_stats(sel1_again, "y")
        assert cache.counters.inside_hits == 1

    def test_outside_derived_matches_direct(self, db_and_table):
        db, table = db_and_table
        cache = StatsCache()
        sel = db.select("cache_t", "x > 0.5")
        derived = cache.outside_column_stats(sel, "gappy")
        direct = summarize(table.column("gappy").numeric_values()[~sel.mask])
        assert derived.n == direct.n
        assert derived.n_missing == direct.n_missing
        assert derived.mean == pytest.approx(direct.mean)
        assert derived.variance == pytest.approx(direct.variance)


class TestGroupCorrelations:
    def test_outside_matches_direct_computation(self, db_and_table):
        db, table = db_and_table
        cache = StatsCache()
        sel = db.select("cache_t", "z > 0")
        cols = ("x", "y", "gappy")
        _, _, corr_out, n_out = cache.group_correlations(sel, cols)
        direct, n_direct = masked_correlation_matrix(
            table.numeric_matrix(cols)[~sel.mask])
        assert np.allclose(corr_out, direct, atol=1e-8, equal_nan=True)
        assert np.allclose(n_out, n_direct)

    def test_second_query_reuses_global_moments(self, db_and_table):
        db, table = db_and_table
        cache = StatsCache()
        cols = ("x", "y", "z")
        cache.group_correlations(db.select("cache_t", "x > 0"), cols)
        misses_before = cache.counters.moments_misses
        cache.group_correlations(db.select("cache_t", "x > 1"), cols)
        # Only the new inside moments miss; global moments hit.
        assert cache.counters.moments_misses == misses_before + 1
        assert cache.counters.moments_hits >= 1


class TestDependencyCache:
    def test_shared_across_queries(self, db_and_table):
        db, table = db_and_table
        cache = StatsCache()
        cols = table.numeric_column_names()
        a = cache.dependency_matrix(table, cols, "pearson", 8)
        b = cache.dependency_matrix(table, cols, "pearson", 8)
        assert a is b
        assert cache.counters.dependency_hits == 1

    def test_method_distinguished(self, db_and_table):
        db, table = db_and_table
        cache = StatsCache()
        cols = ("x", "y")
        a = cache.dependency_matrix(table, cols, "pearson", 8)
        b = cache.dependency_matrix(table, cols, "spearman", 8)
        assert a is not b


class TestMaintenance:
    def test_invalidate_table(self, db_and_table):
        db, table = db_and_table
        cache = StatsCache()
        cache.global_column_stats(table, "x")
        assert cache.size == 1
        cache.invalidate_table(table)
        assert cache.size == 0

    def test_clear_preserves_counters(self, db_and_table):
        db, table = db_and_table
        cache = StatsCache()
        cache.global_column_stats(table, "x")
        cache.clear()
        assert cache.size == 0
        assert cache.counters.column_misses == 1

    def test_distinct_tables_do_not_collide(self, rng):
        t1 = Table.from_dict({"v": rng.normal(size=50)}, name="t1")
        t2 = Table.from_dict({"v": rng.normal(loc=100, size=50)}, name="t2")
        cache = StatsCache()
        s1 = cache.global_column_stats(t1, "v")
        s2 = cache.global_column_stats(t2, "v")
        assert abs(s1.mean - s2.mean) > 50
