"""Tests for the stage/kernel profiler."""

import threading

from repro.core.profiling import PROFILER, Profiler


class TestRecording:
    def test_record_accumulates(self):
        p = Profiler()
        p.record("kernel.a", 0.5)
        p.record("kernel.a", 0.25)
        snap = p.snapshot()
        assert snap["kernel.a"]["calls"] == 2
        assert snap["kernel.a"]["total_s"] == 0.75
        assert snap["kernel.a"]["max_s"] == 0.5

    def test_timer_records_wall_clock(self):
        p = Profiler()
        with p.timer("kernel.t"):
            pass
        snap = p.snapshot()
        assert snap["kernel.t"]["calls"] == 1
        assert snap["kernel.t"]["total_s"] >= 0.0

    def test_timer_records_on_exception(self):
        p = Profiler()
        try:
            with p.timer("kernel.err"):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert p.snapshot()["kernel.err"]["calls"] == 1

    def test_disabled_profiler_is_silent(self):
        p = Profiler(enabled=False)
        p.record("kernel.a", 1.0)
        with p.timer("kernel.b"):
            pass
        assert p.snapshot() == {}

    def test_reset_clears_totals(self):
        p = Profiler()
        p.record("kernel.a", 1.0)
        p.reset()
        assert p.snapshot() == {}


class TestCollect:
    def test_scope_sees_only_its_records(self):
        p = Profiler()
        p.record("kernel.before", 1.0)
        with p.collect() as run:
            p.record("kernel.inside", 2.0)
        snap = run.snapshot()
        assert "kernel.before" not in snap
        assert snap["kernel.inside"]["total_s"] == 2.0
        assert run.total("kernel.inside") == 2.0
        assert run.total("kernel.absent") == 0.0

    def test_nested_scopes_both_record(self):
        p = Profiler()
        with p.collect() as outer:
            with p.collect() as inner:
                p.record("kernel.x", 1.0)
            p.record("kernel.y", 1.0)
        assert inner.total("kernel.x") == 1.0
        assert inner.total("kernel.y") == 0.0
        assert outer.total("kernel.x") == 1.0
        assert outer.total("kernel.y") == 1.0

    def test_scopes_are_thread_local(self):
        p = Profiler()
        seen = {}

        def other_thread():
            p.record("kernel.other", 5.0)
            with p.collect() as run:
                p.record("kernel.mine", 1.0)
            seen["other"] = run.snapshot()

        with p.collect() as run:
            t = threading.Thread(target=other_thread)
            t.start()
            t.join()
        assert "kernel.other" not in run.snapshot()
        assert "kernel.mine" not in run.snapshot()
        assert set(seen["other"]) == {"kernel.mine"}
        # the global totals saw everything
        assert p.snapshot()["kernel.other"]["calls"] == 1


class TestGlobalProfiler:
    def test_module_singleton_enabled(self):
        assert isinstance(PROFILER, Profiler)
        assert PROFILER.enabled
