"""Tests for the tiered statistics cache: sketch answers, exact fallback,
LRU bounding, indexed invalidation, and snapshot/merge/pickle transport."""

import pickle

import numpy as np
import pytest

from repro.core.stats_cache import StatsCache, TieredStatsCache
from repro.engine.database import Database, selection_from_mask
from repro.engine.table import Table
from repro.stats.descriptive import summarize

N_BIG = 20_000


def make_table(n, seed=11, name="tiered_t"):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=n)
    return Table.from_dict({
        "x": x,
        "y": x * 0.6 + rng.normal(scale=0.8, size=n),
        "z": rng.normal(loc=3.0, size=n),
    }, name=name)


@pytest.fixture(scope="module")
def big_table():
    return make_table(N_BIG)


@pytest.fixture(scope="module")
def big_db(big_table):
    db = Database()
    db.register(big_table)
    return db


class TestSketchColumnAnswer:
    def test_small_table_stays_exact(self):
        table = make_table(500, name="small_t")
        db = Database()
        db.register(table)
        cache = TieredStatsCache()
        cache.ensure_sketch(table)
        sel = db.select("small_t", "x > 0")
        assert cache.sketch_column_answer(sel, "y", 0.1) is None
        assert cache.counters.sketch_fallbacks == 0  # covers_all, not a gate

    def test_answer_close_to_exact(self, big_db, big_table):
        cache = TieredStatsCache()
        cache.ensure_sketch(big_table)
        sel = big_db.select("tiered_t", "x > 0")
        answer = cache.sketch_column_answer(sel, "y", 0.1)
        assert answer is not None
        inside, outside, values_in, values_out = answer
        assert cache.counters.sketch_hits >= 1
        exact_in = summarize(
            big_table.column("y").numeric_values()[sel.mask])
        # sample estimates: means agree within a few standard errors
        assert inside.mean == pytest.approx(exact_in.mean,
                                            abs=4 * inside.sem)
        assert inside.n + outside.n <= cache.sketch_capacity
        assert values_in.size == inside.total
        assert values_out.size == outside.total

    def test_tight_margin_falls_back(self, big_db, big_table):
        cache = TieredStatsCache()
        cache.ensure_sketch(big_table)
        sel = big_db.select("tiered_t", "x > 0")
        # margin 0.01 needs ~38k samples; the reservoir holds 4096
        assert cache.sketch_column_answer(sel, "y", 0.01) is None
        assert cache.counters.sketch_fallbacks == 1

    def test_selective_predicate_falls_back(self, big_db, big_table):
        cache = TieredStatsCache()
        cache.ensure_sketch(big_table)
        sel = big_db.select("tiered_t", "x > 2.8")  # ~0.3% of rows
        assert cache.sketch_column_answer(sel, "y", 0.1) is None
        assert cache.counters.sketch_fallbacks == 1

    def test_unknown_column_returns_none(self, big_db, big_table):
        cache = TieredStatsCache()
        cache.ensure_sketch(big_table)
        sel = big_db.select("tiered_t", "x > 0")
        assert cache.sketch_column_answer(sel, "nope", 0.1) is None

    def test_no_sketch_returns_none(self, big_db, big_table):
        cache = TieredStatsCache()
        sel = big_db.select("tiered_t", "x > 0")
        assert cache.sketch_column_answer(sel, "y", 0.1) is None


class TestSketchGroupCorrelations:
    def test_close_to_exact(self, big_db, big_table):
        cache = TieredStatsCache()
        cache.ensure_sketch(big_table)
        sel = big_db.select("tiered_t", "z > 3")
        columns = ("x", "y", "z")
        answer = cache.sketch_group_correlations(sel, columns, 0.1)
        assert answer is not None
        corr_in, n_in, corr_out, n_out = answer
        exact = StatsCache().group_correlations(sel, columns)
        # the planted x-y correlation survives sampling on both sides
        assert corr_in[0, 1] == pytest.approx(exact[0][0, 1], abs=0.1)
        assert corr_out[0, 1] == pytest.approx(exact[2][0, 1], abs=0.1)
        assert n_in.max() <= cache.sketch_capacity

    def test_fallback_counted(self, big_db, big_table):
        cache = TieredStatsCache()
        cache.ensure_sketch(big_table)
        sel = big_db.select("tiered_t", "x > 2.8")
        assert cache.sketch_group_correlations(sel, ("x", "y"), 0.1) is None
        assert cache.counters.sketch_fallbacks == 1


class TestGlobalStatsFromSketch:
    def test_served_exactly_without_exact_traffic(self, big_table):
        cache = TieredStatsCache()
        cache.ensure_sketch(big_table)
        stats = cache.global_column_stats(big_table, "y")
        exact = summarize(big_table.column("y").numeric_values())
        assert stats == exact  # streaming moments are exact
        assert cache.counters.sketch_hits == 1
        assert cache.counters.column_misses == 0
        # second call hits the materialized exact store
        cache.global_column_stats(big_table, "y")
        assert cache.counters.column_hits == 1


class TestTransport:
    def test_snapshot_keeps_tier_and_sketch(self, big_table):
        cache = TieredStatsCache()
        cache.ensure_sketch(big_table)
        clone = cache.snapshot()
        assert isinstance(clone, TieredStatsCache)
        assert clone.sketch_for(big_table.fingerprint()) is not None

    def test_pickle_round_trip(self, big_table):
        cache = TieredStatsCache(max_inside_entries=77, sketch_capacity=512)
        cache.ensure_sketch(big_table)
        clone = pickle.loads(pickle.dumps(cache))
        assert clone.max_inside_entries == 77
        assert clone.sketch_capacity == 512
        sketch = clone.sketch_for(big_table.fingerprint())
        assert sketch is not None and sketch.sample_size == 512

    def test_merge_carries_sketch(self, big_table):
        warm = TieredStatsCache()
        warm.ensure_sketch(big_table)
        cold = TieredStatsCache()
        assert cold.merge_from(warm) >= 1
        assert cold.sketch_for(big_table.fingerprint()) is not None

    def test_cross_kind_merge_interoperates(self, big_table):
        tiered = TieredStatsCache()
        tiered.ensure_sketch(big_table)
        tiered.global_column_stats(big_table, "x")
        plain = StatsCache()
        plain.merge_from(tiered)  # sketch store skipped, no crash
        assert plain.size >= 1
        tiered2 = TieredStatsCache()
        tiered2.merge_from(plain)
        assert tiered2.sketch_for(big_table.fingerprint()) is None


class TestBounding:
    def test_inside_stores_lru_capped(self):
        table = make_table(300, name="lru_t")
        cache = StatsCache(max_inside_entries=10)
        mask = np.zeros(table.n_rows, dtype=bool)
        mask[:50] = True
        for i in range(25):
            sel = selection_from_mask(table, np.roll(mask, i), label=str(i))
            cache.inside_column_stats(sel, "x")
        assert len(cache._inside_stats) == 10
        assert cache.counters.inside_evictions == 15

    def test_lru_keeps_recently_used(self):
        table = make_table(300, name="lru_t2")
        cache = StatsCache(max_inside_entries=2)
        sels = [selection_from_mask(
            table, np.arange(table.n_rows) % (i + 2) == 0, label=str(i))
            for i in range(3)]
        cache.inside_column_stats(sels[0], "x")
        cache.inside_column_stats(sels[1], "x")
        cache.inside_column_stats(sels[0], "x")  # refresh 0
        cache.inside_column_stats(sels[2], "x")  # evicts 1, not 0
        hits_before = cache.counters.inside_hits
        cache.inside_column_stats(sels[0], "x")
        assert cache.counters.inside_hits == hits_before + 1

    def test_eviction_maintains_fingerprint_index(self):
        table = make_table(300, name="lru_t3")
        cache = StatsCache(max_inside_entries=5)
        for i in range(12):
            sel = selection_from_mask(
                table, np.arange(table.n_rows) % 7 == i % 7, label=str(i))
            cache.inside_column_stats(sel, "x")
        cache.invalidate_fingerprint(table.fingerprint())
        assert cache.size == 0
        assert not cache._by_fingerprint


class TestInvalidation:
    def test_only_named_fingerprint_dropped(self, big_db, big_table):
        other = make_table(400, seed=5, name="other_t")
        cache = TieredStatsCache()
        cache.ensure_sketch(big_table)
        cache.ensure_sketch(other)
        cache.global_column_stats(big_table, "x")
        cache.global_column_stats(other, "x")
        before = cache.size
        cache.invalidate_fingerprint(big_table.fingerprint())
        assert cache.sketch_for(big_table.fingerprint()) is None
        assert cache.sketch_for(other.fingerprint()) is not None
        assert cache.size < before
        # the surviving table's entries still serve
        hits = cache.counters.column_hits
        cache.global_column_stats(other, "x")
        assert cache.counters.column_hits == hits + 1
