"""Tests for p-value aggregation and the spurious-view filter."""

import numpy as np
import pytest

from repro.core.config import ZiggyConfig
from repro.core.significance.aggregation import (
    aggregate_p_values,
    bonferroni,
    fisher_combination,
    holm,
    minimum,
)
from repro.core.significance.validator import validate_views
from repro.core.views import ComponentScore, View, ViewResult
from repro.errors import ConfigError
from repro.stats.tests_ import TestResult


class TestAggregationSchemes:
    def test_minimum(self):
        assert minimum([0.5, 0.01, 0.2]) == 0.01

    def test_bonferroni_multiplies(self):
        assert bonferroni([0.01, 0.5, 0.9]) == pytest.approx(0.03)

    def test_bonferroni_capped_at_one(self):
        assert bonferroni([0.5, 0.9]) == 1.0

    def test_holm_at_least_bonferroni_power(self):
        ps = [0.01, 0.02, 0.04]
        assert holm(ps) <= bonferroni(ps) + 1e-12

    def test_holm_known_value(self):
        # Smallest adjusted: 3 * 0.01 = 0.03.
        assert holm([0.04, 0.01, 0.03]) == pytest.approx(0.03)

    def test_fisher_pools_moderate_evidence(self):
        # Many moderately small p-values: Fisher << Bonferroni.
        ps = [0.06] * 10
        assert fisher_combination(ps) < 0.001
        assert bonferroni(ps) == pytest.approx(0.6)

    def test_fisher_uniform_null(self, rng):
        # Under the null, aggregated p should not be systematically small.
        results = [fisher_combination(rng.uniform(size=5)) for _ in range(200)]
        assert 0.3 < np.mean(results) < 0.7

    def test_empty_gives_one(self):
        for scheme in ("min", "bonferroni", "holm", "fisher"):
            assert aggregate_p_values([], scheme) == 1.0

    def test_nan_skipped(self):
        assert minimum([float("nan"), 0.2]) == 0.2

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            minimum([1.5])

    def test_unknown_scheme_raises(self):
        with pytest.raises(ConfigError):
            aggregate_p_values([0.5], "mean")

    def test_all_schemes_monotone_in_evidence(self):
        strong = [0.001, 0.002]
        weak = [0.2, 0.4]
        for scheme in ("min", "bonferroni", "holm", "fisher"):
            assert aggregate_p_values(strong, scheme) < \
                   aggregate_p_values(weak, scheme)


def make_view_result(p_values, columns=("a",)):
    comps = tuple(
        ComponentScore(component=f"c{i}", columns=columns, raw=1.0,
                       normalized=1.0, weight=1.0,
                       test=TestResult(f"c{i}", 1.0, p), direction="higher")
        for i, p in enumerate(p_values))
    return ViewResult(view=View(columns=columns), score=1.0, tightness=1.0,
                      components=comps)


class TestValidateViews:
    def test_significant_view_kept_and_annotated(self):
        views = [make_view_result([0.001, 0.3])]
        kept, notes = validate_views(views, ZiggyConfig(aggregation="min"))
        assert len(kept) == 1
        assert kept[0].significant
        assert kept[0].p_value == pytest.approx(0.001)

    def test_insignificant_dropped_with_note(self):
        views = [make_view_result([0.4, 0.6])]
        kept, notes = validate_views(views, ZiggyConfig())
        assert kept == []
        assert any("dropped 1" in n for n in notes)

    def test_filter_off_keeps_but_flags(self):
        views = [make_view_result([0.9])]
        kept, _ = validate_views(
            views, ZiggyConfig(significance_filter=False))
        assert len(kept) == 1
        assert not kept[0].significant

    def test_bonferroni_stricter_than_min(self):
        views = [make_view_result([0.03, 0.5, 0.5])]
        kept_min, _ = validate_views(views, ZiggyConfig(aggregation="min"))
        kept_bonf, _ = validate_views(
            views, ZiggyConfig(aggregation="bonferroni"))
        assert len(kept_min) == 1
        assert kept_bonf == []  # 3 * 0.03 = 0.09 > 0.05

    def test_view_without_tests_dropped(self):
        vr = ViewResult(view=View(columns=("a",)), score=1.0, tightness=1.0,
                        components=(ComponentScore(
                            "c", ("a",), 1.0, 1.0, 1.0, None, "higher"),))
        kept, _ = validate_views([vr], ZiggyConfig())
        assert kept == []

    def test_alpha_respected(self):
        views = [make_view_result([0.03])]
        assert validate_views(views, ZiggyConfig(alpha=0.05))[0]
        assert validate_views(views, ZiggyConfig(alpha=0.01))[0] == []

    def test_table_wide_multiplicity_scales_by_candidates(self):
        views = [make_view_result([0.01])]
        per_view = ZiggyConfig(aggregation="min")
        table_wide = ZiggyConfig(aggregation="min",
                                 multiplicity="table_wide")
        kept_pv, _ = validate_views(views, per_view, n_candidates=20)
        assert kept_pv and kept_pv[0].p_value == pytest.approx(0.01)
        kept_tw, _ = validate_views(views, table_wide, n_candidates=20)
        assert kept_tw == []  # 0.01 * 20 = 0.2 > alpha

    def test_table_wide_with_single_candidate_equivalent(self):
        views = [make_view_result([0.01])]
        cfg = ZiggyConfig(aggregation="min", multiplicity="table_wide")
        kept, _ = validate_views(views, cfg, n_candidates=1)
        assert kept and kept[0].p_value == pytest.approx(0.01)

    def test_invalid_multiplicity_rejected(self):
        from repro.errors import ConfigError
        with pytest.raises(ConfigError):
            ZiggyConfig(multiplicity="global")
