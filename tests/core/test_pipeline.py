"""Tests for the Ziggy pipeline facade — the core integration surface."""

import numpy as np
import pytest

from repro.core.config import ZiggyConfig
from repro.core.pipeline import Ziggy
from repro.engine.database import Database
from repro.engine.table import Table
from repro.errors import EmptySelectionError


@pytest.fixture
def planted_table(rng):
    """A table with one obvious planted phenomenon."""
    n = 600
    mask_driver = rng.normal(size=n)
    factor = rng.normal(size=n)
    signal1 = factor + rng.normal(scale=0.3, size=n)
    signal2 = factor + rng.normal(scale=0.3, size=n)
    # Selection (driver > 1) gets a strong shift on the signal pair.
    shift = np.where(mask_driver > 1.0, 2.5, 0.0)
    return Table.from_dict({
        "driver": mask_driver,
        "signal_a": signal1 + shift,
        "signal_b": signal2 + shift,
        "noise_1": rng.normal(size=n),
        "noise_2": rng.normal(size=n),
        "noise_3": rng.normal(size=n),
    }, name="planted")


class TestConstruction:
    def test_from_table(self, planted_table):
        z = Ziggy(planted_table)
        assert z.database.table("planted") is planted_table

    def test_from_database(self, planted_table):
        db = Database()
        db.register(planted_table)
        z = Ziggy(db)
        result = z.characterize("driver > 1")   # single table: no name needed
        assert result.n_inside > 0

    def test_multi_table_requires_name(self, planted_table, tiny_table):
        db = Database()
        db.register(planted_table)
        db.register(tiny_table)
        z = Ziggy(db)
        with pytest.raises(ValueError):
            z.characterize("driver > 1")
        result = z.characterize("driver > 1", table="planted")
        assert result.n_inside > 0

    def test_bad_source_type(self):
        with pytest.raises(TypeError):
            Ziggy(42)  # type: ignore[arg-type]


class TestCharacterize:
    def test_finds_planted_view(self, planted_table):
        z = Ziggy(planted_table)
        result = z.characterize("driver > 1")
        assert result.views
        top = result.views[0]
        assert set(top.columns) <= {"signal_a", "signal_b"}
        assert top.significant
        assert top.explanation

    def test_views_disjoint(self, planted_table):
        z = Ziggy(planted_table)
        result = z.characterize("driver > 1")
        seen: set[str] = set()
        for vr in result.views:
            assert not (set(vr.columns) & seen)
            seen.update(vr.columns)

    def test_views_sorted_by_score(self, planted_table):
        z = Ziggy(planted_table)
        result = z.characterize("driver > 1")
        scores = [vr.score for vr in result.views]
        assert scores == sorted(scores, reverse=True)

    def test_timings_cover_stages(self, planted_table):
        z = Ziggy(planted_table)
        result = z.characterize("driver > 1")
        stages = {"preparation", "view_search", "post_processing"}
        assert stages <= set(result.timings)
        # anything beyond the stages is a profiler kernel aggregate
        assert all(name.startswith("kernel.")
                   for name in set(result.timings) - stages)
        assert all(t >= 0 for t in result.timings.values())

    def test_null_selection_mostly_filtered(self, planted_table):
        """A random selection on noise should rarely produce views."""
        z = Ziggy(planted_table)
        result = z.characterize("noise_1 > 0.9")
        # significance filtering keeps spurious findings rare
        assert len(result.views) <= 2

    def test_empty_selection_raises(self, planted_table):
        z = Ziggy(planted_table)
        with pytest.raises(EmptySelectionError):
            z.characterize("driver > 99")

    def test_characterize_query_sql(self, planted_table):
        z = Ziggy(planted_table)
        result = z.characterize_query(
            "SELECT signal_a FROM planted WHERE driver > 1 LIMIT 5")
        assert result.n_inside > 5  # LIMIT must not affect the selection

    def test_per_call_config_override(self, planted_table):
        z = Ziggy(planted_table)
        result = z.characterize("driver > 1",
                                config=ZiggyConfig(max_views=1))
        assert len(result.views) <= 1
        # Engine default unchanged.
        assert z.config.max_views != 1 or True

    def test_clique_strategy_runs(self, planted_table):
        z = Ziggy(planted_table,
                  config=ZiggyConfig(search_strategy="clique"))
        result = z.characterize("driver > 1")
        assert result.views
        assert z.dendrogram_text() is None

    def test_dendrogram_available_after_linkage(self, planted_table):
        z = Ziggy(planted_table)
        z.characterize("driver > 1")
        assert z.dendrogram_text() is not None
        assert "signal_a" in z.dendrogram_text()


class TestStatisticsSharing:
    def test_cache_hits_on_repeat(self, planted_table):
        z = Ziggy(planted_table, share_statistics=True)
        z.characterize("driver > 1")
        misses_after_first = z.cache_counters().misses
        z.characterize("driver > 1")
        assert z.cache_counters().misses == misses_after_first
        assert z.cache_counters().hits > 0

    def test_sharing_disabled(self, planted_table):
        z = Ziggy(planted_table, share_statistics=False)
        z.characterize("driver > 1")
        assert z.cache_counters() is None

    def test_shared_results_identical_to_cold(self, planted_table):
        warm = Ziggy(planted_table, share_statistics=True)
        warm.characterize("driver > 0.5")
        warm_result = warm.characterize("driver > 1")
        cold_result = Ziggy(planted_table,
                            share_statistics=False).characterize("driver > 1")
        assert [v.columns for v in warm_result.views] == \
               [v.columns for v in cold_result.views]
        for a, b in zip(warm_result.views, cold_result.views):
            assert a.score == pytest.approx(b.score, rel=1e-9)
            assert a.p_value == pytest.approx(b.p_value, rel=1e-6)


class TestDeterminism:
    def test_repeat_runs_identical(self, planted_table):
        r1 = Ziggy(planted_table).characterize("driver > 1")
        r2 = Ziggy(planted_table).characterize("driver > 1")
        assert [v.columns for v in r1.views] == [v.columns for v in r2.views]
        assert [v.score for v in r1.views] == \
               pytest.approx([v.score for v in r2.views])
        assert [v.explanation for v in r1.views] == \
               [v.explanation for v in r2.views]


class TestEndToEndCrime(object):
    """Integration against the crime dataset (the paper's narrative)."""

    def test_high_crime_story(self, crime_small):
        from repro.data.crime import high_crime_predicate
        z = Ziggy(crime_small)
        result = z.characterize(high_crime_predicate(crime_small))
        assert len(result.views) >= 4
        # Every view significant under Bonferroni.
        assert all(v.significant for v in result.views)
        # The narrated directions hold where the columns appear.
        direction_of = {}
        for vr in result.views:
            for comp in vr.components:
                if comp.component == "mean_shift":
                    direction_of[comp.columns[0]] = comp.direction
        for col in ("pct_college_educated", "avg_salary", "pct_home_owners"):
            if col in direction_of:
                assert direction_of[col] == "lower", col
        for col in ("population", "pop_density",
                    "pct_monoparental_families"):
            if col in direction_of:
                assert direction_of[col] == "higher", col
