"""Tests for the Zig-Components."""

import numpy as np
import pytest

from repro.core.components.base import (
    ColumnSlice,
    ComponentRegistry,
    DEFAULT_COMPONENTS,
    PairSlice,
    ZigComponent,
    default_registry,
)
from repro.core.components.categorical import FrequencyShiftComponent
from repro.core.components.correlation import CorrelationShiftComponent
from repro.core.components.dominance import DominanceComponent
from repro.core.components.missing import MissingShiftComponent
from repro.core.components.numeric import (
    MeanShiftComponent,
    SpreadShiftComponent,
)
from repro.errors import ComponentError, UnknownComponentError
from repro.stats.histogram import frequency_profile


def numeric_slice(inside, outside, name="col"):
    return ColumnSlice(name=name, is_categorical=False,
                       inside=np.asarray(inside, dtype=np.float64),
                       outside=np.asarray(outside, dtype=np.float64))


def categorical_slice(inside_labels, outside_labels, name="cat"):
    return ColumnSlice(
        name=name, is_categorical=True,
        inside_profile=frequency_profile(inside_labels),
        outside_profile=frequency_profile(outside_labels))


class TestMeanShift:
    def test_detects_shift(self, rng, two_group_data):
        inside, outside = two_group_data
        outcome = MeanShiftComponent().compute(numeric_slice(inside, outside))
        assert outcome is not None
        assert outcome.raw > 0.5
        assert outcome.direction == "higher"
        assert outcome.test.p_value < 1e-6
        assert outcome.detail["mean_inside"] > outcome.detail["mean_outside"]

    def test_direction_lower(self, rng):
        outcome = MeanShiftComponent().compute(numeric_slice(
            rng.normal(-2, 1, 100), rng.normal(0, 1, 100)))
        assert outcome.direction == "lower"

    def test_null_not_significant(self, rng):
        outcome = MeanShiftComponent().compute(numeric_slice(
            rng.normal(size=200), rng.normal(size=200)))
        assert abs(outcome.raw) < 0.3

    def test_degenerate_returns_none(self):
        outcome = MeanShiftComponent().compute(numeric_slice(
            [1.0, 1.0, 1.0], [2.0, 2.0, 2.0]))
        assert outcome is None  # zero pooled variance, unequal means

    def test_tiny_group_returns_none(self):
        assert MeanShiftComponent().compute(numeric_slice([1.0], [1.0, 2.0])) \
               is None

    def test_not_applicable_to_categorical(self):
        comp = MeanShiftComponent()
        assert not comp.applicable(categorical_slice(["a"], ["b"]))


class TestSpreadShift:
    def test_detects_wider_selection(self, rng):
        outcome = SpreadShiftComponent().compute(numeric_slice(
            rng.normal(0, 3, 300), rng.normal(0, 1, 700)))
        assert outcome.raw == pytest.approx(np.log(3), abs=0.2)
        assert outcome.direction == "higher"
        assert outcome.test.name == "levene"
        assert outcome.test.p_value < 1e-6

    def test_falls_back_to_f_test_without_raw_data(self, rng):
        from repro.stats.descriptive import summarize
        s = ColumnSlice(name="c", is_categorical=False,
                        inside_stats=summarize(rng.normal(0, 3, 300)),
                        outside_stats=summarize(rng.normal(0, 1, 700)))
        outcome = SpreadShiftComponent().compute(s)
        assert outcome is not None
        assert outcome.test.name == "f_var"

    def test_constant_both_none(self):
        assert SpreadShiftComponent().compute(numeric_slice(
            [1.0, 1.0], [1.0, 1.0])) is not None  # ratio 0, p=1
        assert SpreadShiftComponent().compute(numeric_slice(
            [1.0, 1.0], [1.0, 2.0])) is None      # one-sided degenerate


class TestDominance:
    def test_detects_dominance(self, rng):
        outcome = DominanceComponent().compute(numeric_slice(
            rng.normal(2, 1, 200), rng.normal(0, 1, 500)))
        assert outcome.raw > 0.5
        assert outcome.test.p_value < 1e-6

    def test_requires_raw_values(self):
        s = ColumnSlice(name="c", is_categorical=False)
        assert DominanceComponent().compute(s) is None


class TestCorrelationShift:
    def test_detects_gap(self):
        pair = PairSlice(x=ColumnSlice("x", False), y=ColumnSlice("y", False),
                         r_inside=0.9, r_outside=0.1,
                         n_inside=200, n_outside=500)
        outcome = CorrelationShiftComponent().compute(pair)
        assert outcome.raw > 1.0
        assert outcome.direction == "stronger"
        assert outcome.test.p_value < 1e-6

    def test_weaker_direction(self):
        pair = PairSlice(x=ColumnSlice("x", False), y=ColumnSlice("y", False),
                         r_inside=0.1, r_outside=0.8,
                         n_inside=100, n_outside=100)
        assert CorrelationShiftComponent().compute(pair).direction == "weaker"

    def test_reversed_direction(self):
        pair = PairSlice(x=ColumnSlice("x", False), y=ColumnSlice("y", False),
                         r_inside=-0.7, r_outside=0.6,
                         n_inside=100, n_outside=100)
        assert CorrelationShiftComponent().compute(pair).direction == "reversed"

    def test_small_groups_none(self):
        pair = PairSlice(x=ColumnSlice("x", False), y=ColumnSlice("y", False),
                         r_inside=0.9, r_outside=0.1,
                         n_inside=3, n_outside=100)
        assert CorrelationShiftComponent().compute(pair) is None

    def test_nan_correlation_none(self):
        pair = PairSlice(x=ColumnSlice("x", False), y=ColumnSlice("y", False),
                         r_inside=float("nan"), r_outside=0.1,
                         n_inside=100, n_outside=100)
        assert CorrelationShiftComponent().compute(pair) is None


class TestFrequencyShift:
    def test_detects_profile_shift(self):
        inside = ["a"] * 80 + ["b"] * 20
        outside = ["a"] * 30 + ["b"] * 70
        outcome = FrequencyShiftComponent().compute(
            categorical_slice(inside, outside))
        assert outcome.raw == pytest.approx(0.5, abs=0.01)
        assert outcome.direction == "different"
        assert outcome.test.p_value < 1e-6
        over = dict(outcome.detail["over_represented"])
        assert "a" in over

    def test_identical_profiles_zero(self):
        labels = ["x"] * 10 + ["y"] * 10
        outcome = FrequencyShiftComponent().compute(
            categorical_slice(labels, labels))
        assert outcome.raw == 0.0

    def test_single_category_none(self):
        assert FrequencyShiftComponent().compute(
            categorical_slice(["a", "a"], ["a", "a"])) is None

    def test_empty_group_none(self):
        assert FrequencyShiftComponent().compute(
            categorical_slice([], ["a", "b"])) is None


class TestMissingShift:
    def test_numeric_missing_gap(self):
        inside = [1.0, np.nan, np.nan, 4.0]
        outside = [1.0, 2.0, 3.0, 4.0] * 10
        outcome = MissingShiftComponent().compute(
            numeric_slice(inside, outside))
        assert outcome.raw == pytest.approx(0.5)
        assert outcome.direction == "higher"

    def test_categorical_missing_gap(self):
        outcome = MissingShiftComponent().compute(categorical_slice(
            ["a", None, None, "b"], ["a", "b"] * 20))
        assert outcome.raw == pytest.approx(0.5)

    def test_no_missing_anywhere_none(self):
        assert MissingShiftComponent().compute(numeric_slice(
            [1.0, 2.0], [3.0, 4.0])) is None


class TestRegistry:
    def test_default_registry_contents(self):
        reg = default_registry()
        for name in DEFAULT_COMPONENTS:
            assert name in reg
        assert "dominance" in reg
        assert "skew_shift" in reg
        assert len(reg.unary()) == 6
        assert len(reg.pairwise()) == 1

    def test_duplicate_registration_raises(self):
        reg = default_registry()
        with pytest.raises(ComponentError):
            reg.register(MeanShiftComponent())
        reg.register(MeanShiftComponent(), replace=True)  # explicit ok

    def test_unknown_component(self):
        with pytest.raises(UnknownComponentError) as exc:
            default_registry().get("nope")
        assert "mean_shift" in str(exc.value)

    def test_copy_isolated(self):
        reg = default_registry()
        copy = reg.copy()

        class Custom(ZigComponent):
            name = "custom"

            def compute(self, data):
                return None

        copy.register(Custom())
        assert "custom" in copy
        assert "custom" not in reg

    def test_invalid_component_declarations(self):
        reg = ComponentRegistry()

        class NoName(ZigComponent):
            name = ""

            def compute(self, data):
                return None

        with pytest.raises(ComponentError):
            reg.register(NoName())

        class BadArity(ZigComponent):
            name = "bad"
            arity = 3

            def compute(self, data):
                return None

        with pytest.raises(ComponentError):
            reg.register(BadArity())
