"""Tests for the result dataclasses."""

import pytest

from repro.core.views import (
    CharacterizationResult,
    ComponentScore,
    View,
    ViewResult,
)
from repro.stats.tests_ import TestResult


def make_component(name="mean_shift", columns=("a",), p=0.01, weight=1.0,
                   normalized=2.0):
    return ComponentScore(
        component=name, columns=columns, raw=1.0, normalized=normalized,
        weight=weight, test=TestResult(name, 1.0, p), direction="higher")


class TestView:
    def test_columns_sorted(self):
        assert View(columns=("b", "a")).columns == ("a", "b")

    def test_equality_order_insensitive(self):
        assert View(columns=("x", "y")) == View(columns=("y", "x"))

    def test_dimension(self):
        assert View(columns=("a", "b", "c")).dimension == 3

    def test_overlap(self):
        assert View(columns=("a", "b")).overlaps(View(columns=("b", "c")))
        assert not View(columns=("a",)).overlaps(View(columns=("b",)))

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            View(columns=())

    def test_str(self):
        assert str(View(columns=("a", "b"))) == "{a, b}"


class TestComponentScore:
    def test_weighted(self):
        c = make_component(weight=2.0, normalized=3.0)
        assert c.weighted == 6.0

    def test_p_value_without_test(self):
        c = ComponentScore("x", ("a",), 0.0, 0.0, 1.0, None, "higher")
        assert c.p_value == 1.0
        assert c.confidence == 0.0

    def test_confidence(self):
        assert make_component(p=0.05).confidence == pytest.approx(0.95)


class TestViewResult:
    def test_top_components_by_confidence(self):
        strong = make_component("spread_shift", p=0.001)
        weak = make_component("mean_shift", p=0.2)
        vr = ViewResult(view=View(columns=("a",)), score=1.0, tightness=1.0,
                        components=(weak, strong))
        top = vr.top_components(1)
        assert top[0].component == "spread_shift"

    def test_top_components_deterministic_tiebreak(self):
        a = make_component("a_comp", p=0.01)
        b = make_component("b_comp", p=0.01)
        vr = ViewResult(view=View(columns=("a",)), score=1.0, tightness=1.0,
                        components=(b, a))
        assert [c.component for c in vr.top_components(2)] == \
               ["a_comp", "b_comp"]

    def test_summary_line_flags_insignificance(self):
        vr = ViewResult(view=View(columns=("a",)), score=1.0, tightness=1.0,
                        components=(), significant=False)
        assert "not significant" in vr.summary_line()


class TestCharacterizationResult:
    def make(self, views=()):
        return CharacterizationResult(
            views=tuple(views), n_inside=10, n_outside=90,
            n_columns_considered=5,
            timings={"preparation": 0.1, "view_search": 0.02,
                     "post_processing": 0.01},
            predicate="(x > 1)")

    def test_total_time(self):
        assert self.make().total_time == pytest.approx(0.13)

    def test_best_empty(self):
        assert self.make().best() is None

    def test_view_for(self):
        vr = ViewResult(view=View(columns=("a", "b")), score=1.0,
                        tightness=1.0, components=())
        result = self.make([vr])
        assert result.view_for("a") is vr
        assert result.view_for("zzz") is None

    def test_describe_mentions_counts(self):
        text = self.make().describe()
        assert "10 rows inside" in text
        assert "(x > 1)" in text
