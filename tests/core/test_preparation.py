"""Tests for the preparation stage."""

import numpy as np
import pytest

from repro.core.components.base import default_registry
from repro.core.config import ZiggyConfig
from repro.core.preparation import PreparationEngine, active_components
from repro.engine.database import Database
from repro.engine.table import Table
from repro.errors import EmptySelectionError


@pytest.fixture
def prep_db(rng):
    n = 400
    factor = rng.normal(size=n)
    table = Table.from_dict({
        "driver": rng.normal(size=n),
        "t1": factor + rng.normal(scale=0.3, size=n),
        "t2": factor + rng.normal(scale=0.3, size=n),
        "lonely": rng.normal(size=n),
        "cat": [("u", "v", "w")[k] for k in rng.integers(0, 3, size=n)],
    }, name="prep")
    db = Database()
    db.register(table)
    return db


class TestActiveComponents:
    def test_default_set(self):
        chosen = active_components(default_registry(), ZiggyConfig())
        names = {c.name for c, _ in chosen}
        assert names == {"mean_shift", "spread_shift", "correlation_shift",
                         "frequency_shift", "missing_shift"}

    def test_zero_weight_disables(self):
        cfg = ZiggyConfig(weights={"mean_shift": 0.0})
        names = {c.name for c, _ in
                 active_components(default_registry(), cfg)}
        assert "mean_shift" not in names

    def test_optional_component_enabled_by_weight(self):
        cfg = ZiggyConfig(weights={"dominance": 2.0})
        chosen = dict((c.name, w) for c, w in
                      active_components(default_registry(), cfg))
        assert chosen["dominance"] == 2.0


class TestPrepare:
    def test_structure(self, prep_db):
        sel = prep_db.select("prep", "driver > 0")
        prepared = PreparationEngine().prepare(sel, ZiggyConfig())
        assert set(prepared.active_columns) == {"t1", "t2", "lonely", "cat"}
        assert set(prepared.column_slices) == set(prepared.active_columns)
        # t1-t2 is the only tight numeric pair.
        assert ("t1", "t2") in prepared.pair_slices

    def test_predicate_columns_excluded_by_default(self, prep_db):
        sel = prep_db.select("prep", "driver > 0")
        prepared = PreparationEngine().prepare(sel, ZiggyConfig())
        assert "driver" not in prepared.active_columns
        assert any("driver" in n for n in prepared.notes)

    def test_predicate_columns_kept_when_configured(self, prep_db):
        sel = prep_db.select("prep", "driver > 0")
        cfg = ZiggyConfig(exclude_predicate_columns=False)
        prepared = PreparationEngine().prepare(sel, cfg)
        assert "driver" in prepared.active_columns

    def test_explicit_exclusions(self, prep_db):
        sel = prep_db.select("prep", "driver > 0")
        cfg = ZiggyConfig(excluded_columns=("lonely", "cat"))
        prepared = PreparationEngine().prepare(sel, cfg)
        assert "lonely" not in prepared.active_columns
        assert "cat" not in prepared.active_columns

    def test_categorical_excluded_when_configured(self, prep_db):
        sel = prep_db.select("prep", "driver > 0")
        cfg = ZiggyConfig(include_categorical=False)
        prepared = PreparationEngine().prepare(sel, cfg)
        assert "cat" not in prepared.active_columns

    def test_pairwise_disabled(self, prep_db):
        sel = prep_db.select("prep", "driver > 0")
        cfg = ZiggyConfig(correlation_components=False)
        prepared = PreparationEngine().prepare(sel, cfg)
        assert prepared.pair_slices == {}

    def test_empty_selection_raises(self, prep_db):
        sel = prep_db.select("prep", "driver > 1000")
        with pytest.raises(EmptySelectionError):
            PreparationEngine().prepare(sel, ZiggyConfig())

    def test_full_selection_raises(self, prep_db):
        sel = prep_db.select("prep", None)
        with pytest.raises(EmptySelectionError):
            PreparationEngine().prepare(sel, ZiggyConfig())

    def test_min_group_size_enforced(self, prep_db):
        table = prep_db.table("prep")
        values = np.sort(table.column("driver").numeric_values())
        # Select exactly 3 rows.
        sel = prep_db.select("prep", f"driver < {values[3]:.9f}")
        with pytest.raises(EmptySelectionError):
            PreparationEngine().prepare(sel, ZiggyConfig(min_group_size=8))

    def test_catalog_populated(self, prep_db):
        sel = prep_db.select("prep", "driver > 0")
        prepared = PreparationEngine().prepare(sel, ZiggyConfig())
        assert prepared.catalog.unary        # every column got components
        assert "cat" in prepared.catalog.unary  # frequency shift ran
        mean_scores = [s for scores in prepared.catalog.unary.values()
                       for s in scores if s.component == "mean_shift"]
        assert mean_scores

    def test_pair_slice_correlations_correct(self, prep_db):
        sel = prep_db.select("prep", "driver > 0")
        prepared = PreparationEngine().prepare(sel, ZiggyConfig())
        pair = prepared.pair_slices[("t1", "t2")]
        table = prep_db.table("prep")
        from repro.stats.correlation import pearson
        t1 = table.column("t1").numeric_values()
        t2 = table.column("t2").numeric_values()
        assert pair.r_inside == pytest.approx(
            pearson(t1[sel.mask], t2[sel.mask]), abs=1e-9)
        assert pair.r_outside == pytest.approx(
            pearson(t1[~sel.mask], t2[~sel.mask]), abs=1e-9)
        assert pair.n_inside == sel.n_inside

    def test_categorical_slices_have_profiles(self, prep_db):
        sel = prep_db.select("prep", "driver > 0")
        prepared = PreparationEngine().prepare(sel, ZiggyConfig())
        cat_slice = prepared.column_slices["cat"]
        assert cat_slice.is_categorical
        assert cat_slice.inside_profile.n == sel.n_inside
        assert cat_slice.outside_profile.n == sel.n_outside

    def test_shared_cache_reused_across_calls(self, prep_db):
        from repro.core.stats_cache import StatsCache
        cache = StatsCache()
        engine = PreparationEngine(cache=cache)
        engine.prepare(prep_db.select("prep", "driver > 0"), ZiggyConfig())
        hits_before = cache.counters.hits
        engine.prepare(prep_db.select("prep", "driver > 0.5"), ZiggyConfig())
        assert cache.counters.hits > hits_before
