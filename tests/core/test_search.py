"""Tests for candidate generation, ranking and the searcher facade."""

import numpy as np
import pytest

from repro.core.config import ZiggyConfig
from repro.core.dependency import DependencyMatrix
from repro.core.dissimilarity import ComponentCatalog
from repro.core.search.candidates import linkage_candidates, trim_to_dimension
from repro.core.search.clique import clique_candidates
from repro.core.search.linkage import complete_linkage
from repro.core.search.ranking import enforce_disjointness, rank_candidates
from repro.core.views import ComponentScore, View, ViewResult


def make_dependency(names, pairs):
    """Dependency matrix with given pairwise similarities (default 0)."""
    m = len(names)
    mat = np.zeros((m, m))
    np.fill_diagonal(mat, 1.0)
    idx = {n: i for i, n in enumerate(names)}
    for (a, b), s in pairs.items():
        mat[idx[a], idx[b]] = mat[idx[b], idx[a]] = s
    return DependencyMatrix(names=tuple(names), matrix=mat, method="pearson")


def make_catalog(scores: dict[str, float]) -> ComponentCatalog:
    catalog = ComponentCatalog()
    for col, value in scores.items():
        catalog.unary[col] = [ComponentScore(
            component="mean_shift", columns=(col,), raw=value,
            normalized=abs(value), weight=1.0, test=None, direction="higher")]
    return catalog


NAMES = ("a", "b", "c", "d", "e")
PAIRS = {("a", "b"): 0.9, ("a", "c"): 0.8, ("b", "c"): 0.85,
         ("d", "e"): 0.7}


class TestTrimToDimension:
    def test_splits_along_subtree(self):
        dep = make_dependency(NAMES, PAIRS)
        dend = complete_linkage(dep.distance_matrix(), dep.names)
        # The abc cluster has 3 leaves; trimming to 2 must split it into
        # subtree-consistent groups.
        node = next(n for n in dend.cut_nodes(0.5) if n.size == 3)
        groups = trim_to_dimension(node, dend.labels, 2)
        assert sorted(len(g) for g in groups) == [1, 2]
        assert {c for g in groups for c in g} == {"a", "b", "c"}

    def test_small_node_untouched(self):
        dep = make_dependency(NAMES, PAIRS)
        dend = complete_linkage(dep.distance_matrix(), dep.names)
        groups = trim_to_dimension(dend.root, dend.labels, 10)
        assert groups == [tuple(dend.labels[i] for i in dend.root.leaves)]


class TestLinkageCandidates:
    def test_respects_tightness_cut(self):
        dep = make_dependency(NAMES, PAIRS)
        dend = complete_linkage(dep.distance_matrix(), dep.names)
        config = ZiggyConfig(min_tightness=0.6, max_view_dim=3)
        candidates = linkage_candidates(dend, config, ComponentCatalog())
        for view in candidates:
            assert dep.tightness(view.columns) >= 0.6

    def test_dimension_cap(self):
        dep = make_dependency(NAMES, PAIRS)
        dend = complete_linkage(dep.distance_matrix(), dep.names)
        config = ZiggyConfig(min_tightness=0.6, max_view_dim=2)
        candidates = linkage_candidates(dend, config, ComponentCatalog())
        assert all(v.dimension <= 2 for v in candidates)

    def test_all_columns_covered(self):
        dep = make_dependency(NAMES, PAIRS)
        dend = complete_linkage(dep.distance_matrix(), dep.names)
        config = ZiggyConfig(min_tightness=0.6)
        candidates = linkage_candidates(dend, config, ComponentCatalog())
        covered = {c for v in candidates for c in v.columns}
        assert covered == set(NAMES)

    def test_no_duplicates(self):
        dep = make_dependency(NAMES, PAIRS)
        dend = complete_linkage(dep.distance_matrix(), dep.names)
        candidates = linkage_candidates(dend, ZiggyConfig(),
                                        ComponentCatalog())
        keys = [v.columns for v in candidates]
        assert len(keys) == len(set(keys))


class TestCliqueCandidates:
    def test_finds_cliques(self):
        dep = make_dependency(NAMES, PAIRS)
        config = ZiggyConfig(min_tightness=0.6, max_view_dim=3)
        candidates = clique_candidates(dep, config, ComponentCatalog())
        cols = {v.columns for v in candidates}
        assert ("a", "b", "c") in cols       # the triangle
        assert ("d", "e") in cols

    def test_exact_tightness_guarantee(self):
        dep = make_dependency(NAMES, PAIRS)
        config = ZiggyConfig(min_tightness=0.75, max_view_dim=3)
        candidates = clique_candidates(dep, config, ComponentCatalog())
        for view in candidates:
            assert dep.tightness(view.columns) >= 0.75

    def test_isolated_columns_become_singletons(self):
        dep = make_dependency(("x", "y"), {})
        candidates = clique_candidates(dep, ZiggyConfig(min_tightness=0.5),
                                       ComponentCatalog())
        assert {v.columns for v in candidates} == {("x",), ("y",)}

    def test_oversized_clique_trimmed_by_score(self):
        dep = make_dependency(NAMES, PAIRS)
        catalog = make_catalog({"a": 1.0, "b": 5.0, "c": 3.0})
        config = ZiggyConfig(min_tightness=0.6, max_view_dim=2)
        candidates = clique_candidates(dep, config, catalog)
        assert View(columns=("b", "c")) in candidates  # top-2 by score


class TestRanking:
    def test_sorted_by_score(self):
        dep = make_dependency(NAMES, PAIRS)
        catalog = make_catalog({"a": 1.0, "b": 9.0, "d": 4.0})
        ranked = rank_candidates(
            [View(columns=("a",)), View(columns=("b",)), View(columns=("d",))],
            catalog, dep, ZiggyConfig())
        assert [r.columns for r in ranked] == [("b",), ("d",), ("a",)]

    def test_tightness_guard_drops_violators(self):
        dep = make_dependency(NAMES, PAIRS)
        catalog = make_catalog({"a": 1.0, "d": 1.0})
        ranked = rank_candidates([View(columns=("a", "d"))], catalog, dep,
                                 ZiggyConfig(min_tightness=0.5))
        assert ranked == []

    def test_unmeasurable_views_dropped(self):
        dep = make_dependency(NAMES, PAIRS)
        ranked = rank_candidates([View(columns=("e",))], ComponentCatalog(),
                                 dep, ZiggyConfig())
        assert ranked == []

    def test_tightness_recorded(self):
        dep = make_dependency(NAMES, PAIRS)
        catalog = make_catalog({"d": 1.0, "e": 1.0})
        ranked = rank_candidates([View(columns=("d", "e"))], catalog, dep,
                                 ZiggyConfig(min_tightness=0.5))
        assert ranked[0].tightness == pytest.approx(0.7)


class TestDisjointness:
    def make_result(self, columns, score):
        return ViewResult(view=View(columns=columns), score=score,
                          tightness=1.0, components=())

    def test_greedy_disjoint(self):
        ranked = [self.make_result(("a", "b"), 10.0),
                  self.make_result(("b", "c"), 9.0),
                  self.make_result(("c", "d"), 8.0),
                  self.make_result(("e",), 7.0)]
        kept = enforce_disjointness(ranked, max_views=10)
        assert [r.columns for r in kept] == [("a", "b"), ("c", "d"), ("e",)]

    def test_max_views_cap(self):
        ranked = [self.make_result((c,), 10.0 - i)
                  for i, c in enumerate("abcdef")]
        assert len(enforce_disjointness(ranked, max_views=3)) == 3

    def test_pairwise_disjoint_invariant(self):
        ranked = [self.make_result(("a", "b"), 5.0),
                  self.make_result(("a", "c"), 4.0),
                  self.make_result(("b", "d"), 3.0)]
        kept = enforce_disjointness(ranked, max_views=10)
        seen: set[str] = set()
        for r in kept:
            assert not (set(r.columns) & seen)
            seen.update(r.columns)
