"""End-to-end integration scenarios across all layers."""

import io

import numpy as np
import pytest

from repro import (
    Database,
    Ziggy,
    ZiggyConfig,
    load_dataset,
    read_csv,
    selection_from_mask,
    write_csv,
)
from repro.app.session import ZiggySession


class TestCsvToViewsRoundtrip:
    """A user's own CSV flows through the identical pipeline."""

    def test_csv_file_characterization(self, tmp_path, rng):
        n = 800
        driver = rng.normal(size=n)
        factor = rng.normal(size=n)
        shift = np.where(driver > 1, 2.0, 0.0)
        from repro.engine.table import Table
        original = Table.from_dict({
            "driver": driver,
            "a": factor + shift + rng.normal(scale=0.3, size=n),
            "b": factor + shift + rng.normal(scale=0.3, size=n),
            "label": [("x", "y")[int(v > 0)] for v in rng.normal(size=n)],
            "noise": rng.normal(size=n),
        }, name="user_data")
        path = tmp_path / "user_data.csv"
        write_csv(original, path)

        table = read_csv(path)
        result = Ziggy(table).characterize("driver > 1")
        assert result.views
        assert set(result.views[0].columns) <= {"a", "b"}

    def test_csv_stream_with_messy_values(self):
        text = ("id,price,city,stock\n"
                "1,10.5,ams,true\n"
                "2,NA,utr,false\n"
                "3,30.0,ams,true\n"
                "4,12.0,?,\n") + "\n".join(
            f"{i},{10 + i % 7},{'ams' if i % 2 else 'utr'},true"
            for i in range(5, 60)) + "\n"
        table = read_csv(io.StringIO(text), name="shop")
        db = Database()
        db.register(table)
        sel = db.select("shop", "price > 12 AND city = 'ams'")
        assert sel.n_inside > 0
        assert sel.n_inside + sel.n_outside == table.n_rows


class TestMaskSelections:
    """Front-ends that brush rows interactively skip the query language."""

    def test_characterize_brushed_rows(self, crime_small):
        values = crime_small.column("violent_crime_rate").numeric_values()
        mask = values > np.nanquantile(values, 0.9)
        selection = selection_from_mask(crime_small, mask, label="brush")
        result = Ziggy(crime_small).characterize_selection(selection)
        assert result.views
        # Predicate columns cannot be excluded (there is no predicate),
        # so the crime columns themselves may appear — that is correct.
        assert result.predicate == "TRUE"


class TestStrategyAgreement:
    """Linkage and clique searches must agree on obvious structure."""

    def test_same_top_story(self, rng):
        from repro.engine.table import Table
        n = 1500
        driver = rng.normal(size=n)
        f = rng.normal(size=n)
        shift = np.where(driver > 1, 2.5, 0.0)
        table = Table.from_dict({
            "driver": driver,
            "planted_a": f + shift + rng.normal(scale=0.2, size=n),
            "planted_b": f + shift + rng.normal(scale=0.2, size=n),
            **{f"noise_{j}": rng.normal(size=n) for j in range(6)},
        }, name="agree")
        linkage = Ziggy(table, config=ZiggyConfig(
            search_strategy="linkage")).characterize("driver > 1")
        clique = Ziggy(table, config=ZiggyConfig(
            search_strategy="clique")).characterize("driver > 1")
        assert set(linkage.views[0].columns) == set(clique.views[0].columns)


class TestNmiDependencyPath:
    def test_nonlinear_pair_groups_only_under_nmi(self, rng):
        from repro.engine.table import Table
        n = 3000
        driver = rng.normal(size=n)
        x = rng.normal(size=n)
        parabola = x ** 2 + rng.normal(scale=0.1, size=n)
        table = Table.from_dict({
            "driver": driver,
            "x": x + np.where(driver > 1, 1.5, 0.0),
            "parabola": parabola + np.where(driver > 1, 1.5, 0.0),
            "noise": rng.normal(size=n),
        }, name="nonlinear")
        pearson_cfg = ZiggyConfig(dependency_method="pearson",
                                  min_tightness=0.3)
        nmi_cfg = ZiggyConfig(dependency_method="nmi", min_tightness=0.3)
        r_p = Ziggy(table, config=pearson_cfg).characterize("driver > 1")
        r_n = Ziggy(table, config=nmi_cfg).characterize("driver > 1")
        paired_under = {
            "pearson": any(set(v.columns) == {"parabola", "x"}
                           for v in r_p.views),
            "nmi": any(set(v.columns) == {"parabola", "x"}
                       for v in r_n.views),
        }
        assert not paired_under["pearson"]
        assert paired_under["nmi"]


class TestMultiDatasetSession:
    def test_session_switches_tables_with_isolated_engines(self):
        session = ZiggySession()
        session.add_table(load_dataset("boxoffice", n_rows=300))
        session.add_table(load_dataset("us_crime", n_rows=400))
        r1 = session.run("gross > 200000000", table="boxoffice")
        r2 = session.run("violent_crime_rate > 0.2", table="us_crime")
        assert r1.views and r2.views
        assert session.history[0].table_name == "boxoffice"
        assert session.history[1].table_name == "us_crime"
        # Each engine keeps its own cache; re-running boxoffice hits it.
        engine = session._engine_for("boxoffice")
        misses = engine.cache_counters().misses
        session.run("gross > 200000000", table="boxoffice")
        assert engine.cache_counters().misses == misses


class TestSqlFacadeParity:
    def test_sql_and_predicate_paths_agree(self, boxoffice_small):
        z = Ziggy(boxoffice_small)
        via_pred = z.characterize("gross > 200000000")
        via_sql = z.characterize_query(
            "SELECT budget, gross FROM boxoffice WHERE gross > 200000000 "
            "ORDER BY gross DESC LIMIT 3")
        assert [v.columns for v in via_pred.views] == \
               [v.columns for v in via_sql.views]

    def test_aggregate_exploration_then_characterize(self, boxoffice_small):
        """The full explorer loop: summarize first, then drill in."""
        db = Database()
        db.register(boxoffice_small)
        summary = db.query(
            "SELECT genre, count(*), avg(gross) FROM boxoffice "
            "GROUP BY genre ORDER BY genre")
        assert summary.n_rows >= 4
        # Pick a genre and ask why it is special.
        z = Ziggy(db)
        result = z.characterize("genre = 'documentary'", table="boxoffice")
        directions = {c.columns[0]: c.direction
                      for v in result.views for c in v.components
                      if c.component == "mean_shift"}
        if "budget" in directions:
            assert directions["budget"] == "lower"


class TestErrorSurface:
    def test_friendly_errors_end_to_end(self, boxoffice_small):
        z = Ziggy(boxoffice_small)
        from repro.errors import (
            EmptySelectionError,
            QuerySyntaxError,
            UnknownColumnError,
        )
        with pytest.raises(QuerySyntaxError):
            z.characterize("gross >")
        with pytest.raises(UnknownColumnError):
            z.characterize("gros > 1")
        with pytest.raises(EmptySelectionError):
            z.characterize("gross > 1e18")
