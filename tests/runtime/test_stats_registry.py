"""Tests for the SharedStatsRegistry: fingerprint keying, cross-client
hit accounting, thread safety."""

import threading

import numpy as np
import pytest

from repro.engine.table import Table
from repro.runtime import SharedStatsRegistry


@pytest.fixture
def table(rng):
    return Table.from_dict({"x": rng.normal(size=200),
                            "y": rng.normal(size=200)}, name="reg_t")


class TestKeying:
    def test_same_table_same_cache(self, table):
        registry = SharedStatsRegistry()
        assert registry.cache_for(table) is registry.cache_for(table)

    def test_identical_content_shares_cache(self, rng):
        data = rng.normal(size=100)
        a = Table.from_dict({"v": data}, name="t")
        b = Table.from_dict({"v": data.copy()}, name="t")
        registry = SharedStatsRegistry()
        assert registry.cache_for(a) is registry.cache_for(b)

    def test_different_content_distinct_caches(self, rng):
        a = Table.from_dict({"v": rng.normal(size=50)}, name="t")
        b = Table.from_dict({"v": rng.normal(size=50)}, name="t")
        registry = SharedStatsRegistry()
        assert registry.cache_for(a) is not registry.cache_for(b)


class TestCounters:
    def test_first_borrow_is_miss(self, table):
        registry = SharedStatsRegistry()
        registry.cache_for(table, borrower="alice")
        stats = registry.stats()
        assert (stats.misses, stats.hits, stats.cross_client_hits) == (1, 0, 0)

    def test_same_borrower_rehit_not_cross_client(self, table):
        registry = SharedStatsRegistry()
        registry.cache_for(table, borrower="alice")
        registry.cache_for(table, borrower="alice")
        stats = registry.stats()
        assert stats.hits == 1
        assert stats.cross_client_hits == 0

    def test_second_client_counts_cross_client_hit(self, table):
        registry = SharedStatsRegistry()
        registry.cache_for(table, borrower="alice")
        registry.cache_for(table, borrower="bob")
        stats = registry.stats()
        assert stats.hits == 1
        assert stats.cross_client_hits == 1
        assert stats.hit_rate == 0.5

    def test_entries_reflect_cache_content(self, table):
        registry = SharedStatsRegistry()
        cache = registry.cache_for(table)
        cache.global_column_stats(table, "x")
        assert registry.stats().entries == 1


class TestEviction:
    def test_evict_drops_cache(self, table):
        registry = SharedStatsRegistry()
        registry.cache_for(table)
        assert registry.evict(table.fingerprint()) is True
        assert registry.peek(table.fingerprint()) is None
        assert registry.evict(table.fingerprint()) is False

    def test_borrowed_cache_survives_eviction(self, table):
        registry = SharedStatsRegistry()
        cache = registry.cache_for(table)
        cache.global_column_stats(table, "x")
        registry.evict(table.fingerprint())
        # The borrower's reference still works; the registry just hands
        # out a fresh cache next time.
        assert cache.size == 1
        assert registry.cache_for(table) is not cache

    def test_clear(self, table):
        registry = SharedStatsRegistry()
        registry.cache_for(table)
        registry.clear()
        assert registry.stats().caches == 0


class TestConcurrency:
    def test_concurrent_borrows_agree_on_one_cache(self, table):
        registry = SharedStatsRegistry()
        results, barrier = [], threading.Barrier(8)

        def borrow(i):
            barrier.wait()
            results.append(registry.cache_for(table, borrower=f"c{i}"))

        threads = [threading.Thread(target=borrow, args=(i,))
                   for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len({id(c) for c in results}) == 1
        stats = registry.stats()
        assert stats.misses == 1
        assert stats.hits == 7

    def test_concurrent_cache_fills_compute_once(self, table):
        """The thread-safe StatsCache computes a table-level statistic
        exactly once no matter how many threads race for it."""
        registry = SharedStatsRegistry()
        cache = registry.cache_for(table)
        barrier = threading.Barrier(6)
        outputs = []

        def fill():
            barrier.wait()
            outputs.append(cache.global_moments(table, ("x", "y")))

        threads = [threading.Thread(target=fill) for _ in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert all(m is outputs[0] for m in outputs)
        assert cache.counters.moments_misses == 1
        assert cache.counters.moments_hits == 5
