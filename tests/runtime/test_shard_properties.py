"""Property-based tests (stdlib ``random``, fixed seeds) for the shard
router and the shard-aware batch planner.

The routing function is load-bearing in two ways: the coordinator and
every worker must agree on it (stability), and a fleet of shards must
share load evenly (uniformity).  The batch planner's core invariant is
that one table's work never splits across shards — that is what keeps
each table's statistics cache singular and warm.
"""

import pickle
import random
import string

import pytest

from repro.runtime.executors import (
    CharacterizationTask,
    plan_batch,
    shard_index,
)

SEED = 20260730


def random_fingerprints(rng: random.Random, count: int) -> list:
    return ["".join(rng.choices("0123456789abcdef", k=16))
            for _ in range(count)]


class TestShardIndexProperties:
    def test_stable_across_pickle_roundtrips(self):
        rng = random.Random(SEED)
        for fingerprint in random_fingerprints(rng, 200):
            task = CharacterizationTask(
                table="t", where="x > 1", fingerprint=fingerprint)
            for n_shards in (1, 2, 3, 4, 8):
                before = shard_index(task.routing_key, n_shards)
                clone = pickle.loads(pickle.dumps(task))
                assert clone == task
                assert shard_index(clone.routing_key, n_shards) == before
                # double roundtrip — serialization is not drifting
                clone2 = pickle.loads(pickle.dumps(clone))
                assert shard_index(clone2.routing_key, n_shards) == before

    def test_batch_task_routing_survives_pickling(self):
        rng = random.Random(SEED + 1)
        for fingerprint in random_fingerprints(rng, 50):
            task = CharacterizationTask(
                table="t", where="x > 1", fingerprint=fingerprint,
                wheres=("x > 1", "y < 2", "z = 3"))
            clone = pickle.loads(pickle.dumps(task))
            assert clone.is_batch and clone.predicates == task.wheres
            assert clone.routing_key == task.routing_key

    @pytest.mark.parametrize("n_shards", [2, 4, 8])
    def test_uniform_within_20_percent_over_1k_fingerprints(self, n_shards):
        rng = random.Random(SEED + n_shards)
        fingerprints = random_fingerprints(rng, 1000)
        counts = [0] * n_shards
        for fingerprint in fingerprints:
            counts[shard_index(fingerprint, n_shards)] += 1
        expected = len(fingerprints) / n_shards
        for shard, count in enumerate(counts):
            assert 0.8 * expected <= count <= 1.2 * expected, (
                f"shard {shard} holds {count} of {len(fingerprints)} keys "
                f"(expected {expected:.0f} ±20%): {counts}")

    def test_arbitrary_text_keys_stay_bounded(self):
        rng = random.Random(SEED + 99)
        alphabet = string.printable
        for _ in range(500):
            key = "".join(rng.choices(alphabet, k=rng.randint(1, 40)))
            for n_shards in (1, 3, 7):
                shard = shard_index(key, n_shards)
                assert 0 <= shard < n_shards
                assert shard == shard_index(key, n_shards)  # deterministic


class TestBatchPlannerProperties:
    def _random_entries(self, rng: random.Random, n_tables: int,
                        n_entries: int) -> list:
        tables = [(f"table_{i}",
                   "".join(rng.choices("0123456789abcdef", k=16)))
                  for i in range(n_tables)]
        return [(*rng.choice(tables), f"col > {rng.randint(0, 99)}")
                for _ in range(n_entries)]

    def test_grouping_never_splits_one_table_across_shards(self):
        rng = random.Random(SEED)
        for _trial in range(50):
            n_shards = rng.randint(1, 8)
            entries = self._random_entries(rng, rng.randint(1, 6),
                                           rng.randint(1, 40))
            groups = plan_batch(entries)
            # each (table, routing key) pair maps to exactly one group ...
            keys = [(group.table, group.routing_key) for group in groups]
            assert len(keys) == len(set(keys))
            assert set(keys) == {(table, key) for table, key, _ in entries}
            for group in groups:
                # ... whose entries all share the group's identity, so
                # the executor routes the whole group to one shard
                shards = set()
                for index in group.indices:
                    table, key, _ = entries[index]
                    assert (table, key) == (group.table, group.routing_key)
                    shards.add(shard_index(key, n_shards))
                assert len(shards) == 1

    def test_indices_partition_the_batch_in_order(self):
        rng = random.Random(SEED + 7)
        for _trial in range(50):
            entries = self._random_entries(rng, rng.randint(1, 5),
                                           rng.randint(1, 30))
            groups = plan_batch(entries)
            seen = sorted(i for group in groups for i in group.indices)
            assert seen == list(range(len(entries)))
            for group in groups:
                assert list(group.indices) == sorted(group.indices)
                assert len(group.indices) == len(group.wheres)
                for index, where in zip(group.indices, group.wheres):
                    assert entries[index][2] == where

    def test_groups_come_in_first_appearance_order(self):
        entries = [("b", "fp_b", "x > 1"), ("a", "fp_a", "x > 2"),
                   ("b", "fp_b", "x > 3"), ("c", "fp_c", "x > 4"),
                   ("a", "fp_a", "x > 5")]
        groups = plan_batch(entries)
        assert [group.table for group in groups] == ["b", "a", "c"]
        assert groups[0].wheres == ("x > 1", "x > 3")
        assert groups[1].wheres == ("x > 2", "x > 5")
        assert groups[0].indices == (0, 2)
        assert groups[1].indices == (1, 4)

    def test_same_content_under_two_names_keeps_names_apart(self):
        # identical fingerprint (same content), distinct catalog names:
        # the groups stay separate — results and history must carry the
        # name the caller used — while routing to the same shard
        entries = [("alias_a", "same_fp", "x > 1"),
                   ("alias_b", "same_fp", "x > 2"),
                   ("alias_a", "same_fp", "x > 3")]
        groups = plan_batch(entries)
        assert [group.table for group in groups] == ["alias_a", "alias_b"]
        assert groups[0].wheres == ("x > 1", "x > 3")
        assert groups[1].wheres == ("x > 2",)
        for n_shards in (2, 4, 8):
            assert len({shard_index(group.routing_key, n_shards)
                        for group in groups}) == 1
