"""Tests for the runtime TableStore: fingerprints, pins, LRU eviction."""

import gc
import weakref

import numpy as np
import pytest

from repro.engine.table import Table
from repro.runtime import TableStore, TableStoreError, ZiggyRuntime


def make_table(name: str, seed: int = 0, n: int = 50) -> Table:
    rng = np.random.default_rng(seed)
    return Table.from_dict({"a": rng.normal(size=n),
                            "b": rng.normal(size=n)}, name=name)


class TestFingerprint:
    def test_identical_content_same_fingerprint(self):
        assert make_table("t", seed=1).fingerprint() == \
            make_table("t", seed=1).fingerprint()

    def test_different_data_different_fingerprint(self):
        assert make_table("t", seed=1).fingerprint() != \
            make_table("t", seed=2).fingerprint()

    def test_same_data_different_name_differs(self):
        a, b = make_table("t1", seed=1), make_table("t2", seed=1)
        assert a.fingerprint() != b.fingerprint()

    def test_memoized(self):
        t = make_table("t")
        assert t.fingerprint() is t.fingerprint()

    def test_categorical_and_boolean_columns_hash(self):
        t = Table.from_dict({"c": ["x", "y", None, "x"],
                             "f": [True, False, None, True]}, name="mixed")
        u = Table.from_dict({"c": ["x", "y", None, "x"],
                             "f": [True, False, None, True]}, name="mixed")
        assert t.fingerprint() == u.fingerprint()

    def test_nbytes_positive(self):
        assert make_table("t").nbytes() > 0


class TestRegistration:
    def test_register_and_get(self):
        store = TableStore()
        t = make_table("t")
        entry = store.register(t)
        assert entry.fingerprint == t.fingerprint()
        assert store.get("t") is t

    def test_reregister_same_content_bumps_not_replaces(self):
        store = TableStore()
        t = make_table("t")
        first = store.register(t)
        second = store.register(t)
        assert first is second
        assert second.registrations == 2
        assert store.evictions == 0

    def test_reregister_new_content_evicts_old(self):
        store = TableStore()
        evicted = []
        store.add_evict_listener(lambda e: evicted.append(e.fingerprint))
        old = make_table("t", seed=1)
        store.register(old)
        new = make_table("t", seed=2)
        store.register(new)
        assert evicted == [old.fingerprint()]
        assert store.get("t") is new

    def test_get_unknown_raises(self):
        with pytest.raises(TableStoreError):
            TableStore().get("nope")

    def test_catalog_alias_does_not_duplicate_entry(self):
        """A table registered under a custom name, then re-registered
        nameless (the stats_for path), refreshes the same entry — bytes
        are never double-counted and evictions never split."""
        store = TableStore()
        t = make_table("orig")
        under_alias = store.register(t, name="custom")
        nameless = store.register(t)            # what stats_for/lease do
        assert nameless is under_alias
        assert store.stats()["tables"] == 1
        assert store.stats()["resident_bytes"] == t.nbytes()

    def test_explicit_second_alias_keeps_shared_cache_alive(self):
        """Evicting one of two explicit aliases must not drop registry
        state the other alias still needs."""
        runtime = ZiggyRuntime()
        t = make_table("orig")
        runtime.tables.register(t, name="a")
        runtime.tables.register(t, name="b")
        cache = runtime.stats_for(t)
        runtime.tables.evict("a")
        assert runtime.stats.peek(t.fingerprint()) is cache
        runtime.tables.evict("b")               # last alias: cache goes
        assert runtime.stats.peek(t.fingerprint()) is None


class TestEviction:
    def test_lru_order(self):
        store = TableStore(max_tables=2)
        evicted = []
        store.add_evict_listener(lambda e: evicted.append(e.name))
        a, b, c = (make_table(n, seed=i) for i, n in enumerate("abc"))
        store.register(a)
        store.register(b)
        store.get("a")           # bump a: b becomes the LRU victim
        store.register(c)
        assert evicted == ["b"]
        # b stays listed as a non-resident ghost (its weak ref enables
        # cheap revival while the object is alive elsewhere).
        assert store.names() == ("a", "b", "c")
        assert not store.entry_for("b").resident
        assert store.stats()["resident"] == 2

    def test_ghost_revival_and_lookup(self):
        """An evicted table still held elsewhere stays reachable through
        the weak ref and revives in place on re-registration."""
        store = TableStore(max_tables=1)
        a = make_table("a", seed=1)
        ghost_entry = store.register(a)
        store.register(make_table("b", seed=2))   # evicts a
        assert not ghost_entry.resident
        assert store.get("a") is a                # weak-ref lookup works
        revived = store.register(a)
        assert revived is ghost_entry
        assert revived.resident

    def test_replacing_pinned_name_defers_eviction_to_release(self):
        """New content under a leased name must not evict the lease's
        entry mid-run: it is displaced and goes only on last release."""
        store = TableStore()
        evicted = []
        store.add_evict_listener(lambda e: evicted.append(e.fingerprint))
        old = make_table("t", seed=1)
        lease = store.acquire(old)
        new = make_table("t", seed=2)
        store.register(new, name="t")
        assert store.get("t") is new          # the name serves new content
        assert lease.resident                  # the lease is untouched
        assert evicted == []
        store.release(lease)                   # last pin: now it goes
        assert evicted == [old.fingerprint()]
        assert not lease.resident

    def test_acquire_never_evicts_its_own_table(self):
        """A lease taken under limit pressure pins before enforcement, so
        the leased table is never its own eviction victim."""
        store = TableStore(max_tables=1)
        pinned = store.acquire(make_table("busy", seed=1))
        entry = store.acquire(make_table("incoming", seed=2))
        assert entry.resident            # over the limit, but pinned
        assert entry.refcount == 1
        store.release(entry)
        store.release(pinned)

    def test_byte_budget_evicts(self):
        small = make_table("small", n=10)
        store = TableStore(max_bytes=small.nbytes() + 1)
        store.register(small)
        store.register(make_table("big", n=10_000))
        assert store.evictions >= 1

    def test_pinned_entries_survive_limits(self):
        store = TableStore(max_tables=1)
        a = make_table("a")
        entry = store.acquire(a)           # pin
        store.register(make_table("b"))
        assert store.entry_for("a") is not None   # pinned: not evicted
        store.release(entry)
        store.register(make_table("c"))    # limits re-enforced
        assert store.entry_for("a") is None or not store.entry_for("a").resident

    def test_unbalanced_release_raises(self):
        store = TableStore()
        entry = store.acquire(make_table("a"))
        store.release(entry)
        with pytest.raises(TableStoreError):
            store.release(entry)

    def test_eviction_frees_unreferenced_table(self):
        """Weak-ref safety: once evicted, the store holds no strong ref."""
        store = TableStore(max_tables=1)
        t = make_table("dropme")
        ref = weakref.ref(t)
        store.register(t)
        store.register(make_table("keeper"))
        del t
        gc.collect()
        assert ref() is None

    def test_stats_shape(self):
        store = TableStore(max_tables=4)
        store.register(make_table("a"))
        stats = store.stats()
        assert stats["tables"] == stats["resident"] == 1
        assert stats["resident_bytes"] > 0
        assert stats["max_tables"] == 4


class TestRuntimeWiring:
    def test_store_eviction_drops_registry_cache(self):
        runtime = ZiggyRuntime(max_tables=1, max_bytes=None)
        a, b = make_table("a", seed=1), make_table("b", seed=2)
        cache_a = runtime.stats_for(a, borrower="x")
        cache_a.global_column_stats(a, "a")
        assert runtime.stats.peek(a.fingerprint()) is cache_a
        runtime.stats_for(b, borrower="x")      # evicts a from the store
        assert runtime.stats.peek(a.fingerprint()) is None
        assert runtime.stats.stats().evictions == 1

    def test_lease_blocks_eviction_until_released(self):
        runtime = ZiggyRuntime(max_tables=1, max_bytes=None)
        a, b = make_table("a", seed=1), make_table("b", seed=2)
        with runtime.lease(a, borrower="x") as cache:
            assert cache is runtime.stats.peek(a.fingerprint())
            runtime.register_table(b)
            # a is pinned by the lease: it must still be resident.
            assert runtime.tables.entry_for("a").resident
        # After the lease, re-enforcement may evict either LRU victim.
        runtime.register_table(make_table("c", seed=3))
        assert runtime.tables.stats()["resident"] <= 1

    def test_snapshot_is_jsonable(self):
        import json
        runtime = ZiggyRuntime()
        runtime.register_table(make_table("a"))
        json.dumps(runtime.stats_snapshot())
