"""Backend-level tests of the pluggable executor layer: the factory,
the three implementations, fingerprint sharding, cross-process event
relay and cancellation, and the serializability contract that makes
process shards possible."""

import pickle
import threading
import time

import pytest

from repro.core.events import (
    COMPONENT_SCORED,
    PREPARED,
    SEARCH_COMPLETE,
    CatalogSummary,
    PreparedSummary,
    SearchSummary,
    StageEvent,
    compact_event,
)
from repro.core.pipeline import Ziggy
from repro.core.stats_cache import StatsCache
from repro.data.boxoffice import make_boxoffice
from repro.errors import JobCancelled, UnknownTableError
from repro.runtime.executors import (
    EXECUTOR_KINDS,
    CharacterizationTask,
    ExecutorError,
    InlineExecutor,
    ProcessShardExecutor,
    ThreadExecutor,
    create_executor,
    shard_index,
)

PREDICATE = "gross > 200000000"


@pytest.fixture(scope="module")
def table():
    return make_boxoffice(n_rows=200)


@pytest.fixture(scope="module")
def task(table):
    return CharacterizationTask(table=table.name, where=PREDICATE,
                                fingerprint=table.fingerprint())


class Collector:
    """Callback harness: records events and the terminal outcome."""

    def __init__(self):
        self.began = False
        self.events = []
        self.outcome = None
        self.done = threading.Event()

    def begin(self):
        self.began = True

    def progress(self, stage, payload):
        self.events.append((stage, payload))

    def finish(self, status, result, error):
        self.outcome = (status, result, error)
        self.done.set()

    def wait(self, timeout=60):
        assert self.done.wait(timeout), "no terminal outcome arrived"
        return self.outcome


# ---------------------------------------------------------------------------
# Factory / routing
# ---------------------------------------------------------------------------


class TestFactory:
    def test_known_kinds(self):
        assert EXECUTOR_KINDS == ("inline", "thread", "process")

    def test_unknown_kind_raises(self):
        with pytest.raises(ExecutorError, match="unknown executor"):
            create_executor("gpu")

    @pytest.mark.parametrize("kind,cls", [
        ("inline", InlineExecutor),
        ("thread", ThreadExecutor),
    ])
    def test_builds_local_backends(self, kind, cls):
        executor = create_executor(kind, workers=1)
        try:
            assert isinstance(executor, cls)
            assert executor.kind == kind
            assert executor.supports_callables
        finally:
            executor.close()


class TestSharding:
    def test_shard_index_is_stable_and_bounded(self):
        keys = [f"fp-{i}" for i in range(64)]
        first = [shard_index(k, 4) for k in keys]
        assert first == [shard_index(k, 4) for k in keys]
        assert all(0 <= s < 4 for s in first)
        assert len(set(first)) > 1  # spreads, not constant

    def test_single_shard_takes_everything(self):
        assert all(shard_index(f"k{i}", 1) == 0 for i in range(10))

    def test_routing_key_prefers_fingerprint(self):
        with_fp = CharacterizationTask(table="t", where="x > 1",
                                       fingerprint="abc123")
        without = CharacterizationTask(table="t", where="x > 1")
        assert with_fp.routing_key == "abc123"
        assert without.routing_key == "t"


# ---------------------------------------------------------------------------
# Local backends
# ---------------------------------------------------------------------------


class TestInlineExecutor:
    def test_callable_runs_synchronously(self):
        executor = InlineExecutor()
        calls = Collector()
        executor.submit(lambda progress: "ok", begin=calls.begin,
                        progress=calls.progress, finish=calls.finish)
        # no wait: inline submission is terminal on return
        assert calls.outcome == ("done", "ok", None)
        assert calls.began

    def test_task_execution(self, table, task):
        executor = InlineExecutor()
        executor.register_table(table)
        calls = Collector()
        executor.submit(task, begin=calls.begin, progress=calls.progress,
                        finish=calls.finish)
        status, result, error = calls.outcome
        assert status == "done" and error is None
        assert len(result.views) > 0
        stages = [s for s, _ in calls.events]
        assert stages[0] == "preparation"
        assert stages[-1] == "result"

    def test_failure_is_an_outcome_not_a_raise(self):
        executor = InlineExecutor()
        calls = Collector()
        executor.submit(lambda progress: 1 / 0, begin=calls.begin,
                        progress=calls.progress, finish=calls.finish)
        status, result, error = calls.outcome
        assert status == "failed"
        assert isinstance(error, ZeroDivisionError)

    def test_begin_veto_reports_cancelled(self):
        executor = InlineExecutor()
        calls = Collector()

        def begin():
            raise JobCancelled("job-x")

        ran = []
        executor.submit(lambda progress: ran.append(1), begin=begin,
                        progress=calls.progress, finish=calls.finish)
        assert calls.outcome[0] == "cancelled"
        assert not ran

    def test_handle_cancel_is_false(self):
        executor = InlineExecutor()
        calls = Collector()
        handle = executor.submit(lambda progress: "x", begin=calls.begin,
                                 progress=calls.progress,
                                 finish=calls.finish)
        assert handle.cancel() is False
        assert handle.wait(0.1)


class TestThreadExecutor:
    def test_progress_raise_aborts(self):
        executor = ThreadExecutor(max_workers=1)
        try:
            calls = Collector()

            def work(progress):
                progress("step", 1)
                progress("step", 2)
                return "finished"

            def progress(stage, payload):
                calls.events.append((stage, payload))
                raise JobCancelled("job-y")

            executor.submit(work, begin=calls.begin, progress=progress,
                            finish=calls.finish)
            assert calls.wait()[0] == "cancelled"
            assert calls.events == [("step", 1)]
        finally:
            executor.close()

    def test_queued_work_can_be_cancelled_before_start(self):
        executor = ThreadExecutor(max_workers=1)
        try:
            gate = threading.Event()
            first = Collector()
            executor.submit(lambda progress: gate.wait(10),
                            begin=first.begin, progress=first.progress,
                            finish=first.finish)
            second = Collector()
            handle = executor.submit(lambda progress: "never",
                                     begin=second.begin,
                                     progress=second.progress,
                                     finish=second.finish)
            assert handle.cancel() is True  # still queued behind the gate
            gate.set()
            assert first.wait()[0] == "done"
            assert second.outcome is None  # never ran, never finished
        finally:
            executor.close()

    def test_task_execution_matches_inline(self, table, task):
        executor = ThreadExecutor(max_workers=2)
        try:
            executor.register_table(table)
            calls = Collector()
            executor.submit(task, begin=calls.begin,
                            progress=calls.progress, finish=calls.finish)
            status, result, _ = calls.wait()
            assert status == "done"
            assert len(result.views) > 0
        finally:
            executor.close()


# ---------------------------------------------------------------------------
# The process-shard backend
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def process_executor(table):
    executor = ProcessShardExecutor(workers=2)
    executor.register_table(table)
    yield executor
    executor.close()


class TestProcessShardExecutor:
    def test_rejects_callables(self, process_executor):
        assert process_executor.supports_callables is False
        calls = Collector()
        with pytest.raises(ExecutorError, match="serializable"):
            process_executor.submit(lambda progress: 1, begin=calls.begin,
                                    progress=calls.progress,
                                    finish=calls.finish)

    def test_task_runs_with_relayed_events(self, process_executor, task):
        calls = Collector()
        process_executor.submit(task, begin=calls.begin,
                                progress=calls.progress,
                                finish=calls.finish)
        status, result, error = calls.wait()
        assert status == "done" and error is None
        assert len(result.views) > 0
        stages = [s for s, _ in calls.events]
        # identical legacy projection to a local run, in order
        assert stages[0] == "preparation"
        assert "component-scored" in stages
        assert "view" in stages
        assert "search" in stages
        assert stages[-1] == "result"
        assert calls.began
        # heavy payloads crossed as compact summaries
        prepared_payload = calls.events[0][1]
        assert isinstance(prepared_payload, PreparedSummary)
        assert prepared_payload.n_inside > 0

    def test_unknown_table_fails_with_typed_error(self, process_executor):
        calls = Collector()
        process_executor.submit(
            CharacterizationTask(table="nope", where="x > 1"),
            begin=calls.begin, progress=calls.progress, finish=calls.finish)
        status, _, error = calls.wait()
        assert status == "failed"
        assert isinstance(error, UnknownTableError)

    def test_fingerprint_routes_to_one_shard(self, process_executor, table):
        index = process_executor.shard_for(table.fingerprint())
        shards = process_executor.describe()["shards"]
        assert table.name in shards[str(index)]
        others = [names for shard, names in shards.items()
                  if shard != str(index)]
        assert all(table.name not in names for names in others)

    def test_concurrent_tasks_on_distinct_tables(self):
        executor = ProcessShardExecutor(workers=2)
        try:
            tables = [make_boxoffice(n_rows=150, seed=seed)
                      for seed in (1, 2, 3)]
            for i, t in enumerate(tables):
                t.name = f"box{i}"
                executor.register_table(t)
            collectors = []
            for t in tables:
                calls = Collector()
                collectors.append(calls)
                executor.submit(
                    CharacterizationTask(table=t.name, where=PREDICATE,
                                         fingerprint=t.fingerprint()),
                    begin=calls.begin, progress=calls.progress,
                    finish=calls.finish)
            for calls in collectors:
                status, result, error = calls.wait(120)
                assert status == "done", error
                assert result.n_inside > 0
        finally:
            executor.close()

    def test_cancel_mid_run_stops_at_stage_boundary(self):
        # A wide table (128 columns), so the search phase is long enough
        # that the cancel message reliably overtakes the run.
        from repro.data.crime import make_crime
        wide = make_crime(n_rows=1994)
        executor = ProcessShardExecutor(workers=1)
        try:
            executor.register_table(wide)
            calls = Collector()
            first_event = threading.Event()
            cancelled = threading.Event()

            def progress(stage, payload):
                calls.events.append((stage, payload))
                first_event.set()
                if cancelled.is_set():
                    raise JobCancelled("task")

            handle = executor.submit(
                CharacterizationTask(table=wide.name,
                                     where="violent_crime_rate > 0.14",
                                     fingerprint=wide.fingerprint()),
                begin=calls.begin, progress=progress, finish=calls.finish)
            assert first_event.wait(60)
            cancelled.set()
            handle.cancel()
            status = calls.wait(60)[0]
            assert status == "cancelled"
        finally:
            executor.close()

    def test_cancel_while_queued_never_runs(self, table):
        executor = ProcessShardExecutor(workers=1)
        try:
            executor.register_table(table)
            # Occupy the single shard, then cancel a queued task.
            blocker = Collector()
            executor.submit(
                CharacterizationTask(table=table.name, where=PREDICATE,
                                     fingerprint=table.fingerprint()),
                begin=blocker.begin, progress=blocker.progress,
                finish=blocker.finish)
            queued = Collector()
            handle = executor.submit(
                CharacterizationTask(table=table.name,
                                     where="gross > 150000000",
                                     fingerprint=table.fingerprint()),
                begin=queued.begin, progress=queued.progress,
                finish=queued.finish)
            # The process handle never claims "provably unstarted" (the
            # task is already on the shard's queue) — the cancel flag
            # overtakes the queue instead, and the worker skips the
            # task and reports it cancelled without running it.
            assert handle.cancel() is False
            assert blocker.wait(120)[0] == "done"
            assert queued.wait(60)[0] == "cancelled"
            assert queued.events == []
        finally:
            executor.close()

    def test_register_table_ships_warm_cache(self, table):
        executor = ProcessShardExecutor(workers=1)
        try:
            warm = Ziggy(table)
            warm.characterize(PREDICATE)
            executor.register_table(table, cache=warm.cache)
            calls = Collector()
            executor.submit(
                CharacterizationTask(table=table.name, where=PREDICATE,
                                     fingerprint=table.fingerprint()),
                begin=calls.begin, progress=calls.progress,
                finish=calls.finish)
            status, result, _ = calls.wait(60)
            assert status == "done"
            assert len(result.views) == len(warm.characterize(PREDICATE).views)
        finally:
            executor.close()

    def test_close_wait_lets_inflight_work_finish(self, table, task):
        """A graceful close must deliver in-flight results as done, not
        sweep them into cancelled while the worker is mid-computation."""
        executor = ProcessShardExecutor(workers=1)
        executor.register_table(table)
        calls = Collector()
        executor.submit(task, begin=calls.begin, progress=calls.progress,
                        finish=calls.finish)
        executor.close(wait=True)  # immediately, while the job runs
        status, result, error = calls.wait(5)
        assert status == "done", error
        assert len(result.views) > 0

    def test_close_is_idempotent_and_rejects_new_work(self, table, task):
        executor = ProcessShardExecutor(workers=1)
        executor.register_table(table)
        executor.close()
        executor.close()
        calls = Collector()
        with pytest.raises(ExecutorError, match="closed"):
            executor.submit(task, begin=calls.begin,
                            progress=calls.progress, finish=calls.finish)
        with pytest.raises(ExecutorError, match="closed"):
            executor.register_table(make_boxoffice(n_rows=60, seed=9))

    def test_submit_on_closed_backend_leaves_no_ghost_job(self, table,
                                                          task):
        from repro.service.jobs import JobManager
        executor = ProcessShardExecutor(workers=1)
        executor.register_table(table)
        manager = JobManager(backend=executor)
        manager.shutdown(wait=False)
        with pytest.raises(ExecutorError, match="closed"):
            manager.submit(task=task)
        assert manager.job_ids() == ()  # no forever-pending record

    def test_worker_runtime_inherits_coordinator_limits(self):
        from repro.runtime import ZiggyRuntime
        bounded = ZiggyRuntime(max_tables=3, max_bytes=12345)
        executor = create_executor("process", workers=1, runtime=bounded)
        try:
            # the operator's limits were captured at construction and are
            # what every worker's private runtime is built with
            assert executor.max_tables == 3
            assert executor.max_bytes == 12345
        finally:
            executor.close()


# ---------------------------------------------------------------------------
# The serializability contract
# ---------------------------------------------------------------------------


class TestSerializability:
    def test_plan_pickles_without_its_cache(self, table):
        ziggy = Ziggy(table)
        plan = ziggy.plan(PREDICATE)
        assert plan.cache is ziggy.cache
        clone = pickle.loads(pickle.dumps(plan))
        assert clone.cache is None
        assert clone.predicate_text == plan.predicate_text
        rebound = clone.with_cache(ziggy.cache)
        result = ziggy.execute(rebound)
        assert result.views == ziggy.execute(plan).views

    def test_stats_cache_roundtrip_preserves_entries(self, table):
        ziggy = Ziggy(table)
        ziggy.characterize(PREDICATE)
        cache = ziggy.cache
        clone = pickle.loads(pickle.dumps(cache))
        assert clone.size == cache.size
        # the clone is live: a repeated lookup hits instead of recomputes
        # ("gross" itself is the predicate column, hence never cached)
        before = clone.counters.hits
        clone.global_column_stats(table, "budget")
        assert clone.counters.hits == before + 1

    def test_merge_from_existing_keys_win(self, table):
        warm = Ziggy(table)
        warm.characterize(PREDICATE)
        fresh = StatsCache()
        copied = fresh.merge_from(warm.cache)
        assert copied == warm.cache.size == fresh.size
        assert fresh.merge_from(warm.cache) == 0  # idempotent

    def test_compact_event_summaries(self, table):
        ziggy = Ziggy(table)
        events = []
        ziggy.characterize(PREDICATE, emit=events.append)
        by_kind = {e.kind: e for e in events}
        prepared = compact_event(by_kind[PREPARED])
        assert isinstance(prepared.payload, PreparedSummary)
        assert prepared.payload.active_columns
        scored = compact_event(by_kind[COMPONENT_SCORED])
        assert isinstance(scored.payload, CatalogSummary)
        assert scored.payload.n_unary > 0
        search = compact_event(by_kind[SEARCH_COMPLETE])
        assert isinstance(search.payload, SearchSummary)
        assert search.payload.n_views > 0
        # compaction is idempotent and pass-through for lean events
        assert compact_event(prepared) is prepared
        result_event = by_kind["result"]
        assert compact_event(result_event) is result_event
        # every compacted payload pickles small
        for event in (prepared, scored, search):
            assert len(pickle.dumps(event)) < 4096

    def test_summary_stats_wire_roundtrip(self, table):
        cache = StatsCache()
        stats = cache.global_column_stats(table, "gross")
        wire = stats.to_wire()
        assert isinstance(wire, tuple) and len(wire) == 8
        restored = type(stats).from_wire(wire)
        assert restored == stats
