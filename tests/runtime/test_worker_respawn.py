"""Fault-injection tests of the self-healing process-shard executor.

Workers are killed with real SIGKILLs (``helpers.faults.kill_worker``),
so the respawn path under test — death detection by the pump, the
respawn thread, registration replay, task re-enqueueing — is exactly
the production one.  This file is the "respawn suite" the CI
fault-injection job runs against a live server.
"""

import threading
import time

import pytest

from helpers.faults import (  # noqa: F401 - kill_worker_by_pid is a fixture
    Collector,
    CrashingExecutor,
    kill_worker,
    kill_worker_by_pid,
    make_flaky_task,
)
from repro.core.pipeline import Ziggy
from repro.data.boxoffice import make_boxoffice
from repro.data.crime import make_crime
from repro.runtime.executors import (
    CharacterizationTask,
    ExecutorError,
    ProcessShardExecutor,
    WORKER_RESTART_STAGE,
    WorkerError,
)
from repro.service.jobs import JobManager

#: A wide table keeps a characterization running long enough that a
#: kill lands mid-job deterministically (seconds of search ahead).
SLOW_PREDICATE = "violent_crime_rate > 0.2"

FAST_PREDICATE = "gross > 200000000"


@pytest.fixture(scope="module")
def slow_table():
    return make_crime(n_rows=600, seed=11)


@pytest.fixture(scope="module")
def fast_table():
    return make_boxoffice(n_rows=200, seed=3)


def _submit(executor, table, where, calls: Collector):
    return executor.submit(
        CharacterizationTask(table=table.name, where=where,
                             fingerprint=table.fingerprint()),
        begin=calls.begin, progress=calls.progress, finish=calls.finish)


class TestKillMidJob:
    def test_sigkilled_worker_job_completes_via_respawn(self, slow_table):
        executor = ProcessShardExecutor(workers=1, max_restarts=2,
                                        max_retries=1)
        try:
            executor.register_table(slow_table)
            calls = Collector()
            _submit(executor, slow_table, SLOW_PREDICATE, calls)
            assert calls.began.wait(120)
            kill_worker(executor, 0)
            status, result, error = calls.wait(300)
            assert status == "done", error
            assert len(result.views) > 0
            # the recovery was observable in the event stream, between
            # the aborted attempt's stages and the retry's fresh start
            assert WORKER_RESTART_STAGE in calls.stages
            restart_at = calls.stages.index(WORKER_RESTART_STAGE)
            assert "preparation" in calls.stages[restart_at + 1:]
            stage, payload = calls.events[restart_at]
            assert payload["worker"] == 0
            assert payload["restart"] == 1
            assert payload["attempt"] == 2
            assert executor.describe()["restarts"] == {"0": 1}
        finally:
            executor.close(wait=False)

    def test_begin_fires_once_across_retry(self, slow_table):
        executor = ProcessShardExecutor(workers=1, max_restarts=1,
                                        max_retries=1)
        try:
            executor.register_table(slow_table)
            begins = []
            calls = Collector()
            calls.begin = lambda: (begins.append(1), calls.began.set())
            _submit(executor, slow_table, SLOW_PREDICATE, calls)
            assert calls.began.wait(120)
            kill_worker(executor, 0)
            status, _, error = calls.wait(300)
            assert status == "done", error
            assert begins == [1]
        finally:
            executor.close(wait=False)


class TestBudgets:
    def test_respawn_cap_exhaustion_fails_with_worker_error(
            self, slow_table, fast_table):
        executor = ProcessShardExecutor(workers=1, max_restarts=0,
                                        max_retries=5)
        try:
            executor.register_table(slow_table)
            calls = Collector()
            _submit(executor, slow_table, SLOW_PREDICATE, calls)
            assert calls.began.wait(120)
            kill_worker(executor, 0)
            status, _, error = calls.wait(120)
            assert status == "failed"
            assert isinstance(error, WorkerError)
            assert "respawn cap" in str(error)
            assert executor.describe()["dead_shards"] == [0]
            # the dead shard rejects new work instead of hanging it
            with pytest.raises(ExecutorError, match="dead"):
                _submit(executor, slow_table, SLOW_PREDICATE, Collector())
        finally:
            executor.close(wait=False)

    def test_retry_budget_exhausted_but_shard_recovers(self, slow_table):
        executor = ProcessShardExecutor(workers=1, max_restarts=2,
                                        max_retries=0)
        try:
            executor.register_table(slow_table)
            calls = Collector()
            _submit(executor, slow_table, SLOW_PREDICATE, calls)
            assert calls.began.wait(120)
            kill_worker(executor, 0)
            status, _, error = calls.wait(120)
            assert status == "failed"
            assert isinstance(error, WorkerError)
            assert "retry budget" in str(error)
            # ... yet the shard itself was respawned: new work runs
            # (its registrations were replayed, no re-register needed)
            fresh = Collector()
            _submit(executor, slow_table, SLOW_PREDICATE, fresh)
            status, result, error = fresh.wait(300)
            assert status == "done", error
            assert len(result.views) > 0
        finally:
            executor.close(wait=False)


class TestWarmRestore:
    def test_registrations_and_warm_cache_replayed_after_respawn(
            self, fast_table):
        executor = ProcessShardExecutor(workers=1, max_restarts=2,
                                        max_retries=1)
        try:
            warm = Ziggy(fast_table)
            reference = warm.characterize(FAST_PREDICATE)
            executor.register_table(fast_table, cache=warm.cache)
            # kill the idle worker; the shard respawns and replays the
            # registration with a fresh warm-cache snapshot
            kill_worker(executor, 0)
            calls = Collector()
            _submit(executor, fast_table, FAST_PREDICATE, calls)
            status, result, error = calls.wait(300)
            assert status == "done", error
            assert len(result.views) == len(reference.views)
            info = executor.describe()
            assert info["restarts"] == {"0": 1}
            assert fast_table.name in info["shards"]["0"]
        finally:
            executor.close(wait=False)

    def test_snapshot_is_detached_and_complete(self, fast_table):
        warm = Ziggy(fast_table)
        warm.characterize(FAST_PREDICATE)
        snap = warm.cache.snapshot()
        assert snap.size == warm.cache.size
        assert snap.counters.hits == 0  # counters are the source's story
        # detached: growing the snapshot must not touch the source
        before = warm.cache.size
        snap.global_column_stats(fast_table, "budget")
        assert warm.cache.size == before


class TestCancelDuringRespawn:
    def test_cancel_wins_over_retry(self, slow_table):
        executor = ProcessShardExecutor(workers=1, max_restarts=2,
                                        max_retries=2)
        try:
            executor.register_table(slow_table)
            calls = Collector()
            handle = _submit(executor, slow_table, SLOW_PREDICATE, calls)
            assert calls.began.wait(120)
            kill_worker(executor, 0)
            # cancel while the shard is down / mid-respawn: the retry
            # machinery must honour it instead of re-running the task
            handle.cancel()
            status, result, _ = calls.wait(120)
            assert status == "cancelled"
            assert result is None
            assert WORKER_RESTART_STAGE not in calls.stages
        finally:
            executor.close(wait=False)


class TestCloseDuringRespawn:
    def test_close_does_not_hang_while_respawn_is_stuck(self, slow_table):
        executor = ProcessShardExecutor(workers=1, max_restarts=2,
                                        max_retries=2)
        executor.RESPAWN_DRAIN_SECONDS = 2.0
        gate = threading.Event()
        original_spawn = executor._spawn_process

        def stuck_spawn(index, generation=0):
            if generation:  # only the respawn blocks, not first boot
                gate.wait(60)
                raise RuntimeError("spawn aborted by test")
            return original_spawn(index, generation)

        executor._spawn_process = stuck_spawn
        try:
            executor.register_table(slow_table)
            calls = Collector()
            _submit(executor, slow_table, SLOW_PREDICATE, calls)
            assert calls.began.wait(120)
            kill_worker(executor, 0)
            deadline = time.monotonic() + 60
            while not executor._respawning and time.monotonic() < deadline:
                time.sleep(0.05)
            assert executor._respawning == {0}
            start = time.monotonic()
            executor.close(wait=True)
            elapsed = time.monotonic() - start
            assert elapsed < 30, "close hung on the respawn thread"
            status, _, error = calls.wait(10)
            assert status == "failed"
            assert isinstance(error, ExecutorError)
            assert "respawn" in str(error)
        finally:
            gate.set()
            executor.close(wait=False)

    def test_spawn_failure_fails_shard_cleanly(self, slow_table):
        executor = ProcessShardExecutor(workers=1, max_restarts=2,
                                        max_retries=2)

        def broken_spawn(index, generation=0):
            raise OSError("no processes left")

        try:
            executor.register_table(slow_table)
            calls = Collector()
            _submit(executor, slow_table, SLOW_PREDICATE, calls)
            assert calls.began.wait(120)
            executor._spawn_process = broken_spawn
            kill_worker(executor, 0)
            status, _, error = calls.wait(120)
            assert status == "failed"
            assert isinstance(error, WorkerError)
            assert "respawn of worker shard 0 failed" in str(error)
            assert executor.describe()["dead_shards"] == [0]
        finally:
            executor.close(wait=False)


class TestServerLevelRespawn:
    """The acceptance path: a SIGKILL'd worker's job completes via
    respawn+retry with the ``worker-restart`` event visible in the SSE
    stream of a live server."""

    def test_worker_restart_event_streams_over_sse(self, slow_table):
        from repro.runtime import ZiggyRuntime
        from repro.service.client import ZiggyClient
        from repro.service.server import make_server
        from repro.service.service import ZiggyService

        executor = ProcessShardExecutor(workers=2, max_restarts=2,
                                        max_retries=2)
        service = ZiggyService(runtime=ZiggyRuntime(), executor=executor)
        service.register_table(slow_table)
        server = make_server(service)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            host, port = server.server_address[:2]
            client = ZiggyClient(f"http://{host}:{port}")
            job = client.submit(SLOW_PREDICATE, table=slow_table.name)
            shard = executor.shard_for(slow_table.fingerprint())
            deadline = time.monotonic() + 120
            while time.monotonic() < deadline:
                if client.job(job.job_id).status == "running":
                    break
                time.sleep(0.05)
            kill_worker(executor, shard)
            events = list(client.stream_events(job.job_id, timeout=120))
            kinds = [event.kind for event in events]
            assert "worker-restart" in kinds
            restart = next(e for e in events if e.kind == "worker-restart")
            assert restart.data["worker"] == shard
            assert kinds[-1] == "done"
            assert events[-1].data["status"] == "done"
            final = client.job(job.job_id)
            assert final.status == "done"
            assert final.result is not None
            assert final.result.n_views > 0
        finally:
            server.close(wait=False)
            thread.join(timeout=30)


class TestParentWatchdog:
    def test_workers_exit_when_coordinator_dies_hard(self, tmp_path):
        """A SIGKILL'd coordinator never runs multiprocessing's atexit
        cleanup; the workers' parent watchdog must notice the
        reparenting and exit instead of lingering (holding inherited
        sockets) forever."""
        import os
        import signal
        import subprocess
        import sys
        import textwrap

        import repro

        script = tmp_path / "coordinator.py"
        script.write_text(textwrap.dedent("""
            import time
            from repro.runtime.executors import ProcessShardExecutor
            executor = ProcessShardExecutor(workers=2)
            print(" ".join(str(worker.process.pid)
                           for worker in executor._workers), flush=True)
            time.sleep(60)
        """))
        env = dict(os.environ)
        src = os.path.dirname(os.path.dirname(os.path.abspath(
            repro.__file__)))
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        coordinator = subprocess.Popen(
            [sys.executable, str(script)], stdout=subprocess.PIPE, env=env)
        pids: list[int] = []
        try:
            pids = [int(p) for p in coordinator.stdout.readline().split()]
            assert len(pids) == 2
            os.kill(coordinator.pid, signal.SIGKILL)
            coordinator.wait(timeout=30)
            deadline = time.monotonic() + 15  # watchdog ticks at 1 s
            alive = set(pids)
            while alive and time.monotonic() < deadline:
                for pid in list(alive):
                    try:
                        os.kill(pid, 0)
                    except ProcessLookupError:
                        alive.discard(pid)
                time.sleep(0.2)
            assert not alive, f"orphaned workers survived: {alive}"
        finally:
            for pid in pids:
                try:
                    os.kill(pid, signal.SIGKILL)
                except ProcessLookupError:
                    pass
            coordinator.stdout.close()
            if coordinator.poll() is None:
                coordinator.kill()


class TestFaultHarness:
    """The reusable fault-injection pieces themselves stay honest."""

    def test_crashing_executor_injects_then_delegates(self):
        backend = CrashingExecutor(fail_submissions=(1,),
                                   preamble=(("preparation", None),))
        manager = JobManager(backend=backend)
        try:
            first = manager.submit(make_flaky_task(0, result="never"))
            job = manager.wait(first, timeout=60)
            assert job.status == "failed"
            assert isinstance(job.error, WorkerError)
            assert "injected crash" in str(job.error)
            work = make_flaky_task(0, result="second")
            job = manager.wait(manager.submit(work), timeout=60)
            assert job.status == "done"
            assert job.result == "second"
            assert work.calls["n"] == 1
            assert backend.describe()["injected"] == [1]
        finally:
            manager.shutdown(wait=False)

    def test_flaky_task_factory_is_deterministic(self):
        work = make_flaky_task(2, result="third time lucky")
        seen = []

        def run():
            return work(lambda stage, payload: seen.append(stage))

        with pytest.raises(WorkerError, match="attempt #1"):
            run()
        with pytest.raises(WorkerError, match="attempt #2"):
            run()
        assert run() == "third time lucky"
        assert work.calls["n"] == 3
        assert seen == ["preparation"] * 3

    def test_kill_worker_reports_the_pid(self, fast_table,
                                         kill_worker_by_pid):
        executor = ProcessShardExecutor(workers=1, max_restarts=0)
        try:
            pid = executor._workers[0].process.pid
            assert kill_worker_by_pid(executor, 0) == pid
            assert not executor._workers[0].process.is_alive()
        finally:
            executor.close(wait=False)
