"""Tests for the three demo-dataset generators."""

import numpy as np
import pytest

from repro.data.boxoffice import make_boxoffice
from repro.data.crime import CRIME_PHENOMENA, high_crime_predicate, make_crime
from repro.data.innovation import make_innovation
from repro.data.registry import dataset_names, load_dataset
from repro.errors import UnknownDatasetError
from repro.stats.correlation import pearson


class TestCrime:
    def test_paper_shape(self, crime_small):
        full = make_crime()
        assert full.shape == (1994, 128)

    def test_deterministic(self):
        a = make_crime(n_rows=100, seed=3)
        b = make_crime(n_rows=100, seed=3)
        assert np.array_equal(a.column("population").numeric_values(),
                              b.column("population").numeric_values())

    def test_seed_changes_data(self):
        a = make_crime(n_rows=100, seed=3)
        b = make_crime(n_rows=100, seed=4)
        assert not np.array_equal(a.column("population").numeric_values(),
                                  b.column("population").numeric_values())

    def test_phenomenon_columns_exist(self, crime_small):
        for columns, _ in CRIME_PHENOMENA.values():
            for col in columns:
                assert col in crime_small

    def test_figure1_correlation_structure(self, crime_small):
        """Each phenomenon pair must itself be correlated (tight views)."""
        for name, (cols, _) in CRIME_PHENOMENA.items():
            x = crime_small.column(cols[0]).numeric_values()
            y = crime_small.column(cols[1]).numeric_values()
            assert abs(pearson(np.log(np.abs(x) + 1e-9) if name == "density"
                               else x,
                               np.log(np.abs(y) + 1e-9) if name == "density"
                               else y)) > 0.25, name

    def test_crime_driven_by_factors(self, crime_small):
        crime = crime_small.column("violent_crime_rate").numeric_values()
        edu = crime_small.column("pct_college_educated").numeric_values()
        assert pearson(crime, edu) < -0.25  # deprivation channel

    def test_boarded_windows_proxy(self, crime_small):
        crime = crime_small.column("violent_crime_rate").numeric_values()
        proxy = crime_small.column("pct_boarded_windows").numeric_values()
        assert pearson(crime, proxy) > 0.25

    def test_missing_values_injected(self, crime_small):
        assert crime_small.column("pct_boarded_windows").n_missing > 0

    def test_missing_disabled(self):
        t = make_crime(n_rows=100, missing=False)
        assert t.column("pct_boarded_windows").n_missing == 0

    def test_high_crime_predicate_selectivity(self, crime_small):
        from repro.engine.database import Database
        db = Database()
        db.register(crime_small)
        sel = db.select("us_crime", high_crime_predicate(crime_small, 0.9))
        assert 0.05 < sel.selectivity < 0.15

    def test_categoricals_present(self, crime_small):
        assert crime_small.categorical_column_names() == \
               ("region", "community_type")


class TestBoxoffice:
    def test_paper_shape(self):
        assert make_boxoffice().shape == (900, 12)

    def test_money_block_correlated(self, boxoffice_small):
        budget = boxoffice_small.column("budget").numeric_values()
        marketing = boxoffice_small.column("marketing_spend").numeric_values()
        assert pearson(budget, marketing) > 0.6

    def test_genre_economics(self, boxoffice_small):
        genre = boxoffice_small.column("genre")
        budget = boxoffice_small.column("budget").numeric_values()
        doc_mask = np.array([g == "documentary" for g in genre.label_list()])
        if doc_mask.sum() >= 5:
            assert budget[doc_mask].mean() < budget[~doc_mask].mean()

    def test_types(self, boxoffice_small):
        assert "genre" in boxoffice_small.categorical_column_names()
        assert "is_sequel" in boxoffice_small.numeric_column_names()


class TestInnovation:
    def test_paper_shape_scaled(self):
        t = make_innovation(n_rows=500, n_columns=100)
        assert t.shape == (500, 100)

    def test_full_shape_columns(self):
        t = make_innovation(n_rows=200)  # cheap row count, full width
        assert t.n_columns == 519

    def test_theme_blocks_tight(self):
        t = make_innovation(n_rows=1000, n_columns=120)
        a = t.column("rnd_spending_00").numeric_values()
        b = t.column("rnd_spending_01").numeric_values()
        assert pearson(a, b) > 0.3

    def test_income_class_tracks_development(self):
        t = make_innovation(n_rows=2000, n_columns=80)
        income = t.column("income_class")
        gdp = t.column("gdp_00").numeric_values()
        high = np.array([v == "very_high" for v in income.label_list()])
        low = np.array([v == "low" for v in income.label_list()])
        assert np.nanmean(gdp[high]) > np.nanmean(gdp[low])

    def test_missing_injected(self):
        t = make_innovation(n_rows=500, n_columns=100)
        gaps = sum(c.n_missing > 0 for c in t.columns)
        assert gaps >= 10


class TestRegistry:
    def test_names(self):
        assert dataset_names() == ("boxoffice", "innovation", "us_crime")

    def test_load_with_kwargs(self):
        t = load_dataset("boxoffice", n_rows=50)
        assert t.n_rows == 50

    def test_unknown_raises(self):
        with pytest.raises(UnknownDatasetError) as exc:
            load_dataset("netflix")
        assert "boxoffice" in str(exc.value)
