"""Tests for the planted-view generator and the synthetic builders."""

import numpy as np
import pytest

from repro.data.planted import EFFECT_KINDS, make_planted
from repro.data.synthetic import (
    correlated_block,
    gaussian_mixture_column,
    inject_missing,
    lognormal_column,
    proportion_column,
)
from repro.stats.correlation import pearson


class TestSyntheticBuilders:
    def test_correlated_block_structure(self, rng):
        block = correlated_block(rng, 2000, 4, loading=0.9, noise=0.3)
        assert block.shape == (2000, 4)
        assert pearson(block[:, 0], block[:, 1]) > 0.6

    def test_correlated_block_shared_factor(self, rng):
        factor = rng.normal(size=1000)
        b1 = correlated_block(rng, 1000, 2, factor=factor)
        b2 = correlated_block(rng, 1000, 2, factor=factor)
        assert pearson(b1[:, 0], b2[:, 0]) > 0.2

    def test_lognormal_positive_and_skewed(self, rng):
        col = lognormal_column(rng, 5000, scale=100.0, sigma=0.8)
        assert np.all(col > 0)
        assert np.mean(col) > np.median(col)  # right skew

    def test_proportion_bounds(self, rng):
        col = proportion_column(rng, 1000, base=rng.normal(size=1000))
        assert np.all((col > 0) & (col < 1))

    def test_proportion_monotone_in_base(self, rng):
        base = np.linspace(-3, 3, 500)
        col = proportion_column(rng, 500, base=base, noise=0.001)
        assert pearson(base, col) > 0.95

    def test_mixture_multimodal(self, rng):
        col = gaussian_mixture_column(rng, 5000, means=(-3.0, 3.0), sigma=0.3)
        # Almost nothing near zero for well-separated modes.
        assert np.mean(np.abs(col) < 1.0) < 0.05

    def test_mixture_weights(self, rng):
        col = gaussian_mixture_column(rng, 5000, means=(-3.0, 3.0),
                                      weights=(0.9, 0.1), sigma=0.3)
        assert np.mean(col < 0) > 0.8

    def test_inject_missing_rate(self, rng):
        out = inject_missing(rng, np.zeros(10000), 0.1)
        assert np.isnan(out).mean() == pytest.approx(0.1, abs=0.02)

    def test_inject_missing_informative(self, rng):
        driver = np.arange(10000.0)
        out = inject_missing(rng, np.zeros(10000), 0.1, driver=driver)
        top_rate = np.isnan(out[-1000:]).mean()
        bottom_rate = np.isnan(out[:1000]).mean()
        assert top_rate > bottom_rate + 0.05

    def test_inject_missing_bad_rate(self, rng):
        with pytest.raises(ValueError):
            inject_missing(rng, np.zeros(5), 1.0)


class TestMakePlanted:
    def test_shapes_and_truth(self):
        ds = make_planted(n_rows=500, n_columns=20, n_views=3, view_dim=2)
        assert ds.table.shape == (500, 20)
        assert len(ds.truth) == 3
        assert len(ds.truth_columns) == 6
        kinds = [v.kind for v in ds.truth]
        assert kinds == list(EFFECT_KINDS)

    def test_selection_selectivity(self):
        ds = make_planted(n_rows=1000, selectivity=0.2)
        assert ds.selection.n_inside == pytest.approx(200, abs=2)

    def test_mean_effect_visible(self):
        ds = make_planted(n_rows=3000, n_views=1, kinds=("mean",),
                          effect=1.0, seed=7)
        col = ds.truth[0].columns[0]
        values = ds.table.column(col).numeric_values()
        mask = ds.selection.mask
        assert values[mask].mean() - values[~mask].mean() > 0.7

    def test_spread_effect_visible(self):
        ds = make_planted(n_rows=3000, n_views=1, kinds=("spread",),
                          effect=1.0, seed=7)
        col = ds.truth[0].columns[0]
        values = ds.table.column(col).numeric_values()
        mask = ds.selection.mask
        assert values[mask].std() / values[~mask].std() > 1.5

    def test_correlation_effect_visible(self):
        ds = make_planted(n_rows=3000, n_views=1, kinds=("correlation",),
                          effect=1.0, seed=7)
        c1, c2 = ds.truth[0].columns
        x = ds.table.column(c1).numeric_values()
        y = ds.table.column(c2).numeric_values()
        mask = ds.selection.mask
        assert abs(pearson(x[mask], y[mask])) < 0.3
        assert pearson(x[~mask], y[~mask]) > 0.6

    def test_planted_views_are_tight(self):
        ds = make_planted(n_rows=2000, n_views=2, kinds=("mean", "spread"))
        for pv in ds.truth:
            c1, c2 = pv.columns
            x = ds.table.column(c1).numeric_values()
            y = ds.table.column(c2).numeric_values()
            assert pearson(x, y) > 0.5

    def test_zero_effect_invisible(self):
        ds = make_planted(n_rows=2000, n_views=1, kinds=("mean",),
                          effect=0.0, seed=7)
        col = ds.truth[0].columns[0]
        values = ds.table.column(col).numeric_values()
        mask = ds.selection.mask
        assert abs(values[mask].mean() - values[~mask].mean()) < 0.2

    def test_too_many_views_raises(self):
        with pytest.raises(ValueError):
            make_planted(n_columns=4, n_views=3, view_dim=2)

    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError):
            make_planted(kinds=("volcano",))

    def test_deterministic(self):
        a = make_planted(seed=11)
        b = make_planted(seed=11)
        assert np.array_equal(a.selection.mask, b.selection.mask)
        assert a.truth == b.truth
