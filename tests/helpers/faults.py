"""Reusable fault-injection harness for resilience tests.

Three tools, all deterministic:

* :class:`CrashingExecutor` — an :class:`~repro.runtime.Executor`
  wrapper that fails chosen submissions through the normal ``finish``
  path (simulating a worker that died before delivering its outcome),
  while delegating everything else to a real inner backend;
* :func:`kill_worker` (and the :func:`kill_worker_by_pid` fixture) —
  SIGKILL one shard process of a :class:`ProcessShardExecutor` and wait
  until the OS confirms it is gone, so tests exercise the *real* death
  detection path, not a simulation;
* :func:`make_flaky_task` — a work-callable factory that fails a fixed
  number of times before succeeding, for retry-shaped tests that must
  not depend on timing.
"""

from __future__ import annotations

import os
import signal
import threading

import pytest

from repro.runtime.executors import Executor, ThreadExecutor, WorkerError
from repro.runtime.executors.base import CompletedHandle


class Collector:
    """Callback harness: records stage events and the terminal outcome
    of one executor submission."""

    def __init__(self):
        self.began = threading.Event()
        self.events: list = []
        self.outcome = None
        self.done = threading.Event()

    def begin(self):
        self.began.set()

    def progress(self, stage, payload):
        self.events.append((stage, payload))

    def finish(self, status, result, error):
        self.outcome = (status, result, error)
        self.done.set()

    @property
    def stages(self) -> list:
        return [stage for stage, _ in self.events]

    def wait(self, timeout: float = 120):
        assert self.done.wait(timeout), "no terminal outcome arrived"
        return self.outcome


class CrashingExecutor(Executor):
    """Deterministic fault injection in the shape of a backend.

    Submissions whose 1-based ordinal is in ``fail_submissions`` report
    ``("failed", None, WorkerError(...))`` through ``finish`` — after
    optionally emitting ``preamble`` progress events, so the failure
    looks exactly like a worker that crashed mid-job.  Everything else
    delegates to the ``inner`` backend (a fresh two-thread
    :class:`ThreadExecutor` by default).
    """

    kind = "crashing"

    def __init__(self, inner: Executor | None = None,
                 fail_submissions: "tuple[int, ...]" = (1,),
                 preamble: "tuple[tuple[str, object], ...]" = ()):
        self.inner = inner if inner is not None else ThreadExecutor(
            max_workers=2, name="crashing-inner")
        self.supports_callables = self.inner.supports_callables
        self.fail_submissions = frozenset(fail_submissions)
        self.preamble = tuple(preamble)
        self.submissions = 0
        self.injected: list[int] = []
        self._lock = threading.Lock()

    def submit(self, work, *, begin, progress, finish):
        with self._lock:
            self.submissions += 1
            ordinal = self.submissions
            inject = ordinal in self.fail_submissions
            if inject:
                self.injected.append(ordinal)
        if not inject:
            return self.inner.submit(work, begin=begin, progress=progress,
                                     finish=finish)
        begin()
        for stage, payload in self.preamble:
            progress(stage, payload)
        finish("failed", None,
               WorkerError(f"injected crash (submission #{ordinal})"))
        return CompletedHandle()

    def register_table(self, table, name=None, cache=None) -> None:
        self.inner.register_table(table, name=name, cache=cache)

    def close(self, wait: bool = True) -> None:
        self.inner.close(wait=wait)

    def describe(self) -> dict:
        return {"kind": self.kind, "inner": self.inner.describe(),
                "submissions": self.submissions,
                "injected": list(self.injected)}


def kill_worker(executor, shard: int = 0, sig: int = signal.SIGKILL,
                timeout: float = 30.0) -> int:
    """SIGKILL one shard process and wait until it is observably dead.

    Returns the killed PID.  The executor's pump then notices the death
    through its ordinary liveness check — nothing is short-circuited, so
    the respawn path under test is the production one.
    """
    worker = executor._workers[shard]
    pid = worker.process.pid
    os.kill(pid, sig)
    worker.process.join(timeout)
    if worker.process.is_alive():
        raise RuntimeError(f"worker shard {shard} (pid {pid}) survived "
                           f"signal {sig} for {timeout}s")
    return pid


@pytest.fixture
def kill_worker_by_pid():
    """The :func:`kill_worker` helper as a fixture (import it into a
    test module's namespace to activate)."""
    return kill_worker


def make_flaky_task(fail_times: int, result: object = "ok",
                    stages: "tuple[str, ...]" = ("preparation",)):
    """A deterministic flaky work callable: fails ``fail_times`` times
    with :class:`WorkerError`, then succeeds with ``result``.

    The returned callable carries its call counter as ``work.calls``
    (``{"n": int}``), so tests can assert exactly how often it ran.
    """
    calls = {"n": 0}

    def work(progress):
        calls["n"] += 1
        attempt = calls["n"]
        for stage in stages:
            progress(stage, {"attempt": attempt})
        if attempt <= fail_times:
            raise WorkerError(f"injected flake (attempt #{attempt})")
        return result

    work.calls = calls
    return work
