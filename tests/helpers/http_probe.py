"""Raw-urllib HTTP probes for tests that assert on status codes and
headers without the client's error mapping or retry behaviour."""

from __future__ import annotations

import json
import urllib.error
import urllib.request


def http_get(url: str, headers: dict | None = None,
             timeout: float = 30.0) -> tuple[int, dict, bytes]:
    """GET returning ``(status, headers, body)`` without raising on 4xx."""
    request = urllib.request.Request(url, headers=headers or {})
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, dict(response.headers), response.read()
    except urllib.error.HTTPError as exc:
        return exc.code, dict(exc.headers), exc.read()


def http_post(url: str, payload: dict,
              timeout: float = 30.0) -> tuple[int, dict, bytes]:
    """POST JSON returning ``(status, headers, body)``; 4xx not raised."""
    request = urllib.request.Request(
        url, data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"})
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, dict(response.headers), response.read()
    except urllib.error.HTTPError as exc:
        return exc.code, dict(exc.headers), exc.read()
