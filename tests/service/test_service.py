"""Tests for ZiggyService: sessions, batches, jobs, progressive results.

Includes the acceptance-criteria checks of the service redesign:
batch cache reuse, mid-search cancellation, and v1-adapter equivalence.
"""

import threading

import pytest

from repro.app.api import ZiggyApi
from repro.errors import JobNotFoundError, NoActiveQueryError, ReproError
from repro.service import (
    BatchRequest,
    CharacterizeRequest,
    CharacterizeResponse,
    ConfigureRequest,
    JobSubmitRequest,
    ViewPageRequest,
    ZiggyService,
)

PREDICATES_10 = [f"gross > {g}"
                 for g in range(100_000_000, 300_000_000, 20_000_000)]


@pytest.fixture
def service(boxoffice_small):
    # An isolated runtime per test: these tests assert per-service cache
    # deltas, which the process-wide shared runtime would (by design)
    # blur across tests.  Cross-client sharing through one runtime is
    # covered by tests/service/test_shared_runtime.py.
    from repro.runtime import ZiggyRuntime

    s = ZiggyService(max_workers=2, runtime=ZiggyRuntime())
    s.register_table(boxoffice_small)
    yield s
    s.shutdown(wait=False)


class TestCharacterize:
    def test_sync_roundtrip(self, service):
        response = service.characterize(
            CharacterizeRequest(where="gross > 200000000"))
        assert isinstance(response, CharacterizeResponse)
        assert response.table == "boxoffice"
        assert response.n_views == len(response.views.items)
        assert response.views.items[0]["explanation"]

    def test_pagination_applies(self, service):
        response = service.characterize(
            CharacterizeRequest(where="gross > 200000000", page_size=2))
        assert len(response.views.items) <= 2
        assert response.n_views >= len(response.views.items)

    def test_sessions_are_isolated_per_client(self, service):
        service.characterize(CharacterizeRequest(where="gross > 200000000",
                                                 client_id="alice"))
        page = service.view_page(ViewPageRequest(client_id="alice"))
        assert page.total > 0
        with pytest.raises(NoActiveQueryError):
            service.view_page(ViewPageRequest(client_id="bob"))

    def test_per_request_options(self, service):
        response = service.characterize(CharacterizeRequest(
            where="gross > 200000000", client_id="opt",
            options={"max_views": 2}))
        assert response.n_views <= 2

    def test_configure_weights(self, service):
        result = service.configure(ConfigureRequest(
            client_id="cfg", weights={"mean_shift": 2.0},
            options={"max_views": 3}))
        assert result.weights["mean_shift"] == 2.0
        assert result.applied == ("max_views",)

    def test_progressive_views_stream_before_result(self, service):
        events = []
        service.characterize(
            CharacterizeRequest(where="gross > 200000000", client_id="prog"),
            progress=lambda stage, payload: events.append(stage))
        stages = [s for s in events]
        assert "preparation" in stages
        assert stages.count("view") >= 1
        # every view event precedes the final result event
        assert stages.index("view") < stages.index("result")

    def test_dispatch_returns_error_dict_not_raise(self, service):
        response = service.dispatch({"type": "characterize",
                                     "where": "gross >"})
        assert response["ok"] is False
        assert response["error"]["code"] == "syntax_error"

    def test_dispatch_unknown_type(self, service):
        response = service.dispatch({"type": "teleport"})
        assert response["ok"] is False
        assert response["error"]["code"] == "bad_request"


class TestBatch:
    def test_batch_runs_every_predicate(self, service):
        batch = service.characterize_many(
            BatchRequest(predicates=tuple(PREDICATES_10)))
        assert len(batch.results) == 10
        assert all(r.predicate for r in batch.results)
        assert batch.total_time_ms > 0

    def test_batch_cache_reuse_beats_cold_queries(self, boxoffice_small):
        """Acceptance: a 10-predicate batch must hit the shared cache far
        more than 10 independent cold single queries would imply."""
        # Isolated runtimes: the measurement needs genuinely cold caches,
        # which the process-wide shared runtime would (correctly) defeat.
        from repro.runtime import ZiggyRuntime

        # one cold single query, as the baseline
        single = ZiggyService(runtime=ZiggyRuntime())
        single.register_table(boxoffice_small)
        single.characterize(CharacterizeRequest(where=PREDICATES_10[0]))
        counters = (single.session("default").engine_for("boxoffice")
                    .cache.counters)
        single_hits, single_misses = counters.hits, counters.misses
        single.shutdown(wait=False)

        batched = ZiggyService(runtime=ZiggyRuntime())
        batched.register_table(boxoffice_small)
        batch = batched.characterize_many(
            BatchRequest(predicates=tuple(PREDICATES_10)))
        batched.shutdown(wait=False)

        # Strictly more hits than ten cold runs would accumulate...
        assert batch.cache_hits > 10 * single_hits
        # ...because table-level work is shared instead of recomputed.
        assert batch.cache_misses < 10 * single_misses

    def test_batch_counters_are_per_batch_not_cumulative(self, service):
        # Regression: counters must be the batch's delta, not the
        # engine-lifetime totals.
        predicates = ("gross > 150000000", "gross > 250000000")
        first = service.characterize_many(
            BatchRequest(predicates=predicates, client_id="delta"))
        second = service.characterize_many(
            BatchRequest(predicates=predicates, client_id="delta"))
        counters = (service.session("delta").engine_for("boxoffice")
                    .cache.counters)
        assert first.cache_hits + second.cache_hits == counters.hits
        assert first.cache_misses + second.cache_misses == counters.misses
        assert second.cache_misses == 0  # identical predicates: all hits

    def test_batch_history_is_queryable(self, service):
        service.characterize_many(BatchRequest(
            predicates=("gross > 150000000", "gross > 250000000"),
            client_id="hist"))
        page = service.view_page(ViewPageRequest(client_id="hist"))
        assert page.total >= 0  # latest batch entry is current
        assert len(service.session("hist").history) == 2

    def test_batch_items_span_tables_in_submission_order(self, service,
                                                         crime_small):
        service.register_table(crime_small)
        batch = service.characterize_many(BatchRequest(items=(
            ("boxoffice", "gross > 150000000"),
            ("us_crime", "violent_crime_rate > 0.2"),
            ("boxoffice", "gross > 250000000"),
        ), client_id="multi"))
        assert [r.table for r in batch.results] == \
            ["boxoffice", "us_crime", "boxoffice"]
        history = service.session("multi").history
        assert [entry.table_name for entry in history] == \
            ["boxoffice", "us_crime", "boxoffice"]

    def test_same_content_under_two_names_keeps_history_honest(
            self, boxoffice_small):
        """Regression: two catalog names for identical content (equal
        fingerprints) must not merge into one batch group — responses
        and session history report the name the caller used."""
        from repro.runtime import ZiggyRuntime

        svc = ZiggyService(runtime=ZiggyRuntime())
        svc.register_table(boxoffice_small, name="alias_a")
        svc.register_table(boxoffice_small, name="alias_b")
        try:
            batch = svc.characterize_many(BatchRequest(items=(
                ("alias_a", "gross > 150000000"),
                ("alias_b", "gross > 250000000"),
            ), client_id="alias"))
            assert [r.table for r in batch.results] == \
                ["alias_a", "alias_b"]
            history = svc.session("alias").history
            assert [entry.table_name for entry in history] == \
                ["alias_a", "alias_b"]
        finally:
            svc.shutdown(wait=False)


class TestJobs:
    def test_submit_poll_result(self, service):
        snapshot = service.submit(JobSubmitRequest(
            request=CharacterizeRequest(where="gross > 200000000",
                                        client_id="jobs")))
        assert snapshot.status in ("pending", "running")
        final = service.wait(snapshot.job_id, timeout=30)
        assert final.status == "done"
        assert final.result is not None
        assert final.result.n_views == len(final.result.views.items)
        assert final.timings_ms["run"] > 0

    def test_partial_views_streamed(self, service):
        snapshot = service.submit(CharacterizeRequest(
            where="gross > 200000000", client_id="partial"))
        final = service.wait(snapshot.job_id, timeout=30)
        assert final.status == "done"
        # the searcher keeps at least as many views as survive validation
        assert len(final.partial_views) >= final.result.n_views
        assert all("columns" in v for v in final.partial_views)

    def test_failed_job_reports_structured_error(self, service):
        snapshot = service.submit(CharacterizeRequest(
            where="no_such_column > 1", client_id="fail"))
        final = service.wait(snapshot.job_id, timeout=30)
        assert final.status == "failed"
        assert final.error is not None
        assert final.error.code == "unknown_column"

    def test_poll_and_cancel_mid_search(self, service):
        """Acceptance: a job can be polled and cancelled mid-search."""
        started = threading.Event()
        release = threading.Event()

        def on_progress(stage, payload):
            started.set()
            release.wait(timeout=10)

        snapshot = service.submit(
            CharacterizeRequest(where="gross > 200000000",
                                client_id="cancel"),
            on_progress=on_progress)
        assert started.wait(timeout=10)

        polled = service.job_status(snapshot.job_id)   # poll mid-search
        assert polled.status == "running"

        service.cancel(snapshot.job_id)                # cancel mid-search
        release.set()
        final = service.wait(snapshot.job_id, timeout=30)
        assert final.status == "cancelled"
        assert final.result is None

    def test_unknown_job(self, service):
        with pytest.raises(JobNotFoundError):
            service.job_status("job-424242")


class TestV1Adapter:
    """Every legacy action must keep its exact success-response shape."""

    @pytest.fixture
    def api(self, service):
        return ZiggyApi(service=service)

    def test_list_tables_shape(self, api):
        response = api.handle({"action": "list_tables"})
        assert response["ok"]
        assert set(response["tables"][0]) == {"name", "rows", "columns",
                                              "column_names"}

    def test_query_shape(self, api):
        response = api.handle({"action": "query",
                               "where": "gross > 200000000"})
        assert response["ok"]
        assert set(response) == {"ok", "predicate", "n_inside", "n_outside",
                                 "n_views", "timings_ms", "views", "notes"}
        assert response["n_views"] == len(response["views"])
        view = response["views"][0]
        assert set(view) == {"rank", "columns", "score", "tightness",
                             "p_value", "significant", "explanation",
                             "components"}
        component = view["components"][0]
        assert set(component) == {"component", "columns", "raw",
                                  "normalized", "weight", "direction",
                                  "p_value", "detail"}

    def test_views_shape(self, api):
        api.handle({"action": "query", "where": "gross > 200000000"})
        response = api.handle({"action": "views"})
        assert response["ok"]
        assert set(response) == {"ok", "views"}

    def test_view_detail_shape(self, api):
        api.handle({"action": "query", "where": "gross > 200000000"})
        response = api.handle({"action": "view_detail", "rank": 1})
        assert response["ok"]
        assert set(response) == {"ok", "rank", "panel"}
        assert "View 1" in response["panel"]

    def test_dendrogram_shape(self, api):
        api.handle({"action": "query", "where": "gross > 200000000"})
        response = api.handle({"action": "dendrogram"})
        assert response["ok"]
        assert set(response) == {"ok", "dendrogram"}

    def test_set_weights_shape(self, api):
        response = api.handle({"action": "set_weights",
                               "weights": {"mean_shift": 2.0}})
        assert response["ok"]
        assert set(response) == {"ok", "weights"}
        assert response["weights"]["mean_shift"] == 2.0

    def test_set_option_shape(self, api):
        response = api.handle({"action": "set_option",
                               "options": {"max_views": 2}})
        assert response["ok"]
        assert set(response) == {"ok", "applied"}

    def test_views_before_query_is_structured_error(self, api):
        response = api.handle({"action": "views"})
        assert response["ok"] is False
        assert response["code"] == "no_active_query"
        assert "no active query" in response["error"]

    def test_view_detail_before_query_is_structured_error(self, api):
        response = api.handle({"action": "view_detail", "rank": 1})
        assert response["ok"] is False
        assert response["code"] == "no_active_query"

    def test_v1_and_v2_see_the_same_catalog(self, api, service):
        v1_names = {t["name"] for t in
                    api.handle({"action": "list_tables"})["tables"]}
        v2_names = {t.name for t in service.list_tables().tables}
        assert v1_names == v2_names

    def test_v1_query_equivalent_to_v2(self, api, service):
        v1 = api.handle({"action": "query", "where": "gross > 200000000"})
        v2 = service.characterize(CharacterizeRequest(
            where="gross > 200000000", client_id="equiv")).to_dict()
        assert v1["predicate"] == v2["predicate"]
        assert v1["n_inside"] == v2["n_inside"]
        assert v1["n_views"] == v2["n_views"]
        # identical view payloads (modulo the protocol envelope)
        assert v1["views"] == v2["views"]["items"]

    def test_standalone_api_still_works(self, boxoffice_small):
        from repro.app.session import ZiggySession
        session = ZiggySession()
        session.add_table(boxoffice_small)
        api = ZiggyApi(session)
        response = api.handle({"action": "query",
                               "where": "gross > 200000000"})
        assert response["ok"]


class TestSessionProgress:
    def test_run_many_shares_one_engine(self, boxoffice_small):
        from repro.app.session import ZiggySession
        session = ZiggySession()
        session.add_table(boxoffice_small)
        events = []
        results = session.run_many(
            ("gross > 150000000", "gross > 250000000"),
            progress=lambda stage, payload: events.append(stage))
        assert len(results) == 2
        assert events.count("batch_item") == 2
        assert len(session._engines) == 1

    def test_ziggy_characterize_many(self, boxoffice_small):
        from repro import Ziggy
        ziggy = Ziggy(boxoffice_small)
        results = ziggy.characterize_many(
            ["gross > 150000000", "gross > 250000000"])
        assert len(results) == 2
        counters = ziggy.cache_counters()
        assert counters.hits > 0  # second query reused shared statistics
