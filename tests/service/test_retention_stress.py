"""Concurrency stress test of :class:`JobManager` retention.

Two hundred short jobs churn through a manager retaining only eight
finished records while reader threads hammer ``events_since`` on every
job they have seen.  The invariants under stress:

* nothing deadlocks (every thread joins within its deadline);
* a pruned job raises :class:`JobNotFoundError` — for fresh calls and
  for waiters already blocked on it when the prune happened;
* a job that is still queryable always reports **its own** result,
  never another submission's (no stale/recycled records).
"""

import random
import threading

import pytest

from repro.errors import JobNotFoundError
from repro.service.jobs import JobManager

N_JOBS = 200
MAX_FINISHED = 8


class TestRetentionUnderStress:
    def test_200_short_jobs_with_concurrent_event_readers(self):
        manager = JobManager(max_workers=4, max_finished=MAX_FINISHED)
        submitted: list[str] = []
        expected_for: dict[str, str] = {}
        submitted_lock = threading.Lock()
        stop = threading.Event()
        failures: list[str] = []

        def reader(seed: int) -> None:
            rng = random.Random(seed)
            not_found = 0
            served = 0
            while not stop.is_set():
                with submitted_lock:
                    known = list(submitted)
                if not known:
                    continue
                job_id = rng.choice(known)
                try:
                    events, _finished = manager.events_since(
                        job_id, after_seq=0, timeout=0.02)
                except JobNotFoundError:
                    not_found += 1  # pruned — the documented outcome
                    continue
                served += 1
                with submitted_lock:
                    expected = expected_for[job_id]
                for _seq, stage, payload in events:
                    if stage == "tick" and payload["marker"] != expected:
                        failures.append(
                            f"{job_id} served a stale event "
                            f"({payload['marker']!r} != {expected!r})")
            if served == 0 and not_found == 0:
                failures.append(f"reader {seed} never observed a job")

        readers = [threading.Thread(target=reader, args=(seed,),
                                    name=f"retention-reader-{seed}")
                   for seed in range(3)]
        for thread in readers:
            thread.start()
        try:
            for index in range(N_JOBS):
                expected = f"result-{index}"

                def work(progress, _marker=expected):
                    progress("tick", {"marker": _marker})
                    return _marker

                job_id = manager.submit(work)
                # readers only learn the ID through this list, so the
                # marker mapping is always in place before they can ask
                with submitted_lock:
                    expected_for[job_id] = expected
                    submitted.append(job_id)
                job = manager.wait(job_id, timeout=30)
                if job.finished and job.status == "done":
                    assert job.result == expected, (
                        f"{job_id} returned {job.result!r}, "
                        f"expected {expected!r}")
        finally:
            stop.set()
            for thread in readers:
                thread.join(timeout=30)
            manager.shutdown(wait=True)
        assert not any(thread.is_alive() for thread in readers), \
            "a reader thread deadlocked"
        assert failures == []
        # retention actually bounded the ledger
        manager.prune()
        assert len(manager.job_ids()) <= MAX_FINISHED
        # pruned jobs behave exactly like unknown ones
        pruned = [job_id for job_id in submitted
                  if job_id not in manager.job_ids()]
        assert pruned, "stress run never pruned anything"
        with pytest.raises(JobNotFoundError):
            manager.events_since(pruned[0], timeout=0.01)
        with pytest.raises(JobNotFoundError):
            manager.get(pruned[0])

    def test_blocked_waiter_survives_finish_then_immediate_prune(self):
        """A reader blocked on a *running* job must wake promptly when
        the job finishes — even when retention prunes the record right
        behind the finish — and a fresh read after the prune raises
        :class:`JobNotFoundError` instead of blocking."""
        manager = JobManager(max_workers=2, max_finished=0)
        gate = threading.Event()
        try:
            job_id = manager.submit(lambda progress: gate.wait(30))
            outcome: dict = {}

            def blocked_reader():
                try:
                    outcome["value"] = manager.events_since(
                        job_id, after_seq=0, timeout=30)
                except JobNotFoundError:
                    outcome["value"] = "not-found"

            thread = threading.Thread(target=blocked_reader)
            thread.start()
            gate.set()
            manager.wait(job_id, timeout=30)
            manager.prune()  # max_finished=0: gone the moment it ends
            thread.join(timeout=10)
            assert not thread.is_alive(), "waiter missed the wake-up"
            # either ordering is legal; hanging is not
            assert outcome["value"] in (([], True), "not-found")
            with pytest.raises(JobNotFoundError):
                manager.events_since(job_id, timeout=0.01)
        finally:
            gate.set()
            manager.shutdown(wait=False)
