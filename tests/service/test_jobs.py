"""Tests for the job manager: lifecycle, cancellation, failure."""

import threading
import time

import pytest

from repro.errors import JobCancelled, JobNotFoundError
from repro.service.jobs import JobManager


@pytest.fixture
def manager():
    m = JobManager(max_workers=1)
    yield m
    m.shutdown(wait=False)


class TestLifecycle:
    def test_submit_run_done(self, manager):
        job_id = manager.submit(lambda progress: 42)
        job = manager.wait(job_id, timeout=5)
        assert job.status == "done"
        assert job.result == 42
        assert job.finished

    def test_ids_are_unique_and_ordered(self, manager):
        first = manager.submit(lambda progress: 1)
        second = manager.submit(lambda progress: 2)
        assert first != second
        assert manager.job_ids() == (first, second)

    def test_timings_cover_queue_and_run(self, manager):
        job_id = manager.submit(lambda progress: time.sleep(0.01) or "ok")
        job = manager.wait(job_id, timeout=5)
        timings = job.timings_ms()
        assert timings["queued"] >= 0.0
        assert timings["run"] >= 10.0

    def test_progress_events_captured_as_partials(self, manager):
        def work(progress):
            progress("view", {"rank": 1})
            progress("view", {"rank": 2})
            progress("result", "ignored")  # only "view" events are partials
            return "done"

        job = manager.wait(manager.submit(work), timeout=5)
        assert job.status == "done"
        assert job.partial == [{"rank": 1}, {"rank": 2}]

    def test_unknown_job_raises(self, manager):
        with pytest.raises(JobNotFoundError):
            manager.get("job-999999")
        with pytest.raises(JobNotFoundError):
            manager.cancel("job-999999")


class TestFailure:
    def test_exception_becomes_failed(self, manager):
        def work(progress):
            raise ValueError("kaboom")

        job = manager.wait(manager.submit(work), timeout=5)
        assert job.status == "failed"
        assert isinstance(job.error, ValueError)
        assert job.result is None


class TestCancellation:
    def test_cancel_pending_job_never_runs(self, manager):
        release = threading.Event()
        ran = []

        blocker_id = manager.submit(
            lambda progress: release.wait(timeout=10))
        pending_id = manager.submit(
            lambda progress: ran.append(True))
        cancelled = manager.cancel(pending_id)
        release.set()
        manager.wait(blocker_id, timeout=5)
        job = manager.wait(pending_id, timeout=5)
        assert cancelled.status == "cancelled"
        assert job.status == "cancelled"
        assert not ran

    def test_cancel_running_job_stops_at_next_progress(self, manager):
        started = threading.Event()
        release = threading.Event()

        def work(progress):
            for i in range(1000):
                progress("view", i)
                started.set()
                release.wait(timeout=10)
            return "finished"

        job_id = manager.submit(work)
        assert started.wait(timeout=5)
        manager.cancel(job_id)   # lands while the worker blocks in progress
        release.set()
        job = manager.wait(job_id, timeout=5)
        assert job.status == "cancelled"
        assert job.result is None

    def test_cancel_after_done_is_a_noop(self, manager):
        job_id = manager.submit(lambda progress: "ok")
        manager.wait(job_id, timeout=5)
        job = manager.cancel(job_id)
        assert job.status == "done"
        assert job.result == "ok"

    def test_progress_raises_job_cancelled_for_worker(self, manager):
        """The cooperative mechanism: progress raises inside the worker."""
        seen = []

        def work(progress):
            manager.cancel(manager.job_ids()[0])  # self-cancel
            try:
                progress("view", 1)
            except JobCancelled as exc:
                seen.append(exc)
                raise
            return "never"

        job = manager.wait(manager.submit(work), timeout=5)
        assert job.status == "cancelled"
        assert seen
