"""Tests for protocol v2: round-tripping, pagination, JSON safety."""

import json

import numpy as np
import pytest

from repro.core.views import ComponentScore, View, ViewResult
from repro.errors import (
    ConfigError,
    JobCancelled,
    JobNotFoundError,
    NoActiveQueryError,
    ProtocolError,
    QuerySyntaxError,
    ReproError,
    UnknownColumnError,
)
from repro.service.protocol import (
    PROTOCOL_VERSION,
    ApiError,
    BatchRequest,
    BatchResponse,
    CharacterizeRequest,
    CharacterizeResponse,
    ConfigureRequest,
    ConfigureResponse,
    ErrorCode,
    JobControlRequest,
    JobEvent,
    JobSnapshot,
    JobSubmitRequest,
    StateReport,
    StateRequest,
    TableInfo,
    TableList,
    TablesRequest,
    ViewPage,
    ViewPageRequest,
    error_code_for,
    json_safe,
    parse_request,
    parse_response,
    view_to_dict,
)


def make_views(n: int) -> list[ViewResult]:
    return [ViewResult(view=View(columns=(f"col_{i}",)), score=float(n - i),
                       tightness=1.0, components=(), p_value=0.01,
                       significant=True, explanation=f"view {i}")
            for i in range(n)]


def roundtrip(message):
    """to_dict -> JSON -> from_dict must reproduce the message exactly."""
    wire = json.loads(json.dumps(message.to_dict()))
    return type(message).from_dict(wire)


SAMPLE_PAGE = ViewPage.from_views(make_views(3), page=1, page_size=2)
SAMPLE_RESPONSE = CharacterizeResponse(
    predicate="x > 1", table="t", n_inside=10, n_outside=90, n_views=3,
    timings_ms={"preparation": 1.5, "view_search": 2.5},
    views=SAMPLE_PAGE, notes=("note a",))

ALL_MESSAGES = [
    CharacterizeRequest(where="x > 1", table="t", client_id="c", page=2,
                        page_size=5, weights={"mean_shift": 2.0},
                        options={"max_views": 3}),
    BatchRequest(predicates=("x > 1", "y < 2"), table="t", client_id="c",
                 page_size=4, options={"max_views": 2}),
    ViewPageRequest(client_id="c", page=3, page_size=7),
    JobSubmitRequest(request=CharacterizeRequest(where="x > 1")),
    JobControlRequest(job_id="job-000001", op="cancel"),
    TablesRequest(),
    StateRequest(),
    ConfigureRequest(client_id="c", weights={"w": 1.0},
                     options={"alpha": 0.01}),
    SAMPLE_PAGE,
    SAMPLE_RESPONSE,
    BatchResponse(results=(SAMPLE_RESPONSE,), total_time_ms=12.5,
                  cache_hits=10, cache_misses=2),
    JobSnapshot(job_id="job-000002", status="running",
                timings_ms={"queued": 0.5, "run": 3.0},
                partial_views=(view_to_dict(make_views(1)[0], 1),),
                result=None, error=None),
    JobSnapshot(job_id="job-000003", status="failed",
                error=ApiError(code=ErrorCode.SYNTAX_ERROR, message="bad")),
    JobSnapshot(job_id="job-000004", status="done", result=SAMPLE_RESPONSE),
    JobEvent(seq=3, kind="view-ready",
             data=view_to_dict(make_views(1)[0], 1)),
    JobEvent(seq=9, kind="done", data={"status": "done"}),
    TableInfo(name="t", rows=10, columns=3, column_names=("a", "b", "c")),
    TableList(tables=(TableInfo(name="t", rows=1, columns=1,
                                column_names=("a",)),)),
    ConfigureResponse(weights={"mean_shift": 2.0}, applied=("alpha",)),
    StateReport(enabled=True, state_dir="/tmp/state", uptime_seconds=12.5,
                journal={"segments": 1, "appends": 42},
                snapshots={"count": 2, "loaded": 1},
                recovery={"policy": "resume", "resumed": 1},
                runtime={"registry": {"hits": 3}},
                jobs={"live": 2, "by_status": {"done": 2}}),
    StateReport(enabled=False),
    ApiError(code=ErrorCode.UNKNOWN_COLUMN, message="nope",
             detail={"available": ["a", "b"]}),
]


class TestRoundTrip:
    @pytest.mark.parametrize("message", ALL_MESSAGES,
                             ids=lambda m: type(m).__name__)
    def test_to_from_dict_roundtrip(self, message):
        assert roundtrip(message) == message

    def test_every_request_type_covered(self):
        from repro.service.protocol import REQUEST_TYPES
        covered = {type(m).TYPE for m in ALL_MESSAGES if hasattr(m, "TYPE")}
        assert set(REQUEST_TYPES) <= covered

    def test_every_response_type_covered(self):
        from repro.service.protocol import RESPONSE_TYPES
        covered = {type(m).TYPE for m in ALL_MESSAGES if hasattr(m, "TYPE")}
        assert set(RESPONSE_TYPES) <= covered

    def test_parse_request_dispatches(self):
        request = parse_request({"type": "characterize", "where": "x > 1"})
        assert isinstance(request, CharacterizeRequest)

    def test_parse_response_dispatches(self):
        response = parse_response(SAMPLE_RESPONSE.to_dict())
        assert isinstance(response, CharacterizeResponse)

    def test_wire_format_is_json_serializable(self):
        for message in ALL_MESSAGES:
            json.dumps(message.to_dict())

    def test_protocol_version_declared(self):
        assert PROTOCOL_VERSION == 2
        assert SAMPLE_RESPONSE.to_dict()["protocol"] == 2


class TestValidation:
    def test_missing_where_rejected(self):
        with pytest.raises(ProtocolError):
            CharacterizeRequest.from_dict({"type": "characterize"})

    def test_empty_batch_rejected(self):
        with pytest.raises(ProtocolError):
            BatchRequest(predicates=())

    def test_predicates_must_be_a_list(self):
        with pytest.raises(ProtocolError):
            BatchRequest.from_dict({"type": "batch", "predicates": "x > 1"})

    def test_bad_job_op_rejected(self):
        with pytest.raises(ProtocolError):
            JobControlRequest(job_id="j", op="explode")

    def test_unknown_type_rejected(self):
        with pytest.raises(ProtocolError):
            parse_request({"type": "teleport"})

    def test_non_object_rejected(self):
        with pytest.raises(ProtocolError):
            parse_request([1, 2, 3])

    def test_wrong_protocol_version_rejected(self):
        with pytest.raises(ProtocolError):
            CharacterizeRequest.from_dict(
                {"type": "characterize", "where": "x > 1", "protocol": 99})

    def test_non_integer_page_rejected(self):
        with pytest.raises(ProtocolError):
            ViewPageRequest.from_dict({"type": "views", "page": "two"})


class TestPagination:
    def test_unpaged_returns_everything(self):
        page = ViewPage.from_views(make_views(5))
        assert len(page.items) == 5
        assert page.total == 5
        assert not page.has_next

    def test_page_slicing_keeps_global_ranks(self):
        views = make_views(5)
        second = ViewPage.from_views(views, page=2, page_size=2)
        assert [v["rank"] for v in second.items] == [3, 4]
        assert second.has_next  # view 5 remains
        third = ViewPage.from_views(views, page=3, page_size=2)
        assert [v["rank"] for v in third.items] == [5]
        assert not third.has_next

    def test_empty_views_give_empty_page(self):
        page = ViewPage.from_views([], page=1, page_size=3)
        assert page.items == ()
        assert page.total == 0
        assert not page.has_next

    def test_out_of_range_page_is_empty_not_an_error(self):
        page = ViewPage.from_views(make_views(3), page=9, page_size=2)
        assert page.items == ()
        assert page.total == 3
        assert not page.has_next

    def test_page_below_one_is_clamped(self):
        page = ViewPage.from_views(make_views(3), page=0, page_size=2)
        assert [v["rank"] for v in page.items] == [1, 2]


class TestJsonSafe:
    def test_top_level_nonfinite(self):
        assert json_safe(float("inf")) is None
        assert json_safe(float("nan")) is None
        assert json_safe(1.5) == 1.5

    def test_nested_in_lists_and_tuples(self):
        safe = json_safe({"a": [1.0, float("inf")],
                          "b": (float("nan"), 2.0)})
        assert safe == {"a": [1.0, None], "b": [None, 2.0]}
        json.dumps(safe)

    def test_deeply_nested(self):
        safe = json_safe({"outer": {"inner": [[float("-inf")]]}})
        assert safe == {"outer": {"inner": [[None]]}}

    def test_numpy_scalars_and_arrays(self):
        safe = json_safe({"i": np.int64(3), "f": np.float64(1.5),
                          "n": np.float64("nan"), "b": np.bool_(True),
                          "arr": np.array([1.0, np.inf])})
        assert safe == {"i": 3, "f": 1.5, "n": None, "b": True,
                        "arr": [1.0, None]}
        json.dumps(safe)

    def test_bools_and_ints_untouched(self):
        assert json_safe(True) is True
        assert json_safe(7) == 7
        assert json_safe("x") == "x"
        assert json_safe(None) is None

    def test_component_detail_with_nested_nonfinite_serializes(self):
        score = ComponentScore(
            component="corr_shift", columns=("a", "b"), raw=0.5,
            normalized=0.5, weight=1.0, test=None, direction="different",
            detail={"coeffs": [0.9, float("inf")],
                    "pair": (float("nan"), 1.0)})
        from repro.service.protocol import component_to_dict
        encoded = json.dumps(component_to_dict(score))
        assert "Infinity" not in encoded and "NaN" not in encoded


class TestErrorCodes:
    @pytest.mark.parametrize("exc,code", [
        (QuerySyntaxError("bad"), ErrorCode.SYNTAX_ERROR),
        (UnknownColumnError("x"), ErrorCode.UNKNOWN_COLUMN),
        (ConfigError("bad"), ErrorCode.INVALID_CONFIG),
        (NoActiveQueryError("c"), ErrorCode.NO_ACTIVE_QUERY),
        (JobNotFoundError("j"), ErrorCode.JOB_NOT_FOUND),
        (JobCancelled("j"), ErrorCode.CANCELLED),
        (ProtocolError("bad"), ErrorCode.BAD_REQUEST),
        (ReproError("generic"), ErrorCode.ERROR),
        (RuntimeError("boom"), ErrorCode.INTERNAL),
    ])
    def test_exception_mapping(self, exc, code):
        assert error_code_for(exc) == code
        assert ApiError.from_exception(exc).code == code

    def test_api_error_envelope(self):
        payload = ApiError.from_exception(ReproError("oops")).to_dict()
        assert payload["ok"] is False
        assert payload["error"]["message"] == "oops"
