"""Tests for the streamed job event pipeline: JobManager event log,
service wire conversion, and the SSE endpoint end to end."""

import threading

import pytest

from repro.errors import JobNotFoundError
from repro.gateway import make_frontend
from repro.runtime import ZiggyRuntime
from repro.service import CharacterizeRequest, ZiggyService
from repro.service.client import RemoteError, ZiggyClient
from repro.service.jobs import JobManager


@pytest.fixture
def service(boxoffice_small):
    s = ZiggyService(max_workers=2, runtime=ZiggyRuntime())
    s.register_table(boxoffice_small)
    yield s
    s.shutdown(wait=False)


@pytest.fixture(params=("threaded", "async"))
def http(request, boxoffice_small):
    # SSE end-to-end tests run against both front-ends.
    service = ZiggyService(max_workers=2, runtime=ZiggyRuntime())
    service.register_table(boxoffice_small)
    server = make_frontend(service, frontend=request.param, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    yield ZiggyClient(f"http://{host}:{port}", timeout=30)
    server.shutdown()
    server.server_close()
    service.shutdown(wait=False)
    thread.join(timeout=5)


class TestJobEventLog:
    def test_events_recorded_in_order(self):
        manager = JobManager(max_workers=1)
        try:
            def work(progress):
                progress("view", {"rank": 1})
                progress("result", "done")
                return "ok"

            job_id = manager.submit(work)
            manager.wait(job_id, timeout=10)
            events, finished = manager.events_since(job_id, timeout=1)
            assert finished
            assert [(seq, stage) for seq, stage, _ in events] == \
                [(1, "view"), (2, "result")]
        finally:
            manager.shutdown(wait=False)

    def test_events_since_filters_and_blocks(self):
        manager = JobManager(max_workers=1)
        try:
            gate = threading.Event()

            def work(progress):
                progress("view", 1)
                gate.wait(timeout=10)
                progress("view", 2)
                return "ok"

            job_id = manager.submit(work)
            first, finished = manager.events_since(job_id, timeout=5)
            assert [s for _, s, _ in first] == ["view"]
            assert not finished
            gate.set()
            rest, finished = manager.events_since(
                job_id, after_seq=first[-1][0], timeout=5)
            # blocks until the second event (and possibly completion);
            # "view" payloads carry their keep-order rank: (rank, payload)
            assert any(s == "view" and p == (2, 2) for _, s, p in rest)
        finally:
            manager.shutdown(wait=False)

    def test_timeout_returns_empty_unfinished(self):
        manager = JobManager(max_workers=1)
        try:
            gate = threading.Event()
            job_id = manager.submit(lambda progress: gate.wait(timeout=10))
            events, finished = manager.events_since(job_id, timeout=0.05)
            assert events == [] and not finished
            gate.set()
        finally:
            manager.shutdown(wait=False)


class TestServiceJobEvents:
    def test_wire_events_cover_pipeline_stages(self, service):
        snapshot = service.submit(CharacterizeRequest(
            where="gross > 200000000"))
        service.wait(snapshot.job_id, timeout=60)
        events, finished = service.job_events(snapshot.job_id, timeout=5)
        assert finished
        kinds = [e.kind for e in events]
        assert kinds[0] == "prepared"
        assert "component-scored" in kinds
        assert "view-ranked" in kinds
        assert "search-complete" in kinds
        assert "view-ready" in kinds
        assert kinds[-1] == "result"
        # view events carry full serialized views
        ready = [e for e in events if e.kind == "view-ready"]
        assert ready[0].data["explanation"]
        assert ready[0].data["rank"] == 1
        # streamed view-ranked events are numbered in keep order
        ranked = [e.data["rank"] for e in events if e.kind == "view-ranked"]
        assert ranked == list(range(1, len(ranked) + 1))
        # sequence numbers are strictly increasing
        seqs = [e.seq for e in events]
        assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs)

    def test_unknown_job_raises(self, service):
        with pytest.raises(JobNotFoundError):
            service.job_events("job-999999", timeout=0.1)


class TestHttpStreaming:
    def test_stream_receives_view_ready_before_done(self, http):
        """Acceptance: a streamed /v2/jobs/<id>/events consumer receives
        at least one view-ready event before the job reaches done."""
        job = http.submit("gross > 200000000")
        kinds = []
        for event in http.stream_events(job.job_id):
            kinds.append(event.kind)
            if event.kind == "done":
                assert event.data["status"] == "done"
        assert "view-ready" in kinds
        assert kinds[-1] == "done"
        assert kinds.index("view-ready") < kinds.index("done")
        # the poll API agrees the job finished
        assert http.job(job.job_id).status == "done"

    def test_stream_of_finished_job_replays_and_terminates(self, http):
        job = http.submit("gross > 150000000")
        http.wait(job.job_id, timeout=60)
        events = list(http.stream_events(job.job_id))
        kinds = [e.kind for e in events]
        assert kinds[0] == "prepared"
        assert kinds[-1] == "done"

    def test_stream_unknown_job_is_structured_404(self, http):
        with pytest.raises(RemoteError) as err:
            list(http.stream_events("job-424242"))
        assert err.value.code == "job_not_found"

    def test_failed_job_streams_done_failed(self, http):
        job = http.submit("no_such_column > 1")
        events = list(http.stream_events(job.job_id))
        assert events[-1].kind == "done"
        assert events[-1].data["status"] == "failed"

    def test_truncated_stream_raises_not_completes(self):
        """A connection that drops before the terminal done event must
        surface as a TransportError, never as normal completion."""
        import http.server
        import socketserver

        from repro.service.client import TransportError

        class Truncating(http.server.BaseHTTPRequestHandler):
            def do_GET(self):  # noqa: N802 - http.server API
                self.send_response(200)
                self.send_header("Content-Type", "text/event-stream")
                self.send_header("Connection", "close")
                self.end_headers()
                self.wfile.write(
                    b"id: 1\nevent: prepared\ndata: {}\n\n")
                # connection closes here: no "done" event ever arrives

            def log_message(self, *args):
                pass

        with socketserver.TCPServer(("127.0.0.1", 0), Truncating) as srv:
            threading.Thread(target=srv.handle_request, daemon=True).start()
            host, port = srv.server_address
            client = ZiggyClient(f"http://{host}:{port}", timeout=10)
            events = []
            # reconnects=0: the fake server answers exactly one request,
            # so the truncation must surface instead of being retried.
            with pytest.raises(TransportError, match="before the 'done'"):
                for event in client.stream_events("job-000001",
                                                  reconnects=0):
                    events.append(event)
            assert [e.kind for e in events] == ["prepared"]
