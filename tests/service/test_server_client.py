"""Integration tests: the HTTP server driven by the Python client."""

import json
import threading
import urllib.request

import pytest

from repro.gateway import make_frontend
from repro.service import ZiggyService
from repro.service.client import RemoteError, TransportError, ZiggyClient


@pytest.fixture(scope="module", params=("threaded", "async"))
def server_url(request, boxoffice_small):
    # The whole module runs against both front-ends: the async gateway
    # must be a drop-in for the threaded baseline.
    service = ZiggyService(max_workers=2)
    service.register_table(boxoffice_small)
    server = make_frontend(service, frontend=request.param,
                           port=0)  # ephemeral port
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    yield f"http://{host}:{port}"
    server.shutdown()
    server.server_close()
    service.shutdown(wait=False)
    thread.join(timeout=5)


@pytest.fixture
def client(server_url):
    return ZiggyClient(server_url, timeout=30)


class TestHttp:
    def test_health(self, client):
        health = client.health()
        assert health["ok"] is True
        assert health["protocol"] == 2
        assert "boxoffice" in health["tables"]

    def test_tables(self, client):
        catalog = client.tables()
        assert catalog.tables[0].name == "boxoffice"
        assert catalog.tables[0].columns == 12

    def test_characterize(self, client):
        response = client.characterize("gross > 200000000", page_size=3)
        assert response.n_views >= 1
        assert len(response.views.items) <= 3
        assert response.views.items[0]["explanation"]

    def test_views_pagination_over_http(self, client):
        scoped = ZiggyClient(client.base_url, client_id="pager")
        response = scoped.characterize("gross > 150000000")
        page = scoped.views(page=1, page_size=1)
        assert page.total == response.n_views
        assert len(page.items) <= 1

    def test_batch(self, client):
        batch = client.characterize_many(
            ["gross > 150000000", "gross > 250000000"])
        assert len(batch.results) == 2
        assert batch.cache_hits is not None

    def test_configure(self, client):
        response = client.configure(weights={"mean_shift": 2.0})
        assert response.weights["mean_shift"] == 2.0

    def test_job_submit_poll_wait(self, client):
        snapshot = client.submit("gross > 200000000")
        assert snapshot.job_id.startswith("job-")
        final = client.wait(snapshot.job_id, timeout=30)
        assert final.status == "done"
        assert final.result.n_views >= 1

    def test_jobs_endpoint_submits_even_with_explicit_type(self, client,
                                                           server_url):
        # Regression: a full CharacterizeRequest.to_dict() carries
        # "type": "characterize"; POST /v2/jobs must still submit a job
        # rather than silently running the request synchronously.
        from repro.service import CharacterizeRequest
        payload = CharacterizeRequest(where="gross > 200000000",
                                      client_id="typed").to_dict()
        request = urllib.request.Request(
            f"{server_url}/v2/jobs",
            data=json.dumps(payload).encode(),
            headers={"Content-Type": "application/json"})
        with urllib.request.urlopen(request, timeout=30) as response:
            body = json.load(response)
        assert body["type"] == "job_status"
        assert client.wait(body["job_id"], timeout=30).status == "done"

    def test_job_cancel_endpoint(self, client):
        snapshot = client.submit("gross > 150000000")
        cancelled = client.cancel(snapshot.job_id)
        # the race is fine either way: cancelled in time, or already done
        assert cancelled.status in ("pending", "running", "cancelled",
                                    "done")
        final = client.wait(snapshot.job_id, timeout=30)
        assert final.finished

    def test_generic_v2_endpoint(self, client, server_url):
        payload = json.dumps({"type": "tables"}).encode()
        request = urllib.request.Request(
            f"{server_url}/v2", data=payload,
            headers={"Content-Type": "application/json"})
        with urllib.request.urlopen(request, timeout=30) as response:
            body = json.load(response)
        assert body["type"] == "table_list"

    def test_syntax_error_is_remote_error(self, client):
        with pytest.raises(RemoteError) as excinfo:
            client.characterize("gross >")
        assert excinfo.value.code == "syntax_error"
        assert excinfo.value.status == 400

    def test_unknown_job_is_404(self, client):
        with pytest.raises(RemoteError) as excinfo:
            client.job("job-424242")
        assert excinfo.value.code == "job_not_found"
        assert excinfo.value.status == 404

    def test_unknown_route_is_404(self, client):
        with pytest.raises(RemoteError) as excinfo:
            client._get("/nowhere")
        assert excinfo.value.status == 404

    def test_malformed_json_is_bad_request(self, client, server_url):
        request = urllib.request.Request(
            f"{server_url}/v2", data=b"{not json",
            headers={"Content-Type": "application/json"})
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=30)
        assert excinfo.value.code == 400

    def test_legacy_v1_endpoint(self, client):
        response = client.legacy({"action": "query",
                                  "where": "gross > 200000000"})
        assert response["ok"] is True
        assert response["n_views"] == len(response["views"])

    def test_legacy_v1_error_has_code(self, client):
        with pytest.raises(RemoteError) as excinfo:
            client.legacy({"action": "explode"})
        assert excinfo.value.code == "unknown_action"

    def test_connection_refused_is_transport_error(self):
        dead = ZiggyClient("http://127.0.0.1:9", timeout=2)
        with pytest.raises(TransportError):
            dead.health()
