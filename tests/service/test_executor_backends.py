"""Service-level tests across executor backends: jobs, SSE streaming,
cancellation mid-stage, event-stream resumption with stale cursors, job
retention, and server drain — under both the thread and the process
backend (plus inline where determinism helps)."""

import threading
import time

import pytest

from repro.data.crime import make_crime
from repro.errors import JobNotFoundError
from repro.runtime import ZiggyRuntime
from repro.service import CharacterizeRequest, ZiggyService
from repro.service.client import ZiggyClient
from repro.service.jobs import JobManager
from repro.service.server import make_server

#: A selective predicate that works on every crime table size used here.
PREDICATE = "violent_crime_rate > 0.14"

BACKENDS = ("thread", "process")


@pytest.fixture(scope="module")
def crime_table():
    # 128 columns: characterizations take long enough that a cancel
    # issued after the first stage event lands well before completion.
    return make_crime(n_rows=1994)


def make_service(backend, table, max_workers=2):
    service = ZiggyService(max_workers=max_workers,
                           runtime=ZiggyRuntime(), executor=backend)
    service.register_table(table)
    return service


@pytest.fixture(params=BACKENDS, scope="module")
def service(request, crime_table):
    svc = make_service(request.param, crime_table)
    yield svc
    svc.shutdown(wait=False)


@pytest.fixture(params=BACKENDS, scope="module")
def http(request, crime_table):
    svc = make_service(request.param, crime_table)
    server = make_server(svc, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    yield ZiggyClient(f"http://{host}:{port}", timeout=60)
    server.close(wait=False)
    thread.join(timeout=10)


class TestJobsAcrossBackends:
    def test_submit_wait_done_with_views(self, service):
        snapshot = service.submit(CharacterizeRequest(where=PREDICATE))
        final = service.wait(snapshot.job_id, timeout=120)
        assert final.status == "done"
        assert final.result is not None
        assert final.result.n_views > 0
        assert final.result.table == "us_crime"

    def test_session_history_records_the_run(self, service):
        client_id = f"historian-{service.executor.kind}"
        snapshot = service.submit(CharacterizeRequest(
            where=PREDICATE, client_id=client_id))
        final = service.wait(snapshot.job_id, timeout=120)
        assert final.status == "done"
        session = service.session(client_id)
        assert len(session.history) == 1
        assert session.history[-1].table_name == "us_crime"
        # the detail panel works after a cross-process run too
        assert session.view_detail(1)

    def test_wire_events_cover_pipeline_stages(self, service):
        snapshot = service.submit(CharacterizeRequest(where=PREDICATE))
        service.wait(snapshot.job_id, timeout=120)
        events, finished = service.job_events(snapshot.job_id, timeout=10)
        assert finished
        kinds = [e.kind for e in events]
        assert kinds[0] == "prepared"
        assert "component-scored" in kinds
        assert "view-ranked" in kinds
        assert "search-complete" in kinds
        assert "view-ready" in kinds
        assert kinds[-1] == "result"
        ready = [e for e in events if e.kind == "view-ready"]
        assert ready[0].data["explanation"]

    def test_cancel_mid_stage(self, service):
        first_event = threading.Event()
        snapshot = service.submit(
            CharacterizeRequest(where="violent_crime_rate > 0.2",
                                client_id=f"cancel-{service.executor.kind}"),
            on_progress=lambda stage, payload: first_event.set())
        assert first_event.wait(60), "no stage event before timeout"
        service.cancel(snapshot.job_id)
        final = service.wait(snapshot.job_id, timeout=120)
        assert final.status == "cancelled"
        # the event log stops at the cancellation point; no result event
        events, finished = service.job_events(snapshot.job_id, timeout=5)
        assert finished
        assert all(e.kind != "result" for e in events)

    def test_events_since_stale_cursor_resumes(self, service):
        snapshot = service.submit(CharacterizeRequest(where=PREDICATE))
        service.wait(snapshot.job_id, timeout=120)
        all_events, _ = service.job_events(snapshot.job_id, timeout=10)
        assert len(all_events) >= 3
        # resume from the middle: only the tail comes back, same seqs
        middle = all_events[len(all_events) // 2].seq
        tail, finished = service.job_events(snapshot.job_id,
                                            after_seq=middle, timeout=10)
        assert finished
        assert [e.seq for e in tail] == \
            [e.seq for e in all_events if e.seq > middle]
        # a cursor beyond the log is not an error: empty + finished
        beyond, finished = service.job_events(
            snapshot.job_id, after_seq=all_events[-1].seq + 100, timeout=2)
        assert beyond == [] and finished


class TestHttpAcrossBackends:
    def test_sse_stream_end_to_end(self, http):
        job = http.submit(PREDICATE)
        kinds = [event.kind for event in http.stream_events(job.job_id)]
        assert kinds[0] == "prepared"
        assert "view-ready" in kinds
        assert kinds[-1] == "done"
        assert http.job(job.job_id).status == "done"

    def test_sse_cancel_mid_stream(self, http):
        job = http.submit("violent_crime_rate > 0.2")
        kinds = []
        for event in http.stream_events(job.job_id):
            kinds.append(event.kind)
            if len(kinds) == 1 and event.kind != "done":
                http.cancel(job.job_id)
        assert kinds[-1] == "done"
        assert http.job(job.job_id).status == "cancelled"

    def test_stream_resumption_after_drop(self, http):
        """A client that lost its stream replays from a stale cursor via
        the long-poll primitive underneath the SSE route."""
        job = http.submit(PREDICATE)
        http.wait(job.job_id, timeout=120)
        events = list(http.stream_events(job.job_id))
        # replaying the finished stream yields the same events again
        replay = list(http.stream_events(job.job_id))
        assert [e.seq for e in replay] == [e.seq for e in events]

    def test_health_reports_executor(self, http):
        health = http.health()
        assert health["executor"]["kind"] in BACKENDS


class TestJobRetention:
    def test_terminal_jobs_pruned_beyond_max_finished(self):
        manager = JobManager(max_workers=1, max_finished=2)
        try:
            ids = [manager.submit(lambda progress: "ok") for _ in range(3)]
            for job_id in ids:
                manager.wait(job_id, timeout=10)
            # the 4th submission prunes the oldest terminal job
            ids.append(manager.submit(lambda progress: "ok"))
            manager.wait(ids[-1], timeout=10)
            with pytest.raises(JobNotFoundError):
                manager.get(ids[0])
            with pytest.raises(JobNotFoundError):
                manager.events_since(ids[0], timeout=0.1)
            assert manager.get(ids[2]).status == "done"
        finally:
            manager.shutdown(wait=False)

    def test_ttl_prunes_old_terminal_jobs(self):
        manager = JobManager(max_workers=1, finished_ttl=0.05)
        try:
            job_id = manager.submit(lambda progress: "ok")
            manager.wait(job_id, timeout=10)
            time.sleep(0.1)
            assert manager.prune() == 1
            with pytest.raises(JobNotFoundError):
                manager.get(job_id)
        finally:
            manager.shutdown(wait=False)

    def test_blocked_events_since_raises_when_pruned(self):
        """The satellite fix: a streamer blocked in events_since with no
        timeout must be woken and raised when its job is pruned, never
        left waiting on a condition nobody will signal again."""
        manager = JobManager(max_workers=1)
        try:
            gate = threading.Event()
            job_id = manager.submit(lambda progress: gate.wait(30))
            outcome: dict = {}

            def blocked_stream():
                try:
                    # stale cursor beyond the log + no timeout: blocks
                    # until events arrive, the job finishes — or a prune
                    # forgets the job while we wait (the bug's scenario).
                    manager.events_since(job_id, after_seq=999,
                                         timeout=None)
                    outcome["result"] = "returned"
                except JobNotFoundError:
                    outcome["result"] = "raised"

            waiter = threading.Thread(target=blocked_stream)
            waiter.start()
            time.sleep(0.2)  # let the waiter block
            # Simulate the prune landing while the waiter is parked
            # (pruning normally only touches terminal jobs; the race is
            # a waiter that entered just before the transition+prune).
            job = manager.get(job_id)
            with manager._lock:
                manager._jobs.pop(job_id)
                manager._handles.pop(job_id, None)
            manager._wake_pruned([job])
            waiter.join(timeout=10)
            assert not waiter.is_alive(), "waiter is blocked forever"
            assert outcome["result"] == "raised"
            # and post-prune callers get the typed error immediately
            with pytest.raises(JobNotFoundError):
                manager.events_since(job_id, timeout=0.1)
            gate.set()
        finally:
            manager.shutdown(wait=False)

    def test_unknown_job_raises_immediately(self):
        manager = JobManager(max_workers=1)
        try:
            start = time.monotonic()
            with pytest.raises(JobNotFoundError):
                manager.events_since("job-999999", timeout=None)
            assert time.monotonic() - start < 1.0
        finally:
            manager.shutdown(wait=False)


class TestServerDrain:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_close_drains_sse_handlers_and_backend(self, backend,
                                                   crime_table):
        service = make_service(backend, crime_table, max_workers=1)
        server = make_server(service, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        client = ZiggyClient(f"http://{host}:{port}", timeout=30)

        # park a streaming handler on a job that is still running
        job = client.submit("violent_crime_rate > 0.2")
        stream_done = threading.Event()

        def consume():
            try:
                for _event in client.stream_events(job.job_id):
                    pass
            except Exception:  # noqa: BLE001 - a cut stream is expected
                pass
            finally:
                stream_done.set()

        consumer = threading.Thread(target=consume, daemon=True)
        consumer.start()
        time.sleep(0.2)

        start = time.monotonic()
        server.close(wait=False)
        elapsed = time.monotonic() - start
        assert elapsed < 15, f"drain took {elapsed:.1f}s"
        thread.join(timeout=10)
        assert not thread.is_alive()
        assert stream_done.wait(10), "client stream never terminated"
        # double close is safe
        server.close(wait=False)

    def test_inline_service_runs_jobs_synchronously(self, crime_table):
        service = make_service("inline", crime_table)
        try:
            snapshot = service.submit(CharacterizeRequest(where=PREDICATE))
            # inline: terminal before submit() even returns
            assert snapshot.status == "done"
            assert snapshot.result.n_views > 0
        finally:
            service.shutdown(wait=False)
