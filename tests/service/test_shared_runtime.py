"""Acceptance tests for cross-client computation sharing via the runtime.

The paper's computation-sharing claim, extended across clients: two
distinct ``ZiggyService`` clients characterizing predicates on the same
table must share one global-statistics computation, observable as
cross-client hits in the shared registry; and concurrent clients must
get results identical to serial execution.
"""

import gc
import threading
import weakref

import numpy as np
import pytest

from repro.runtime import ZiggyRuntime
from repro.service import BatchRequest, CharacterizeRequest, ZiggyService

PREDICATES = ("gross > 150000000", "gross > 200000000", "gross > 250000000")


@pytest.fixture
def runtime():
    return ZiggyRuntime()


@pytest.fixture
def service(boxoffice_small, runtime):
    s = ZiggyService(max_workers=4, runtime=runtime)
    s.register_table(boxoffice_small)
    yield s
    s.shutdown(wait=False)


class TestCrossClientSharing:
    def test_two_clients_share_one_global_stats_computation(self, service,
                                                            runtime):
        """Acceptance: the second client's table-level statistics are all
        hits — one preparation per table across all clients."""
        service.characterize(CharacterizeRequest(
            where=PREDICATES[0], client_id="alice"))
        cache = (service.session("alice").engine_for("boxoffice").cache)
        misses_after_alice = cache.counters.misses
        deps_after_alice = cache.counters.dependency_misses

        service.characterize(CharacterizeRequest(
            where=PREDICATES[0], client_id="bob"))
        # bob borrowed the same cache object...
        assert service.session("bob").engine_for("boxoffice").cache is cache
        # ...and the registry observed the cross-client borrow.
        assert runtime.stats.stats().cross_client_hits >= 1
        # Identical predicate: bob recomputed *nothing* table-level.
        assert cache.counters.dependency_misses == deps_after_alice
        assert cache.counters.misses == misses_after_alice

    def test_distinct_predicates_share_table_level_work(self, service):
        service.characterize(CharacterizeRequest(
            where=PREDICATES[0], client_id="alice"))
        cache = service.session("alice").engine_for("boxoffice").cache
        deps_before = cache.counters.dependency_misses
        moments_before = cache.counters.moments_misses

        service.characterize(CharacterizeRequest(
            where=PREDICATES[1], client_id="bob"))
        # New predicate: only the inside-group statistics miss; the
        # dependency matrix and global moments are shared.
        assert cache.counters.dependency_misses == deps_before
        assert cache.counters.moments_misses == moments_before + 1

    def test_two_services_one_runtime_share(self, boxoffice_small, runtime):
        s1 = ZiggyService(runtime=runtime)
        s2 = ZiggyService(runtime=runtime)
        s1.register_table(boxoffice_small)
        s2.register_table(boxoffice_small)
        try:
            s1.characterize(CharacterizeRequest(where=PREDICATES[0]))
            hits_before = runtime.stats.stats().cross_client_hits
            s2.characterize(CharacterizeRequest(where=PREDICATES[0]))
            assert runtime.stats.stats().cross_client_hits > hits_before
        finally:
            s1.shutdown(wait=False)
            s2.shutdown(wait=False)


class TestConcurrentClients:
    N_THREADS = 4

    def test_concurrent_characterize_many_identical_to_serial(self, service,
                                                              runtime):
        """Acceptance: N threads running characterize_many on the same
        table produce results identical to a serial run, with >= 1
        registry hit."""
        serial = service.characterize_many(BatchRequest(
            predicates=PREDICATES, client_id="serial"))
        expected = [[tuple(v["columns"]) for v in r.views.items]
                    for r in serial.results]
        expected_scores = [[v["score"] for v in r.views.items]
                           for r in serial.results]

        outcomes: dict[str, object] = {}
        barrier = threading.Barrier(self.N_THREADS)

        def run(client_id: str) -> None:
            barrier.wait()
            try:
                outcomes[client_id] = service.characterize_many(
                    BatchRequest(predicates=PREDICATES, client_id=client_id))
            except BaseException as exc:  # noqa: BLE001 - surfaced below
                outcomes[client_id] = exc

        threads = [threading.Thread(target=run, args=(f"client-{i}",))
                   for i in range(self.N_THREADS)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)

        assert len(outcomes) == self.N_THREADS
        for client_id, batch in outcomes.items():
            assert not isinstance(batch, BaseException), \
                f"{client_id} raised: {batch!r}"
            got = [[tuple(v["columns"]) for v in r.views.items]
                   for r in batch.results]
            got_scores = [[v["score"] for v in r.views.items]
                          for r in batch.results]
            assert got == expected, client_id
            for gs, es in zip(got_scores, expected_scores):
                assert gs == pytest.approx(es, rel=1e-12), client_id

        assert runtime.stats.stats().hits >= 1
        assert runtime.stats.stats().cross_client_hits >= 1


class TestLeakFix:
    def test_stats_cache_does_not_pin_tables(self, rng):
        """Satellite: dropping a table frees it even while its derived
        statistics stay cached (the strong-reference leak is gone)."""
        from repro.core.stats_cache import StatsCache
        from repro.engine.database import Database
        from repro.engine.table import Table

        table = Table.from_dict({"x": rng.normal(size=300),
                                 "y": rng.normal(size=300)}, name="leaky")
        db = Database()
        db.register(table)
        cache = StatsCache()
        cache.global_column_stats(table, "x")
        cache.group_correlations(db.select("leaky", "x > 0"), ("x", "y"))
        assert cache.size > 0

        ref = weakref.ref(table)
        del db, table
        gc.collect()
        assert ref() is None          # the cache held no strong reference
        assert cache.size > 0         # while the moments remain cached

    def test_sessions_converge_after_eviction(self, rng):
        """After the store evicts a table's cache, the next run re-borrows
        the registry's current cache instead of keeping the stale one —
        borrowers never diverge onto private copies."""
        from repro.app.session import ZiggySession
        from repro.engine.table import Table

        runtime = ZiggyRuntime(max_tables=1, max_bytes=None)
        t1 = Table.from_dict({"x": rng.normal(size=150),
                              "y": rng.normal(size=150)}, name="t1")
        t2 = Table.from_dict({"x": rng.normal(size=150),
                              "y": rng.normal(size=150)}, name="t2")
        a = ZiggySession(runtime=runtime)
        b = ZiggySession(runtime=runtime)
        for s in (a, b):
            s.add_table(t1)
            s.add_table(t2)
        a.run("x > 0", table="t1")
        a.run("x > 0", table="t2")     # max_tables=1: evicts t1's cache
        b.run("x > 0", table="t1")     # registry recreates t1's cache
        a.run("x > 0", table="t1")     # a must converge onto it
        assert a.engine_for("t1").cache is b.engine_for("t1").cache
        assert a.engine_for("t1").cache is \
            runtime.stats.peek(t1.fingerprint())

    def test_session_tables_bounded_by_runtime_limits(self, rng):
        """End to end: a runtime with a 2-table limit never keeps more
        than 2 tables' statistics resident."""
        from repro.app.session import ZiggySession
        from repro.engine.table import Table

        runtime = ZiggyRuntime(max_tables=2, max_bytes=None)
        session = ZiggySession(runtime=runtime)
        for i in range(5):
            t = Table.from_dict(
                {"x": rng.normal(size=120), "y": rng.normal(size=120)},
                name=f"t{i}")
            session.add_table(t)
            session.run("x > 0", table=f"t{i}")
        assert runtime.tables.stats()["resident"] <= 2
        assert runtime.stats.stats().caches <= 2
        assert runtime.stats.stats().evictions >= 3
