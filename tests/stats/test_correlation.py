"""Tests for correlation estimators and pairwise moments."""

import math

import numpy as np
import pytest

from repro.errors import InsufficientDataError
from repro.stats.correlation import (
    PairwiseMoments,
    correlation_matrix,
    fisher_z,
    inverse_fisher_z,
    masked_correlation_matrix,
    pearson,
    rankdata,
    spearman,
)


class TestPearson:
    def test_perfect_linear(self):
        x = np.arange(10.0)
        assert pearson(x, 2 * x + 1) == pytest.approx(1.0)
        assert pearson(x, -x) == pytest.approx(-1.0)

    def test_matches_numpy(self, rng):
        x = rng.normal(size=200)
        y = 0.5 * x + rng.normal(size=200)
        assert pearson(x, y) == pytest.approx(np.corrcoef(x, y)[0, 1])

    def test_pairwise_nan_deletion(self):
        x = np.array([1.0, 2.0, np.nan, 4.0, 5.0])
        y = np.array([1.0, np.nan, 3.0, 4.0, 5.0])
        keep_x, keep_y = np.array([1.0, 4.0, 5.0]), np.array([1.0, 4.0, 5.0])
        assert pearson(x, y) == pytest.approx(pearson(keep_x, keep_y))

    def test_constant_column_nan(self):
        r = pearson(np.full(5, 1.0), np.arange(5.0))
        assert math.isnan(r)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            pearson(np.array([1.0]), np.array([1.0, 2.0]))

    def test_too_few_points(self):
        with pytest.raises(InsufficientDataError):
            pearson(np.array([1.0, np.nan]), np.array([1.0, 2.0]))

    def test_clamped_to_unit_interval(self, rng):
        x = rng.normal(size=50)
        assert -1.0 <= pearson(x, x * 3.0) <= 1.0


class TestRankdata:
    def test_simple_ranks(self):
        assert list(rankdata(np.array([30.0, 10.0, 20.0]))) == [3.0, 1.0, 2.0]

    def test_average_ties(self):
        assert list(rankdata(np.array([1.0, 2.0, 2.0, 3.0]))) == \
               [1.0, 2.5, 2.5, 4.0]

    def test_matches_scipy(self, rng):
        from scipy import stats as sps
        data = rng.integers(0, 5, size=100).astype(float)
        assert np.allclose(rankdata(data), sps.rankdata(data))

    def test_nan_stays_nan(self):
        r = rankdata(np.array([2.0, np.nan, 1.0]))
        assert math.isnan(r[1])
        assert list(r[[0, 2]]) == [2.0, 1.0]


class TestSpearman:
    def test_monotone_nonlinear_perfect(self):
        x = np.arange(1.0, 30.0)
        assert spearman(x, np.exp(x / 10)) == pytest.approx(1.0)

    def test_matches_scipy(self, rng):
        from scipy import stats as sps
        x = rng.normal(size=150)
        y = x ** 3 + rng.normal(size=150)
        expected = sps.spearmanr(x, y).statistic
        assert spearman(x, y) == pytest.approx(expected, abs=1e-10)


class TestFisherZ:
    def test_roundtrip(self):
        for r in (-0.9, -0.3, 0.0, 0.5, 0.99):
            assert inverse_fisher_z(fisher_z(r)) == pytest.approx(r)

    def test_clamps_extremes(self):
        assert math.isfinite(fisher_z(1.0))
        assert math.isfinite(fisher_z(-1.0))

    def test_monotone(self):
        assert fisher_z(0.9) > fisher_z(0.5) > fisher_z(0.0)


class TestCorrelationMatrix:
    def test_clean_matches_numpy(self, rng):
        data = rng.normal(size=(300, 6))
        data[:, 1] = data[:, 0] * 0.8 + rng.normal(size=300) * 0.2
        ours = correlation_matrix(data)
        theirs = np.corrcoef(data, rowvar=False)
        assert np.allclose(ours, theirs, atol=1e-10)

    def test_diagonal_ones(self, rng):
        corr = correlation_matrix(rng.normal(size=(50, 4)))
        assert np.allclose(np.diag(corr), 1.0)

    def test_nan_column_pairwise(self, rng):
        data = rng.normal(size=(200, 3))
        data[:50, 1] = np.nan
        corr = correlation_matrix(data)
        expected = pearson(data[:, 0], data[:, 1])
        assert corr[0, 1] == pytest.approx(expected)
        # Clean pair still exact.
        assert corr[0, 2] == pytest.approx(pearson(data[:, 0], data[:, 2]))

    def test_constant_column_nan_offdiagonal(self, rng):
        data = np.column_stack([np.full(30, 2.0), rng.normal(size=30)])
        corr = correlation_matrix(data)
        assert math.isnan(corr[0, 1])

    def test_spearman_method(self, rng):
        x = rng.normal(size=100)
        data = np.column_stack([x, np.exp(x)])
        corr = correlation_matrix(data, method="spearman")
        assert corr[0, 1] == pytest.approx(1.0)

    def test_unknown_method_raises(self):
        with pytest.raises(ValueError):
            correlation_matrix(np.zeros((5, 2)), method="kendall")

    def test_not_2d_raises(self):
        with pytest.raises(ValueError):
            correlation_matrix(np.zeros(5))


class TestPairwiseMoments:
    def test_correlations_match_direct(self, rng):
        data = rng.normal(size=(400, 5))
        data[:, 2] += data[:, 0]
        corr, counts = PairwiseMoments.from_matrix(data).correlations()
        assert np.allclose(corr, np.corrcoef(data, rowvar=False), atol=1e-10)
        assert np.all(counts == 400)

    def test_with_missing_matches_pairwise_pearson(self, rng):
        data = rng.normal(size=(300, 4))
        data[rng.random((300, 4)) < 0.1] = np.nan
        corr, counts = masked_correlation_matrix(data)
        for i in range(4):
            for j in range(i + 1, 4):
                expected = pearson(data[:, i], data[:, j])
                assert corr[i, j] == pytest.approx(expected, abs=1e-10)
                keep = (~np.isnan(data[:, i]) & ~np.isnan(data[:, j])).sum()
                assert counts[i, j] == keep

    def test_additivity(self, rng):
        data = rng.normal(size=(500, 3))
        mask = rng.random(500) < 0.3
        whole = PairwiseMoments.from_matrix(data)
        inside = PairwiseMoments.from_matrix(data[mask])
        outside = PairwiseMoments.from_matrix(data[~mask])
        merged = inside.add(outside)
        assert np.allclose(merged.n, whole.n)
        assert np.allclose(merged.sxy, whole.sxy)

    def test_subtraction_recovers_complement(self, rng):
        data = rng.normal(size=(600, 4))
        data[rng.random((600, 4)) < 0.05] = np.nan
        mask = rng.random(600) < 0.2
        whole = PairwiseMoments.from_matrix(data)
        inside = PairwiseMoments.from_matrix(data[mask])
        derived = whole.subtract(inside)
        direct = PairwiseMoments.from_matrix(data[~mask])
        corr_a, n_a = derived.correlations()
        corr_b, n_b = direct.correlations()
        assert np.allclose(n_a, n_b)
        assert np.allclose(corr_a, corr_b, atol=1e-8, equal_nan=True)

    def test_subtract_larger_raises(self, rng):
        small = PairwiseMoments.from_matrix(rng.normal(size=(10, 2)))
        big = PairwiseMoments.from_matrix(rng.normal(size=(20, 2)))
        with pytest.raises(ValueError):
            small.subtract(big)

    def test_tiny_groups_yield_nan(self):
        data = np.array([[1.0, 2.0]])
        corr, _ = PairwiseMoments.from_matrix(data).correlations()
        assert math.isnan(corr[0, 1])
