"""Tests for histograms and frequency profiles."""

import numpy as np
import pytest

from repro.errors import InsufficientDataError
from repro.stats.histogram import (
    FrequencyProfile,
    equi_depth_edges,
    equi_width_histogram,
    frequency_profile,
)


class TestEquiWidthHistogram:
    def test_counts_sum_to_n(self, rng):
        data = rng.normal(size=500)
        h = equi_width_histogram(data, bins=20)
        assert h.n == 500
        assert h.k == 20

    def test_nan_excluded_and_counted(self):
        h = equi_width_histogram(np.array([1.0, np.nan, 2.0]), bins=2)
        assert h.n == 2
        assert h.n_missing == 1

    def test_shared_edges_for_two_groups(self, rng):
        a = rng.normal(size=200)
        b = rng.normal(loc=5, size=200)
        edges = np.linspace(-5, 10, 31)
        ha = equi_width_histogram(a, edges=edges)
        hb = equi_width_histogram(b, edges=edges)
        assert np.array_equal(ha.edges, hb.edges)
        # b's mass should sit to the right of a's.
        assert (ha.bin_centers() * ha.densities()).sum() < \
               (hb.bin_centers() * hb.densities()).sum()

    def test_densities_sum_to_one(self, rng):
        h = equi_width_histogram(rng.normal(size=100), bins=7)
        assert h.densities().sum() == pytest.approx(1.0)

    def test_constant_data_does_not_crash(self):
        h = equi_width_histogram(np.full(10, 3.0), bins=5)
        assert h.n == 10

    def test_empty_raises(self):
        with pytest.raises(InsufficientDataError):
            equi_width_histogram(np.array([np.nan]), bins=4)

    def test_bad_bins_raises(self):
        with pytest.raises(ValueError):
            equi_width_histogram(np.array([1.0]), bins=0)

    def test_non_increasing_edges_raise(self):
        with pytest.raises(ValueError):
            equi_width_histogram(np.array([1.0]), edges=np.array([0.0, 0.0, 1.0]))


class TestEquiDepthEdges:
    def test_roughly_equal_occupancy(self, rng):
        data = rng.exponential(size=4000)
        edges = equi_depth_edges(data, bins=8)
        counts, _ = np.histogram(data, bins=edges)
        assert counts.min() > 300  # ~500 expected per bin

    def test_duplicate_quantiles_collapse(self):
        data = np.array([1.0] * 50 + [2.0, 3.0])
        edges = equi_depth_edges(data, bins=10)
        assert np.all(np.diff(edges) > 0)

    def test_empty_raises(self):
        with pytest.raises(InsufficientDataError):
            equi_depth_edges(np.array([]), bins=3)


class TestFrequencyProfile:
    def test_counts_and_mode(self):
        p = frequency_profile(["a", "b", "a", "a", "c"])
        assert p.n == 5
        assert p.mode() == "a"
        assert dict(zip(p.categories, p.counts))["a"] == 3

    def test_missing_tokens(self):
        p = frequency_profile(["a", None, float("nan"), "", "b"],
                              missing_token="")
        assert p.n == 2
        assert p.n_missing == 3

    def test_proportions_sum_to_one(self):
        p = frequency_profile(list("aabbbcc"))
        assert p.proportions().sum() == pytest.approx(1.0)

    def test_empty_profile(self):
        p = frequency_profile([])
        assert p.n == 0
        assert p.mode() is None
        assert p.proportions().size == 0

    def test_aligned_with_union_support(self):
        p = frequency_profile(["a", "a", "b"])
        q = frequency_profile(["b", "c", "c", "c"])
        pv, qv = p.aligned_with(q)
        assert pv.size == qv.size == 3
        assert pv.sum() == pytest.approx(1.0)
        assert qv.sum() == pytest.approx(1.0)
        # 'c' has zero mass in p.
        assert 0.0 in list(pv)

    def test_aligned_with_disjoint_supports(self):
        p = frequency_profile(["x"])
        q = frequency_profile(["y"])
        pv, qv = p.aligned_with(q)
        assert list(pv) == [1.0, 0.0]
        assert list(qv) == [0.0, 1.0]

    def test_explicit_construction(self):
        p = FrequencyProfile(categories=("a", "b"),
                             counts=np.array([3, 1], dtype=np.int64))
        assert p.n == 4
        assert p.mode() == "a"
