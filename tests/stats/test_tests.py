"""Tests for the asymptotic significance tests (vs scipy where possible)."""

import numpy as np
import pytest
from scipy import stats as sps

from repro.errors import InsufficientDataError
from repro.stats.descriptive import summarize
from repro.stats.tests_ import (
    TestResult,
    chi2_independence_test,
    f_test_variances,
    fisher_z_test,
    levene_test,
    mann_whitney_u_test,
    two_proportion_z_test,
    welch_t_test,
)


class TestWelch:
    def test_matches_scipy(self, rng):
        a = rng.normal(0.3, 1.2, size=80)
        b = rng.normal(0.0, 0.8, size=200)
        ours = welch_t_test(a, b)
        theirs = sps.ttest_ind(a, b, equal_var=False)
        assert ours.statistic == pytest.approx(theirs.statistic)
        assert ours.p_value == pytest.approx(theirs.pvalue)

    def test_null_uniform_ish(self, rng):
        # Under H0 the p-value should not systematically be small.
        ps = []
        for _ in range(200):
            a = rng.normal(size=30)
            b = rng.normal(size=50)
            ps.append(welch_t_test(a, b).p_value)
        assert 0.3 < np.mean(ps) < 0.7

    def test_works_from_summaries(self, rng):
        a, b = rng.normal(1, 1, 60), rng.normal(0, 1, 60)
        from_raw = welch_t_test(a, b)
        from_stats = welch_t_test(summarize(a), summarize(b))
        assert from_raw.p_value == pytest.approx(from_stats.p_value)

    def test_constant_groups(self):
        equal = welch_t_test(np.full(5, 1.0), np.full(5, 1.0))
        assert equal.p_value == 1.0
        different = welch_t_test(np.full(5, 1.0), np.full(5, 2.0))
        assert different.p_value == 0.0

    def test_small_sample_raises(self):
        with pytest.raises(InsufficientDataError):
            welch_t_test(np.array([1.0]), np.array([1.0, 2.0]))


class TestVarianceTests:
    def test_f_test_detects_ratio(self, rng):
        a = rng.normal(scale=3.0, size=200)
        b = rng.normal(scale=1.0, size=200)
        assert f_test_variances(a, b).p_value < 1e-6

    def test_f_test_null(self, rng):
        a = rng.normal(size=200)
        b = rng.normal(size=200)
        assert f_test_variances(a, b).p_value > 0.01

    def test_levene_matches_scipy(self, rng):
        a = rng.normal(scale=2.0, size=100)
        b = rng.normal(scale=1.0, size=150)
        ours = levene_test(a, b)
        theirs = sps.levene(a, b, center="median")
        assert ours.statistic == pytest.approx(theirs.statistic)
        assert ours.p_value == pytest.approx(theirs.pvalue)

    def test_levene_mean_center(self, rng):
        a = rng.normal(size=60)
        b = rng.normal(size=60)
        ours = levene_test(a, b, center="mean")
        theirs = sps.levene(a, b, center="mean")
        assert ours.p_value == pytest.approx(theirs.pvalue)

    def test_levene_bad_center(self):
        with pytest.raises(ValueError):
            levene_test(np.arange(5.0), np.arange(5.0), center="mode")

    def test_both_constant(self):
        result = f_test_variances(np.full(10, 1.0), np.full(10, 5.0))
        assert result.p_value == 1.0


class TestFisherZTest:
    def test_detects_correlation_gap(self):
        result = fisher_z_test(0.8, 200, 0.1, 500)
        assert result.p_value < 1e-10

    def test_null(self):
        result = fisher_z_test(0.5, 300, 0.5, 300)
        assert result.p_value == pytest.approx(1.0)

    def test_small_groups_raise(self):
        with pytest.raises(InsufficientDataError):
            fisher_z_test(0.5, 3, 0.2, 100)

    def test_statistic_sign(self):
        assert fisher_z_test(0.7, 100, 0.2, 100).statistic > 0
        assert fisher_z_test(0.2, 100, 0.7, 100).statistic < 0


class TestChi2:
    def test_matches_scipy_on_clean_table(self):
        table = np.array([[30, 20, 10], [15, 25, 40]], dtype=float)
        ours = chi2_independence_test(table, min_expected=0.0)
        theirs = sps.chi2_contingency(table, correction=False)
        assert ours.statistic == pytest.approx(theirs.statistic)
        assert ours.p_value == pytest.approx(theirs.pvalue)

    def test_independent_table_large_p(self):
        table = np.outer([50, 50], [30, 30, 40]) / 100.0 * 100
        assert chi2_independence_test(table).p_value > 0.99

    def test_weak_cells_pooled(self):
        # One tiny category; pooling must keep the test well-defined.
        table = np.array([[100, 1, 0], [100, 0, 1]], dtype=float)
        result = chi2_independence_test(table, min_expected=1.0)
        assert 0.0 <= result.p_value <= 1.0

    def test_requires_2x2(self):
        with pytest.raises(ValueError):
            chi2_independence_test(np.array([[1.0, 2.0]]))

    def test_empty_raises(self):
        with pytest.raises(InsufficientDataError):
            chi2_independence_test(np.zeros((2, 2)))


class TestTwoProportion:
    def test_detects_gap(self):
        assert two_proportion_z_test(80, 100, 20, 100).p_value < 1e-10

    def test_null(self):
        assert two_proportion_z_test(50, 100, 50, 100).p_value == 1.0

    def test_matches_manual_formula(self):
        k1, n1, k2, n2 = 30, 120, 45, 260
        result = two_proportion_z_test(k1, n1, k2, n2)
        p = (k1 + k2) / (n1 + n2)
        se = np.sqrt(p * (1 - p) * (1 / n1 + 1 / n2))
        z = (k1 / n1 - k2 / n2) / se
        assert result.statistic == pytest.approx(z)

    def test_degenerate_pool(self):
        assert two_proportion_z_test(0, 10, 0, 10).p_value == 1.0


class TestMannWhitney:
    def test_matches_scipy(self, rng):
        a = rng.normal(0.5, 1, size=60)
        b = rng.normal(0.0, 1, size=80)
        ours = mann_whitney_u_test(a, b)
        theirs = sps.mannwhitneyu(a, b, alternative="two-sided",
                                  method="asymptotic", use_continuity=False)
        assert ours.statistic == pytest.approx(theirs.statistic)
        assert ours.p_value == pytest.approx(theirs.pvalue, rel=1e-6)

    def test_with_ties(self, rng):
        a = rng.integers(0, 4, size=50).astype(float)
        b = rng.integers(0, 4, size=50).astype(float)
        result = mann_whitney_u_test(a, b)
        assert 0.0 <= result.p_value <= 1.0

    def test_all_identical(self):
        result = mann_whitney_u_test(np.full(10, 1.0), np.full(10, 1.0))
        assert result.p_value == 1.0


class TestTestResult:
    def test_confidence(self):
        r = TestResult("x", 1.0, 0.03)
        assert r.confidence == pytest.approx(0.97)
        assert r.significant(0.05)
        assert not r.significant(0.01)
