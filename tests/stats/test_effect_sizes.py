"""Tests for the effect-size library underneath Zig-Components."""

import math

import numpy as np
import pytest

from repro.errors import DegenerateDataError, InsufficientDataError
from repro.stats.descriptive import summarize
from repro.stats.effect_sizes import (
    cliffs_delta,
    cohens_d,
    correlation_gap,
    glass_delta,
    hedges_g,
    hellinger_distance,
    log_sd_ratio,
    pooled_std,
    proportion_gap,
    total_variation_distance,
)


class TestCohensD:
    def test_known_shift(self, rng):
        a = rng.normal(loc=1.0, size=20000)
        b = rng.normal(loc=0.0, size=20000)
        assert cohens_d(a, b) == pytest.approx(1.0, abs=0.05)

    def test_sign_convention_inside_minus_outside(self, rng):
        lower = rng.normal(loc=-2.0, size=500)
        higher = rng.normal(loc=0.0, size=500)
        assert cohens_d(lower, higher) < 0

    def test_accepts_summary_stats(self, rng):
        a, b = rng.normal(1, 1, 100), rng.normal(0, 1, 100)
        assert cohens_d(summarize(a), summarize(b)) == pytest.approx(
            cohens_d(a, b))

    def test_equal_constants_zero(self):
        assert cohens_d(np.full(5, 2.0), np.full(9, 2.0)) == 0.0

    def test_unequal_constants_degenerate(self):
        with pytest.raises(DegenerateDataError):
            cohens_d(np.full(5, 1.0), np.full(5, 2.0))

    def test_too_small_raises(self):
        with pytest.raises(InsufficientDataError):
            cohens_d(np.array([1.0]), np.array([1.0, 2.0]))


class TestHedgesG:
    def test_shrinks_towards_zero(self, rng):
        a = rng.normal(1.0, 1.0, size=10)
        b = rng.normal(0.0, 1.0, size=10)
        d = cohens_d(a, b)
        g = hedges_g(a, b)
        assert abs(g) < abs(d)
        assert math.copysign(1, g) == math.copysign(1, d)

    def test_correction_factor_value(self, rng):
        a = rng.normal(size=8)
        b = rng.normal(size=8)
        df = 14
        expected = cohens_d(a, b) * (1 - 3 / (4 * df - 1))
        assert hedges_g(a, b) == pytest.approx(expected)

    def test_large_samples_nearly_equal_to_d(self, rng):
        a = rng.normal(0.5, 1, 5000)
        b = rng.normal(0.0, 1, 5000)
        assert hedges_g(a, b) == pytest.approx(cohens_d(a, b), rel=1e-3)


class TestGlassDelta:
    def test_scales_by_control_sd(self, rng):
        inside = rng.normal(loc=2.0, scale=5.0, size=2000)
        outside = rng.normal(loc=0.0, scale=1.0, size=2000)
        assert glass_delta(inside, outside) == pytest.approx(2.0, abs=0.15)

    def test_constant_control_degenerate(self):
        with pytest.raises(DegenerateDataError):
            glass_delta(np.array([1.0, 2.0]), np.full(5, 3.0))


class TestLogSdRatio:
    def test_symmetry(self, rng):
        a = rng.normal(scale=2.0, size=1000)
        b = rng.normal(scale=1.0, size=1000)
        assert log_sd_ratio(a, b) == pytest.approx(-log_sd_ratio(b, a))

    def test_known_ratio(self, rng):
        a = rng.normal(scale=np.e, size=100000)
        b = rng.normal(scale=1.0, size=100000)
        assert log_sd_ratio(a, b) == pytest.approx(1.0, abs=0.05)

    def test_both_constant_zero(self):
        assert log_sd_ratio(np.full(5, 1.0), np.full(5, 2.0)) == 0.0

    def test_one_constant_degenerate(self):
        with pytest.raises(DegenerateDataError):
            log_sd_ratio(np.full(5, 1.0), np.array([1.0, 2.0, 3.0]))


class TestCliffsDelta:
    def test_full_separation(self):
        assert cliffs_delta(np.array([10.0, 11.0]), np.array([1.0, 2.0])) == 1.0
        assert cliffs_delta(np.array([1.0, 2.0]), np.array([10.0, 11.0])) == -1.0

    def test_identical_distributions_near_zero(self, rng):
        a = rng.normal(size=800)
        b = rng.normal(size=800)
        assert abs(cliffs_delta(a, b)) < 0.1

    def test_ties_counted_as_neither(self):
        a = np.array([1.0, 2.0])
        b = np.array([1.0, 2.0])
        assert cliffs_delta(a, b) == 0.0

    def test_matches_bruteforce(self, rng):
        a = rng.integers(0, 10, size=40).astype(float)
        b = rng.integers(0, 10, size=30).astype(float)
        brute = np.sign(a[:, None] - b[None, :]).sum() / (a.size * b.size)
        assert cliffs_delta(a, b) == pytest.approx(brute)

    def test_subsampling_path(self, rng):
        a = rng.normal(1.0, 1.0, size=10000)
        b = rng.normal(0.0, 1.0, size=10000)
        approx = cliffs_delta(a, b, max_n=2000)
        exact = cliffs_delta(a, b, max_n=100000)
        assert approx == pytest.approx(exact, abs=0.05)

    def test_empty_raises(self):
        with pytest.raises(InsufficientDataError):
            cliffs_delta(np.array([]), np.array([1.0]))


class TestCorrelationGap:
    def test_precomputed_path(self):
        gap = correlation_gap(None, None, None, None, precomputed=(0.8, 0.2))
        assert gap == pytest.approx(math.atanh(0.8) - math.atanh(0.2))

    def test_raw_data_path(self, rng):
        n = 3000
        x = rng.normal(size=n)
        inside_y = x + rng.normal(scale=0.3, size=n)    # strong corr
        outside_x = rng.normal(size=n)
        outside_y = rng.normal(size=n)                  # no corr
        gap = correlation_gap(x, inside_y, outside_x, outside_y)
        assert gap > 0.8

    def test_nan_correlation_degenerate(self):
        with pytest.raises(DegenerateDataError):
            correlation_gap(None, None, None, None,
                            precomputed=(float("nan"), 0.5))

    def test_extreme_correlation_clamped(self):
        gap = correlation_gap(None, None, None, None, precomputed=(1.0, 0.0))
        assert math.isfinite(gap)


class TestDistributionDistances:
    def test_tv_identical_zero(self):
        p = np.array([0.5, 0.5])
        assert total_variation_distance(p, p) == 0.0

    def test_tv_disjoint_one(self):
        assert total_variation_distance(
            np.array([1.0, 0.0]), np.array([0.0, 1.0])) == 1.0

    def test_tv_known_value(self):
        assert total_variation_distance(
            np.array([0.7, 0.3]), np.array([0.4, 0.6])) == pytest.approx(0.3)

    def test_hellinger_bounds(self):
        p = np.array([1.0, 0.0])
        q = np.array([0.0, 1.0])
        assert hellinger_distance(p, q) == pytest.approx(1.0)
        assert hellinger_distance(p, p) == 0.0

    def test_hellinger_le_sqrt_tv(self):
        p = np.array([0.6, 0.3, 0.1])
        q = np.array([0.2, 0.5, 0.3])
        assert hellinger_distance(p, q) <= math.sqrt(
            total_variation_distance(p, q)) + 1e-12

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            total_variation_distance(np.array([1.0]), np.array([0.5, 0.5]))


class TestProportionGap:
    def test_basic(self):
        assert proportion_gap(30, 100, 10, 100) == pytest.approx(0.2)

    def test_zero_denominator_raises(self):
        with pytest.raises(InsufficientDataError):
            proportion_gap(0, 0, 1, 10)


class TestPooledStd:
    def test_equal_groups(self, rng):
        a = rng.normal(scale=2.0, size=5000)
        b = rng.normal(scale=2.0, size=5000)
        assert pooled_std(summarize(a), summarize(b)) == pytest.approx(
            2.0, rel=0.05)
