"""Numerical stability of the moment algebra, and rank fidelity of the
sketch tier against the exact tier (seeded property-style sweeps)."""

import random

import numpy as np
import pytest

from repro.engine.table import Table
from repro.stats.descriptive import SummaryStats, merge_stats, summarize
from repro.stats.effect_sizes import hedges_g
from repro.stats.sketches import TableSketch


class TestSubtractStability:
    def test_near_constant_column(self):
        """Catastrophic cancellation bait: huge offset, tiny spread."""
        rng = np.random.default_rng(0)
        values = 1e8 + rng.normal(scale=1e-3, size=2000)
        whole = summarize(values)
        part = summarize(values[:500])
        rest = whole.subtract(part)
        direct = summarize(values[500:])
        assert rest.n == direct.n
        assert rest.mean == pytest.approx(direct.mean, rel=1e-12)
        assert rest.m2 >= 0.0
        assert rest.m2 == pytest.approx(direct.m2, rel=1e-3, abs=1e-9)

    def test_exactly_constant_column(self):
        values = np.full(100, 42.0)
        whole = summarize(values)
        rest = whole.subtract(summarize(values[:60]))
        assert rest.n == 40
        assert rest.mean == 42.0
        assert rest.m2 == pytest.approx(0.0, abs=1e-9)
        assert not rest.variance > 0  # nan or 0, never positive

    def test_subtract_to_tiny_remainders(self):
        rng = np.random.default_rng(1)
        values = rng.normal(size=10)
        whole = summarize(values)
        for keep in (0, 1, 2):
            rest = whole.subtract(summarize(values[:10 - keep]))
            assert rest.n == keep
            if keep >= 1:
                assert rest.mean == pytest.approx(values[10 - keep:].mean())
            if keep < 2:
                assert rest.variance != rest.variance  # nan below n=2

    def test_subtract_everything(self):
        values = np.random.default_rng(2).normal(size=50)
        whole = summarize(values)
        rest = whole.subtract(whole)
        assert rest.n == 0 and rest.total == 0


class TestMergeStability:
    def test_merge_with_empty_and_singleton(self):
        values = np.random.default_rng(3).normal(size=20)
        stats = summarize(values)
        empty = summarize(np.array([]))
        single = summarize(values[:1])
        assert merge_stats(stats, empty) == stats
        assert merge_stats(empty, stats) == stats
        merged = merge_stats(summarize(values[1:]), single)
        assert merged.n == stats.n
        assert merged.mean == pytest.approx(stats.mean)
        assert merged.m2 == pytest.approx(stats.m2)

    def test_merge_near_constant_partitions(self):
        rng = np.random.default_rng(4)
        values = 1e9 + rng.normal(scale=1e-2, size=3000)
        merged = merge_stats(summarize(values[:1700]), summarize(values[1700:]))
        direct = summarize(values)
        assert merged.n == direct.n
        assert merged.mean == pytest.approx(direct.mean, rel=1e-12)
        assert merged.m2 >= 0.0
        assert merged.m2 == pytest.approx(direct.m2, rel=1e-3, abs=1e-9)

    def test_random_partition_sweep(self):
        """Any split-and-merge reproduces the direct summary."""
        rnd = random.Random(20160808)
        data_rng = np.random.default_rng(99)
        for _ in range(20):
            n = rnd.randint(3, 400)
            scale = 10.0 ** rnd.randint(-6, 6)
            offset = rnd.choice([0.0, 1e6, -1e6])
            values = offset + data_rng.normal(scale=scale, size=n)
            cut = rnd.randint(0, n)
            merged = merge_stats(summarize(values[:cut]),
                                 summarize(values[cut:]))
            direct = summarize(values)
            assert merged.n == direct.n
            assert merged.mean == pytest.approx(direct.mean,
                                                rel=1e-9, abs=1e-12)
            assert merged.m2 == pytest.approx(direct.m2, rel=1e-6, abs=1e-9)
            assert merged.m2 >= 0.0


class TestSketchRankFidelity:
    """The sketch tier must preserve the *ranking* of planted effects.

    Raw effect sizes (Hedges' g here) are insensitive to sample size, so
    scoring from the reservoir sample instead of the full table may move
    individual scores a little but must keep strong effects ahead of
    weak ones — that is the property the tiered cache's correctness
    rests on.
    """

    N_ROWS = 30_000
    CAPACITY = 4096

    def _planted_table(self, rnd: random.Random):
        seed = rnd.randint(0, 2**31)
        rng = np.random.default_rng(seed)
        shifts = sorted(rnd.uniform(0.0, 2.0) for _ in range(8))
        mask = rng.random(self.N_ROWS) < 0.25
        data = {}
        for i, shift in enumerate(shifts):
            col = rng.normal(size=self.N_ROWS)
            col[mask] += shift
            data[f"c{i}"] = col
        return Table.from_dict(data, name="fidelity"), mask, shifts

    def test_top_ranks_preserved(self):
        rnd = random.Random(1729)
        for trial in range(3):
            table, mask, shifts = self._planted_table(rnd)
            sketch = TableSketch.build(table, capacity=self.CAPACITY)
            assert not sketch.covers_all
            sample_mask = sketch.sample_mask(mask)
            exact_g, sketch_g = {}, {}
            for name in table.numeric_column_names():
                values = table.column(name).numeric_values()
                exact_g[name] = abs(hedges_g(summarize(values[mask]),
                                             summarize(values[~mask])))
                sample = sketch.columns[name].sample
                sketch_g[name] = abs(hedges_g(summarize(sample[sample_mask]),
                                              summarize(sample[~sample_mask])))
            exact_rank = sorted(exact_g, key=exact_g.get, reverse=True)
            sketch_rank = sorted(sketch_g, key=sketch_g.get, reverse=True)
            # the strongest planted effect wins under both tiers, and the
            # top-3 sets agree (adjacent swaps among near-ties are fine)
            assert exact_rank[0] == sketch_rank[0]
            assert set(exact_rank[:3]) == set(sketch_rank[:3])
            # scores themselves stay close to the exact ones
            for name in exact_g:
                assert sketch_g[name] == pytest.approx(exact_g[name], abs=0.12)

    def test_sketch_effects_track_planted_magnitudes(self):
        rnd = random.Random(42)
        table, mask, shifts = self._planted_table(rnd)
        sketch = TableSketch.build(table, capacity=self.CAPACITY)
        sample_mask = sketch.sample_mask(mask)
        gs = []
        for i in range(8):
            sample = sketch.columns[f"c{i}"].sample
            gs.append(abs(hedges_g(summarize(sample[sample_mask]),
                                   summarize(sample[~sample_mask]))))
        # shifts were sorted ascending at generation; a clear margin
        # (>0.25 SD apart) must never rank-invert under the sketch
        for i in range(8):
            for j in range(i + 1, 8):
                if shifts[j] - shifts[i] > 0.25:
                    assert gs[j] > gs[i]
