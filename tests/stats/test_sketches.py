"""Tests for the sketch-tier structures (reservoir, histogram, zone map)."""

import pickle

import numpy as np
import pytest

from repro.engine.table import Table
from repro.stats.descriptive import merge_stats, summarize
from repro.stats.sketches import (
    ApproximateHistogram,
    SketchEstimate,
    TableSketch,
    ZoneMap,
    estimate_summary,
    mean_margin,
    required_sample,
    sample_indices,
)


def make_table(n, seed=3, name="sk"):
    rng = np.random.default_rng(seed)
    return Table.from_dict({
        "a": rng.normal(size=n),
        "b": rng.normal(loc=5.0, scale=2.0, size=n),
        "gappy": np.where(rng.random(n) < 0.1, np.nan, rng.normal(size=n)),
        "cat": [("x" if v < 0.5 else "y") for v in rng.random(n)],
    }, name=name)


class TestErrorBounds:
    def test_mean_margin_shrinks_with_k(self):
        assert mean_margin(100) < mean_margin(25)
        assert mean_margin(0) == float("inf")

    def test_required_sample_inverts_margin(self):
        for margin in (0.5, 0.1, 0.05):
            k = required_sample(margin)
            assert mean_margin(k) <= margin
            assert mean_margin(k - 1) > margin

    def test_nonpositive_margin_unobtainable(self):
        assert required_sample(0.0) > 10**15

    def test_estimate_decides(self):
        a = SketchEstimate(1.0, 0.1)
        b = SketchEstimate(2.0, 0.1)
        c = SketchEstimate(1.15, 0.1)
        assert a.decides(b) and b.decides(a)
        assert not a.decides(c)


class TestSampleIndices:
    def test_small_table_covered_completely(self):
        idx = sample_indices(100, capacity=4096)
        assert np.array_equal(idx, np.arange(100))

    def test_deterministic_and_sorted(self):
        a = sample_indices(100_000, capacity=1000, seed=7)
        b = sample_indices(100_000, capacity=1000, seed=7)
        assert np.array_equal(a, b)
        assert np.array_equal(a, np.sort(a))
        assert len(set(a.tolist())) == 1000

    def test_seed_changes_sample(self):
        a = sample_indices(100_000, capacity=1000, seed=7)
        b = sample_indices(100_000, capacity=1000, seed=8)
        assert not np.array_equal(a, b)


class TestZoneMap:
    def test_blocks_bound_values(self):
        values = np.arange(1000, dtype=float)
        zm = ZoneMap.build(values, block_size=100)
        assert zm.mins.size == 10
        assert zm.mins[3] == 300.0 and zm.maxs[3] == 399.0

    def test_may_contain_prunes(self):
        values = np.arange(1000, dtype=float)
        zm = ZoneMap.build(values, block_size=100)
        hit = zm.may_contain(250, 260)
        assert hit[2] and not hit[0] and not hit[9]

    def test_all_nan_block_never_contains(self):
        values = np.concatenate([np.full(100, np.nan), np.arange(100.0)])
        zm = ZoneMap.build(values, block_size=100)
        assert not zm.may_contain(-np.inf, np.inf)[0]
        assert zm.may_contain(-np.inf, np.inf)[1]

    def test_merge_concatenates(self):
        a = ZoneMap.build(np.arange(100.0), block_size=50)
        b = ZoneMap.build(np.arange(100.0, 200.0), block_size=50)
        merged = a.merge(b)
        assert merged.mins.size == 4
        assert merged.maxs[-1] == 199.0
        with pytest.raises(ValueError):
            a.merge(ZoneMap.build(np.arange(10.0), block_size=10))


class TestApproximateHistogram:
    def test_counts_and_missing(self):
        values = np.concatenate([np.arange(100.0), [np.nan] * 5])
        h = ApproximateHistogram.build(values, bins=10)
        assert h.n == 100
        assert h.n_missing == 5

    def test_fraction_below_uniform(self):
        h = ApproximateHistogram.build(np.arange(10_000, dtype=float), bins=64)
        assert h.estimate_fraction_below(-1) == 0.0
        assert h.estimate_fraction_below(1e9) == 1.0
        assert abs(h.estimate_fraction_below(2500.0) - 0.25) < 0.02

    def test_constant_column(self):
        h = ApproximateHistogram.build(np.full(50, 3.0))
        assert h.n == 50
        assert h.estimate_fraction_below(3.0) <= 1.0

    def test_merge_preserves_mass(self):
        a = ApproximateHistogram.build(np.arange(100.0), bins=16)
        b = ApproximateHistogram.build(np.arange(200.0, 300.0), bins=16)
        merged = a.merge(b)
        assert merged.n == 200
        assert merged.n_missing == 0
        assert abs(merged.estimate_fraction_below(150.0) - 0.5) < 0.05

    def test_merge_with_empty(self):
        empty = ApproximateHistogram.build(np.array([np.nan, np.nan]))
        full = ApproximateHistogram.build(np.arange(10.0))
        merged = empty.merge(full)
        assert merged.n == 10
        assert merged.n_missing == 2


class TestTableSketch:
    def test_small_table_covers_all(self):
        sketch = TableSketch.build(make_table(500), capacity=4096)
        assert sketch.covers_all
        assert sketch.sample_size == 500

    def test_numeric_columns_only(self):
        sketch = TableSketch.build(make_table(500))
        assert set(sketch.columns) == {"a", "b", "gappy"}

    def test_moments_exact(self):
        table = make_table(5000)
        sketch = TableSketch.build(table, capacity=512)
        exact = summarize(table.column("b").numeric_values())
        assert sketch.columns["b"].moments == exact

    def test_sample_row_aligned(self):
        table = make_table(5000)
        sketch = TableSketch.build(table, capacity=512)
        assert not sketch.covers_all
        values = table.column("a").numeric_values()
        assert np.array_equal(sketch.columns["a"].sample,
                              values[sketch.row_indices], equal_nan=True)

    def test_sample_mask_shape_checked(self):
        sketch = TableSketch.build(make_table(1000), capacity=128)
        with pytest.raises(ValueError):
            sketch.sample_mask(np.ones(999, dtype=bool))

    def test_sample_matrix_aligned(self):
        table = make_table(3000)
        sketch = TableSketch.build(table, capacity=256)
        mat = sketch.sample_matrix(("a", "b"))
        assert mat.shape == (256, 2)
        assert np.array_equal(mat[:, 1], sketch.columns["b"].sample)

    def test_estimate_mean_margin(self):
        table = make_table(50_000)
        sketch = TableSketch.build(table, capacity=1024)
        est = sketch.columns["a"].estimate_mean()
        assert not est.exact
        assert est.margin > 0
        assert abs(est.value) < est.margin  # true mean is 0

    def test_estimate_mean_exact_when_covered(self):
        sketch = TableSketch.build(make_table(100))
        est = sketch.columns["a"].estimate_mean()
        assert est.exact and est.margin == 0.0

    def test_pickle_round_trip(self):
        sketch = TableSketch.build(make_table(5000), capacity=512)
        clone = pickle.loads(pickle.dumps(sketch))
        assert clone.fingerprint == sketch.fingerprint
        assert np.array_equal(clone.row_indices, sketch.row_indices)
        assert clone.columns["a"].moments == sketch.columns["a"].moments

    def test_merge_moments_exact(self):
        t1, t2 = make_table(3000, seed=1), make_table(2000, seed=2)
        s1 = TableSketch.build(t1, capacity=512)
        s2 = TableSketch.build(t2, capacity=512)
        merged = s1.merge(s2)
        assert merged.n_rows == 5000
        assert merged.sample_size == 512
        both = np.concatenate([t1.column("a").numeric_values(),
                               t2.column("a").numeric_values()])
        expected = summarize(both)
        got = merged.columns["a"].moments
        assert got.n == expected.n
        assert got.mean == pytest.approx(expected.mean)
        assert got.m2 == pytest.approx(expected.m2)

    def test_merge_small_tables_keeps_everything(self):
        s1 = TableSketch.build(make_table(100, seed=1), capacity=4096)
        s2 = TableSketch.build(make_table(50, seed=2), capacity=4096)
        merged = s1.merge(s2)
        assert merged.covers_all
        assert merged.sample_size == 150

    def test_merge_rejects_mismatched(self):
        s1 = TableSketch.build(make_table(100), capacity=512)
        s2 = TableSketch.build(make_table(100), capacity=256)
        with pytest.raises(ValueError):
            s1.merge(s2)


class TestEstimateSummary:
    def test_scales_counts_not_moments_per_obs(self):
        values = np.random.default_rng(0).normal(size=400)
        sample = summarize(values)
        scaled = estimate_summary(sample, population_total=4000)
        assert scaled.total == 4000
        assert scaled.mean == sample.mean
        assert scaled.variance == pytest.approx(sample.m2 * 10 / (scaled.n - 1))

    def test_no_op_when_population_not_larger(self):
        sample = summarize(np.arange(10.0))
        assert estimate_summary(sample, population_total=10) is sample

    def test_missing_clamped_to_population(self):
        rng = np.random.default_rng(1)
        values = np.where(rng.random(500) < 0.5, np.nan, rng.normal(size=500))
        sample = summarize(values)
        population = summarize(
            np.where(rng.random(5000) < 0.01, np.nan, rng.normal(size=5000)))
        scaled = estimate_summary(sample, 2000, population=population)
        # never claims more missing rows than the exact population has
        assert scaled.n_missing <= population.n_missing
        subtracted = population.subtract(scaled)
        assert subtracted.n >= 0 and subtracted.n_missing >= 0
