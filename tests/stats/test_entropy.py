"""Tests for entropy and mutual information."""

import math

import numpy as np
import pytest

from repro.errors import InsufficientDataError
from repro.stats.entropy import (
    binned_mutual_information,
    entropy,
    mutual_information,
    normalized_mutual_information,
)


class TestEntropy:
    def test_uniform_maximal(self):
        assert entropy(np.full(4, 0.25)) == pytest.approx(math.log(4))

    def test_degenerate_zero(self):
        assert entropy(np.array([1.0, 0.0, 0.0])) == 0.0

    def test_base_conversion(self):
        assert entropy(np.full(8, 0.125), base=2) == pytest.approx(3.0)

    def test_renormalizes_counts(self):
        assert entropy(np.array([5.0, 5.0])) == pytest.approx(math.log(2))

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            entropy(np.array([-0.1, 1.1]))

    def test_empty_zero(self):
        assert entropy(np.array([])) == 0.0


class TestMutualInformation:
    def test_independent_zero(self):
        table = np.outer([30, 70], [40, 60])  # product structure
        assert mutual_information(table) == pytest.approx(0.0, abs=1e-12)

    def test_identical_equals_entropy(self):
        table = np.diag([25, 25, 50])
        expected = entropy(np.array([0.25, 0.25, 0.5]))
        assert mutual_information(table) == pytest.approx(expected)

    def test_non_negative(self, rng):
        table = rng.integers(0, 20, size=(4, 5)).astype(float)
        assert mutual_information(table) >= 0.0

    def test_empty_table_zero(self):
        assert mutual_information(np.zeros((2, 2))) == 0.0

    def test_requires_2d(self):
        with pytest.raises(ValueError):
            mutual_information(np.array([1.0, 2.0]))


class TestNormalizedMI:
    def test_bounds(self, rng):
        table = rng.integers(1, 30, size=(5, 5)).astype(float)
        assert 0.0 <= normalized_mutual_information(table) <= 1.0

    def test_perfect_dependence_is_one(self):
        assert normalized_mutual_information(np.diag([10, 20, 30])) == \
               pytest.approx(1.0)

    def test_constant_variable_zero(self):
        table = np.array([[10, 20, 30]])  # X constant
        assert normalized_mutual_information(table) == 0.0


class TestBinnedMI:
    def test_strong_dependence_high(self, rng):
        x = rng.normal(size=3000)
        y = x + rng.normal(scale=0.05, size=3000)
        assert binned_mutual_information(x, y) > 0.6

    def test_independence_low(self, rng):
        x = rng.normal(size=3000)
        y = rng.normal(size=3000)
        assert binned_mutual_information(x, y) < 0.1

    def test_detects_nonmonotone(self, rng):
        x = rng.normal(size=4000)
        y = x ** 2 + rng.normal(scale=0.1, size=4000)  # |corr| ~ 0
        assert binned_mutual_information(x, y) > 0.3

    def test_nan_rows_dropped(self, rng):
        x = rng.normal(size=500)
        y = x.copy()
        x[:50] = np.nan
        value = binned_mutual_information(x, y)
        assert value > 0.6

    def test_raw_nats_option(self, rng):
        x = rng.normal(size=1000)
        raw = binned_mutual_information(x, x, normalized=False)
        assert raw > 1.0  # ~log(bins) for identity

    def test_too_few_points_raises(self):
        with pytest.raises(InsufficientDataError):
            binned_mutual_information(np.array([1.0, 2.0]),
                                      np.array([1.0, 2.0]))

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            binned_mutual_information(np.zeros(10), np.zeros(11))
