"""Tests for robust location/scale estimators."""

import numpy as np
import pytest

from repro.errors import InsufficientDataError
from repro.stats.robust import (
    MAD_TO_SIGMA,
    iqr,
    mad,
    median,
    robust_zscores,
    trimmed_mean,
    winsorize,
)


class TestMedianMad:
    def test_median_basic(self):
        assert median(np.array([3.0, 1.0, 2.0])) == 2.0

    def test_median_drops_nan(self):
        assert median(np.array([1.0, np.nan, 3.0])) == 2.0

    def test_median_empty_raises(self):
        with pytest.raises(InsufficientDataError):
            median(np.array([np.nan]))

    def test_mad_known_value(self):
        data = np.array([1.0, 2.0, 3.0, 4.0, 5.0])
        assert mad(data, scale_to_sigma=False) == 1.0
        assert mad(data) == pytest.approx(MAD_TO_SIGMA)

    def test_mad_estimates_sigma_for_gaussian(self, rng):
        data = rng.normal(scale=2.5, size=20000)
        assert mad(data) == pytest.approx(2.5, rel=0.05)

    def test_mad_ignores_outliers(self, rng):
        data = np.concatenate([rng.normal(size=1000), [1e9] * 10])
        assert mad(data) < 2.0

    def test_iqr_known(self):
        assert iqr(np.arange(1.0, 101.0)) == pytest.approx(49.5)


class TestTrimmedMean:
    def test_no_trim_equals_mean(self, rng):
        data = rng.normal(size=100)
        assert trimmed_mean(data, 0.0) == pytest.approx(data.mean())

    def test_trim_removes_outliers(self):
        data = np.array([1.0, 2.0, 3.0, 4.0, 1000.0])
        assert trimmed_mean(data, 0.2) == pytest.approx(3.0)

    def test_invalid_proportion(self):
        with pytest.raises(ValueError):
            trimmed_mean(np.array([1.0]), 0.5)

    def test_tiny_sample_falls_back_to_median(self):
        assert trimmed_mean(np.array([5.0]), 0.4) == 5.0


class TestWinsorize:
    def test_clamps_tails(self, rng):
        data = np.concatenate([rng.normal(size=1000), [100.0, -100.0]])
        w = winsorize(data, 0.05)
        assert w.max() < 10.0
        assert w.min() > -10.0

    def test_preserves_nan(self):
        w = winsorize(np.array([1.0, np.nan, 2.0, 3.0]), 0.1)
        assert np.isnan(w[1])

    def test_zero_proportion_identity(self):
        data = np.array([1.0, 5.0, 9.0])
        assert list(winsorize(data, 0.0)) == list(data)

    def test_returns_copy(self):
        data = np.array([1.0, 2.0, 3.0])
        w = winsorize(data, 0.1)
        assert w is not data


class TestRobustZscores:
    def test_center_and_scale(self, rng):
        data = rng.normal(loc=10.0, scale=3.0, size=5000)
        z = robust_zscores(data)
        assert np.median(z) == pytest.approx(0.0, abs=0.05)
        assert mad(z) == pytest.approx(1.0, rel=0.05)

    def test_ties_fall_back_to_iqr(self):
        # MAD is 0 (majority at the median) but IQR is positive.
        data = np.array([5.0] * 6 + [1.0, 2.0, 9.0, 10.0])
        z = robust_zscores(data)
        assert np.all(np.isfinite(z))
        assert z.max() > 0.0

    def test_constant_column_all_zero(self):
        z = robust_zscores(np.full(10, 2.0))
        assert np.all(z == 0.0)

    def test_empty_passthrough(self):
        z = robust_zscores(np.array([]))
        assert z.size == 0
