"""Tests for summary statistics and their merge/subtract algebra."""

import math

import numpy as np
import pytest

from repro.errors import InsufficientDataError
from repro.stats.descriptive import (
    SummaryStats,
    merge_stats,
    quantile,
    standardize,
    summarize,
)


class TestSummarize:
    def test_basic_moments_match_numpy(self, rng):
        data = rng.normal(size=500)
        s = summarize(data)
        assert s.n == 500
        assert s.n_missing == 0
        assert s.mean == pytest.approx(data.mean())
        assert s.variance == pytest.approx(data.var(ddof=1))
        assert s.std == pytest.approx(data.std(ddof=1))
        assert s.minimum == data.min()
        assert s.maximum == data.max()

    def test_nan_counted_as_missing(self):
        s = summarize(np.array([1.0, np.nan, 3.0, np.nan]))
        assert s.n == 2
        assert s.n_missing == 2
        assert s.total == 4
        assert s.missing_rate == 0.5
        assert s.mean == pytest.approx(2.0)

    def test_empty_sample(self):
        s = summarize(np.array([]))
        assert s.n == 0
        assert math.isnan(s.mean)
        assert math.isnan(s.variance)
        assert s.missing_rate == 0.0

    def test_all_missing(self):
        s = summarize(np.array([np.nan, np.nan]))
        assert s.n == 0
        assert s.n_missing == 2
        assert s.missing_rate == 1.0

    def test_single_value_variance_nan(self):
        s = summarize(np.array([42.0]))
        assert s.n == 1
        assert s.mean == 42.0
        assert math.isnan(s.variance)
        assert math.isnan(s.sem)

    def test_constant_sample(self):
        s = summarize(np.full(10, 3.0))
        assert s.variance == pytest.approx(0.0)
        assert s.value_range == 0.0

    def test_skewness_sign(self, rng):
        right_skewed = rng.exponential(size=2000)
        assert summarize(right_skewed).skewness > 0.5
        assert summarize(-right_skewed).skewness < -0.5

    def test_skewness_matches_scipy(self, rng):
        from scipy import stats as sps
        data = rng.exponential(size=300)
        assert summarize(data).skewness == pytest.approx(
            sps.skew(data, bias=False))

    def test_kurtosis_matches_scipy(self, rng):
        from scipy import stats as sps
        data = rng.normal(size=400)
        assert summarize(data).kurtosis_excess == pytest.approx(
            sps.kurtosis(data, bias=False))

    def test_integer_input_coerced(self):
        s = summarize(np.array([1, 2, 3]))
        assert s.mean == pytest.approx(2.0)


class TestMergeSubtract:
    def test_merge_equals_whole(self, rng):
        a = rng.normal(size=100)
        b = rng.normal(loc=3.0, size=250)
        merged = merge_stats(summarize(a), summarize(b))
        whole = summarize(np.concatenate([a, b]))
        assert merged.n == whole.n
        assert merged.mean == pytest.approx(whole.mean)
        assert merged.m2 == pytest.approx(whole.m2)
        assert merged.m3 == pytest.approx(whole.m3, rel=1e-9)
        assert merged.m4 == pytest.approx(whole.m4, rel=1e-9)
        assert merged.minimum == whole.minimum
        assert merged.maximum == whole.maximum

    def test_merge_with_empty(self, rng):
        a = summarize(rng.normal(size=50))
        empty = summarize(np.array([]))
        assert merge_stats(a, empty).mean == pytest.approx(a.mean)
        assert merge_stats(empty, a).m2 == pytest.approx(a.m2)
        both = merge_stats(empty, empty)
        assert both.n == 0

    def test_subtract_recovers_part(self, rng):
        inside = rng.normal(loc=2.0, size=120)
        outside = rng.normal(size=480)
        whole = summarize(np.concatenate([inside, outside]))
        derived = whole.subtract(summarize(inside))
        direct = summarize(outside)
        assert derived.n == direct.n
        assert derived.mean == pytest.approx(direct.mean)
        assert derived.variance == pytest.approx(direct.variance)
        assert derived.skewness == pytest.approx(direct.skewness, rel=1e-6)
        assert derived.kurtosis_excess == pytest.approx(
            direct.kurtosis_excess, rel=1e-5)

    def test_subtract_tracks_missing_counts(self):
        whole = summarize(np.array([1.0, 2.0, np.nan, 4.0, np.nan]))
        part = summarize(np.array([1.0, np.nan]))
        rest = whole.subtract(part)
        assert rest.n == 2
        assert rest.n_missing == 1

    def test_subtract_larger_raises(self, rng):
        small = summarize(rng.normal(size=10))
        big = summarize(rng.normal(size=20))
        with pytest.raises(ValueError):
            small.subtract(big)

    def test_subtract_everything_gives_empty(self, rng):
        data = rng.normal(size=30)
        s = summarize(data)
        rest = s.subtract(s)
        assert rest.n == 0

    def test_subtract_clamps_m2_nonnegative(self):
        # Engineered rounding case: identical samples.
        s = summarize(np.full(5, 1.0))
        rest = s.subtract(summarize(np.full(3, 1.0)))
        assert rest.m2 >= 0.0


class TestQuantile:
    def test_median(self):
        assert quantile(np.array([1.0, 2.0, 3.0]), 0.5) == 2.0

    def test_nan_ignored(self):
        assert quantile(np.array([1.0, np.nan, 3.0]), 0.5) == 2.0

    def test_vector_of_quantiles(self):
        qs = quantile(np.arange(101.0), np.array([0.0, 0.5, 1.0]))
        assert list(qs) == [0.0, 50.0, 100.0]

    def test_empty_raises(self):
        with pytest.raises(InsufficientDataError):
            quantile(np.array([np.nan]), 0.5)


class TestStandardize:
    def test_zero_mean_unit_variance(self, rng):
        data = rng.normal(loc=5, scale=3, size=1000)
        z = standardize(data)
        assert z.mean() == pytest.approx(0.0, abs=1e-12)
        assert z.std(ddof=1) == pytest.approx(1.0, rel=1e-9)

    def test_preserves_nan(self):
        z = standardize(np.array([1.0, np.nan, 3.0]))
        assert np.isnan(z[1])
        assert not np.isnan(z[0])

    def test_constant_column_no_infinities(self):
        z = standardize(np.full(5, 7.0))
        assert np.all(np.isfinite(z))
        assert np.all(z == 0.0)

    def test_explicit_center_scale(self):
        z = standardize(np.array([10.0, 20.0]), center=10.0, scale=10.0)
        assert list(z) == [0.0, 1.0]


class TestSummaryStatsProperties:
    def test_sem_decreases_with_n(self, rng):
        small = summarize(rng.normal(size=25))
        large = summarize(rng.normal(size=2500))
        assert large.sem < small.sem

    def test_frozen(self):
        s = summarize(np.array([1.0, 2.0]))
        with pytest.raises(AttributeError):
            s.mean = 0.0  # type: ignore[misc]

    def test_explicit_construction(self):
        s = SummaryStats(n=3, n_missing=0, mean=2.0, m2=2.0, m3=0.0,
                         m4=2.0, minimum=1.0, maximum=3.0)
        assert s.variance == pytest.approx(1.0)
