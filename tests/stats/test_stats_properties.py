"""Property-based tests (hypothesis) for the statistics substrate.

These pin the algebraic invariants everything else leans on: the
merge/subtract algebra of sufficient statistics, bounds of effect sizes
and dependency measures, and NaN discipline.
"""

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.stats.correlation import (
    PairwiseMoments,
    fisher_z,
    inverse_fisher_z,
    pearson,
    rankdata,
)
from repro.stats.descriptive import merge_stats, summarize
from repro.stats.effect_sizes import (
    hellinger_distance,
    total_variation_distance,
)
from repro.stats.entropy import entropy, normalized_mutual_information
from repro.stats.robust import robust_zscores, winsorize

finite_floats = st.floats(min_value=-1e6, max_value=1e6,
                          allow_nan=False, allow_infinity=False)
floats_with_nan = st.floats(min_value=-1e6, max_value=1e6,
                            allow_infinity=False)  # NaN allowed

sample = arrays(np.float64, st.integers(0, 60), elements=finite_floats)
sample_nan = arrays(np.float64, st.integers(0, 60), elements=floats_with_nan)


@given(sample_nan, sample_nan)
def test_merge_commutative(a, b):
    ab = merge_stats(summarize(a), summarize(b))
    ba = merge_stats(summarize(b), summarize(a))
    assert ab.n == ba.n
    assert ab.n_missing == ba.n_missing
    if ab.n:
        assert math.isclose(ab.mean, ba.mean, rel_tol=1e-9, abs_tol=1e-9)
        assert math.isclose(ab.m2, ba.m2, rel_tol=1e-6, abs_tol=1e-6)


@given(sample_nan, sample_nan)
def test_merge_equals_concatenation(a, b):
    merged = merge_stats(summarize(a), summarize(b))
    whole = summarize(np.concatenate([a, b]))
    assert merged.n == whole.n
    if whole.n:
        assert math.isclose(merged.mean, whole.mean, rel_tol=1e-9,
                            abs_tol=1e-9)
        assert math.isclose(merged.m2, whole.m2, rel_tol=1e-6, abs_tol=1e-5)


@given(sample_nan, sample_nan)
def test_subtract_inverts_merge(a, b):
    whole = summarize(np.concatenate([a, b]))
    part = summarize(a)
    rest = whole.subtract(part)
    direct = summarize(b)
    assert rest.n == direct.n
    if direct.n:
        assert math.isclose(rest.mean, direct.mean, rel_tol=1e-6,
                            abs_tol=1e-6)
        assert rest.m2 >= 0.0


@given(arrays(np.float64, st.integers(2, 40), elements=finite_floats),
       arrays(np.float64, st.integers(2, 40), elements=finite_floats))
def test_pearson_bounds_and_symmetry(x, y):
    n = min(x.size, y.size)
    x, y = x[:n], y[:n]
    r = pearson(x, y)
    if not math.isnan(r):
        assert -1.0 <= r <= 1.0
        assert math.isclose(r, pearson(y, x), rel_tol=1e-9, abs_tol=1e-12)


@given(st.floats(min_value=-0.999999, max_value=0.999999))
def test_fisher_z_roundtrip(r):
    assert math.isclose(inverse_fisher_z(fisher_z(r)), r,
                        rel_tol=1e-9, abs_tol=1e-9)


@given(arrays(np.float64, st.integers(1, 50), elements=finite_floats))
def test_rankdata_is_permutation_of_1_to_n(values):
    ranks = rankdata(values)
    assert ranks.size == values.size
    assert math.isclose(ranks.sum(), values.size * (values.size + 1) / 2,
                        rel_tol=1e-9)


@given(arrays(np.float64, st.integers(2, 30),
              elements=st.floats(min_value=0.0, max_value=1.0)),
       arrays(np.float64, st.integers(2, 30),
              elements=st.floats(min_value=0.0, max_value=1.0)))
def test_distribution_distances_bounded(p, q):
    n = min(p.size, q.size)
    p, q = p[:n], q[:n]
    sp, sq = p.sum(), q.sum()
    if sp <= 0 or sq <= 0:
        return
    p, q = p / sp, q / sq
    tv = total_variation_distance(p, q)
    h = hellinger_distance(p, q)
    assert 0.0 <= tv <= 1.0 + 1e-9
    assert 0.0 <= h <= 1.0 + 1e-9
    assert h * h <= tv + 1e-9  # H^2 <= TV


@given(arrays(np.float64, st.integers(1, 20),
              elements=st.floats(min_value=0.0, max_value=100.0)))
def test_entropy_nonnegative_and_bounded(counts):
    if counts.sum() <= 0:
        return
    h = entropy(counts)
    assert 0.0 <= h <= math.log(counts.size) + 1e-9


@given(st.integers(2, 6), st.integers(2, 6), st.integers(0, 1000))
def test_nmi_bounds(rows, cols, seed):
    rng = np.random.default_rng(seed)
    table = rng.integers(0, 30, size=(rows, cols)).astype(float)
    nmi = normalized_mutual_information(table)
    assert 0.0 <= nmi <= 1.0


@given(sample_nan)
def test_robust_zscores_preserve_nan_positions(values):
    z = robust_zscores(values)
    assert z.shape == values.shape
    assert np.array_equal(np.isnan(z), np.isnan(values))


@given(sample_nan, st.floats(min_value=0.0, max_value=0.49))
@settings(max_examples=50)
def test_winsorize_bounded_by_original_range(values, proportion):
    w = winsorize(values, proportion)
    finite = values[~np.isnan(values)]
    if finite.size:
        wf = w[~np.isnan(w)]
        assert wf.min() >= finite.min() - 1e-9
        assert wf.max() <= finite.max() + 1e-9


@given(st.integers(5, 80), st.integers(2, 5), st.integers(0, 10_000))
@settings(max_examples=40)
def test_pairwise_moments_subtraction_consistency(n_rows, n_cols, seed):
    rng = np.random.default_rng(seed)
    data = rng.normal(size=(n_rows, n_cols))
    data[rng.random((n_rows, n_cols)) < 0.15] = np.nan
    mask = rng.random(n_rows) < 0.4
    whole = PairwiseMoments.from_matrix(data)
    inside = PairwiseMoments.from_matrix(data[mask])
    derived, _ = whole.subtract(inside).correlations()
    direct, _ = PairwiseMoments.from_matrix(data[~mask]).correlations()
    assert np.allclose(derived, direct, atol=1e-7, equal_nan=True)
