"""Tests for the baseline characterization methods."""

import numpy as np
import pytest

from repro.baselines.base import nan_mean_cov, pick_disjoint
from repro.baselines.beam import ExhaustivePairSearch
from repro.baselines.centroid import CentroidDistanceSearch
from repro.baselines.fullspace import FullSpaceDivergence
from repro.baselines.kl import KLDivergenceSearch, gaussian_kl
from repro.baselines.pca import PCACharacterizer
from repro.baselines.ziggy_adapter import ZiggyMethod
from repro.data.planted import make_planted

ALL_METHODS = [KLDivergenceSearch(), CentroidDistanceSearch(),
               PCACharacterizer(), ExhaustivePairSearch(),
               FullSpaceDivergence(), ZiggyMethod()]


@pytest.fixture(scope="module")
def mean_planted():
    return make_planted(n_rows=1500, n_columns=24, n_views=2, view_dim=2,
                        kinds=("mean",), effect=1.5, seed=21)


class TestGaussianKL:
    def test_identical_zero(self):
        mean = np.zeros(2)
        cov = np.eye(2)
        assert gaussian_kl(mean, cov, mean, cov) == pytest.approx(0.0)

    def test_mean_shift_formula(self):
        # KL for unit covariance, mean gap d: 0.5 * d^2.
        kl = gaussian_kl(np.array([1.0]), np.eye(1),
                         np.array([0.0]), np.eye(1))
        assert kl == pytest.approx(0.5)

    def test_asymmetry(self):
        kl_pq = gaussian_kl(np.zeros(1), np.eye(1) * 4,
                            np.zeros(1), np.eye(1))
        kl_qp = gaussian_kl(np.zeros(1), np.eye(1),
                            np.zeros(1), np.eye(1) * 4)
        assert kl_pq != pytest.approx(kl_qp)

    def test_nonnegative(self, rng):
        for _ in range(20):
            a = rng.normal(size=(50, 2))
            b = rng.normal(size=(50, 2))
            ma, ca = nan_mean_cov(a)
            mb, cb = nan_mean_cov(b)
            assert gaussian_kl(ma, ca, mb, cb) >= 0.0


class TestNanMeanCov:
    def test_matches_numpy_when_clean(self, rng):
        data = rng.normal(size=(300, 3))
        mean, cov = nan_mean_cov(data)
        assert np.allclose(mean, data.mean(axis=0))
        assert np.allclose(cov, np.cov(data, rowvar=False), atol=1e-8)


class TestPickDisjoint:
    def test_keeps_best_disjoint(self):
        scored = [(5.0, ("a", "b")), (4.0, ("b", "c")), (3.0, ("c", "d"))]
        views = pick_disjoint(scored, 10)
        assert [v.columns for v in views] == [("a", "b"), ("c", "d")]

    def test_cap(self):
        scored = [(float(i), (f"c{i}",)) for i in range(10)]
        assert len(pick_disjoint(scored, 3)) == 3


class TestRecoveryOnMeanEffects:
    """All methods that see means should find strong mean-planted views."""

    @pytest.mark.parametrize("method", [
        KLDivergenceSearch(), CentroidDistanceSearch(),
        ExhaustivePairSearch(), ZiggyMethod()],
        ids=["kl", "centroid", "beam", "ziggy"])
    def test_planted_columns_recovered(self, method, mean_planted):
        views = method.find_views(mean_planted.selection, max_views=4,
                                  max_dim=2)
        reported = {c for v in views for c in v.columns}
        truth = mean_planted.truth_columns
        assert len(reported & truth) >= len(truth) // 2, method.name

    def test_views_respect_caps(self, mean_planted):
        for method in ALL_METHODS:
            views = method.find_views(mean_planted.selection, max_views=3,
                                      max_dim=2)
            assert len(views) <= 3, method.name
            assert all(v.dimension <= 2 for v in views), method.name

    def test_views_disjoint(self, mean_planted):
        for method in ALL_METHODS:
            views = method.find_views(mean_planted.selection, max_views=5,
                                      max_dim=2)
            seen: set[str] = set()
            for v in views:
                assert not (set(v.columns) & seen), method.name
                seen.update(v.columns)


class TestBlindSpots:
    """The structural weaknesses the paper's comparison hinges on."""

    def test_centroid_blind_to_spread(self):
        ds = make_planted(n_rows=2500, n_columns=20, n_views=1,
                          kinds=("spread",), effect=1.5, seed=33)
        views = CentroidDistanceSearch().find_views(ds.selection, 3, 2)
        reported = {c for v in views for c in v.columns}
        hit = len(reported & ds.truth_columns)
        ziggy_views = ZiggyMethod().find_views(ds.selection, 3, 2)
        ziggy_hit = len({c for v in ziggy_views for c in v.columns}
                        & ds.truth_columns)
        assert ziggy_hit >= hit  # Ziggy sees spread shifts; centroid cannot

    def test_ziggy_finds_correlation_breaks(self):
        ds = make_planted(n_rows=2500, n_columns=20, n_views=1,
                          kinds=("correlation",), effect=1.0, seed=37)
        views = ZiggyMethod().find_views(ds.selection, 4, 2)
        reported = {c for v in views for c in v.columns}
        assert reported & ds.truth_columns

    def test_pca_ignores_context(self):
        """PCA looks only at the selection, so it reports the dominant
        background variance, not what distinguishes the selection."""
        ds = make_planted(n_rows=2000, n_columns=30, n_views=1,
                          kinds=("mean",), effect=1.0, seed=41,
                          block_size=6)
        views = PCACharacterizer().find_views(ds.selection, 2, 2)
        assert views  # it produces output...
        # ...but its hits are not required; this documents behaviour.


class TestFullSpace:
    def test_divergence_positive_for_planted(self, mean_planted):
        method = FullSpaceDivergence()
        assert method.divergence(mean_planted.selection) > 0.1

    def test_single_view_output(self, mean_planted):
        views = FullSpaceDivergence().find_views(mean_planted.selection, 5, 2)
        assert len(views) == 1


class TestEdgeCases:
    def test_tiny_selection_graceful(self):
        ds = make_planted(n_rows=60, n_columns=6, n_views=1,
                          selectivity=0.2, seed=5)
        for method in [KLDivergenceSearch(), CentroidDistanceSearch(),
                       PCACharacterizer(), ExhaustivePairSearch(),
                       FullSpaceDivergence()]:
            views = method.find_views(ds.selection, 2, 2)
            assert isinstance(views, list), method.name
