"""Tests for the recursive-descent parser and canonical forms."""

import pytest

from repro.engine.expr import (
    Between,
    BinaryOp,
    ColumnRef,
    FunctionCall,
    InList,
    IsNull,
    Like,
    Literal,
    UnaryOp,
    conjunction,
)
from repro.engine.parser import parse_predicate, parse_query
from repro.errors import QuerySyntaxError


class TestPredicates:
    def test_simple_comparison(self):
        expr = parse_predicate("x > 3")
        assert isinstance(expr, BinaryOp)
        assert expr.op == ">"
        assert isinstance(expr.left, ColumnRef)
        assert isinstance(expr.right, Literal)

    def test_precedence_and_over_or(self):
        expr = parse_predicate("a = 1 OR b = 2 AND c = 3")
        assert expr.op == "OR"
        assert expr.right.op == "AND"  # type: ignore[attr-defined]

    def test_arithmetic_precedence(self):
        expr = parse_predicate("x + 2 * y < 10")
        add = expr.left  # type: ignore[attr-defined]
        assert add.op == "+"
        assert add.right.op == "*"

    def test_parentheses_override(self):
        expr = parse_predicate("(a = 1 OR b = 2) AND c = 3")
        assert expr.op == "AND"

    def test_not(self):
        expr = parse_predicate("NOT x > 1")
        assert isinstance(expr, UnaryOp)
        assert expr.op == "NOT"

    def test_double_negation(self):
        expr = parse_predicate("NOT NOT x = 1")
        assert isinstance(expr.operand, UnaryOp)  # type: ignore[attr-defined]

    def test_unary_minus(self):
        expr = parse_predicate("x < -5")
        assert isinstance(expr.right, UnaryOp)  # type: ignore[attr-defined]
        assert expr.right.op == "NEG"

    def test_between(self):
        expr = parse_predicate("x BETWEEN 1 AND 5")
        assert isinstance(expr, Between)
        assert not expr.negated

    def test_not_between(self):
        expr = parse_predicate("x NOT BETWEEN 1 AND 5")
        assert isinstance(expr, Between)
        assert expr.negated

    def test_between_binds_and_correctly(self):
        # The AND inside BETWEEN must not be parsed as logical AND.
        expr = parse_predicate("x BETWEEN 1 AND 5 AND y = 2")
        assert isinstance(expr, BinaryOp)
        assert expr.op == "AND"
        assert isinstance(expr.left, Between)

    def test_in_list(self):
        expr = parse_predicate("c IN ('a', 'b')")
        assert isinstance(expr, InList)
        assert len(expr.items) == 2

    def test_not_in(self):
        expr = parse_predicate("c NOT IN (1, 2, -3)")
        assert expr.negated  # type: ignore[attr-defined]

    def test_is_null_variants(self):
        assert isinstance(parse_predicate("x IS NULL"), IsNull)
        expr = parse_predicate("x IS NOT NULL")
        assert isinstance(expr, IsNull)
        assert expr.negated

    def test_like(self):
        expr = parse_predicate("name LIKE '%son'")
        assert isinstance(expr, Like)
        assert expr.pattern == "%son"

    def test_function_call(self):
        expr = parse_predicate("log(x) > 2")
        assert isinstance(expr.left, FunctionCall)  # type: ignore[attr-defined]
        assert expr.left.name == "log"

    def test_function_multiple_args(self):
        expr = parse_predicate("pow(x, 2) > 4")
        assert len(expr.left.args) == 2  # type: ignore[attr-defined]

    def test_boolean_literals(self):
        expr = parse_predicate("flag = TRUE")
        assert expr.right.value is True  # type: ignore[attr-defined]

    def test_quoted_column(self):
        expr = parse_predicate('"my col" > 1')
        assert expr.left.name == "my col"  # type: ignore[attr-defined]

    def test_referenced_columns(self):
        expr = parse_predicate("a > 1 AND log(b) < c + d")
        assert expr.referenced_columns() == {"a", "b", "c", "d"}


class TestSyntaxErrors:
    @pytest.mark.parametrize("bad", [
        "x >",
        "AND x = 1",
        "x BETWEEN 1",
        "x IN 1, 2",
        "x IN ()",
        "x LIKE 5",
        "x NOT 5",
        "(x = 1",
        "x = 1)",
        "x IS 5",
        "",
    ])
    def test_malformed_predicates(self, bad):
        with pytest.raises(QuerySyntaxError):
            parse_predicate(bad)

    def test_error_carries_caret(self):
        with pytest.raises(QuerySyntaxError) as exc:
            parse_predicate("x > > 1")
        assert "^" in str(exc.value)


class TestQueries:
    def test_full_query(self):
        q = parse_query("SELECT a, b FROM t WHERE a > 1 "
                        "ORDER BY b DESC LIMIT 10")
        assert q.table == "t"
        assert q.columns == ("a", "b")
        assert q.order_by == "b"
        assert q.descending
        assert q.limit == 10

    def test_star_projection(self):
        q = parse_query("SELECT * FROM t")
        assert q.columns is None
        assert q.predicate is None

    def test_order_asc_default(self):
        q = parse_query("SELECT * FROM t ORDER BY x")
        assert not q.descending

    def test_trailing_garbage_raises(self):
        with pytest.raises(QuerySyntaxError):
            parse_query("SELECT * FROM t garbage")

    def test_missing_from_raises(self):
        with pytest.raises(QuerySyntaxError):
            parse_query("SELECT a WHERE x = 1")

    def test_negative_limit_raises(self):
        with pytest.raises(QuerySyntaxError):
            parse_query("SELECT * FROM t LIMIT -1")

    def test_canonical_roundtrip(self):
        q = parse_query("select *  from t where x=1 order by x limit 5")
        assert q.canonical() == \
               "SELECT * FROM t WHERE (x = 1) ORDER BY x ASC LIMIT 5"


class TestCanonicalForms:
    @pytest.mark.parametrize("a,b", [
        ("x = 1", "x == 1.0"),
        ("x != 1", "x <> 1"),
        ("x   >    2", "x > 2"),
        ("c IN ('b', 'a')", "c IN ('a', 'b')"),  # sorted items
        ("X_1 = 1", "X_1 = 1"),
    ])
    def test_equivalent_spellings_share_canonical(self, a, b):
        assert parse_predicate(a).canonical() == parse_predicate(b).canonical()

    @pytest.mark.parametrize("a,b", [
        ("x = 1", "x = 2"),
        ("x > 1", "x >= 1"),
        ("x = 1 AND y = 2", "x = 1 OR y = 2"),
        ("c LIKE 'a%'", "c LIKE 'a_'"),
    ])
    def test_different_predicates_differ(self, a, b):
        assert parse_predicate(a).canonical() != parse_predicate(b).canonical()

    def test_string_escaping(self):
        expr = parse_predicate("c = 'it''s'")
        assert "it''s" in expr.canonical()

    def test_conjunction_helper(self):
        expr = conjunction([parse_predicate("a = 1"), parse_predicate("b = 2")])
        assert expr.canonical() == "((a = 1) AND (b = 2))"
        assert conjunction([]).canonical() == "TRUE"

    def test_numeric_literal_normalization(self):
        assert Literal(2.0).canonical() == "2"
        assert Literal(2.5).canonical() == "2.5"
        assert Literal(None).canonical() == "NULL"
