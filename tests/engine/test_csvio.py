"""Tests for CSV import/export and type inference."""

import io

import numpy as np
import pytest

from repro.engine.column import BooleanColumn, CategoricalColumn, NumericColumn
from repro.engine.csvio import infer_column, read_csv, table_to_csv_text, write_csv
from repro.engine.table import Table
from repro.errors import CsvFormatError


class TestInferColumn:
    def test_numeric(self):
        col = infer_column("x", ["1", "2.5", "-3"])
        assert isinstance(col, NumericColumn)

    def test_numeric_with_thousand_separators(self):
        col = infer_column("x", ["1,000", "2,500"])
        assert isinstance(col, NumericColumn)
        assert col.values()[0] == 1000.0

    def test_boolean_tokens(self):
        col = infer_column("b", ["true", "False", "YES", "n"])
        assert isinstance(col, BooleanColumn)
        assert list(col.values()) == [1.0, 0.0, 1.0, 0.0]

    def test_missing_tokens(self):
        col = infer_column("x", ["1", "", "NA", "n/a", "?", "2"])
        assert isinstance(col, NumericColumn)
        assert col.n_missing == 4

    def test_mixed_is_categorical(self):
        col = infer_column("c", ["1", "apple"])
        assert isinstance(col, CategoricalColumn)

    def test_all_missing_categorical(self):
        col = infer_column("c", ["", "NA"])
        assert isinstance(col, CategoricalColumn)
        assert col.n_missing == 2


class TestReadCsv:
    def test_roundtrip_types(self):
        text = ("name,score,won,when\n"
                "alice,1.5,true,monday\n"
                "bob,2.5,false,tuesday\n"
                "carol,,true,\n")
        t = read_csv(io.StringIO(text), name="games")
        assert t.shape == (3, 4)
        assert [c.ctype.value for c in t.columns] == \
               ["categorical", "numeric", "boolean", "categorical"]
        assert t.column("score").n_missing == 1

    def test_blank_lines_skipped(self):
        t = read_csv(io.StringIO("a\n1\n\n2\n"))
        assert t.n_rows == 2

    def test_field_count_mismatch(self):
        with pytest.raises(CsvFormatError) as exc:
            read_csv(io.StringIO("a,b\n1\n"))
        assert "line 2" in str(exc.value)

    def test_empty_input(self):
        with pytest.raises(CsvFormatError):
            read_csv(io.StringIO(""))

    def test_empty_header_name(self):
        with pytest.raises(CsvFormatError):
            read_csv(io.StringIO("a,,c\n1,2,3\n"))

    def test_quoted_fields_with_commas(self):
        t = read_csv(io.StringIO('a,b\n"x,y",1\n'))
        assert t.column("a").label_list() == ["x,y"]

    def test_custom_delimiter(self):
        t = read_csv(io.StringIO("a;b\n1;2\n"), delimiter=";")
        assert t.shape == (1, 2)

    def test_file_path(self, tmp_path):
        path = tmp_path / "data.csv"
        path.write_text("x\n1\n2\n")
        t = read_csv(path)
        assert t.name == "data"
        assert t.n_rows == 2


class TestWriteCsv:
    def test_roundtrip_preserves_data(self, tmp_path):
        original = Table.from_dict({
            "num": np.array([1.0, 2.5, np.nan]),
            "cat": ["a", None, "c"],
            "flag": [True, False, None],
        }, name="rt")
        path = tmp_path / "rt.csv"
        write_csv(original, path)
        back = read_csv(path)
        assert back.shape == original.shape
        assert [c.ctype.value for c in back.columns] == \
               [c.ctype.value for c in original.columns]
        assert back.column("num").n_missing == 1
        assert back.column("cat").label_list() == ["a", None, "c"]
        assert list(back.column("flag").values()[:2]) == [1.0, 0.0]

    def test_integers_written_without_decimal(self):
        t = Table.from_dict({"x": np.array([1.0, 2.0])})
        text = table_to_csv_text(t)
        assert "1\n2" in text.replace("\r", "")

    def test_write_to_stream(self):
        t = Table.from_dict({"x": np.array([1.5])})
        buf = io.StringIO()
        write_csv(t, buf)
        assert buf.getvalue().splitlines() == ["x", "1.5"]
