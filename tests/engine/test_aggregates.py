"""Tests for aggregates and GROUP BY."""

import numpy as np
import pytest

from repro.engine.aggregates import AggregateItem, execute_aggregation
from repro.engine.database import Database
from repro.engine.parser import parse_query
from repro.engine.table import Table
from repro.errors import QuerySyntaxError, QueryTypeError


@pytest.fixture
def sales_db():
    table = Table.from_dict({
        "region": ["north", "south", "north", "south", "north", "west"],
        "amount": np.array([10.0, 20.0, 30.0, np.nan, 50.0, 5.0]),
        "units": np.array([1.0, 2.0, 3.0, 4.0, 5.0, 6.0]),
        "rep": ["a", "b", None, "b", "a", "c"],
    }, name="sales")
    db = Database()
    db.register(table)
    return db


def rows_as_dict(result):
    return [dict(zip(result.column_names, row)) for row in result.rows()]


class TestGlobalAggregates:
    def test_count_star(self, sales_db):
        result = sales_db.query("SELECT count(*) FROM sales")
        assert result.rows() == [(6.0,)]

    def test_count_column_skips_null(self, sales_db):
        result = sales_db.query("SELECT count(amount), count(rep) FROM sales")
        assert result.rows() == [(5.0, 5.0)]

    def test_numeric_aggregates(self, sales_db):
        result = sales_db.query(
            "SELECT sum(amount), avg(amount), min(amount), max(amount), "
            "median(amount) FROM sales")
        row = result.rows()[0]
        assert row == (115.0, 23.0, 5.0, 50.0, 20.0)

    def test_stddev(self, sales_db):
        result = sales_db.query("SELECT stddev(units) FROM sales")
        expected = np.std([1, 2, 3, 4, 5, 6], ddof=1)
        assert result.rows()[0][0] == pytest.approx(expected)

    def test_where_applies_before_aggregation(self, sales_db):
        result = sales_db.query(
            "SELECT count(*) FROM sales WHERE region = 'north'")
        assert result.rows() == [(3.0,)]

    def test_empty_group_yields_null(self, sales_db):
        result = sales_db.query(
            "SELECT avg(amount), count(*) FROM sales WHERE amount > 1000")
        assert result.rows() == [(None, 0.0)]


class TestGroupBy:
    def test_group_counts(self, sales_db):
        result = sales_db.query(
            "SELECT region, count(*) FROM sales GROUP BY region "
            "ORDER BY region")
        assert rows_as_dict(result) == [
            {"region": "north", "count(*)": 3.0},
            {"region": "south", "count(*)": 2.0},
            {"region": "west", "count(*)": 1.0},
        ]

    def test_group_avg_skips_nulls(self, sales_db):
        result = sales_db.query(
            "SELECT region, avg(amount) FROM sales GROUP BY region "
            "ORDER BY region")
        by_region = {r["region"]: r["avg(amount)"]
                     for r in rows_as_dict(result)}
        assert by_region["north"] == pytest.approx(30.0)
        assert by_region["south"] == pytest.approx(20.0)  # NaN skipped

    def test_multi_column_group(self, sales_db):
        result = sales_db.query(
            "SELECT region, rep, count(*) FROM sales GROUP BY region, rep")
        assert result.n_rows == 4  # (north,a) (south,b) (north,None) (west,c)

    def test_group_key_with_null(self, sales_db):
        result = sales_db.query(
            "SELECT rep, count(*) FROM sales GROUP BY rep")
        reps = [r["rep"] for r in rows_as_dict(result)]
        assert None in reps  # NULL is its own group

    def test_order_and_limit_on_aggregate(self, sales_db):
        result = sales_db.query(
            "SELECT region, sum(units) FROM sales GROUP BY region "
            "ORDER BY region DESC LIMIT 2")
        assert [r[0] for r in result.rows()] == ["west", "south"]

    def test_numeric_group_key(self, sales_db):
        result = sales_db.query(
            "SELECT units, count(*) FROM sales GROUP BY units")
        assert result.n_rows == 6


class TestValidation:
    def test_group_by_without_aggregate_rejected(self, sales_db):
        with pytest.raises(QuerySyntaxError):
            sales_db.query("SELECT region FROM sales GROUP BY region")

    def test_bare_column_must_be_grouped(self, sales_db):
        with pytest.raises(QuerySyntaxError) as exc:
            sales_db.query("SELECT rep, count(*) FROM sales GROUP BY region")
        assert "rep" in str(exc.value)

    def test_unknown_aggregate(self, sales_db):
        with pytest.raises(QuerySyntaxError):
            sales_db.query("SELECT variance(units) FROM sales")
        # 'variance' not an aggregate name -> treated as bare column and
        # then the paren trips the parser; a known-bad aggregate:
        with pytest.raises(QuerySyntaxError):
            sales_db.query("SELECT sum(*) FROM sales")

    def test_aggregate_on_categorical_rejected(self, sales_db):
        with pytest.raises(QueryTypeError):
            sales_db.query("SELECT avg(region) FROM sales")

    def test_count_on_categorical_ok(self, sales_db):
        result = sales_db.query("SELECT count(region) FROM sales")
        assert result.rows() == [(6.0,)]


class TestCanonicalForm:
    def test_aggregate_canonical(self):
        q = parse_query("select Region, COUNT(*) , avg(amount) from sales "
                        "group by Region")
        assert q.canonical() == ("SELECT Region, count(*), avg(amount) "
                                 "FROM sales GROUP BY Region")
        assert q.is_aggregation


class TestDirectExecution:
    def test_execute_aggregation_api(self, sales_db):
        table = sales_db.table("sales")
        result = execute_aggregation(
            table, (AggregateItem("max", "units"),), ("region",))
        assert result.n_rows == 3
        assert "max(units)" in result.column_names

    def test_aggregate_item_validation(self):
        with pytest.raises(QueryTypeError):
            AggregateItem("sum", None)
        with pytest.raises(QueryTypeError):
            AggregateItem("mode", "x")

    def test_empty_table_aggregation(self):
        table = Table.from_dict({"x": np.array([], dtype=np.float64)})
        result = execute_aggregation(
            table, (AggregateItem("count", None),
                    AggregateItem("avg", "x")), ())
        assert result.rows() == [(0.0, None)]
