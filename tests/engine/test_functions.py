"""Tests for scalar query functions."""

import numpy as np
import pytest

from repro.engine.functions import apply_function, known_functions
from repro.errors import QueryTypeError


class TestUnaryFunctions:
    @pytest.mark.parametrize("name,value,expected", [
        ("abs", -3.0, 3.0),
        ("sqrt", 9.0, 3.0),
        ("log", np.e, 1.0),
        ("ln", np.e, 1.0),
        ("log2", 8.0, 3.0),
        ("log10", 100.0, 2.0),
        ("exp", 0.0, 1.0),
        ("floor", 1.7, 1.0),
        ("ceil", 1.2, 2.0),
        ("round", 1.5, 2.0),
        ("sign", -4.0, -1.0),
    ])
    def test_values(self, name, value, expected):
        out = apply_function(name, [np.array([value])])
        assert out[0] == pytest.approx(expected)

    def test_domain_violations_become_nan(self):
        assert np.isnan(apply_function("log", [np.array([-1.0])])[0])
        assert np.isnan(apply_function("log", [np.array([0.0])])[0])
        assert np.isnan(apply_function("sqrt", [np.array([-4.0])])[0])

    def test_overflow_becomes_nan(self):
        assert np.isnan(apply_function("exp", [np.array([1e4])])[0])

    def test_nan_propagates(self):
        assert np.isnan(apply_function("abs", [np.array([np.nan])])[0])

    def test_arity_check(self):
        with pytest.raises(QueryTypeError):
            apply_function("abs", [np.array([1.0]), np.array([2.0])])


class TestPow:
    def test_basic(self):
        out = apply_function("pow", [np.array([2.0]), np.array([10.0])])
        assert out[0] == 1024.0

    def test_fractional_power_of_negative_nan(self):
        out = apply_function("pow", [np.array([-8.0]), np.array([0.5])])
        assert np.isnan(out[0])

    def test_arity(self):
        with pytest.raises(QueryTypeError):
            apply_function("pow", [np.array([1.0])])


class TestRegistry:
    def test_unknown_function_lists_available(self):
        with pytest.raises(QueryTypeError) as exc:
            apply_function("sinh", [np.array([1.0])])
        assert "available" in str(exc.value)

    def test_known_functions_sorted(self):
        names = known_functions()
        assert list(names) == sorted(names)
        assert "pow" in names
        assert "log" in names
