"""Tests for expression evaluation and SQL three-valued logic."""

import numpy as np
import pytest

from repro.engine.eval import evaluate_expression, evaluate_predicate
from repro.engine.parser import parse_predicate
from repro.engine.table import Table
from repro.errors import QueryTypeError


def select(table, text):
    """Rows (by z-order id) matching the predicate."""
    mask = evaluate_predicate(table, parse_predicate(text))
    return list(np.flatnonzero(mask))


@pytest.fixture
def t():
    return Table.from_dict({
        "x": np.array([1.0, 2.0, 3.0, np.nan, 5.0]),
        "y": np.array([10.0, 20.0, 30.0, 40.0, 50.0]),
        "c": ["red", "green", None, "red", "blue"],
        "b": [True, False, True, None, False],
    })


class TestComparisons:
    def test_numeric_ops(self, t):
        assert select(t, "x > 2") == [2, 4]
        assert select(t, "x <= 2") == [0, 1]
        assert select(t, "x = 3") == [2]
        assert select(t, "x != 3") == [0, 1, 4]

    def test_nan_never_matches(self, t):
        assert 3 not in select(t, "x > 0")
        assert 3 not in select(t, "x < 100")
        assert 3 not in select(t, "x = x")

    def test_column_to_column(self, t):
        assert select(t, "y > x * 9") == [0, 1, 2, 4]

    def test_string_equality(self, t):
        assert select(t, "c = 'red'") == [0, 3]
        assert select(t, "c != 'red'") == [1, 4]  # NULL excluded

    def test_string_ordering(self, t):
        assert select(t, "c < 'green'") == [4]  # 'blue'

    def test_string_vs_number_raises(self, t):
        with pytest.raises(QueryTypeError):
            select(t, "c > 5")


class TestThreeValuedLogic:
    def test_not_null_is_null(self, t):
        # NOT (NULL > 2) is NULL, still excluded.
        assert 3 not in select(t, "NOT (x > 2)")

    def test_or_short_circuit_truth(self, t):
        # NULL OR TRUE = TRUE: row 3 has x NaN but y=40.
        assert 3 in select(t, "x > 100 OR y = 40")

    def test_and_null_false_is_false(self, t):
        # NULL AND FALSE = FALSE -> NOT of it is TRUE.
        assert 3 in select(t, "NOT (x > 1 AND y > 100)")

    def test_and_null_true_is_null(self, t):
        assert 3 not in select(t, "x > 1 AND y > 10")

    def test_is_null(self, t):
        assert select(t, "x IS NULL") == [3]
        assert select(t, "c IS NULL") == [2]
        assert select(t, "b IS NULL") == [3]
        assert select(t, "x IS NOT NULL") == [0, 1, 2, 4]

    def test_boolean_column_direct(self, t):
        assert select(t, "b = TRUE") == [0, 2]
        assert select(t, "NOT b") == [1, 4]


class TestSpecialPredicates:
    def test_in_numeric(self, t):
        assert select(t, "x IN (1, 3, 99)") == [0, 2]

    def test_not_in_excludes_null(self, t):
        assert select(t, "x NOT IN (1, 3)") == [1, 4]

    def test_in_strings(self, t):
        assert select(t, "c IN ('red', 'blue')") == [0, 3, 4]

    def test_in_boolean_literal(self, t):
        assert select(t, "b IN (TRUE)") == [0, 2]

    def test_between(self, t):
        assert select(t, "x BETWEEN 2 AND 3") == [1, 2]
        assert select(t, "x NOT BETWEEN 2 AND 3") == [0, 4]

    def test_like(self, t):
        assert select(t, "c LIKE 're%'") == [0, 3]
        assert select(t, "c LIKE '_reen'") == [1]
        assert select(t, "c NOT LIKE 're%'") == [1, 4]

    def test_like_case_insensitive(self, t):
        assert select(t, "c LIKE 'RED'") == [0, 3]

    def test_like_on_numeric_raises(self, t):
        with pytest.raises(QueryTypeError):
            select(t, "x LIKE '1%'")


class TestArithmetic:
    def test_operations(self, t):
        assert select(t, "x + 1 = 3") == [1]
        assert select(t, "y / 10 = 2") == [1]
        assert select(t, "y % 20 = 0") == [1, 3]
        assert select(t, "-x = -5") == [4]

    def test_division_by_zero_is_null(self, t):
        assert select(t, "y / (x - x) > 0") == []

    def test_functions(self, t):
        assert select(t, "abs(x - 3) < 0.5") == [2]
        assert select(t, "sqrt(y) = 10 - 5 - 5 + 2 * 2 - 1.5357") == []
        assert select(t, "floor(x / 2) = 1") == [1, 2]

    def test_log_of_negative_is_null(self):
        t = Table.from_dict({"v": np.array([-1.0, 1.0])})
        assert select(t, "log(v) IS NULL") == [0]

    def test_pow(self, t):
        assert select(t, "pow(x, 2) = 9") == [2]

    def test_arithmetic_on_string_raises(self, t):
        with pytest.raises(QueryTypeError):
            select(t, "c + 1 > 0")


class TestEvaluateExpression:
    def test_numeric_expression_value(self, t):
        value = evaluate_expression(t, parse_predicate("x * 2"))
        assert value.kind == "num"
        assert value.data[0] == 2.0

    def test_literal_broadcast(self, t):
        value = evaluate_expression(t, parse_predicate("42"))
        assert value.data.shape == (5,)

    def test_null_literal(self, t):
        value = evaluate_expression(t, parse_predicate("NULL"))
        assert np.all(np.isnan(value.data))


class TestWholeRowSemantics:
    def test_empty_table(self):
        t = Table.from_dict({"x": np.array([], dtype=np.float64)})
        assert select(t, "x > 0") == []

    def test_predicate_selects_nothing_and_everything(self, t):
        assert select(t, "y > 0") == [0, 1, 2, 3, 4]
        assert select(t, "y < 0") == []
