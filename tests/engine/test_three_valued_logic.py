"""Exhaustive truth tables for SQL three-valued (Kleene) logic.

The evaluator encodes FALSE/UNKNOWN/TRUE as 0 / 0.5 / 1 so that AND=min,
OR=max, NOT=1-x.  These tests pin the complete semantics against the SQL
standard's truth tables — every cell, not samples.
"""

import numpy as np
import pytest

from repro.engine.eval import evaluate_predicate, evaluate_expression, _to_bool
from repro.engine.parser import parse_predicate
from repro.engine.table import Table

# One row per truth value of each operand: t/f/u via a nullable column.
#   p: x > 0   -> TRUE for x=1, FALSE for x=-1, UNKNOWN for x=NULL
#   q: y > 0   -> likewise on y.
VALUES = {"t": 1.0, "f": -1.0, "u": np.nan}


def table_for(p: str, q: str) -> Table:
    return Table.from_dict({
        "x": np.array([VALUES[p]]),
        "y": np.array([VALUES[q]]),
    })


def kleene(table: Table, text: str) -> str:
    value = evaluate_expression(table, parse_predicate(text))
    encoded = float(_to_bool(value, "test")[0])
    return {0.0: "f", 0.5: "u", 1.0: "t"}[encoded]


# SQL standard truth tables.
AND_TABLE = {
    ("t", "t"): "t", ("t", "f"): "f", ("t", "u"): "u",
    ("f", "t"): "f", ("f", "f"): "f", ("f", "u"): "f",
    ("u", "t"): "u", ("u", "f"): "f", ("u", "u"): "u",
}
OR_TABLE = {
    ("t", "t"): "t", ("t", "f"): "t", ("t", "u"): "t",
    ("f", "t"): "t", ("f", "f"): "f", ("f", "u"): "u",
    ("u", "t"): "t", ("u", "f"): "u", ("u", "u"): "u",
}
NOT_TABLE = {"t": "f", "f": "t", "u": "u"}


class TestTruthTables:
    @pytest.mark.parametrize("p,q", list(AND_TABLE))
    def test_and(self, p, q):
        table = table_for(p, q)
        assert kleene(table, "x > 0 AND y > 0") == AND_TABLE[(p, q)]

    @pytest.mark.parametrize("p,q", list(OR_TABLE))
    def test_or(self, p, q):
        table = table_for(p, q)
        assert kleene(table, "x > 0 OR y > 0") == OR_TABLE[(p, q)]

    @pytest.mark.parametrize("p", list(NOT_TABLE))
    def test_not(self, p):
        table = table_for(p, "t")
        assert kleene(table, "NOT x > 0") == NOT_TABLE[p]

    @pytest.mark.parametrize("p,q", list(AND_TABLE))
    def test_de_morgan(self, p, q):
        """NOT (p AND q) == (NOT p) OR (NOT q) — holds in Kleene logic."""
        table = table_for(p, q)
        left = kleene(table, "NOT (x > 0 AND y > 0)")
        right = kleene(table, "(NOT x > 0) OR (NOT y > 0)")
        assert left == right

    @pytest.mark.parametrize("p", list(NOT_TABLE))
    def test_excluded_middle_fails_on_unknown(self, p):
        """p OR NOT p is UNKNOWN when p is UNKNOWN — the SQL surprise."""
        table = table_for(p, "t")
        result = kleene(table, "x > 0 OR NOT x > 0")
        assert result == ("u" if p == "u" else "t")

    @pytest.mark.parametrize("p,q", list(AND_TABLE))
    def test_where_keeps_only_true(self, p, q):
        table = table_for(p, q)
        mask = evaluate_predicate(table,
                                  parse_predicate("x > 0 AND y > 0"))
        assert bool(mask[0]) == (AND_TABLE[(p, q)] == "t")
