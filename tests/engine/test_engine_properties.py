"""Property-based tests for the engine: parser/canonical-form invariants
and selection-mask semantics."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.database import Database
from repro.engine.eval import evaluate_predicate
from repro.engine.parser import parse_predicate
from repro.engine.table import Table

#: Simple predicate grammar over columns u (numeric, no NaN) and v
#: (numeric with NaN).
numbers = st.floats(min_value=-100, max_value=100, allow_nan=False,
                    allow_infinity=False).map(lambda f: round(f, 3))


@st.composite
def predicates(draw, depth=0) -> str:
    if depth >= 3 or draw(st.booleans()):
        col = draw(st.sampled_from(["u", "v"]))
        op = draw(st.sampled_from(["<", "<=", ">", ">=", "=", "!="]))
        num = draw(numbers)
        return f"{col} {op} {num}"
    kind = draw(st.sampled_from(["and", "or", "not"]))
    if kind == "not":
        inner = draw(predicates(depth=depth + 1))
        return f"NOT ({inner})"
    left = draw(predicates(depth=depth + 1))
    right = draw(predicates(depth=depth + 1))
    return f"({left}) {kind.upper()} ({right})"


def make_table(rows: list[tuple[float, float | None]]) -> Table:
    u = np.array([r[0] for r in rows], dtype=np.float64)
    v = np.array([np.nan if r[1] is None else r[1] for r in rows],
                 dtype=np.float64)
    return Table.from_dict({"u": u, "v": v}, name="prop")


row_strategy = st.tuples(numbers, st.one_of(st.none(), numbers))


@given(predicates(), st.lists(row_strategy, min_size=0, max_size=25))
@settings(max_examples=150)
def test_canonical_reparse_is_equivalent(pred_text, rows):
    """parse(canonical(parse(p))) selects exactly the same rows as p."""
    table = make_table(rows)
    original = parse_predicate(pred_text)
    reparsed = parse_predicate(original.canonical())
    assert original.canonical() == reparsed.canonical()
    m1 = evaluate_predicate(table, original)
    m2 = evaluate_predicate(table, reparsed)
    assert np.array_equal(m1, m2)


@given(predicates(), st.lists(row_strategy, min_size=1, max_size=25))
@settings(max_examples=150)
def test_predicate_and_negation_never_overlap(pred_text, rows):
    """p and NOT p never select the same row (NULL rows match neither)."""
    table = make_table(rows)
    m_pos = evaluate_predicate(table, parse_predicate(pred_text))
    m_neg = evaluate_predicate(table, parse_predicate(f"NOT ({pred_text})"))
    assert not np.any(m_pos & m_neg)
    # Rows with no NULL involvement must match exactly one side.
    complete = ~np.isnan(table.column("v").numeric_values())
    assert np.array_equal((m_pos | m_neg)[complete],
                          np.ones(int(complete.sum()), dtype=bool))


@given(predicates(), st.lists(row_strategy, min_size=0, max_size=20))
@settings(max_examples=100)
def test_selection_partition_invariant(pred_text, rows):
    """inside + outside always partition the table."""
    table = make_table(rows)
    db = Database()
    db.register(table)
    sel = db.select("prop", pred_text)
    assert sel.n_inside + sel.n_outside == table.n_rows
    assert sel.inside().n_rows == sel.n_inside
    assert sel.outside().n_rows == sel.n_outside


@given(st.lists(row_strategy, min_size=0, max_size=20), predicates())
@settings(max_examples=100)
def test_fingerprint_deterministic(rows, pred_text):
    table = make_table(rows)
    db = Database()
    db.register(table)
    a = db.select("prop", pred_text)
    b = db.select("prop", pred_text)
    assert a.fingerprint == b.fingerprint
    assert np.array_equal(a.mask, b.mask)


@given(st.lists(row_strategy, min_size=2, max_size=30))
@settings(max_examples=60)
def test_sort_by_is_permutation(rows):
    table = make_table(rows)
    sorted_t = table.sort_by("u")
    assert sorted(table.column("u").values().tolist()) == \
           sorted(sorted_t.column("u").values().tolist())
    finite = sorted_t.column("u").values()
    assert np.all(np.diff(finite[~np.isnan(finite)]) >= 0)
