"""Tests for the Table container."""

import numpy as np
import pytest

from repro.engine.column import NumericColumn
from repro.engine.table import Table
from repro.errors import SchemaError, UnknownColumnError


class TestConstruction:
    def test_from_dict_shapes(self, tiny_table):
        assert tiny_table.shape == (8, 5)
        assert tiny_table.n_rows == len(tiny_table) == 8
        assert tiny_table.column_names == ("x", "y", "z", "cat", "flag")

    def test_from_rows(self):
        t = Table.from_rows(["a", "b"], [(1, "x"), (2, "y")])
        assert t.shape == (2, 2)
        assert t.column("b").label_list() == ["x", "y"]

    def test_from_rows_ragged_raises(self):
        with pytest.raises(SchemaError):
            Table.from_rows(["a", "b"], [(1, 2), (3,)])

    def test_duplicate_names_raise(self):
        with pytest.raises(SchemaError) as exc:
            Table([NumericColumn("x", [1.0]), NumericColumn("x", [2.0])])
        assert "duplicate" in str(exc.value)

    def test_mismatched_lengths_raise(self):
        with pytest.raises(SchemaError):
            Table([NumericColumn("x", [1.0]), NumericColumn("y", [1.0, 2.0])])

    def test_empty_table(self):
        t = Table([])
        assert t.shape == (0, 0)

    def test_numpy_dtype_dispatch(self):
        t = Table.from_dict({
            "i": np.array([1, 2, 3]),
            "f": np.array([1.5, 2.5, 3.5]),
            "b": np.array([True, False, True]),
            "s": np.array(["p", "q", "r"]),
        })
        types = [c.ctype.value for c in t.columns]
        assert types == ["numeric", "numeric", "boolean", "categorical"]


class TestLookup:
    def test_column_access(self, tiny_table):
        assert tiny_table["x"].name == "x"
        assert "cat" in tiny_table
        assert "nope" not in tiny_table

    def test_unknown_column_error_with_suggestion(self, tiny_table):
        with pytest.raises(UnknownColumnError) as exc:
            tiny_table.column("catt")
        assert "cat" in str(exc.value)

    def test_numeric_and_categorical_names(self, tiny_table):
        assert tiny_table.numeric_column_names() == ("x", "y", "z", "flag")
        assert tiny_table.categorical_column_names() == ("cat",)

    def test_numeric_matrix(self, tiny_table):
        mat = tiny_table.numeric_matrix(["x", "z"])
        assert mat.shape == (8, 2)
        assert mat[0, 1] == 5.0

    def test_numeric_matrix_empty(self):
        t = Table.from_dict({"c": ["a", "b"]})
        assert t.numeric_matrix().shape == (2, 0)


class TestRowOperations:
    def test_select(self, tiny_table):
        mask = np.zeros(8, dtype=bool)
        mask[[0, 2]] = True
        sub = tiny_table.select(mask)
        assert sub.n_rows == 2
        assert list(sub.column("z").values()) == [5.0, 3.0]

    def test_select_bad_mask(self, tiny_table):
        with pytest.raises(ValueError):
            tiny_table.select(np.ones(3, dtype=bool))
        with pytest.raises(ValueError):
            tiny_table.select(np.ones(8))  # not boolean

    def test_take_order(self, tiny_table):
        sub = tiny_table.take(np.array([3, 0]))
        assert list(sub.column("z").values()) == [2.0, 5.0]

    def test_project(self, tiny_table):
        sub = tiny_table.project(["z", "x"])
        assert sub.column_names == ("z", "x")

    def test_head(self, tiny_table):
        assert tiny_table.head(3).n_rows == 3
        assert tiny_table.head(100).n_rows == 8

    def test_sort_numeric_ascending_nan_last(self, tiny_table):
        sorted_t = tiny_table.sort_by("x")
        xs = sorted_t.column("x").values()
        assert list(xs[:-1]) == sorted(xs[:-1])
        assert np.isnan(xs[-1])

    def test_sort_numeric_descending_nan_last(self, tiny_table):
        xs = tiny_table.sort_by("x", descending=True).column("x").values()
        assert xs[0] == 8.0
        assert np.isnan(xs[-1])

    def test_sort_categorical(self, tiny_table):
        cats = tiny_table.sort_by("cat").column("cat").label_list()
        assert cats[-1] is None
        assert cats[:-1] == sorted(cats[:-1])

    def test_sort_stable(self):
        t = Table.from_dict({"k": [1.0, 1.0, 0.0], "v": [10.0, 20.0, 30.0]})
        sorted_t = t.sort_by("k")
        assert list(sorted_t.column("v").values()) == [30.0, 10.0, 20.0]

    def test_with_column_append_and_replace(self, tiny_table):
        extended = tiny_table.with_column(NumericColumn("w", np.zeros(8)))
        assert "w" in extended
        replaced = extended.with_column(NumericColumn("w", np.ones(8)))
        assert replaced.column("w").values()[0] == 1.0
        assert replaced.n_columns == extended.n_columns

    def test_with_column_length_mismatch(self, tiny_table):
        with pytest.raises(SchemaError):
            tiny_table.with_column(NumericColumn("w", [1.0]))

    def test_rows_replaces_nan_with_none(self, tiny_table):
        rows = tiny_table.rows()
        assert rows[5][0] is None  # x has NaN at index 5
        assert rows[3][3] is None  # cat None at index 3

    def test_preview_contains_header_and_ellipsis(self, tiny_table):
        text = tiny_table.preview(n=2)
        assert "x" in text
        assert "8 rows total" in text
