"""Tests for typed column storage."""

import numpy as np
import pytest

from repro.engine.column import (
    BooleanColumn,
    CategoricalColumn,
    MISSING_CODE,
    NumericColumn,
    column_from_values,
)
from repro.engine.types import ColumnType
from repro.errors import SchemaError


class TestNumericColumn:
    def test_basic(self):
        col = NumericColumn("x", [1.0, 2.0, 3.0])
        assert len(col) == 3
        assert col.ctype is ColumnType.NUMERIC
        assert list(col.values()) == [1.0, 2.0, 3.0]

    def test_none_becomes_nan(self):
        col = NumericColumn("x", [1.0, None, 3.0])
        assert col.n_missing == 1
        assert np.isnan(col.values()[1])

    def test_immutable(self):
        col = NumericColumn("x", np.array([1.0, 2.0]))
        with pytest.raises(ValueError):
            col.values()[0] = 99.0

    def test_source_array_copied_semantics(self):
        src = np.array([1.0, 2.0])
        col = NumericColumn("x", src)
        assert list(col.values()) == [1.0, 2.0]

    def test_take_mask_and_indices(self):
        col = NumericColumn("x", [10.0, 20.0, 30.0, 40.0])
        assert list(col.take(np.array([True, False, True, False])).values()) \
               == [10.0, 30.0]
        assert list(col.take(np.array([3, 0])).values()) == [40.0, 10.0]

    def test_empty_name_raises(self):
        with pytest.raises(SchemaError):
            NumericColumn("", [1.0])


class TestBooleanColumn:
    def test_encoding(self):
        col = BooleanColumn("b", [True, False, None])
        assert col.ctype is ColumnType.BOOLEAN
        assert list(col.values()[:2]) == [1.0, 0.0]
        assert col.n_missing == 1

    def test_numpy_bool_array(self):
        col = BooleanColumn("b", np.array([True, False, True]))
        assert list(col.numeric_values()) == [1.0, 0.0, 1.0]

    def test_rejects_non_boolean(self):
        with pytest.raises(SchemaError):
            BooleanColumn("b", np.array([0.0, 0.5]))

    def test_take_roundtrip(self):
        col = BooleanColumn("b", [True, False, True])
        taken = col.take(np.array([2, 1]))
        assert list(taken.values()) == [1.0, 0.0]


class TestCategoricalColumn:
    def test_dictionary_encoding(self):
        col = CategoricalColumn("c", ["x", "y", "x", None, "z"])
        assert col.ctype is ColumnType.CATEGORICAL
        assert col.labels == ("x", "y", "z")
        assert list(col.codes) == [0, 1, 0, MISSING_CODE, 2]
        assert col.n_missing == 1

    def test_values_roundtrip_labels(self):
        col = CategoricalColumn("c", ["a", None, "b"])
        assert col.label_list() == ["a", None, "b"]

    def test_non_string_coerced(self):
        col = CategoricalColumn("c", [1, 2, 1])
        assert col.labels == ("1", "2")

    def test_numeric_values_raises(self):
        with pytest.raises(SchemaError):
            CategoricalColumn("c", ["a"]).numeric_values()

    def test_take_preserves_dictionary(self):
        col = CategoricalColumn("c", ["a", "b", "c", "a"])
        taken = col.take(np.array([True, False, False, True]))
        assert taken.labels == col.labels
        assert taken.label_list() == ["a", "a"]

    def test_from_codes(self):
        col = CategoricalColumn("c", codes=np.array([0, 1, -1]),
                                labels=("p", "q"))
        assert col.label_list() == ["p", "q", None]

    def test_bad_codes_raise(self):
        with pytest.raises(SchemaError):
            CategoricalColumn("c", codes=np.array([5]), labels=("a",))

    def test_codes_require_labels(self):
        with pytest.raises(SchemaError):
            CategoricalColumn("c", codes=np.array([0]))

    def test_nan_float_treated_missing(self):
        col = CategoricalColumn("c", ["a", float("nan")])
        assert col.n_missing == 1


class TestColumnFromValues:
    def test_bool_sniffing(self):
        assert isinstance(column_from_values("x", [True, None, False]),
                          BooleanColumn)

    def test_numeric_sniffing(self):
        col = column_from_values("x", [1, 2.5, None])
        assert isinstance(col, NumericColumn)

    def test_mixed_becomes_categorical(self):
        col = column_from_values("x", [1, "a"])
        assert isinstance(col, CategoricalColumn)

    def test_bool_not_mistaken_for_numeric(self):
        # Python bool is an int subclass; the sniffer must prefer boolean.
        col = column_from_values("x", [True, False])
        assert isinstance(col, BooleanColumn)

    def test_all_missing_is_categorical(self):
        col = column_from_values("x", [None, None])
        assert isinstance(col, CategoricalColumn)
        assert col.n_missing == 2
