"""Tests for the Database facade and Selection objects."""

import numpy as np
import pytest

from repro.engine.database import Database, selection_from_mask
from repro.engine.table import Table
from repro.errors import UnknownTableError


class TestCatalog:
    def test_register_and_lookup(self, tiny_table):
        db = Database()
        db.register(tiny_table)
        assert "tiny" in db
        assert db.table("tiny") is tiny_table
        assert db.table_names() == ("tiny",)

    def test_register_under_alias(self, tiny_table):
        db = Database()
        db.register(tiny_table, name="alias")
        assert db.table("alias") is tiny_table

    def test_unknown_table(self):
        db = Database()
        with pytest.raises(UnknownTableError):
            db.table("ghost")

    def test_drop(self, tiny_table):
        db = Database()
        db.register(tiny_table)
        db.drop("tiny")
        assert "tiny" not in db
        with pytest.raises(UnknownTableError):
            db.drop("tiny")


class TestSelect:
    def test_predicate_text(self, tiny_db):
        sel = tiny_db.select("tiny", "z >= 3")
        assert sel.n_inside == 3
        assert sel.n_outside == 5
        assert sel.selectivity == pytest.approx(3 / 8)

    def test_none_selects_all(self, tiny_db):
        sel = tiny_db.select("tiny", None)
        assert sel.n_inside == 8
        assert sel.predicate is None

    def test_inside_outside_tables(self, tiny_db):
        sel = tiny_db.select("tiny", "z > 3")
        assert sel.inside().n_rows + sel.outside().n_rows == 8
        assert set(sel.inside().column("z").values()) == {4.0, 5.0}

    def test_parsed_expression_accepted(self, tiny_db):
        from repro.engine.parser import parse_predicate
        expr = parse_predicate("z > 3")
        sel = tiny_db.select("tiny", expr)
        assert sel.n_inside == 2

    def test_fingerprint_stability_across_spellings(self, tiny_db):
        a = tiny_db.select("tiny", "z > 3")
        b = tiny_db.select("tiny", "z   >   3.0")
        assert a.fingerprint == b.fingerprint

    def test_fingerprint_differs_across_predicates(self, tiny_db):
        a = tiny_db.select("tiny", "z > 3")
        b = tiny_db.select("tiny", "z > 4")
        assert a.fingerprint != b.fingerprint

    def test_fingerprint_differs_across_tables(self, tiny_table):
        db = Database()
        db.register(tiny_table, name="t1")
        db.register(tiny_table, name="t2")
        assert db.select("t1", "z > 3").fingerprint != \
               db.select("t2", "z > 3").fingerprint

    def test_describe(self, tiny_db):
        text = tiny_db.select("tiny", "z > 3").describe()
        assert "2/8" in text

    def test_stats_counters(self, tiny_db):
        before = tiny_db.stats.queries_run
        tiny_db.select("tiny", "z > 0")
        assert tiny_db.stats.queries_run == before + 1


class TestQuery:
    def test_full_query_pipeline(self, tiny_db):
        result = tiny_db.query(
            "SELECT z, cat FROM tiny WHERE z > 0 ORDER BY z DESC LIMIT 2")
        assert result.column_names == ("z", "cat")
        assert list(result.column("z").values()) == [5.0, 4.0]

    def test_selection_for_query_ignores_projection(self, tiny_db):
        sel = tiny_db.selection_for_query(
            "SELECT x FROM tiny WHERE z > 3 LIMIT 1")
        # LIMIT/projection must not affect the characterized selection.
        assert sel.n_inside == 2
        assert sel.table.n_columns == 5


class TestSelectionFromMask:
    def test_basic(self, tiny_table):
        mask = np.zeros(8, dtype=bool)
        mask[:3] = True
        sel = selection_from_mask(tiny_table, mask)
        assert sel.n_inside == 3
        assert sel.predicate is None

    def test_fingerprint_depends_on_mask(self, tiny_table):
        m1 = np.zeros(8, dtype=bool)
        m1[0] = True
        m2 = np.zeros(8, dtype=bool)
        m2[1] = True
        assert selection_from_mask(tiny_table, m1).fingerprint != \
               selection_from_mask(tiny_table, m2).fingerprint

    def test_label_differentiates(self, tiny_table):
        mask = np.ones(8, dtype=bool)
        a = selection_from_mask(tiny_table, mask, label="a")
        b = selection_from_mask(tiny_table, mask, label="b")
        assert a.fingerprint != b.fingerprint

    def test_wrong_shape_raises(self, tiny_table):
        with pytest.raises(ValueError):
            selection_from_mask(tiny_table, np.ones(3, dtype=bool))
        with pytest.raises(ValueError):
            selection_from_mask(tiny_table, np.ones(8))
