"""Tests for the tokenizer."""

import pytest

from repro.engine.lexer import Token, TokenKind, tokenize
from repro.errors import QuerySyntaxError


def kinds(text):
    return [t.kind for t in tokenize(text)]


def texts(text):
    return [t.text for t in tokenize(text)[:-1]]


class TestBasics:
    def test_keywords_case_insensitive(self):
        toks = tokenize("select From WHERE")
        assert all(t.kind is TokenKind.KEYWORD for t in toks[:-1])
        assert [t.text for t in toks[:-1]] == ["SELECT", "FROM", "WHERE"]

    def test_identifier_vs_keyword(self):
        toks = tokenize("selection")
        assert toks[0].kind is TokenKind.IDENT
        assert toks[0].value == "selection"

    def test_ends_with_end_token(self):
        assert tokenize("")[-1].kind is TokenKind.END
        assert tokenize("x")[-1].kind is TokenKind.END

    def test_positions_recorded(self):
        toks = tokenize("ab  cd")
        assert toks[0].position == 0
        assert toks[1].position == 4


class TestNumbers:
    @pytest.mark.parametrize("literal,value", [
        ("42", 42.0),
        ("3.14", 3.14),
        (".5", 0.5),
        ("1e3", 1000.0),
        ("2.5E-2", 0.025),
        ("7e+2", 700.0),
    ])
    def test_number_forms(self, literal, value):
        tok = tokenize(literal)[0]
        assert tok.kind is TokenKind.NUMBER
        assert tok.value == value

    def test_exponent_without_digits_not_number(self):
        toks = tokenize("1e")  # '1' then ident 'e'
        assert toks[0].kind is TokenKind.NUMBER
        assert toks[1].kind is TokenKind.IDENT


class TestStrings:
    def test_simple_string(self):
        tok = tokenize("'hello'")[0]
        assert tok.kind is TokenKind.STRING
        assert tok.value == "hello"

    def test_escaped_quote(self):
        tok = tokenize("'it''s'")[0]
        assert tok.value == "it's"

    def test_unterminated_raises_with_position(self):
        with pytest.raises(QuerySyntaxError) as exc:
            tokenize("x = 'oops")
        assert exc.value.position == 4

    def test_quoted_identifier(self):
        tok = tokenize('"my column"')[0]
        assert tok.kind is TokenKind.IDENT
        assert tok.value == "my column"

    def test_quoted_identifier_escape(self):
        tok = tokenize('"a""b"')[0]
        assert tok.value == 'a"b'

    def test_unterminated_identifier(self):
        with pytest.raises(QuerySyntaxError):
            tokenize('"open')


class TestOperators:
    def test_greedy_multichar(self):
        assert texts("a<=b") == ["a", "<=", "b"]
        assert texts("a<>b") == ["a", "<>", "b"]
        assert texts("a!=b") == ["a", "!=", "b"]
        assert texts("a==b") == ["a", "==", "b"]

    def test_star_token(self):
        toks = tokenize("SELECT * FROM t")
        assert toks[1].kind is TokenKind.STAR

    def test_arithmetic(self):
        assert texts("1+2*3/4-5%6") == ["1", "+", "2", "*", "3", "/", "4",
                                        "-", "5", "%", "6"]

    def test_unknown_character(self):
        with pytest.raises(QuerySyntaxError) as exc:
            tokenize("a @ b")
        assert "@" in str(exc.value)


class TestTokenValue:
    def test_token_is_frozen(self):
        tok = Token(TokenKind.IDENT, "x", 0, "x")
        with pytest.raises(AttributeError):
            tok.text = "y"  # type: ignore[misc]
