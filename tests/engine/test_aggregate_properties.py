"""Property-based tests for aggregates and GROUP BY."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.aggregates import AggregateItem, execute_aggregation
from repro.engine.database import Database
from repro.engine.table import Table

values = st.floats(min_value=-1e5, max_value=1e5, allow_infinity=False)
groups = st.sampled_from(["a", "b", "c", None])


@st.composite
def tables(draw):
    n = draw(st.integers(min_value=0, max_value=40))
    xs = [draw(values) for _ in range(n)]
    gs = [draw(groups) for _ in range(n)]
    return Table.from_dict({
        "g": gs,
        "x": np.array([np.nan if v != v else v for v in xs]),
    }, name="prop_agg")


@given(tables())
@settings(max_examples=80)
def test_group_counts_sum_to_total(table):
    result = execute_aggregation(
        table, (AggregateItem("count", None),), ("g",))
    counts = result.column("count(*)").numeric_values()
    assert counts.sum() == table.n_rows


@given(tables())
@settings(max_examples=80)
def test_group_sums_equal_global_sum(table):
    grouped = execute_aggregation(
        table, (AggregateItem("sum", "x"),), ("g",))
    global_ = execute_aggregation(
        table, (AggregateItem("sum", "x"),), ())
    gsum = np.nansum([v if v is not None else 0.0
                      for v in (grouped.rows()[i][-1]
                                for i in range(grouped.n_rows))])
    total = global_.rows()[0][0]
    if total is None:
        assert abs(gsum) < 1e-9
    else:
        assert abs(gsum - total) < 1e-6 * max(1.0, abs(total))


@given(tables())
@settings(max_examples=60)
def test_min_le_avg_le_max_per_group(table):
    result = execute_aggregation(
        table, (AggregateItem("min", "x"), AggregateItem("avg", "x"),
                AggregateItem("max", "x")), ("g",))
    for row in result.rows():
        _, lo, mean, hi = row
        if lo is None:
            assert mean is None and hi is None
            continue
        assert lo - 1e-9 <= mean <= hi + 1e-9


@given(tables())
@settings(max_examples=60)
def test_where_then_aggregate_consistent(table):
    """count(*) with WHERE == number of rows the selection keeps."""
    db = Database()
    db.register(table)
    result = db.query("SELECT count(*) FROM prop_agg WHERE x > 0")
    sel = db.select("prop_agg", "x > 0")
    assert result.rows()[0][0] == float(sel.n_inside)


@given(tables())
@settings(max_examples=40)
def test_aggregation_invariant_to_row_order(table):
    if table.n_rows < 2:
        return
    rng = np.random.default_rng(0)
    perm = rng.permutation(table.n_rows)
    shuffled = table.take(perm)
    a = execute_aggregation(table, (AggregateItem("avg", "x"),), ("g",))
    b = execute_aggregation(shuffled, (AggregateItem("avg", "x"),), ("g",))
    to_map = lambda t: {row[0]: row[1] for row in t.rows()}  # noqa: E731
    ma, mb = to_map(a), to_map(b)
    assert set(ma) == set(mb)
    for key, value in ma.items():
        other = mb[key]
        if value is None:
            assert other is None
        else:
            assert abs(value - other) < 1e-9 * max(1.0, abs(value))
