"""Tests for the command-line interface."""

import io

import pytest

from repro.app.cli import build_parser, main
from repro.engine.csvio import write_csv


def run_cli(*argv) -> tuple[int, str]:
    buffer = io.StringIO()
    code = main(list(argv), stream=buffer)
    return code, buffer.getvalue()


class TestCharacterize:
    def test_dataset_where(self):
        code, out = run_cli("--dataset", "boxoffice", "--seed-rows", "300",
                            "--where", "gross > 200000000")
        assert code == 0
        assert "characteristic view" in out
        assert "your selection" in out

    def test_views_cap(self):
        code, out = run_cli("--dataset", "boxoffice", "--seed-rows", "300",
                            "--where", "gross > 200000000", "--views", "2")
        assert code == 0
        assert "3." not in out.split("characteristic")[1]

    def test_plot_flag(self):
        code, out = run_cli("--dataset", "boxoffice", "--seed-rows", "300",
                            "--where", "gross > 200000000", "--plot")
        assert code == 0
        assert "score=" in out

    def test_dendrogram_flag(self):
        code, out = run_cli("--dataset", "boxoffice", "--seed-rows", "300",
                            "--where", "gross > 200000000", "--dendrogram")
        assert code == 0
        assert "d=" in out

    def test_weight_override(self):
        code, out = run_cli("--dataset", "boxoffice", "--seed-rows", "300",
                            "--where", "gross > 200000000",
                            "--weight", "spread_shift=0")
        assert code == 0

    def test_clique_strategy(self):
        code, out = run_cli("--dataset", "boxoffice", "--seed-rows", "300",
                            "--where", "gross > 200000000",
                            "--strategy", "clique")
        assert code == 0

    def test_exclude(self):
        code, out = run_cli("--dataset", "boxoffice", "--seed-rows", "300",
                            "--where", "gross > 200000000",
                            "--exclude", "opening_weekend")
        assert code == 0
        assert "opening_weekend" not in out.split("\n\n")[0]


class TestSql:
    def test_aggregate_prints_table(self):
        code, out = run_cli("--dataset", "boxoffice", "--seed-rows", "300",
                            "--sql", "SELECT genre, count(*) FROM boxoffice "
                                     "GROUP BY genre")
        assert code == 0
        assert "count(*)" in out

    def test_star_where_characterizes(self):
        code, out = run_cli("--dataset", "boxoffice", "--seed-rows", "300",
                            "--sql", "SELECT * FROM boxoffice WHERE "
                                     "gross > 200000000")
        assert code == 0
        assert "characteristic view" in out

    def test_projection_prints_table(self):
        code, out = run_cli("--dataset", "boxoffice", "--seed-rows", "300",
                            "--sql", "SELECT budget FROM boxoffice LIMIT 3")
        assert code == 0
        assert "budget" in out


class TestCsvAndErrors:
    def test_csv_source(self, tmp_path, boxoffice_small):
        path = tmp_path / "movies.csv"
        write_csv(boxoffice_small, path)
        code, out = run_cli("--csv", str(path),
                            "--where", "gross > 200000000")
        assert code == 0
        assert "characteristic view" in out

    def test_list_datasets(self):
        code, out = run_cli("--list-datasets")
        assert code == 0
        for name in ("boxoffice", "us_crime", "innovation"):
            assert name in out

    def test_bad_predicate_exit_code(self):
        code, out = run_cli("--dataset", "boxoffice", "--seed-rows", "300",
                            "--where", "gross >")
        assert code == 1
        assert "error:" in out

    def test_unknown_column_friendly(self):
        code, out = run_cli("--dataset", "boxoffice", "--seed-rows", "300",
                            "--where", "grosss > 1")
        assert code == 1
        assert "did you mean" in out

    def test_bad_weight_format(self):
        code, out = run_cli("--dataset", "boxoffice", "--seed-rows", "300",
                            "--where", "gross > 1", "--weight", "oops")
        assert code == 1

    def test_missing_query_errors(self, capsys):
        with pytest.raises(SystemExit):
            main(["--dataset", "boxoffice"])

    def test_parser_builds(self):
        parser = build_parser()
        args = parser.parse_args(["--where", "x > 1"])
        assert args.where == "x > 1"


class TestServe:
    def test_serve_parser_defaults(self):
        from repro.app.cli import build_serve_parser
        args = build_serve_parser().parse_args([])
        assert args.host == "127.0.0.1"
        assert args.port == 8765
        assert args.dataset == []

    def test_serve_parser_options(self):
        from repro.app.cli import build_serve_parser
        args = build_serve_parser().parse_args(
            ["--port", "0", "--dataset", "boxoffice", "--seed-rows", "100",
             "--workers", "4", "--quiet"])
        assert args.port == 0
        assert args.dataset == ["boxoffice"]
        assert args.quiet

    def test_serve_bad_csv_exits_nonzero(self, tmp_path):
        from repro.app.cli import serve_main
        buffer = io.StringIO()
        code = serve_main(["--csv", str(tmp_path / "missing.csv"),
                           "--port", "0"], stream=buffer)
        assert code == 1
        assert "error:" in buffer.getvalue()

    def test_main_dispatches_serve(self, monkeypatch):
        import repro.app.cli as cli
        seen = {}
        monkeypatch.setattr(cli, "serve_main",
                            lambda argv, stream=None:
                            seen.setdefault("argv", argv) and 0 or 0)
        assert cli.main(["serve", "--port", "0"]) == 0
        assert seen["argv"] == ["--port", "0"]
