"""Tests for the session and the JSON API layer."""

import json

import pytest

from repro.app.api import ZiggyApi, view_to_dict
from repro.app.session import ZiggySession
from repro.errors import ReproError


@pytest.fixture
def session(boxoffice_small):
    s = ZiggySession()
    s.add_table(boxoffice_small)
    return s


class TestSession:
    def test_run_and_panels(self, session):
        result = session.run("gross > 200000000")
        assert result.views
        listing = session.view_list()
        assert "gross > 200000000" in listing
        detail = session.view_detail(1)
        assert "View 1" in detail

    def test_single_table_resolution(self, session):
        session.run("budget > 50000000")
        assert session.current.table_name == "boxoffice"

    def test_multi_table_needs_name(self, session, crime_small):
        session.add_table(crime_small)
        with pytest.raises(ReproError):
            session.run("budget > 1")
        session.run("violent_crime_rate > 0.2", table="us_crime")
        assert session.current.table_name == "us_crime"

    def test_history_accumulates(self, session):
        session.run("gross > 100000000")
        session.run("gross > 300000000")
        assert len(session.history) == 2

    def test_no_query_yet_raises(self, session):
        with pytest.raises(ReproError):
            session.view_list()

    def test_view_rank_bounds(self, session):
        session.run("gross > 200000000")
        with pytest.raises(ReproError):
            session.view(0)
        with pytest.raises(ReproError):
            session.view(99)

    def test_run_sql(self, session):
        result = session.run_sql(
            "SELECT budget FROM boxoffice WHERE gross > 200000000")
        assert result.n_inside > 0

    def test_set_weights_changes_ranking_inputs(self, session):
        session.set_weights(spread_shift=0.0)
        session.run("gross > 200000000")
        comps = [c.component for v in session.current.result.views
                 for c in v.components if c.weight > 0]
        assert "spread_shift" not in comps

    def test_set_option_validated(self, session):
        from repro.errors import ConfigError
        with pytest.raises(ConfigError):
            session.set_option(alpha=5.0)
        session.set_option(max_views=2)
        session.run("gross > 200000000")
        assert len(session.current.result.views) <= 2

    def test_dendrogram_text(self, session):
        session.run("gross > 200000000")
        assert "d=" in session.dendrogram()

    def test_explanations_list(self, session):
        session.run("gross > 200000000")
        texts = session.explanations()
        assert texts
        assert all("your selection" in t for t in texts)


class TestApi:
    @pytest.fixture
    def api(self, session):
        return ZiggyApi(session)

    def test_list_tables(self, api):
        response = api.handle({"action": "list_tables"})
        assert response["ok"]
        assert response["tables"][0]["name"] == "boxoffice"
        assert response["tables"][0]["columns"] == 12

    def test_query_roundtrip_json(self, api):
        response = api.handle({"action": "query",
                               "where": "gross > 200000000"})
        assert response["ok"]
        assert response["n_views"] == len(response["views"])
        # Must be JSON-serializable end to end.
        encoded = json.dumps(response)
        assert "explanation" in encoded

    def test_view_detail(self, api):
        api.handle({"action": "query", "where": "gross > 200000000"})
        response = api.handle({"action": "view_detail", "rank": 1})
        assert response["ok"]
        assert "View 1" in response["panel"]

    def test_dendrogram(self, api):
        api.handle({"action": "query", "where": "gross > 200000000"})
        response = api.handle({"action": "dendrogram"})
        assert response["ok"]

    def test_set_weights(self, api):
        response = api.handle({"action": "set_weights",
                               "weights": {"mean_shift": 2.0}})
        assert response["ok"]
        assert response["weights"]["mean_shift"] == 2.0

    def test_unknown_action_lists_available(self, api):
        response = api.handle({"action": "explode"})
        assert not response["ok"]
        assert "query" in response["available"]

    def test_user_error_never_raises(self, api):
        response = api.handle({"action": "query", "where": "no_such > 1"})
        assert not response["ok"]
        assert "error" in response

    def test_syntax_error_reported(self, api):
        response = api.handle({"action": "query", "where": "gross >"})
        assert not response["ok"]

    def test_view_detail_before_query(self, api):
        response = api.handle({"action": "view_detail", "rank": 1})
        assert not response["ok"]

    def test_view_to_dict_sanitizes_nonfinite(self):
        from repro.core.views import View, ViewResult
        vr = ViewResult(view=View(columns=("a",)), score=float("inf"),
                        tightness=1.0, components=())
        assert view_to_dict(vr, 1)["score"] is None

    def test_nonfinite_nested_in_detail_sanitized(self):
        # Regression: inf/nan nested inside ComponentScore.detail lists
        # used to leak into the response and break json.dumps consumers.
        from repro.core.views import ComponentScore, View, ViewResult
        score = ComponentScore(
            component="corr_shift", columns=("a", "b"), raw=0.1,
            normalized=0.1, weight=1.0, test=None, direction="different",
            detail={"coeffs": (float("inf"), 0.5),
                    "nested": {"vals": [float("nan")]}})
        vr = ViewResult(view=View(columns=("a", "b")), score=1.0,
                        tightness=1.0, components=(score,))
        encoded = json.dumps(view_to_dict(vr, 1))
        assert "Infinity" not in encoded and "NaN" not in encoded
        detail = view_to_dict(vr, 1)["components"][0]["detail"]
        assert detail["coeffs"] == [None, 0.5]
        assert detail["nested"]["vals"] == [None]

    def test_views_before_query_structured_error(self, api):
        response = api.handle({"action": "views"})
        assert response["ok"] is False
        assert response["code"] == "no_active_query"

    def test_error_responses_carry_codes(self, api):
        assert api.handle({"action": "query",
                           "where": "gross >"})["code"] == "syntax_error"
        assert api.handle({"action": "query",
                           "where": "no_such > 1"})["code"] == \
            "unknown_column"
        assert api.handle({"action": "explode"})["code"] == "unknown_action"


class TestDemoScript:
    def test_transcript_covers_three_datasets(self):
        from repro.app.demo import run_demo_script
        transcript = run_demo_script(small=True, max_views_shown=2)
        for name in ("boxoffice", "us_crime", "innovation"):
            assert name in transcript
        assert "USE CASE" in transcript
        assert "query>" in transcript
