"""Tests for ASCII rendering."""

import numpy as np
import pytest

from repro.app.render import (
    GLYPH_IN,
    GLYPH_OUT,
    ascii_histogram_pair,
    ascii_scatter,
    view_card,
)
from repro.core.pipeline import Ziggy
from repro.engine.database import Database
from repro.engine.table import Table


class TestScatter:
    def test_contains_both_glyphs_and_labels(self, rng):
        xi, yi = rng.normal(5, 1, 50), rng.normal(5, 1, 50)
        xo, yo = rng.normal(0, 1, 200), rng.normal(0, 1, 200)
        plot = ascii_scatter(xi, yi, xo, yo, x_label="pop", y_label="dens")
        assert GLYPH_IN in plot
        assert GLYPH_OUT in plot
        assert "pop" in plot and "dens" in plot

    def test_separated_clusters_in_opposite_corners(self):
        plot = ascii_scatter(
            np.array([10.0] * 5), np.array([10.0] * 5),
            np.array([0.0] * 5), np.array([0.0] * 5),
            width=20, height=10)
        lines = [l[1:] for l in plot.splitlines()[1:11]]
        # selection top-right, others bottom-left
        assert GLYPH_IN in lines[0]
        assert GLYPH_OUT in lines[-1]

    def test_nan_points_dropped(self):
        plot = ascii_scatter(np.array([1.0, np.nan]), np.array([1.0, 2.0]),
                             np.array([0.0]), np.array([0.0]))
        assert isinstance(plot, str)

    def test_empty_data(self):
        plot = ascii_scatter(np.array([]), np.array([]),
                             np.array([]), np.array([]))
        assert "no complete data" in plot

    def test_constant_axis_no_crash(self):
        plot = ascii_scatter(np.array([1.0, 1.0]), np.array([1.0, 2.0]),
                             np.array([1.0]), np.array([3.0]))
        assert GLYPH_IN in plot

    def test_axis_ranges_annotated(self, rng):
        plot = ascii_scatter(np.array([0.0, 100.0]), np.array([0.0, 50.0]),
                             np.array([50.0]), np.array([25.0]))
        assert "100" in plot
        assert "50" in plot


class TestHistogramPair:
    def test_shifted_distributions_render_disjoint_bars(self, rng):
        plot = ascii_histogram_pair(rng.normal(10, 0.5, 300),
                                    rng.normal(0, 0.5, 300),
                                    label="metric")
        lines = plot.splitlines()
        assert "metric" in lines[0]
        top_half = "\n".join(lines[1:len(lines) // 2])
        bottom_half = "\n".join(lines[len(lines) // 2:])
        assert GLYPH_OUT in top_half       # low values: outside
        assert GLYPH_IN in bottom_half     # high values: selection

    def test_empty(self):
        assert "no data" in ascii_histogram_pair(np.array([]), np.array([]))

    def test_single_value(self):
        plot = ascii_histogram_pair(np.array([1.0]), np.array([1.0]))
        assert isinstance(plot, str)


class TestViewCard:
    @pytest.fixture
    def crime_result(self, crime_small):
        db = Database()
        db.register(crime_small)
        z = Ziggy(db)
        from repro.data.crime import high_crime_predicate
        pred = high_crime_predicate(crime_small)
        result = z.characterize(pred)
        selection = db.select("us_crime", pred)
        return result, selection

    def test_two_column_view_gets_scatter(self, crime_result):
        result, selection = crime_result
        two_col = next((v for v in result.views if v.view.dimension == 2
                        and len([c for c in v.columns]) == 2), None)
        if two_col is None:
            pytest.skip("no 2-column view in this run")
        card = view_card(two_col, selection, rank=1)
        assert "View 1:" in card
        assert GLYPH_IN in card
        assert two_col.explanation in card

    def test_single_column_view_gets_histogram(self, crime_result):
        result, selection = crime_result
        one_col = next((v for v in result.views if v.view.dimension == 1),
                       None)
        if one_col is None:
            pytest.skip("no 1-column view in this run")
        card = view_card(one_col, selection)
        assert "score=" in card
        assert "|" in card

    def test_categorical_view_bars(self, boxoffice_small):
        db = Database()
        db.register(boxoffice_small)
        z = Ziggy(db)
        result = z.characterize("gross > 200000000")
        cat_view = next((v for v in result.views if "genre" in v.columns),
                        None)
        if cat_view is None:
            pytest.skip("genre view not found in this run")
        selection = db.select("boxoffice", "gross > 200000000")
        card = view_card(cat_view, selection)
        assert "%" in card
