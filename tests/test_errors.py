"""Tests for the exception hierarchy and error ergonomics."""

import pytest

from repro.errors import (
    ComponentError,
    ConfigError,
    CoreError,
    CsvFormatError,
    DataError,
    EmptySelectionError,
    EngineError,
    InsufficientDataError,
    QuerySyntaxError,
    ReproError,
    SchemaError,
    StatsError,
    UnknownColumnError,
    UnknownComponentError,
    UnknownDatasetError,
    UnknownTableError,
    _closest,
    _edit_distance,
)


class TestHierarchy:
    @pytest.mark.parametrize("exc_type", [
        EngineError, SchemaError, QuerySyntaxError, CsvFormatError,
        StatsError, CoreError, ComponentError, ConfigError, DataError,
    ])
    def test_everything_is_a_repro_error(self, exc_type):
        assert issubclass(exc_type, ReproError)

    def test_subsystem_grouping(self):
        assert issubclass(UnknownColumnError, EngineError)
        assert issubclass(UnknownTableError, EngineError)
        assert issubclass(InsufficientDataError, StatsError)
        assert issubclass(UnknownComponentError, ComponentError)
        assert issubclass(EmptySelectionError, CoreError)
        assert issubclass(UnknownDatasetError, DataError)

    def test_single_catch_at_api_boundary(self):
        with pytest.raises(ReproError):
            raise UnknownColumnError("x")


class TestErrorPayloads:
    def test_unknown_column_suggestion(self):
        err = UnknownColumnError("populaton", ("population", "density"))
        assert "population" in str(err)
        assert err.name == "populaton"

    def test_unknown_column_no_bogus_suggestion(self):
        err = UnknownColumnError("zzzz", ("population",))
        assert "did you mean" not in str(err)

    def test_query_syntax_error_caret(self):
        err = QuerySyntaxError("boom", position=3, text="a >< b")
        text = str(err)
        assert "^" in text
        assert text.splitlines()[-1].index("^") == 5  # 2-space indent + pos

    def test_empty_selection_message(self):
        err = EmptySelectionError(0, 100)
        assert "0 of 100" in str(err)

    def test_insufficient_data_fields(self):
        err = InsufficientDataError("pearson", needed=2, got=1)
        assert err.needed == 2 and err.got == 1
        assert "pearson" in str(err)

    def test_unknown_component_lists_options(self):
        err = UnknownComponentError("meen_shift", ("mean_shift",))
        assert "mean_shift" in str(err)


class TestEditDistance:
    @pytest.mark.parametrize("a,b,d", [
        ("", "", 0),
        ("a", "", 1),
        ("kitten", "sitting", 3),
        ("abc", "abc", 0),
        ("abc", "acb", 2),
    ])
    def test_known_distances(self, a, b, d):
        assert _edit_distance(a, b) == d

    def test_cutoff_early_exit(self):
        assert _edit_distance("aaaaaaaa", "bbbbbbbb", cutoff=3) == 3

    def test_closest_case_insensitive(self):
        assert _closest("Population", ("population", "rent")) == "population"

    def test_closest_none_when_far(self):
        assert _closest("xy", ("population", "rent")) is None
