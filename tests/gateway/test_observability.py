"""The gateway's health surface: saturation and fault counters on
``/healthz`` and ``GET /v2/state``, identically on both front-ends."""

import json
import threading
import time

from repro.service.client import ZiggyClient
from repro.service.protocol import job_event_from_stage

from helpers.http_probe import http_get


class TestHealthz:
    def test_jobs_section_reports_open_and_journal_errors(
            self, box_service, serve_factory):
        base = serve_factory(box_service)
        health = json.loads(http_get(f"{base}/healthz")[2])
        assert health["jobs"] == {"open": 0, "journal_errors": 0}
        gate = threading.Event()
        box_service.jobs.submit(lambda progress: gate.wait(timeout=30))
        try:
            health = json.loads(http_get(f"{base}/healthz")[2])
            assert health["jobs"]["open"] == 1
        finally:
            gate.set()

    def test_gateway_section_tracks_open_streams(self, box_service,
                                                 serve_factory, frontend):
        base = serve_factory(box_service)
        health = json.loads(http_get(f"{base}/healthz")[2])
        gateway = health["gateway"]
        assert gateway["frontend"] == frontend
        assert gateway["open_streams"] == 0
        assert gateway["admission"] == {"enabled": False}
        assert gateway["max_pending_jobs"] is None

        hold = threading.Event()

        def work(progress):
            progress("note", {"i": 0})
            hold.wait(timeout=30)
            return "ok"

        job_id = box_service.jobs.submit(
            work, event_mapper=job_event_from_stage)
        client = ZiggyClient(base, timeout=30)
        stream = client.stream_events(job_id)
        assert next(stream).kind == "note"  # the stream is live
        try:
            deadline = time.monotonic() + 10
            while True:
                gateway = json.loads(
                    http_get(f"{base}/healthz")[2])["gateway"]
                if gateway["open_streams"] == 1:
                    break
                assert time.monotonic() < deadline, gateway
                time.sleep(0.05)
            assert gateway["peak_streams"] >= 1
        finally:
            hold.set()
            stream.close()


class TestStateReport:
    def test_state_carries_gateway_section(self, box_service,
                                           serve_factory, frontend):
        base = serve_factory(box_service)
        # Raw payload: the section rides on the state report.
        _, _, body = http_get(f"{base}/v2/state")
        payload = json.loads(body)
        assert payload["gateway"]["frontend"] == frontend
        assert "open_streams" in payload["gateway"]
        # And the typed client parses it.
        report = ZiggyClient(base, timeout=30).state()
        assert report.gateway is not None
        assert report.gateway["frontend"] == frontend
