"""Fixtures for the gateway suite: both front-ends behind one surface.

Every test in this package runs twice — once against the threaded
baseline, once against the asyncio gateway — because the whole point of
the shared route layer is that the two are interchangeable.
"""

from __future__ import annotations

import threading

import pytest

from repro.gateway import GatewayPolicy, make_frontend
from repro.runtime import ZiggyRuntime
from repro.service import ZiggyService

FRONTENDS = ("threaded", "async")


@pytest.fixture(params=FRONTENDS)
def frontend(request) -> str:
    return request.param


@pytest.fixture
def serve_factory(frontend):
    """Start front-ends over arbitrary services/policies; all cleaned up.

    Returns ``start(service, policy=None) -> base_url``.  The factory
    owns teardown: servers are closed (which shuts their service down)
    and serve threads joined, whatever the test outcome.
    """
    started: list[tuple] = []

    def start(service: ZiggyService,
              policy: GatewayPolicy | None = None) -> str:
        server = make_frontend(service, frontend=frontend, policy=policy)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        started.append((server, thread))
        host, port = server.server_address[:2]
        return f"http://{host}:{port}"

    yield start
    for server, thread in started:
        server.close(shutdown_service=True, wait=False)
        thread.join(timeout=15)
        assert not thread.is_alive(), "serve thread failed to stop"


@pytest.fixture
def box_service(boxoffice_small) -> ZiggyService:
    """A fresh two-worker service over the small box-office table.

    No teardown here: tests hand it to ``serve_factory``, whose server
    close shuts the service down.
    """
    service = ZiggyService(max_workers=2, runtime=ZiggyRuntime())
    service.register_table(boxoffice_small)
    return service
