"""Unit tests for the token-bucket admission layer (no HTTP involved)."""

import pytest

from repro.gateway.admission import (
    AdmissionController,
    TokenBucket,
    _BucketMap,
)


class TestTokenBucket:
    def test_burst_then_rejection(self):
        bucket = TokenBucket(rate=1.0, burst=3.0)
        now = 100.0
        assert bucket.try_acquire(now) == 0.0
        assert bucket.try_acquire(now) == 0.0
        assert bucket.try_acquire(now) == 0.0
        wait = bucket.try_acquire(now)
        assert wait == pytest.approx(1.0)

    def test_refill_rate(self):
        bucket = TokenBucket(rate=2.0, burst=1.0)
        assert bucket.try_acquire(50.0) == 0.0
        # Empty; half a second accrues one token at 2/s.
        assert bucket.try_acquire(50.1) == pytest.approx(0.4, abs=1e-6)
        assert bucket.try_acquire(50.5) == 0.0

    def test_refill_never_exceeds_burst(self):
        bucket = TokenBucket(rate=10.0, burst=2.0)
        assert bucket.peek(0.0) == 2.0
        assert bucket.peek(1000.0) == 2.0  # a long idle doesn't bank up

    def test_rejection_leaves_bucket_untouched(self):
        bucket = TokenBucket(rate=1.0, burst=1.0)
        assert bucket.try_acquire(10.0) == 0.0
        before = bucket.peek(10.0)
        bucket.try_acquire(10.0)  # rejected
        assert bucket.peek(10.0) == before

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0.0, burst=1.0)
        with pytest.raises(ValueError):
            TokenBucket(rate=1.0, burst=0.5)


class TestBucketMap:
    def test_lru_bound(self):
        buckets = _BucketMap(rate=1.0, burst=1.0, max_keys=3)
        first = buckets.bucket("a")
        for key in ("b", "c", "d"):  # "a" is the LRU; "d" evicts it
            buckets.bucket(key)
        assert len(buckets) == 3
        assert buckets.bucket("a") is not first  # resurrected fresh

    def test_touch_refreshes_recency(self):
        buckets = _BucketMap(rate=1.0, burst=1.0, max_keys=2)
        a = buckets.bucket("a")
        buckets.bucket("b")
        buckets.bucket("a")  # refresh: "b" is now the LRU
        buckets.bucket("c")
        assert buckets.bucket("a") is a


class TestAdmissionController:
    def test_default_admits_everything(self):
        controller = AdmissionController()
        assert not controller.enabled
        for _ in range(1000):
            assert controller.admit("anyone", "anything")

    def test_per_client_isolation(self):
        controller = AdmissionController(client_rate=0.001, client_burst=1)
        assert controller.admit("alice", None)
        rejected = controller.admit("alice", None)
        assert not rejected
        assert rejected.scope == "client"
        assert rejected.retry_after > 0
        # A different client has its own bucket.
        assert controller.admit("bob", None)

    def test_per_table_scope(self):
        controller = AdmissionController(table_rate=0.001, table_burst=1)
        assert controller.admit("alice", "movies")
        rejected = controller.admit("bob", "movies")  # other client, same table
        assert not rejected
        assert rejected.scope == "table"
        assert controller.admit("alice", "crimes")  # other table is fine

    def test_table_rejection_refunds_client_token(self):
        controller = AdmissionController(client_rate=0.001, client_burst=2,
                                         table_rate=0.001, table_burst=1)
        assert controller.admit("alice", "movies")
        rejected = controller.admit("alice", "movies")
        assert rejected.scope == "table"
        # The table said no, so alice's second token was refunded: a
        # request against another table must still be admitted.
        assert controller.admit("alice", "crimes")

    def test_describe_reports_configuration(self):
        controller = AdmissionController(client_rate=5.0, table_rate=2.0,
                                         table_burst=7.0)
        controller.admit("alice", "movies")
        info = controller.describe()
        assert info["enabled"] is True
        assert info["client"]["rate"] == 5.0
        assert info["client"]["keys"] == 1
        assert info["table"] == {"rate": 2.0, "burst": 7.0, "keys": 1}
