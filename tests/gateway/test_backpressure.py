"""HTTP-level backpressure and admission tests, on both front-ends:
bounded job queue -> 429 + Retry-After, per-client and per-table
rejection, and the client's transparent throttle retry."""

import json
import threading
import time

import pytest

from repro.gateway import GatewayPolicy
from repro.service.client import RemoteError, ZiggyClient

from helpers.http_probe import http_get, http_post


def _throttle_fields(headers: dict, body: bytes) -> tuple[int, float, str]:
    """(Retry-After header, detail.retry_after, detail.scope) of a 429."""
    payload = json.loads(body)
    assert payload["ok"] is False
    assert payload["error"]["code"] == "throttled"
    detail = payload["error"]["detail"]
    header = {k.lower(): v for k, v in headers.items()}["retry-after"]
    return int(header), float(detail["retry_after"]), detail["scope"]


class TestBoundedQueue:
    def test_full_queue_answers_429_with_retry_after(self, box_service,
                                                     serve_factory):
        base = serve_factory(box_service,
                             GatewayPolicy(max_pending_jobs=0,
                                           queue_retry_after=2.5))
        status, headers, body = http_post(
            f"{base}/v2/jobs", {"where": "gross > 200000000"})
        assert status == 429
        header, exact, scope = _throttle_fields(headers, body)
        assert scope == "queue"
        assert exact == 2.5
        assert header == 3  # ceil(2.5); the header is integer seconds
        health = json.loads(http_get(f"{base}/healthz")[2])
        assert health["gateway"]["queue_rejected"] == 1

    def test_queue_frees_as_jobs_finish(self, box_service, serve_factory):
        base = serve_factory(box_service,
                             GatewayPolicy(max_pending_jobs=1))
        gate = threading.Event()
        box_service.jobs.submit(lambda progress: gate.wait(timeout=30))
        try:
            status, _, _ = http_post(
                f"{base}/v2/jobs", {"where": "gross > 200000000"})
            assert status == 429  # the gated job occupies the only slot
        finally:
            gate.set()
        deadline = time.monotonic() + 30
        while box_service.jobs.open_jobs() > 0:
            assert time.monotonic() < deadline, "gated job never finished"
            time.sleep(0.02)
        status, _, body = http_post(
            f"{base}/v2/jobs", {"where": "gross > 200000000"})
        assert status == 200, body

    def test_sync_characterize_not_queue_bounded(self, box_service,
                                                 serve_factory):
        # The queue bound governs *submissions*; synchronous requests
        # don't occupy the job queue and must pass.
        base = serve_factory(box_service,
                             GatewayPolicy(max_pending_jobs=0))
        status, _, body = http_post(
            f"{base}/v2/characterize", {"where": "gross > 200000000"})
        assert status == 200, body


class TestAdmissionOverHttp:
    def test_per_client_rejection(self, box_service, serve_factory):
        base = serve_factory(box_service,
                             GatewayPolicy(client_rate=0.001,
                                           client_burst=1))
        payload = {"where": "gross > 200000000", "client_id": "alice"}
        assert http_post(f"{base}/v2/characterize", payload)[0] == 200
        status, headers, body = http_post(f"{base}/v2/characterize",
                                          payload)
        assert status == 429
        header, exact, scope = _throttle_fields(headers, body)
        assert scope == "client"
        assert exact > 0 and header >= 1
        # Another client is not affected by alice's exhausted bucket.
        status, _, _ = http_post(
            f"{base}/v2/characterize",
            {"where": "gross > 200000000", "client_id": "bob"})
        assert status == 200
        health = json.loads(http_get(f"{base}/healthz")[2])
        assert health["gateway"]["throttled"]["client"] == 1

    def test_per_table_rejection(self, box_service, serve_factory):
        base = serve_factory(box_service,
                             GatewayPolicy(table_rate=0.001,
                                           table_burst=1))
        first = {"where": "gross > 200000000", "table": "boxoffice",
                 "client_id": "alice"}
        assert http_post(f"{base}/v2/characterize", first)[0] == 200
        # A *different* client hits the same table's bucket.
        status, headers, body = http_post(
            f"{base}/v2/characterize",
            {"where": "gross > 200000000", "table": "boxoffice",
             "client_id": "bob"})
        assert status == 429
        _, _, scope = _throttle_fields(headers, body)
        assert scope == "table"
        health = json.loads(http_get(f"{base}/healthz")[2])
        assert health["gateway"]["throttled"]["table"] == 1

    def test_submission_inner_request_is_governed(self, box_service,
                                                  serve_factory):
        # Admission reads client_id/table from the submit envelope's
        # inner request, not the envelope itself.
        base = serve_factory(box_service,
                             GatewayPolicy(client_rate=0.001,
                                           client_burst=1))
        payload = {"where": "gross > 200000000", "client_id": "carol"}
        assert http_post(f"{base}/v2/jobs", payload)[0] == 200
        assert http_post(f"{base}/v2/jobs", payload)[0] == 429


class TestClientRetry:
    def test_client_honours_retry_after_and_succeeds(self, box_service,
                                                     serve_factory):
        # rate 5/s, burst 1: the second submit is throttled for ~0.2s;
        # the client sleeps that out and retries transparently.
        base = serve_factory(box_service,
                             GatewayPolicy(client_rate=5.0,
                                           client_burst=1))
        client = ZiggyClient(base, timeout=30, throttle_retries=3)
        first = client.submit("gross > 200000000")
        second = client.submit("gross > 150000000")
        assert first.job_id != second.job_id
        for job_id in (first.job_id, second.job_id):
            assert client.wait(job_id, timeout=60).status == "done"

    def test_retry_disabled_surfaces_429(self, box_service, serve_factory):
        base = serve_factory(box_service,
                             GatewayPolicy(client_rate=0.001,
                                           client_burst=1))
        client = ZiggyClient(base, timeout=30, throttle_retries=0)
        client.submit("gross > 200000000")
        with pytest.raises(RemoteError) as err:
            client.submit("gross > 150000000")
        assert err.value.status == 429
        assert err.value.code == "throttled"
        assert err.value.retry_after is not None
        assert err.value.retry_after > 0
