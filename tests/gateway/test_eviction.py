"""Slow-consumer eviction: a stalled SSE subscriber is dropped without
delaying healthy subscribers of the same job — on both front-ends."""

import json
import socket
import threading
import time
import urllib.parse

import pytest

from repro.gateway import GatewayPolicy
from repro.service.client import ZiggyClient
from repro.service.protocol import job_event_from_stage

from helpers.http_probe import http_get

#: How many synthetic events the gated job records, and their size —
#: together far beyond the tiny socket buffers the test configures, so
#: a non-reading subscriber reliably blocks the server's writes.
N_EVENTS = 300
BLOB = "x" * 512


def _submit_gated_noisy_job(service) -> tuple[str, threading.Event]:
    """A job that logs ~150 KiB of events, then parks on a gate."""
    gate = threading.Event()

    def work(progress):
        for i in range(N_EVENTS):
            progress("note", {"i": i, "blob": BLOB})
        gate.wait(timeout=60)
        return "ok"

    job_id = service.jobs.submit(work, event_mapper=job_event_from_stage)
    deadline = time.monotonic() + 30
    while True:
        events, _ = service.job_events(job_id, after_seq=0, timeout=0.2)
        if len(events) >= N_EVENTS:
            return job_id, gate
        assert time.monotonic() < deadline, \
            f"only {len(events)} events recorded"


def _stalled_subscriber(base: str, job_id: str) -> socket.socket:
    """Open the SSE stream on a raw socket and never read from it."""
    parsed = urllib.parse.urlparse(base)
    sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    # A tiny receive window, set before connect so the handshake
    # advertises it: the server's backlog fills in KBs, not MBs.
    sock.setsockopt(socket.SOL_SOCKET, socket.SO_RCVBUF, 4096)
    sock.connect((parsed.hostname, parsed.port))
    sock.sendall(f"GET /v2/jobs/{job_id}/events HTTP/1.1\r\n"
                 f"Host: {parsed.netloc}\r\n"
                 f"Accept: text/event-stream\r\n\r\n".encode())
    return sock


def _wait_for_eviction(base: str, timeout: float = 20.0) -> dict:
    deadline = time.monotonic() + timeout
    while True:
        health = json.loads(http_get(f"{base}/healthz")[2])
        gateway = health["gateway"]
        if gateway["evicted"] >= 1:
            return gateway
        assert time.monotonic() < deadline, \
            f"no eviction recorded: {gateway}"
        time.sleep(0.1)


@pytest.fixture
def eviction_policy() -> GatewayPolicy:
    return GatewayPolicy(sse_write_timeout=1.0, sse_buffer_bytes=8192,
                         keepalive_seconds=0.2)


class TestSlowConsumerEviction:
    def test_stalled_reader_is_evicted_healthy_one_is_not(
            self, box_service, serve_factory, eviction_policy):
        base = serve_factory(box_service, eviction_policy)
        job_id, gate = _submit_gated_noisy_job(box_service)
        stalled = _stalled_subscriber(base, job_id)
        try:
            time.sleep(0.3)  # let the server start (and block) the replay

            # A healthy subscriber opened *while* the stalled one sits
            # on a full socket still gets the entire stream promptly.
            client = ZiggyClient(base, timeout=30)
            notes = 0
            done = None
            for event in client.stream_events(job_id):
                if event.kind == "note":
                    notes += 1
                    if notes == N_EVENTS:
                        gate.set()  # all replayed; let the job finish
                elif event.kind == "done":
                    done = event.data
            assert notes == N_EVENTS
            assert done == {"status": "done"}

            gateway = _wait_for_eviction(base)
            assert gateway["evicted"] >= 1

            # The server tore the stalled connection down: draining it
            # ends in EOF or a reset, never a hang.
            stalled.settimeout(10.0)
            try:
                while stalled.recv(65536):
                    pass
            except ConnectionError:
                pass
        finally:
            gate.set()
            stalled.close()

    def test_stream_counts_return_to_zero(self, box_service, serve_factory,
                                          eviction_policy):
        base = serve_factory(box_service, eviction_policy)
        job_id, gate = _submit_gated_noisy_job(box_service)
        gate.set()
        client = ZiggyClient(base, timeout=30)
        events = list(client.stream_events(job_id))
        assert events[-1].kind == "done"
        deadline = time.monotonic() + 10
        while True:
            gateway = json.loads(http_get(f"{base}/healthz")[2])["gateway"]
            if gateway["open_streams"] == 0:
                break
            assert time.monotonic() < deadline, gateway
            time.sleep(0.05)
        assert gateway["streams_total"] >= 1
        assert gateway["evicted"] == 0
