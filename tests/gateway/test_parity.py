"""Front-end parity: the threaded and async servers must answer the
same payloads for an identical job lifecycle — submit, stream, status,
cancel, errors, throttling — byte-for-byte once wall-clock timings are
stripped."""

import json
import threading

import pytest

from repro.gateway import GatewayPolicy, make_frontend
from repro.runtime import ZiggyRuntime
from repro.service import ZiggyService

from helpers.http_probe import http_get, http_post

#: Keys whose values are wall-clock measurements (never identical
#: between two runs) — stripped recursively before comparison.
VOLATILE = {"timings_ms", "uptime_seconds"}


def _stable(value):
    if isinstance(value, dict):
        return {k: _stable(v) for k, v in sorted(value.items())
                if k not in VOLATILE}
    if isinstance(value, list):
        return [_stable(v) for v in value]
    return value


def _sse_blocks(raw: bytes) -> list[tuple[str, str, dict]]:
    """Parse an SSE byte stream into (id, event, stable-data) blocks,
    dropping comment lines (keepalives)."""
    blocks = []
    seq, kind, data = None, None, []
    for line in raw.decode("utf-8").split("\n"):
        if line.startswith(":"):
            continue
        if line.startswith("id:"):
            seq = line[3:].strip()
        elif line.startswith("event:"):
            kind = line[6:].strip()
        elif line.startswith("data:"):
            data.append(line[5:].strip())
        elif line == "" and kind is not None:
            blocks.append((seq, kind, _stable(json.loads("\n".join(data)))))
            seq, kind, data = None, None, []
    return blocks


@pytest.fixture
def both_frontends(boxoffice_small):
    """Two fresh, identically configured servers — one per front-end.

    Fresh services mean identical job-id sequences (both start at
    job-000001), so even id-bearing payloads compare equal.
    """
    started = []

    def boot(frontend):
        service = ZiggyService(max_workers=2, runtime=ZiggyRuntime())
        service.register_table(boxoffice_small)
        server = make_frontend(
            service, frontend=frontend,
            policy=GatewayPolicy(max_pending_jobs=50))
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        started.append((server, thread))
        host, port = server.server_address[:2]
        return f"http://{host}:{port}"

    yield boot("threaded"), boot("async")
    for server, thread in started:
        server.close(shutdown_service=True, wait=False)
        thread.join(timeout=15)


def _lifecycle(base: str) -> dict:
    """One full lifecycle against a server; returns comparable artifacts."""
    out = {}
    status, _, body = http_post(f"{base}/v2/characterize",
                                {"where": "gross > 200000000"})
    out["characterize"] = (status, _stable(json.loads(body)))

    status, _, body = http_post(f"{base}/v2/jobs",
                                {"where": "gross > 150000000"})
    out["submit"] = (status, _stable(json.loads(body)))
    job_id = json.loads(body)["job_id"]

    status, _, body = http_get(f"{base}/v2/jobs/{job_id}/events",
                               timeout=120)
    out["stream_status"] = status
    out["stream"] = _sse_blocks(body)

    # Resume from the midpoint: the replay must pick up after the
    # cursor, not duplicate or skip.
    midpoint = out["stream"][len(out["stream"]) // 2][0]
    _, _, body = http_get(f"{base}/v2/jobs/{job_id}/events",
                          headers={"Last-Event-ID": midpoint},
                          timeout=120)
    out["resumed"] = _sse_blocks(body)

    status, _, body = http_get(f"{base}/v2/jobs/{job_id}")
    out["status"] = (status, _stable(json.loads(body)))

    status, _, body = http_post(f"{base}/v2/jobs/{job_id}/cancel", {})
    out["cancel_done"] = (status, _stable(json.loads(body)))

    status, _, body = http_get(f"{base}/v2/jobs/does-not-exist")
    out["missing_job"] = (status, _stable(json.loads(body)))

    status, _, body = http_get(f"{base}/v2/jobs/does-not-exist/events")
    out["missing_stream"] = (status, _stable(json.loads(body)))

    status, _, body = http_post(f"{base}/nowhere", {})
    out["missing_route"] = (status, _stable(json.loads(body)))

    status, _, body = http_get(f"{base}/v2/tables")
    out["tables"] = (status, _stable(json.loads(body)))
    return out


class TestFrontendParity:
    def test_full_lifecycle_is_identical(self, both_frontends):
        threaded_base, async_base = both_frontends
        threaded = _lifecycle(threaded_base)
        asynced = _lifecycle(async_base)
        assert sorted(threaded) == sorted(asynced)
        for key in threaded:
            assert threaded[key] == asynced[key], \
                f"front-ends disagree on {key!r}"
        # Sanity on the artifacts themselves, not just their equality:
        assert threaded["stream"][-1][1] == "done"
        assert len(threaded["resumed"]) < len(threaded["stream"])
        assert threaded["missing_job"][0] == 404
        assert threaded["missing_stream"][0] == 404

    def test_throttled_payloads_are_identical(self, boxoffice_small):
        artifacts = {}
        for frontend in ("threaded", "async"):
            service = ZiggyService(max_workers=2, runtime=ZiggyRuntime())
            service.register_table(boxoffice_small)
            server = make_frontend(
                service, frontend=frontend,
                policy=GatewayPolicy(max_pending_jobs=0,
                                     queue_retry_after=1.0))
            thread = threading.Thread(target=server.serve_forever,
                                      daemon=True)
            thread.start()
            host, port = server.server_address[:2]
            try:
                status, headers, body = http_post(
                    f"http://{host}:{port}/v2/jobs",
                    {"where": "gross > 200000000"})
                retry = {k.lower(): v for k, v in headers.items()}
                artifacts[frontend] = (status, retry["retry-after"], body)
            finally:
                server.close(shutdown_service=True, wait=False)
                thread.join(timeout=15)
        assert artifacts["threaded"] == artifacts["async"]
        assert artifacts["threaded"][0] == 429
