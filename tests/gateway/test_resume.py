"""Last-Event-ID resume: the server replays strictly after the cursor,
and the client reconnects a cut stream without duplicating or losing
events."""

import threading
import time

import pytest

from repro.service.client import TransportError, ZiggyClient
from repro.service.protocol import job_event_from_stage


def _submit_gated_job(service, n_events: int = 10):
    gate = threading.Event()

    def work(progress):
        for i in range(n_events):
            progress("note", {"i": i})
        gate.wait(timeout=60)
        return "ok"

    job_id = service.jobs.submit(work, event_mapper=job_event_from_stage)
    deadline = time.monotonic() + 30
    while True:
        events, _ = service.job_events(job_id, after_seq=0, timeout=0.2)
        if len(events) >= n_events:
            return job_id, gate
        assert time.monotonic() < deadline


class TestServerSideResume:
    def test_after_cursor_skips_replayed_prefix(self, box_service,
                                                serve_factory):
        base = serve_factory(box_service)
        job_id, gate = _submit_gated_job(box_service)
        gate.set()
        client = ZiggyClient(base, timeout=30)
        full = list(client.stream_events(job_id))
        assert [e.data["i"] for e in full if e.kind == "note"] == \
            list(range(10))
        cursor = full[4].seq
        resumed = list(client.stream_events(job_id, after=cursor))
        assert [e.seq for e in resumed] == \
            [e.seq for e in full if e.seq > cursor]

    def test_garbled_cursor_restarts_from_scratch(self, box_service,
                                                  serve_factory):
        from helpers.http_probe import http_get
        base = serve_factory(box_service)
        job_id, gate = _submit_gated_job(box_service)
        gate.set()
        box_service.wait(job_id, timeout=30)
        _, _, body = http_get(f"{base}/v2/jobs/{job_id}/events",
                              headers={"Last-Event-ID": "not-a-number"},
                              timeout=60)
        assert body.count(b"event: note") == 10  # full replay


class TestClientReconnect:
    def test_cut_stream_resumes_without_dup_or_loss(self, box_service,
                                                    serve_factory,
                                                    monkeypatch):
        base = serve_factory(box_service)
        job_id, gate = _submit_gated_job(box_service)
        gate.set()
        box_service.wait(job_id, timeout=30)
        client = ZiggyClient(base, timeout=30)
        cursors = []
        real = client._stream_once

        def flaky(job_id, after, timeout):
            cursors.append(after)
            stream = real(job_id, after, timeout)
            if len(cursors) == 1:
                # First connection dies after 4 events, mid-job.
                def truncated():
                    for i, event in enumerate(stream):
                        if i == 4:
                            raise TransportError("connection reset")
                        yield event
                return truncated()
            return stream

        monkeypatch.setattr(client, "_stream_once", flaky)
        events = list(client.stream_events(job_id))
        seqs = [e.seq for e in events]
        assert sorted(set(seqs)) == seqs, f"duplicated events: {seqs}"
        assert [e.data["i"] for e in events if e.kind == "note"] == \
            list(range(10)), "lost events across the reconnect"
        assert events[-1].kind == "done"
        # The reconnect carried the last-seen cursor, not zero.
        assert cursors == [0, 4]

    def test_reconnect_budget_exhausted_raises(self, box_service,
                                               serve_factory, monkeypatch):
        base = serve_factory(box_service)
        job_id, gate = _submit_gated_job(box_service)
        gate.set()
        box_service.wait(job_id, timeout=30)
        client = ZiggyClient(base, timeout=30)

        def always_cut(job_id, after, timeout):
            raise TransportError("connection refused")
            yield  # pragma: no cover - makes this a generator

        monkeypatch.setattr(client, "_stream_once", always_cut)
        with pytest.raises(TransportError):
            list(client.stream_events(job_id, reconnects=2))
