"""The US Crime dataset generator (stand-in for UCI Communities & Crime).

Section 4.2: "The US Crime database contains 128 crime and socio-economic
indicators for 1994 US Cities. ... We hope to surprise our visitors by
showing that seemingly superfluous variables can have a strong predictive
power - such as the number of boarded windows in a given neighborhood."

The generator plants exactly the phenomena Figure 1 displays, driven by
three latent community factors:

* ``U`` (urbanization): high-crime cities have **high population and
  density** (view 1);
* ``D`` (deprivation): they have **low education and salary** (view 2)
  and **low rent and home-ownership** (view 3), plus the "boarded
  windows" proxy;
* ``Y`` (youth): they are **younger with more mono-parental families**
  (view 4).

``violent_crime_rate`` combines the three factors, so selecting the
top-crime communities shifts all four views at once — and ~100 filler
indicator columns (block-correlated weather/geography/administration
families plus pure noise) provide the haystack.
"""

from __future__ import annotations

import numpy as np

from repro.data.synthetic import (
    correlated_block,
    inject_missing,
    lognormal_column,
    proportion_column,
)
from repro.engine.column import CategoricalColumn, NumericColumn
from repro.engine.table import Table

#: The four phenomena of Figure 1, as (column names, expected directions
#: inside a high-crime selection).  The figure-1 benchmark checks that
#: each pair lands in some reported view with the right direction.
CRIME_PHENOMENA = {
    "density": (("population", "pop_density"), ("higher", "higher")),
    "education": (("pct_college_educated", "avg_salary"), ("lower", "lower")),
    "housing": (("avg_rent", "pct_home_owners"), ("lower", "lower")),
    "family": (("pct_under_25", "pct_monoparental_families"),
               ("higher", "higher")),
}

_REGIONS = ("Northeast", "Midwest", "South", "West")

_FILLER_FAMILIES = (
    ("weather", 12), ("geo", 12), ("transit", 10), ("admin", 10),
    ("retail", 10), ("health", 10), ("school_infra", 9), ("utility", 9),
    ("culture", 8), ("parks", 8),
)


def make_crime(n_rows: int = 1994, seed: int = 13,
               missing: bool = True) -> Table:
    """Generate the synthetic US Crime table (``n_rows`` x 128).

    Args:
        n_rows: number of communities (paper: 1994).
        seed: RNG seed; generation is fully deterministic.
        missing: inject realistic missing values into a few indicator
            families (UCI Communities & Crime is famously gappy).
    """
    rng = np.random.default_rng(seed)
    n = n_rows

    # Latent community factors.
    urban = rng.normal(size=n)
    deprivation = 0.3 * urban + rng.normal(size=n) * 0.95
    youth = 0.2 * deprivation + rng.normal(size=n) * 0.97

    cols: dict[str, np.ndarray] = {}

    # -- Figure 1, view 1: size & density ------------------------------------
    cols["population"] = lognormal_column(rng, n, base=1.1 * urban,
                                          scale=5e4, sigma=0.45)
    cols["pop_density"] = lognormal_column(rng, n, base=1.4 * urban,
                                           scale=2e3, sigma=0.5)
    cols["n_households"] = cols["population"] / (
        2.4 + 0.2 * rng.normal(size=n))

    # -- Figure 1, view 2: education & income ---------------------------------
    edu_base = -0.9 * deprivation + 0.25 * urban
    cols["pct_college_educated"] = proportion_column(
        rng, n, base=edu_base, center=0.28, slope=0.18, noise=0.04)
    cols["avg_salary"] = lognormal_column(
        rng, n, base=0.35 * edu_base + 0.15 * urban, scale=4.6e4, sigma=0.18)
    cols["pct_unemployed"] = proportion_column(
        rng, n, base=0.8 * deprivation, center=0.07, slope=0.2, noise=0.05)

    # -- Figure 1, view 3: housing ---------------------------------------------
    housing_base = -0.85 * deprivation + 0.1 * urban
    cols["avg_rent"] = lognormal_column(rng, n, base=0.55 * housing_base
                                        + 0.1 * urban, scale=900.0, sigma=0.12)
    cols["pct_home_owners"] = proportion_column(
        rng, n, base=housing_base - 0.2 * urban, center=0.62, slope=0.15,
        noise=0.04)
    cols["median_home_value"] = lognormal_column(
        rng, n, base=0.5 * housing_base + 0.3 * urban, scale=1.6e5, sigma=0.3)

    # -- Figure 1, view 4: age & family structure --------------------------------
    cols["pct_under_25"] = proportion_column(
        rng, n, base=0.85 * youth, center=0.32, slope=0.12, noise=0.04)
    cols["pct_monoparental_families"] = proportion_column(
        rng, n, base=0.7 * youth + 0.45 * deprivation, center=0.18,
        slope=0.14, noise=0.04)
    cols["avg_household_age"] = 48.0 - 6.0 * youth + rng.normal(
        scale=3.0, size=n)

    # -- The "seemingly superfluous" proxy -----------------------------------------
    cols["pct_boarded_windows"] = proportion_column(
        rng, n, base=0.9 * deprivation, center=0.04, slope=0.22, noise=0.05)
    cols["n_vacant_buildings"] = lognormal_column(
        rng, n, base=0.8 * deprivation + 0.3 * urban, scale=120.0, sigma=0.5)

    # -- The driving variable and companions ------------------------------------------
    crime_signal = (0.8 * deprivation + 0.55 * urban + 0.5 * youth
                    + 0.6 * rng.normal(size=n))
    cols["violent_crime_rate"] = proportion_column(
        rng, n, base=crime_signal, center=0.06, slope=0.2, noise=0.02)
    cols["property_crime_rate"] = proportion_column(
        rng, n, base=0.8 * crime_signal, center=0.12, slope=0.18, noise=0.04)
    cols["n_murders"] = np.floor(lognormal_column(
        rng, n, base=0.9 * crime_signal + 0.6 * urban, scale=6.0, sigma=0.7))
    cols["n_police_officers"] = np.floor(lognormal_column(
        rng, n, base=0.9 * urban + 0.2 * crime_signal, scale=150.0, sigma=0.5))

    # -- Filler indicator families (the haystack) ----------------------------------------
    for family, width in _FILLER_FAMILIES:
        block = correlated_block(rng, n, width, loading=0.75, noise=0.8)
        for j in range(width):
            cols[f"{family}_indicator_{j:02d}"] = block[:, j]

    # -- Pure-noise singletons to round out 128 ---------------------------------------------
    filler_so_far = sum(w for _, w in _FILLER_FAMILIES)
    n_named = len(cols) - filler_so_far
    remaining = 128 - n_named - filler_so_far - 2  # 2 categoricals below
    for j in range(max(remaining, 0)):
        cols[f"misc_indicator_{j:02d}"] = rng.normal(size=n)

    if missing:
        # Informative gaps in two families plus uniform gaps elsewhere.
        cols["pct_boarded_windows"] = inject_missing(
            rng, cols["pct_boarded_windows"], 0.06, driver=-deprivation)
        for name in ("health_indicator_00", "health_indicator_01",
                     "utility_indicator_00"):
            cols[name] = inject_missing(rng, cols[name], 0.05)

    table_cols = [NumericColumn(name, values) for name, values in cols.items()]
    region_codes = rng.integers(0, len(_REGIONS), size=n)
    table_cols.append(CategoricalColumn(
        "region", [_REGIONS[k] for k in region_codes]))
    sizes = np.digitize(cols["population"],
                        np.quantile(cols["population"], [0.5, 0.85, 0.97]))
    size_labels = ("town", "small_city", "city", "metropolis")
    table_cols.append(CategoricalColumn(
        "community_type", [size_labels[k] for k in sizes]))

    return Table(table_cols, name="us_crime")


def high_crime_predicate(table: Table, quantile: float = 0.9) -> str:
    """The running example's seed query: top-decile violent crime."""
    values = table.column("violent_crime_rate").numeric_values()
    threshold = float(np.nanquantile(values, quantile))
    return f"violent_crime_rate > {threshold:.6f}"
