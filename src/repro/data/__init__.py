"""Dataset substrate.

The demo uses three real datasets (Section 4.2): Box Office (900 x 12),
US Crime (1994 communities x 128 indicators, UCI "Communities and
Crime") and Countries & Innovation (6,823 x 519, OECD).  With no network
access we cannot download them, so this package provides *faithful
synthetic generators*: same shapes, same column families, and — crucially
— the same planted phenomena the paper narrates (Fig. 1's four views,
the "boarded windows" proxy variable, block-correlated indicator
families).  Real CSV files load through :func:`repro.engine.read_csv`
and run through the identical pipeline.

:mod:`repro.data.planted` generates ground-truth-labelled data for the
accuracy experiments: known characteristic views are planted into noise
so recovery can be measured.
"""

from repro.data.synthetic import (
    correlated_block,
    gaussian_mixture_column,
    lognormal_column,
    proportion_column,
)
from repro.data.boxoffice import make_boxoffice
from repro.data.crime import make_crime, CRIME_PHENOMENA
from repro.data.innovation import make_innovation
from repro.data.planted import PlantedView, PlantedDataset, make_planted
from repro.data.registry import load_dataset, dataset_names

__all__ = [
    "correlated_block",
    "gaussian_mixture_column",
    "lognormal_column",
    "proportion_column",
    "make_boxoffice",
    "make_crime",
    "CRIME_PHENOMENA",
    "make_innovation",
    "PlantedView",
    "PlantedDataset",
    "make_planted",
    "load_dataset",
    "dataset_names",
]
