"""The Countries & Innovation dataset generator (OECD-like, 6823 x 519).

Section 4.2: "The Countries and Innovation dataset describes innovation
and patents for different regions of the world. ... It contains 6,823
rows and 519 columns.  We will show that Ziggy can highlight complex
phenomena, in effect generating hypotheses for future exploration."

The generator models a regions-by-years panel: ~40 latent themes
(R&D intensity, patenting, tertiary education, broadband, GDP, ...) each
drive a block of ~12 indicator columns, themes are loosely coupled
through a per-region development level, and a sprinkle of missing values
mimics OECD coverage gaps.  Generation is vectorized (one loadings
matrix product), so building the full 519-column table takes well under
a second.
"""

from __future__ import annotations

import numpy as np

from repro.data.synthetic import inject_missing
from repro.engine.column import CategoricalColumn, NumericColumn
from repro.engine.table import Table

_THEMES = (
    "rnd_spending", "patents", "tertiary_education", "researchers",
    "broadband", "gdp", "exports_hightech", "venture_capital",
    "publications", "phd_graduates", "industry_rnd", "public_rnd",
    "ict_investment", "trademarks", "design_rights", "startups",
    "employment_knowledge", "female_researchers", "intl_cooperation",
    "university_ranking", "energy_innovation", "biotech", "nanotech",
    "pharma_rnd", "automotive_rnd", "aerospace_rnd", "software",
    "telecom", "green_patents", "ai_adoption", "robotics",
    "skills_training", "mobility_researchers", "openness_trade",
    "regulation_quality", "infrastructure", "urbanization_level",
    "population_stats", "labour_market", "misc_economics",
)

_COUNTRY_GROUPS = ("EU", "NorthAmerica", "Asia", "LatinAmerica",
                   "Oceania", "Africa", "MiddleEast")


def make_innovation(n_rows: int = 6823, seed: int = 47,
                    n_columns: int = 519, missing: bool = True) -> Table:
    """Generate the synthetic Countries & Innovation table.

    Args:
        n_rows: region-year observations (paper: 6,823).
        seed: RNG seed.
        n_columns: total columns including the 3 categorical/temporal
            ones (paper: 519).
        missing: inject OECD-style coverage gaps in ~20 columns.
    """
    rng = np.random.default_rng(seed)
    n = n_rows
    n_numeric = n_columns - 3  # country_group, income_class, year

    # Per-observation development level couples the themes.
    development = rng.normal(size=n)
    n_themes = len(_THEMES)
    theme_coupling = rng.uniform(0.2, 0.8, size=n_themes)
    factors = (development[:, None] * theme_coupling[None, :]
               + rng.normal(size=(n, n_themes))
               * np.sqrt(1.0 - theme_coupling ** 2)[None, :])

    # Assign each numeric column to a theme; build a sparse loadings
    # matrix and generate the whole panel in one product.
    per_theme = n_numeric // n_themes
    extra = n_numeric - per_theme * n_themes
    theme_of_column = np.repeat(np.arange(n_themes), per_theme)
    theme_of_column = np.concatenate(
        [theme_of_column, rng.integers(0, n_themes, size=extra)])
    loadings = 0.75 * (1.0 + 0.25 * rng.normal(size=n_numeric))
    noise_scale = np.sqrt(np.maximum(1.0 - np.minimum(loadings, 0.95) ** 2,
                                     0.15))
    data = (factors[:, theme_of_column] * loadings[None, :]
            + rng.normal(size=(n, n_numeric)) * noise_scale[None, :])

    names: list[str] = []
    counters: dict[str, int] = {}
    for theme_idx in theme_of_column:
        theme = _THEMES[theme_idx]
        k = counters.get(theme, 0)
        counters[theme] = k + 1
        names.append(f"{theme}_{k:02d}")

    if missing:
        gap_columns = rng.choice(n_numeric, size=20, replace=False)
        for j in gap_columns:
            data[:, j] = inject_missing(rng, data[:, j],
                                        float(rng.uniform(0.03, 0.12)),
                                        driver=-development)

    columns = [NumericColumn(name, data[:, j])
               for j, name in enumerate(names)]

    group_idx = rng.integers(0, len(_COUNTRY_GROUPS), size=n)
    # Income class correlates with development (so categorical components
    # fire when users slice on innovative regions).
    income_cut = np.digitize(development, [-0.6, 0.5, 1.4])
    income_labels = ("low", "middle", "high", "very_high")
    columns.append(CategoricalColumn(
        "country_group", [_COUNTRY_GROUPS[k] for k in group_idx]))
    columns.append(CategoricalColumn(
        "income_class", [income_labels[k] for k in income_cut]))
    columns.append(NumericColumn(
        "year", rng.integers(1998, 2014, size=n).astype(np.float64)))

    return Table(columns, name="innovation")
