"""The Box Office dataset generator (Hollywood movies 2007-2013).

Section 4.2: "The Box Office dataset describes Hollywood movies released
between 2007 and 2013.  We will use it to introduce the main concepts
behind Ziggy ...  The data contains 900 tuples and 12 columns."

Structure: budget, marketing and gross form a tight money block; critic
and audience scores form a quality block weakly coupled to money; genre
and studio are categorical with genre-dependent economics (so categorical
components have something to find).
"""

from __future__ import annotations

import numpy as np

from repro.data.synthetic import lognormal_column
from repro.engine.column import BooleanColumn, CategoricalColumn, NumericColumn
from repro.engine.table import Table

_GENRES = ("action", "comedy", "drama", "horror", "animation", "documentary")
_GENRE_PROBS = (0.22, 0.24, 0.26, 0.10, 0.10, 0.08)
#: Genre effects on (log-budget, log-gross multiplier, quality shift).
_GENRE_EFFECTS = {
    "action": (0.9, 0.3, -0.2),
    "comedy": (0.0, 0.1, -0.1),
    "drama": (-0.3, -0.2, 0.4),
    "horror": (-0.8, 0.4, -0.5),
    "animation": (0.7, 0.5, 0.3),
    "documentary": (-1.6, -0.9, 0.6),
}
_STUDIOS = ("Paramount", "Universal", "WarnerBros", "Disney", "Sony",
            "Fox", "Lionsgate", "Independent")


def make_boxoffice(n_rows: int = 900, seed: int = 29) -> Table:
    """Generate the synthetic Box Office table (``n_rows`` x 12)."""
    rng = np.random.default_rng(seed)
    n = n_rows

    genre_idx = rng.choice(len(_GENRES), size=n, p=np.asarray(_GENRE_PROBS))
    genres = [_GENRES[k] for k in genre_idx]
    effects = np.array([_GENRE_EFFECTS[g] for g in genres])
    budget_shift, gross_shift, quality_shift = effects.T

    money = rng.normal(size=n)          # latent "production scale"
    quality = rng.normal(size=n)        # latent "how good it is"

    budget = lognormal_column(rng, n, base=0.9 * money + budget_shift,
                              scale=4.0e7, sigma=0.35)
    marketing = budget * (0.45 + 0.12 * rng.normal(size=n)).clip(0.1, 1.2)
    screens = np.floor(800 + 900 * (money - money.min())
                       + rng.normal(scale=300, size=n)).clip(5, 4500)
    gross = lognormal_column(
        rng, n,
        base=0.8 * money + 0.45 * quality + gross_shift,
        scale=9.0e7, sigma=0.45)
    opening = gross * (0.3 + 0.08 * rng.normal(size=n)).clip(0.05, 0.7)
    critic_score = (58 + 14 * quality + 8 * quality_shift
                    + rng.normal(scale=7, size=n)).clip(2, 100)
    audience_rating = (6.2 + 0.9 * quality + 0.4 * quality_shift
                       + rng.normal(scale=0.5, size=n)).clip(1.0, 9.8)
    runtime = (104 + 9 * money + 6 * quality
               + rng.normal(scale=10, size=n)).clip(62, 210)
    year = rng.integers(2007, 2014, size=n).astype(np.float64)
    is_sequel = (rng.random(n) < (0.12 + 0.1 * (money > 0.8))).tolist()
    studios = [
        _STUDIOS[int(k)] for k in
        np.minimum(rng.integers(0, len(_STUDIOS), size=n)
                   + (money > 1.0).astype(int) * 0, len(_STUDIOS) - 1)
    ]

    return Table([
        NumericColumn("budget", budget),
        NumericColumn("marketing_spend", marketing),
        NumericColumn("gross", gross),
        NumericColumn("opening_weekend", opening),
        NumericColumn("n_screens", screens),
        NumericColumn("critic_score", critic_score),
        NumericColumn("audience_rating", audience_rating),
        NumericColumn("runtime_minutes", runtime),
        NumericColumn("release_year", year),
        CategoricalColumn("genre", genres),
        CategoricalColumn("studio", studios),
        BooleanColumn("is_sequel", is_sequel),
    ], name="boxoffice")
