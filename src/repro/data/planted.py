"""Ground-truth-labelled data for the accuracy experiments (EXT-ACC).

The generator builds a wide table of block-correlated background columns,
draws a random selection mask, and *plants* characteristic views: on a
few chosen column groups the inside distribution is shifted (mean),
rescaled (spread) or re-correlated.  Because the planted columns and
effect types are known, view-recovery precision/recall/F1 can be
measured — this is how the companion full paper evaluates detection
accuracy, and it is the workload on which Ziggy is compared against the
black-box baselines.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.engine.column import NumericColumn
from repro.engine.database import Selection, selection_from_mask
from repro.engine.table import Table

#: Effect kinds a planted view can carry.
EFFECT_KINDS = ("mean", "spread", "correlation")


@dataclass(frozen=True)
class PlantedView:
    """Ground truth for one planted view.

    Attributes:
        columns: the affected columns (sorted).
        kind: which distribution property was manipulated.
        strength: the effect multiplier used at generation time.
    """

    columns: tuple[str, ...]
    kind: str
    strength: float


@dataclass(frozen=True)
class PlantedDataset:
    """A table, its selection, and the planted ground truth."""

    table: Table
    selection: Selection
    truth: tuple[PlantedView, ...]

    @property
    def truth_columns(self) -> frozenset[str]:
        """Union of all planted columns."""
        out: set[str] = set()
        for view in self.truth:
            out.update(view.columns)
        return frozenset(out)


def make_planted(n_rows: int = 3000, n_columns: int = 60,
                 n_views: int = 4, view_dim: int = 2,
                 effect: float = 1.0, selectivity: float = 0.15,
                 seed: int = 3, block_size: int = 4,
                 kinds: tuple[str, ...] = EFFECT_KINDS) -> PlantedDataset:
    """Build a planted-view dataset.

    Args:
        n_rows / n_columns: table shape (numeric columns only).
        n_views: number of planted views (disjoint column groups).
        view_dim: columns per planted view.
        effect: effect strength multiplier; 1.0 means ~1 SD mean shift,
            SD ratio ~2, or correlation flip from ~0.75 to ~0.
        selectivity: fraction of rows in the selection.
        seed: RNG seed.
        block_size: background correlation-block width (the background
            has structure too, so tightness alone cannot find the truth).
        kinds: effect kinds to cycle through for successive views.

    Returns:
        The dataset with ground truth.  Planted views occupy the first
        ``n_views * view_dim`` columns (under shuffled names), with
        within-view correlation ~0.75 so they satisfy tightness.
    """
    if n_views * view_dim > n_columns:
        raise ValueError("planted views need more columns than available")
    rng = np.random.default_rng(seed)
    mask = np.zeros(n_rows, dtype=bool)
    n_inside = max(int(round(selectivity * n_rows)), 10)
    mask[rng.choice(n_rows, size=n_inside, replace=False)] = True

    data = np.empty((n_rows, n_columns), dtype=np.float64)
    col = 0
    # Background: correlated blocks, identical inside and outside.
    while col < n_columns:
        width = min(block_size, n_columns - col)
        factor = rng.normal(size=n_rows)
        loadings = rng.uniform(0.6, 0.9, size=width)
        noise = np.sqrt(1.0 - loadings ** 2)
        data[:, col:col + width] = (factor[:, None] * loadings[None, :]
                                    + rng.normal(size=(n_rows, width))
                                    * noise[None, :])
        col += width

    truth: list[PlantedView] = []
    for v in range(n_views):
        kind = kinds[v % len(kinds)]
        start = v * view_dim
        idx = np.arange(start, start + view_dim)
        # Re-draw the planted group with a dedicated factor so the view
        # is tight (r ~ 0.75) and independent of the background blocks.
        factor = rng.normal(size=n_rows)
        loading = 0.87
        base = (factor[:, None] * loading
                + rng.normal(size=(n_rows, view_dim))
                * np.sqrt(1.0 - loading ** 2))
        if kind == "mean":
            base[mask] += 1.0 * effect
        elif kind == "spread":
            center = base[mask].mean(axis=0)
            base[mask] = center + (base[mask] - center) * (1.0 + effect)
        elif kind == "correlation":
            # Destroy the within-view correlation inside the selection by
            # independent redraw (scaled by effect: 1.0 = full break).
            fresh = rng.normal(size=(int(mask.sum()), view_dim))
            base[mask] = ((1.0 - effect) * base[mask]
                          + effect * fresh)
        else:
            raise ValueError(f"unknown effect kind {kind!r}")
        data[:, idx] = base
        truth.append(PlantedView(
            columns=tuple(sorted(f"col_{j:03d}" for j in idx)),
            kind=kind,
            strength=effect,
        ))

    columns = [NumericColumn(f"col_{j:03d}", data[:, j])
               for j in range(n_columns)]
    table = Table(columns, name=f"planted_{seed}")
    selection = selection_from_mask(table, mask, label=f"planted/{seed}")
    return PlantedDataset(table=table, selection=selection,
                          truth=tuple(truth))
