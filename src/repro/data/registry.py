"""Dataset registry: the three demo datasets by name."""

from __future__ import annotations

from typing import Callable

from repro.data.boxoffice import make_boxoffice
from repro.data.crime import make_crime
from repro.data.innovation import make_innovation
from repro.engine.table import Table
from repro.errors import UnknownDatasetError

_DATASETS: dict[str, Callable[..., Table]] = {
    "boxoffice": make_boxoffice,
    "us_crime": make_crime,
    "innovation": make_innovation,
}


def dataset_names() -> tuple[str, ...]:
    """Names accepted by :func:`load_dataset`."""
    return tuple(sorted(_DATASETS))


def load_dataset(name: str, **kwargs) -> Table:
    """Build one of the demo datasets by name.

    Args:
        name: "boxoffice", "us_crime" or "innovation".
        **kwargs: forwarded to the generator (``seed``, ``n_rows``, ...).
    """
    maker = _DATASETS.get(name)
    if maker is None:
        raise UnknownDatasetError(name, dataset_names())
    return maker(**kwargs)
