"""Low-level synthetic column builders shared by the dataset generators."""

from __future__ import annotations

import numpy as np


def correlated_block(rng: np.random.Generator, n_rows: int, n_cols: int,
                     factor: np.ndarray | None = None,
                     loading: float = 0.8,
                     noise: float = 1.0) -> np.ndarray:
    """Columns sharing one latent factor (a thematically tight block).

    ``x_j = loading_j * factor + noise_j`` with per-column loadings
    jittered around ``loading`` — the structure view tightness is meant
    to detect.

    Args:
        rng: the random generator.
        n_rows / n_cols: block shape.
        factor: latent factor values (drawn i.i.d. N(0,1) when None).
        loading: mean factor loading.
        noise: noise standard deviation.

    Returns:
        ``(n_rows, n_cols)`` float matrix.
    """
    if factor is None:
        factor = rng.normal(size=n_rows)
    loadings = loading * (1.0 + 0.2 * rng.normal(size=n_cols))
    return factor[:, None] * loadings[None, :] + rng.normal(
        scale=noise, size=(n_rows, n_cols))


def lognormal_column(rng: np.random.Generator, n_rows: int,
                     base: np.ndarray | float = 0.0,
                     scale: float = 1.0,
                     sigma: float = 0.5) -> np.ndarray:
    """Positive, right-skewed column (populations, budgets, rents).

    ``scale * exp(base + sigma * eps)`` — the latent ``base`` carries the
    correlation structure, the log-normal noise carries the skew.
    """
    return scale * np.exp(np.asarray(base, dtype=np.float64)
                          + sigma * rng.normal(size=n_rows))


def proportion_column(rng: np.random.Generator, n_rows: int,
                      base: np.ndarray | float = 0.0,
                      center: float = 0.5,
                      slope: float = 0.15,
                      noise: float = 0.05) -> np.ndarray:
    """A percentage-like column squashed into (0, 1) by a logistic.

    ``sigmoid(logit(center) + slope_scaled * base + eps)`` — used for all
    "% population ..." indicators.
    """
    center = min(max(center, 1e-3), 1.0 - 1e-3)
    logit = np.log(center / (1.0 - center))
    z = logit + 4.0 * slope * np.asarray(base, dtype=np.float64) \
        + rng.normal(scale=4.0 * noise, size=n_rows)
    return 1.0 / (1.0 + np.exp(-z))


def gaussian_mixture_column(rng: np.random.Generator, n_rows: int,
                            means: tuple[float, ...] = (-1.5, 1.5),
                            weights: tuple[float, ...] | None = None,
                            sigma: float = 0.6) -> np.ndarray:
    """Multi-modal column (for datasets that should defeat mean-only
    summaries — spread and shape components earn their keep here)."""
    k = len(means)
    if weights is None:
        probs = np.full(k, 1.0 / k)
    else:
        probs = np.asarray(weights, dtype=np.float64)
        probs = probs / probs.sum()
    component = rng.choice(k, size=n_rows, p=probs)
    return np.asarray(means)[component] + rng.normal(scale=sigma, size=n_rows)


def inject_missing(rng: np.random.Generator, values: np.ndarray,
                   rate: float,
                   driver: np.ndarray | None = None) -> np.ndarray:
    """Return a copy with ~``rate`` of entries set to NaN.

    When ``driver`` is given, missingness probability increases with the
    driver (informative missingness — what the missing-rate component is
    for); otherwise it is uniform.
    """
    if not 0.0 <= rate < 1.0:
        raise ValueError(f"missing rate must be in [0, 1), got {rate}")
    out = np.asarray(values, dtype=np.float64).copy()
    if rate == 0.0:
        return out
    n = out.size
    if driver is None:
        mask = rng.random(n) < rate
    else:
        d = np.asarray(driver, dtype=np.float64)
        ranks = d.argsort().argsort() / max(n - 1, 1)
        probs = rate * 2.0 * ranks  # mean ~= rate, increasing in driver
        mask = rng.random(n) < probs
    out[mask] = np.nan
    return out
