"""Correlation measures and the Fisher z-transform.

Pearson/Spearman correlations serve two distinct roles in Ziggy:

* as the *dependency measure* ``S`` that defines view tightness (Eq. 2);
* inside the correlation-gap Zig-Component (Fig. 3, third panel).

All estimators here drop rows where either value is missing (pairwise
deletion), matching what a user would see on a scatter plot of the two
columns.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import InsufficientDataError

#: Clamp for correlations before the Fisher transform; atanh(±1) = ±inf.
_FISHER_CLAMP = 1.0 - 1e-12


def _paired(x, y) -> tuple[np.ndarray, np.ndarray]:
    xa = np.asarray(x, dtype=np.float64).ravel()
    ya = np.asarray(y, dtype=np.float64).ravel()
    if xa.shape != ya.shape:
        raise ValueError(f"paired samples must have equal length, "
                         f"got {xa.size} and {ya.size}")
    keep = ~(np.isnan(xa) | np.isnan(ya))
    return xa[keep], ya[keep]


def pearson(x, y) -> float:
    """Pearson product-moment correlation with pairwise NaN deletion.

    Returns NaN when either column is constant (undefined correlation) —
    callers in the component layer convert that into a skipped component
    rather than a crash, because constant columns are common in sliced
    exploration data.
    """
    xa, ya = _paired(x, y)
    if xa.size < 2:
        raise InsufficientDataError("pearson", needed=2, got=int(xa.size))
    xm = xa - xa.mean()
    ym = ya - ya.mean()
    denom = math.sqrt(float((xm * xm).sum()) * float((ym * ym).sum()))
    if denom == 0.0:
        return float("nan")
    r = float((xm * ym).sum()) / denom
    # Guard against floating-point drift outside [-1, 1].
    return max(-1.0, min(1.0, r))


def rankdata(values: np.ndarray) -> np.ndarray:
    """Average-tie ranks (1-based), NaNs ranked last and returned as NaN.

    A minimal replacement for ``scipy.stats.rankdata`` kept local so the
    hot dependency-matrix path stays allocation-lean.
    """
    arr = np.asarray(values, dtype=np.float64).ravel()
    n = arr.size
    ranks = np.full(n, np.nan)
    valid = ~np.isnan(arr)
    data = arr[valid]
    if data.size == 0:
        return ranks
    order = np.argsort(data, kind="mergesort")
    sorted_vals = data[order]
    raw = np.empty(data.size, dtype=np.float64)
    raw[order] = np.arange(1, data.size + 1, dtype=np.float64)
    # Average ranks over tie groups.
    boundaries = np.flatnonzero(np.diff(sorted_vals) != 0) + 1
    starts = np.concatenate(([0], boundaries))
    ends = np.concatenate((boundaries, [data.size]))
    # Each tie group of sorted positions [s, e) gets the average rank
    # (s + 1 + e) / 2; np.repeat expands the per-group values without a
    # Python-level loop over groups.
    avg = np.repeat((starts + 1 + ends) / 2.0, ends - starts)
    tied = np.empty(data.size, dtype=np.float64)
    tied[order] = avg
    ranks[valid] = tied
    return ranks


def rankdata_matrix(mat: np.ndarray) -> np.ndarray:
    """Column-wise :func:`rankdata` of a 2-d array.

    The full-matrix form the dependency layer uses for Spearman: rank
    every column once, then one pairwise-complete Pearson pass over the
    rank matrix replaces the per-pair rank-and-correlate loop.
    """
    mat = np.asarray(mat, dtype=np.float64)
    if mat.ndim != 2:
        raise ValueError("mat must be a 2-d array (rows x columns)")
    if mat.shape[1] == 0:
        return mat.copy()
    return np.column_stack([rankdata(mat[:, j]) for j in range(mat.shape[1])])


def spearman(x, y) -> float:
    """Spearman rank correlation (Pearson on average-tie ranks)."""
    xa, ya = _paired(x, y)
    if xa.size < 2:
        raise InsufficientDataError("spearman", needed=2, got=int(xa.size))
    return pearson(rankdata(xa), rankdata(ya))


def fisher_z(r: float) -> float:
    """Fisher z-transform ``atanh(r)``, clamped away from ±1."""
    r = max(-_FISHER_CLAMP, min(_FISHER_CLAMP, float(r)))
    return math.atanh(r)


def inverse_fisher_z(z: float) -> float:
    """Inverse Fisher transform ``tanh(z)``."""
    return math.tanh(float(z))


class PairwiseMoments:
    """Sufficient statistics for all pairwise-complete correlations.

    For an ``n x M`` matrix with missing values, stores the four moment
    matrices (complete-pair counts, conditional sums, conditional sums of
    squares, cross-products) from which every pairwise-deletion Pearson
    coefficient can be reconstructed.  The matrices are *additive over
    disjoint row sets*, which is the algebraic fact behind Ziggy's
    cross-query computation sharing: moments(outside) =
    moments(all rows) - moments(inside), no complement scan needed.

    Attributes:
        n: ``(M, M)`` complete-pair counts.
        sx: ``(M, M)``; ``sx[i, j]`` = sum of column i over rows where
            both i and j are present.
        sxx: like ``sx`` but sums of squares.
        sxy: ``(M, M)`` cross-products over complete pairs.
    """

    __slots__ = ("n", "sx", "sxx", "sxy")

    def __init__(self, n: np.ndarray, sx: np.ndarray, sxx: np.ndarray,
                 sxy: np.ndarray):
        self.n = n
        self.sx = sx
        self.sxx = sxx
        self.sxy = sxy

    @classmethod
    def from_matrix(cls, mat: np.ndarray) -> "PairwiseMoments":
        """Build moments from a rows-by-columns float matrix (4 GEMMs)."""
        mat = np.asarray(mat, dtype=np.float64)
        if mat.ndim != 2:
            raise ValueError("matrix must be 2-d (rows x columns)")
        valid = (~np.isnan(mat)).astype(np.float64)
        filled = np.where(np.isnan(mat), 0.0, mat)
        n = valid.T @ valid
        sx = filled.T @ valid
        sxx = (filled * filled).T @ valid
        sxy = filled.T @ filled
        return cls(n=n, sx=sx, sxx=sxx, sxy=sxy)

    def add(self, other: "PairwiseMoments") -> "PairwiseMoments":
        """Moments of the union of two disjoint row sets."""
        return PairwiseMoments(self.n + other.n, self.sx + other.sx,
                               self.sxx + other.sxx, self.sxy + other.sxy)

    def subtract(self, part: "PairwiseMoments") -> "PairwiseMoments":
        """Moments of this row set minus a subset of its rows."""
        n = self.n - part.n
        if (n < -1e-9).any():
            raise ValueError("cannot subtract moments of a larger row set")
        return PairwiseMoments(np.maximum(n, 0.0), self.sx - part.sx,
                               self.sxx - part.sxx, self.sxy - part.sxy)

    def correlations(self) -> tuple[np.ndarray, np.ndarray]:
        """Reconstruct ``(corr, n_complete)``.

        Entries with fewer than 2 complete pairs or zero variance are
        NaN; the diagonal is forced to 1 where defined.
        """
        n, sx, sxx, sxy = self.n, self.sx, self.sxx, self.sxy
        sy, syy = sx.T, sxx.T
        with np.errstate(invalid="ignore", divide="ignore"):
            cov = n * sxy - sx * sy
            var_x = n * sxx - sx * sx
            var_y = n * syy - sy * sy
            denom = np.sqrt(np.maximum(var_x, 0.0) * np.maximum(var_y, 0.0))
            corr = cov / denom
        corr[(denom <= 0.0) | (n < 2)] = np.nan
        np.clip(corr, -1.0, 1.0, out=corr)
        diag_ok = np.diag(n) >= 2
        for i in np.flatnonzero(diag_ok):
            corr[i, i] = 1.0
        return corr, self.n.copy()


def masked_correlation_matrix(columns: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Pairwise-deletion Pearson matrix plus complete-pair counts.

    Fully vectorized (four matrix products) — the estimator of choice for
    wide tables with scattered missing values.
    """
    return PairwiseMoments.from_matrix(columns).correlations()


def correlation_matrix(columns: np.ndarray, method: str = "pearson") -> np.ndarray:
    """Full correlation matrix of a 2-d array (columns are variables).

    Uses pairwise-complete observations.  The fast path (no NaNs) is one
    matrix product; with missing data it falls back to per-pair
    computation, which is what the dependency layer needs for real
    exploration tables.

    Args:
        columns: shape ``(n_rows, n_cols)`` float array.
        method: ``"pearson"`` or ``"spearman"``.

    Returns:
        ``(n_cols, n_cols)`` symmetric matrix with unit diagonal; entries
        are NaN where a pair has fewer than two complete rows or a
        constant column.
    """
    mat = np.asarray(columns, dtype=np.float64)
    if mat.ndim != 2:
        raise ValueError("columns must be a 2-d array (rows x columns)")
    if method == "spearman":
        mat = rankdata_matrix(mat)
    elif method != "pearson":
        raise ValueError(f"unknown correlation method {method!r}")
    n, m = mat.shape
    corr = np.full((m, m), np.nan)
    np.fill_diagonal(corr, 1.0)
    if n < 2 or m == 0:
        return corr
    if not np.isnan(mat).any():
        # Fast path: no missing values, one centered matrix product.
        centered = mat - mat.mean(axis=0)
        cov = centered.T @ centered
        diag = np.sqrt(np.diag(cov))
        with np.errstate(divide="ignore", invalid="ignore"):
            corr = cov / np.outer(diag, diag)
        corr[~np.isfinite(corr)] = np.nan
        np.clip(corr, -1.0, 1.0, out=corr)
    else:
        # Missing values: the four-GEMM pairwise-complete estimator covers
        # every pair at once — no per-pair Python loop over NaN columns.
        corr, _ = masked_correlation_matrix(mat)
    np.fill_diagonal(corr, 1.0)
    return corr
