"""Robust location/scale estimators.

Ziggy normalizes Zig-Components so that heterogeneous indicators become
comparable (paper, Section 2.2).  Component magnitudes across a wide table
are heavy-tailed — a handful of columns dominate — so the normalization in
:mod:`repro.core.dissimilarity` uses the median/MAD estimators implemented
here rather than mean/std.
"""

from __future__ import annotations

import numpy as np

from repro.errors import InsufficientDataError

#: Consistency constant making the MAD an unbiased estimator of the
#: standard deviation under normality (1 / Phi^{-1}(3/4)).
MAD_TO_SIGMA = 1.4826022185056018


def _clean(values: np.ndarray) -> np.ndarray:
    arr = np.asarray(values, dtype=np.float64).ravel()
    return arr[~np.isnan(arr)]


def median(values: np.ndarray) -> float:
    """NaN-dropping median; raises when the sample is empty."""
    data = _clean(values)
    if data.size == 0:
        raise InsufficientDataError("median", needed=1, got=0)
    return float(np.median(data))


def mad(values: np.ndarray, scale_to_sigma: bool = True) -> float:
    """Median absolute deviation.

    Args:
        values: sample (NaNs dropped).
        scale_to_sigma: multiply by 1.4826 so the result estimates the
            standard deviation for Gaussian data (the default, because the
            dissimilarity layer mixes MAD-scaled scores with z-scores).
    """
    data = _clean(values)
    if data.size == 0:
        raise InsufficientDataError("mad", needed=1, got=0)
    m = np.median(data)
    raw = float(np.median(np.abs(data - m)))
    return raw * MAD_TO_SIGMA if scale_to_sigma else raw


def iqr(values: np.ndarray) -> float:
    """Interquartile range (Q3 - Q1)."""
    data = _clean(values)
    if data.size == 0:
        raise InsufficientDataError("iqr", needed=1, got=0)
    q1, q3 = np.quantile(data, [0.25, 0.75])
    return float(q3 - q1)


def trimmed_mean(values: np.ndarray, proportion: float = 0.1) -> float:
    """Symmetrically trimmed mean.

    Args:
        values: sample (NaNs dropped).
        proportion: fraction trimmed from *each* tail, in [0, 0.5).
    """
    if not 0.0 <= proportion < 0.5:
        raise ValueError(f"trim proportion must be in [0, 0.5), got {proportion}")
    data = np.sort(_clean(values))
    if data.size == 0:
        raise InsufficientDataError("trimmed_mean", needed=1, got=0)
    k = int(data.size * proportion)
    trimmed = data[k: data.size - k] if k else data
    if trimmed.size == 0:
        # All mass trimmed away (tiny sample): fall back to the median.
        return float(np.median(data))
    return float(trimmed.mean())


def winsorize(values: np.ndarray, proportion: float = 0.05) -> np.ndarray:
    """Clamp each tail of the sample to its ``proportion`` quantile.

    NaNs are preserved in place.  Returns a new array.
    """
    if not 0.0 <= proportion < 0.5:
        raise ValueError(f"winsorize proportion must be in [0, 0.5), got {proportion}")
    arr = np.asarray(values, dtype=np.float64).copy()
    data = arr[~np.isnan(arr)]
    if data.size == 0 or proportion == 0.0:
        return arr
    lo, hi = np.quantile(data, [proportion, 1.0 - proportion])
    return np.clip(arr, lo, hi)


def robust_zscores(values: np.ndarray) -> np.ndarray:
    """Median/MAD z-scores with NaNs preserved.

    Degenerate scale (MAD == 0) falls back to the IQR, then to the
    standard deviation, then to 1.0, so the result is always finite for
    finite inputs.  This cascade is what keeps component normalization
    stable on columns with many ties.
    """
    arr = np.asarray(values, dtype=np.float64)
    data = arr[~np.isnan(arr)]
    if data.size == 0:
        return arr.copy()
    center = float(np.median(data))
    scale = mad(data)
    if scale <= 0.0:
        scale = iqr(data) / 1.349 if data.size >= 4 else 0.0
    if scale <= 0.0:
        scale = float(np.std(data, ddof=1)) if data.size >= 2 else 0.0
    if scale <= 0.0 or scale != scale:
        scale = 1.0
    return (arr - center) / scale
