"""Effect sizes — the raw material of Zig-Components.

The paper (Section 2.2): "Most of our Zig-Components come from the
statistics literature, where they are referred to as effect sizes",
citing Hedges & Olkin.  This module implements the classic two-sample
effect sizes on either raw arrays or pre-computed
:class:`~repro.stats.descriptive.SummaryStats`, so the statistics cache
can score components without touching the data again.

Sign conventions: every directional effect is *inside minus outside*, so a
positive value always reads "the selection is higher".
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import DegenerateDataError, InsufficientDataError
from repro.stats.correlation import fisher_z, pearson
from repro.stats.descriptive import SummaryStats, summarize


def _as_stats(sample) -> SummaryStats:
    if isinstance(sample, SummaryStats):
        return sample
    return summarize(np.asarray(sample, dtype=np.float64))


def pooled_std(a: SummaryStats, b: SummaryStats) -> float:
    """Pooled standard deviation of two samples (Hedges & Olkin eq. 5.1)."""
    if a.n + b.n < 3:
        raise InsufficientDataError("pooled_std", needed=3, got=a.n + b.n)
    num = a.m2 + b.m2
    den = a.n + b.n - 2
    return math.sqrt(num / den)


def cohens_d(inside, outside) -> float:
    """Cohen's d: standardized difference of means, inside minus outside.

    Raises :class:`DegenerateDataError` when the pooled variance is zero
    but the means differ (infinite effect); returns 0.0 when both groups
    are constant and equal.
    """
    a, b = _as_stats(inside), _as_stats(outside)
    if a.n < 2 or b.n < 2:
        raise InsufficientDataError("cohens_d", needed=2, got=min(a.n, b.n))
    sd = pooled_std(a, b)
    diff = a.mean - b.mean
    if sd == 0.0:
        if diff == 0.0:
            return 0.0
        raise DegenerateDataError(
            "cohens_d: zero pooled variance with unequal means")
    return diff / sd


def hedges_g(inside, outside) -> float:
    """Hedges' g: Cohen's d with the small-sample bias correction J.

    J = 1 - 3 / (4*df - 1) with df = n1 + n2 - 2 (Hedges & Olkin).
    """
    a, b = _as_stats(inside), _as_stats(outside)
    d = cohens_d(a, b)
    df = a.n + b.n - 2
    correction = 1.0 - 3.0 / (4.0 * df - 1.0)
    return d * correction


def glass_delta(inside, outside) -> float:
    """Glass's Δ: mean difference scaled by the *outside* group's SD.

    Useful when the selection may distort the spread; the complement acts
    as the control group.
    """
    a, b = _as_stats(inside), _as_stats(outside)
    if b.n < 2:
        raise InsufficientDataError("glass_delta", needed=2, got=b.n)
    sd = b.std
    diff = a.mean - b.mean
    if sd == 0.0 or sd != sd:
        if diff == 0.0:
            return 0.0
        raise DegenerateDataError(
            "glass_delta: zero control-group variance with unequal means")
    return diff / sd


def log_sd_ratio(inside, outside) -> float:
    """Log ratio of standard deviations, ``ln(sd_in / sd_out)``.

    This is the "difference between the standard deviations" component of
    Figure 3 expressed as a symmetric, scale-free effect size (the log
    makes halving and doubling equally large with opposite signs).
    """
    a, b = _as_stats(inside), _as_stats(outside)
    if a.n < 2 or b.n < 2:
        raise InsufficientDataError("log_sd_ratio", needed=2, got=min(a.n, b.n))
    sa, sb = a.std, b.std
    if sa == 0.0 and sb == 0.0:
        return 0.0
    if sa == 0.0 or sb == 0.0:
        raise DegenerateDataError("log_sd_ratio: one group has zero variance")
    return math.log(sa / sb)


def cliffs_delta(inside, outside, max_n: int = 4000,
                 rng: np.random.Generator | None = None) -> float:
    """Cliff's delta: P(X > Y) - P(X < Y) for X inside, Y outside.

    A non-parametric dominance effect size in [-1, 1].  Computed exactly
    via a sort-merge in O((n+m) log(n+m)); groups larger than ``max_n``
    are subsampled (deterministically unless ``rng`` is given) to bound
    memory — the estimator's error at 4000 points is negligible for
    ranking purposes.
    """
    x = np.asarray(inside, dtype=np.float64).ravel()
    y = np.asarray(outside, dtype=np.float64).ravel()
    x = x[~np.isnan(x)]
    y = y[~np.isnan(y)]
    if x.size == 0 or y.size == 0:
        raise InsufficientDataError("cliffs_delta", needed=1, got=0)
    if rng is None:
        rng = np.random.default_rng(0)
    if x.size > max_n:
        x = rng.choice(x, size=max_n, replace=False)
    if y.size > max_n:
        y = rng.choice(y, size=max_n, replace=False)
    y_sorted = np.sort(y)
    # For each x: #(y < x) and #(y <= x) via binary search.
    below = np.searchsorted(y_sorted, x, side="left")
    below_eq = np.searchsorted(y_sorted, x, side="right")
    greater = below.sum()                      # pairs with x > y
    less = (y.size - below_eq).sum()           # pairs with x < y
    total = x.size * y.size
    return float((greater - less) / total)


def correlation_gap(inside_x, inside_y, outside_x, outside_y,
                    precomputed: tuple[float, float] | None = None) -> float:
    """Difference between correlation coefficients, on the Fisher-z scale.

    This is the third Zig-Component of Figure 3 ("difference between the
    correlation coefficients", r^I - r^O).  The Fisher transform
    variance-stabilizes the gap so that a move from .80 to .95 counts more
    than one from .05 to .20 — matching the asymptotic test used for it.

    Args:
        inside_x / inside_y: the two columns restricted to the selection.
        outside_x / outside_y: the two columns restricted to the complement.
        precomputed: optional ``(r_inside, r_outside)`` pair, letting the
            statistics cache skip the raw-data scan.
    """
    if precomputed is not None:
        r_in, r_out = precomputed
    else:
        r_in = pearson(inside_x, inside_y)
        r_out = pearson(outside_x, outside_y)
    if r_in != r_in or r_out != r_out:
        raise DegenerateDataError("correlation_gap: undefined correlation "
                                  "(constant column in one group)")
    return fisher_z(r_in) - fisher_z(r_out)


def total_variation_distance(p: np.ndarray, q: np.ndarray) -> float:
    """Total variation distance between two aligned discrete distributions.

    ``0.5 * sum |p - q|`` in [0, 1]; the categorical analogue of the mean
    difference.
    """
    p = np.asarray(p, dtype=np.float64)
    q = np.asarray(q, dtype=np.float64)
    if p.shape != q.shape:
        raise ValueError("distributions must be aligned to the same support")
    return float(0.5 * np.abs(p - q).sum())


def hellinger_distance(p: np.ndarray, q: np.ndarray) -> float:
    """Hellinger distance between two aligned discrete distributions.

    In [0, 1]; more sensitive than total variation to disagreements on
    rare categories, which is exactly where exploratory surprises live.
    """
    p = np.asarray(p, dtype=np.float64)
    q = np.asarray(q, dtype=np.float64)
    if p.shape != q.shape:
        raise ValueError("distributions must be aligned to the same support")
    return float(math.sqrt(max(0.0, 0.5 * ((np.sqrt(p) - np.sqrt(q)) ** 2).sum())))


def proportion_gap(k_inside: int, n_inside: int,
                   k_outside: int, n_outside: int) -> float:
    """Difference of two proportions (inside minus outside).

    Used for the missing-rate component and for single-category contrasts.
    """
    if n_inside <= 0 or n_outside <= 0:
        raise InsufficientDataError("proportion_gap", needed=1,
                                    got=min(n_inside, n_outside))
    return k_inside / n_inside - k_outside / n_outside
