"""Low-level statistics substrate.

This package implements the statistical machinery Ziggy builds on: summary
statistics with streaming/mergeable sufficient statistics, histograms,
effect sizes ("Zig-Components" are effect sizes per the paper, citing
Hedges & Olkin), dependency measures (correlation, mutual information,
Cramér's V) and the asymptotic significance tests used by the
post-processing stage.

Everything operates on plain numpy arrays; NaNs denote missing values and
are handled explicitly by every function (they are either dropped or
counted, never silently propagated).
"""

from repro.stats.descriptive import (
    SummaryStats,
    summarize,
    merge_stats,
    quantile,
    standardize,
)
from repro.stats.robust import (
    median,
    mad,
    iqr,
    trimmed_mean,
    winsorize,
    robust_zscores,
)
from repro.stats.histogram import (
    Histogram,
    FrequencyProfile,
    equi_width_histogram,
    equi_depth_edges,
    frequency_profile,
)
from repro.stats.effect_sizes import (
    cohens_d,
    hedges_g,
    glass_delta,
    log_sd_ratio,
    cliffs_delta,
    correlation_gap,
    total_variation_distance,
    hellinger_distance,
    proportion_gap,
)
from repro.stats.correlation import (
    pearson,
    spearman,
    fisher_z,
    inverse_fisher_z,
    correlation_matrix,
    masked_correlation_matrix,
    PairwiseMoments,
    rankdata,
)
from repro.stats.entropy import (
    entropy,
    mutual_information,
    normalized_mutual_information,
    binned_mutual_information,
)
from repro.stats.tests_ import (
    TestResult,
    welch_t_test,
    f_test_variances,
    levene_test,
    fisher_z_test,
    chi2_independence_test,
    two_proportion_z_test,
    mann_whitney_u_test,
)

__all__ = [
    "SummaryStats",
    "summarize",
    "merge_stats",
    "quantile",
    "standardize",
    "median",
    "mad",
    "iqr",
    "trimmed_mean",
    "winsorize",
    "robust_zscores",
    "Histogram",
    "FrequencyProfile",
    "equi_width_histogram",
    "equi_depth_edges",
    "frequency_profile",
    "cohens_d",
    "hedges_g",
    "glass_delta",
    "log_sd_ratio",
    "cliffs_delta",
    "correlation_gap",
    "total_variation_distance",
    "hellinger_distance",
    "proportion_gap",
    "pearson",
    "spearman",
    "fisher_z",
    "inverse_fisher_z",
    "correlation_matrix",
    "masked_correlation_matrix",
    "PairwiseMoments",
    "rankdata",
    "entropy",
    "mutual_information",
    "normalized_mutual_information",
    "binned_mutual_information",
    "TestResult",
    "welch_t_test",
    "f_test_variances",
    "levene_test",
    "fisher_z_test",
    "chi2_independence_test",
    "two_proportion_z_test",
    "mann_whitney_u_test",
]
