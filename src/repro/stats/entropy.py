"""Entropy and mutual information.

Mutual information is one of the dependency measures ``S`` the paper
allows for view tightness (Eq. 2: "Let S describe a measure of statistical
dependency, such as the correlation or the mutual information").  Unlike
correlation it captures non-monotone association, at the cost of a binning
choice; we use equi-depth bins for robustness to skew.

All entropies are in nats unless ``base`` says otherwise.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import InsufficientDataError
from repro.stats.histogram import equi_depth_edges


def entropy(proportions: np.ndarray, base: float | None = None) -> float:
    """Shannon entropy of a discrete distribution.

    Zero-probability cells contribute zero.  Negative entries or a total
    far from one raise ``ValueError`` — entropy of a non-distribution is a
    caller bug we want to surface, not smooth over.
    """
    p = np.asarray(proportions, dtype=np.float64).ravel()
    if p.size == 0:
        return 0.0
    if np.any(p < -1e-12):
        raise ValueError("proportions must be non-negative")
    total = p.sum()
    if total <= 0:
        return 0.0
    if abs(total - 1.0) > 1e-6:
        p = p / total
    nz = p[p > 0]
    h = float(-(nz * np.log(nz)).sum())
    if base is not None:
        h /= math.log(base)
    return max(h, 0.0)


def _joint_counts(x_codes: np.ndarray, y_codes: np.ndarray,
                  kx: int, ky: int) -> np.ndarray:
    """Contingency counts of two integer-coded samples via bincount."""
    flat = x_codes * ky + y_codes
    return np.bincount(flat, minlength=kx * ky).reshape(kx, ky)


def mutual_information(joint_counts: np.ndarray, base: float | None = None) -> float:
    """Mutual information of a contingency table of counts.

    ``I(X;Y) = H(X) + H(Y) - H(X,Y)``, computed from the table; clipped
    at zero to absorb floating-point negatives.
    """
    table = np.asarray(joint_counts, dtype=np.float64)
    if table.ndim != 2:
        raise ValueError("joint_counts must be a 2-d contingency table")
    n = table.sum()
    if n <= 0:
        return 0.0
    pj = table / n
    hx = entropy(pj.sum(axis=1))
    hy = entropy(pj.sum(axis=0))
    hxy = entropy(pj.ravel())
    mi = hx + hy - hxy
    if base is not None:
        mi /= math.log(base)
    return max(mi, 0.0)


def normalized_mutual_information(joint_counts: np.ndarray) -> float:
    """MI normalized to [0, 1] by ``sqrt(H(X) * H(Y))``.

    The dependency layer uses this so mutual information and |correlation|
    live on the same scale and ``MIN_tight`` keeps one interpretation
    across dependency measures.
    """
    table = np.asarray(joint_counts, dtype=np.float64)
    n = table.sum()
    if n <= 0:
        return 0.0
    pj = table / n
    hx = entropy(pj.sum(axis=1))
    hy = entropy(pj.sum(axis=0))
    if hx <= 0.0 or hy <= 0.0:
        # A constant variable carries no information: define NMI as 0.
        return 0.0
    mi = hx + hy - entropy(pj.ravel())
    return float(min(1.0, max(0.0, mi / math.sqrt(hx * hy))))


def binned_mutual_information(x, y, bins: int = 10,
                              normalized: bool = True) -> float:
    """Mutual information of two numeric samples via equi-depth binning.

    Rows with a NaN in either sample are dropped (pairwise deletion).

    Args:
        x, y: numeric samples of equal length.
        bins: target bins per axis (collapsed when duplicated quantiles
            reduce the support).
        normalized: return NMI in [0, 1] instead of raw nats.
    """
    xa = np.asarray(x, dtype=np.float64).ravel()
    ya = np.asarray(y, dtype=np.float64).ravel()
    if xa.shape != ya.shape:
        raise ValueError("samples must have equal length")
    keep = ~(np.isnan(xa) | np.isnan(ya))
    xa, ya = xa[keep], ya[keep]
    if xa.size < 4:
        raise InsufficientDataError("binned_mutual_information", needed=4,
                                    got=int(xa.size))
    ex = equi_depth_edges(xa, bins)
    ey = equi_depth_edges(ya, bins)
    # Interior edges only; digitize maps values to 0..k-1.
    cx = np.clip(np.searchsorted(ex[1:-1], xa, side="right"), 0, ex.size - 2)
    cy = np.clip(np.searchsorted(ey[1:-1], ya, side="right"), 0, ey.size - 2)
    table = _joint_counts(cx, cy, ex.size - 1, ey.size - 1)
    if normalized:
        return normalized_mutual_information(table)
    return mutual_information(table)


def binned_mutual_information_matrix(mat: np.ndarray, bins: int = 10,
                                     normalized: bool = True) -> np.ndarray:
    """All-pairs binned (N)MI of a rows-by-columns matrix.

    Equi-depth edges and bin codes are computed **once per column** (the
    expensive part: a sort per column), so each pair costs only one
    ``bincount`` over its complete rows instead of two sorts — this is
    the matrix form the dependency layer's ``nmi`` method uses in place
    of a per-pair Python loop.

    Pairs with fewer than 4 complete rows (or a column whose support
    collapsed entirely) are NaN; the diagonal is 1 (0 for raw MI the
    convention does not apply, so ``normalized=False`` callers should
    ignore the diagonal).
    """
    mat = np.asarray(mat, dtype=np.float64)
    if mat.ndim != 2:
        raise ValueError("mat must be a 2-d array (rows x columns)")
    n, m = mat.shape
    out = np.full((m, m), np.nan)
    np.fill_diagonal(out, 1.0)
    if m == 0:
        return out
    valid = ~np.isnan(mat)
    any_nan = not valid.all()
    codes = np.zeros((n, m), dtype=np.int64)
    supports = np.zeros(m, dtype=np.int64)
    for j in range(m):
        col = mat[valid[:, j], j]
        if col.size < 4:
            continue
        edges = equi_depth_edges(col, bins)
        k = edges.size - 1
        # Interior edges only; values (NaN rows included, they are masked
        # per pair) map to 0..k-1.
        cj = np.searchsorted(edges[1:-1], np.nan_to_num(mat[:, j]),
                             side="right")
        codes[:, j] = np.clip(cj, 0, k - 1)
        supports[j] = k
    for i in range(m):
        if supports[i] == 0:
            continue
        for j in range(i + 1, m):
            if supports[j] == 0:
                continue
            if any_nan:
                keep = valid[:, i] & valid[:, j]
                if int(keep.sum()) < 4:
                    continue
                ci, cj = codes[keep, i], codes[keep, j]
            else:
                ci, cj = codes[:, i], codes[:, j]
            table = _joint_counts(ci, cj, int(supports[i]), int(supports[j]))
            value = (normalized_mutual_information(table) if normalized
                     else mutual_information(table))
            out[i, j] = out[j, i] = value
    return out
