"""Histograms and categorical frequency profiles.

Categorical Zig-Components compare the *frequency profiles* of the inside
and outside groups; numeric rendering in :mod:`repro.app.render` and the
binned mutual-information estimator use the equi-width / equi-depth
histograms defined here.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import InsufficientDataError


@dataclass(frozen=True)
class Histogram:
    """An equi-width histogram over a numeric sample.

    Attributes:
        edges: ``k + 1`` bin edges, strictly increasing.
        counts: ``k`` occupancy counts.
        n_missing: NaN observations excluded from the bins.
    """

    edges: np.ndarray
    counts: np.ndarray
    n_missing: int = 0

    @property
    def n(self) -> int:
        """Number of binned (non-missing) observations."""
        return int(self.counts.sum())

    @property
    def k(self) -> int:
        """Number of bins."""
        return int(self.counts.size)

    def densities(self) -> np.ndarray:
        """Probability mass per bin (sums to 1; zeros when empty)."""
        total = self.counts.sum()
        if total == 0:
            return np.zeros_like(self.counts, dtype=np.float64)
        return self.counts / total

    def bin_centers(self) -> np.ndarray:
        """Midpoints of the bins."""
        return (self.edges[:-1] + self.edges[1:]) / 2.0


@dataclass(frozen=True)
class FrequencyProfile:
    """Relative frequencies of the distinct values of a categorical sample.

    Attributes:
        categories: distinct category codes/labels in a canonical order.
        counts: occurrence count per category (aligned with ``categories``).
        n_missing: missing observations excluded from the counts.
    """

    categories: tuple = field(default_factory=tuple)
    counts: np.ndarray = field(default_factory=lambda: np.zeros(0, dtype=np.int64))
    n_missing: int = 0

    @property
    def n(self) -> int:
        """Number of counted (non-missing) observations."""
        return int(self.counts.sum())

    def proportions(self) -> np.ndarray:
        """Relative frequency per category (zeros when empty)."""
        total = self.counts.sum()
        if total == 0:
            return np.zeros_like(self.counts, dtype=np.float64)
        return self.counts / total

    def mode(self):
        """The most frequent category (ties broken by canonical order)."""
        if self.counts.size == 0 or self.counts.sum() == 0:
            return None
        return self.categories[int(np.argmax(self.counts))]

    def aligned_with(self, other: "FrequencyProfile") -> tuple[np.ndarray, np.ndarray]:
        """Return the two proportion vectors over the union of categories.

        The union preserves ``self``'s order first, then ``other``'s new
        categories.  This alignment is what the categorical effect sizes
        (total variation, Hellinger) operate on.
        """
        union = list(self.categories)
        seen = set(union)
        for cat in other.categories:
            if cat not in seen:
                union.append(cat)
                seen.add(cat)
        index_self = {c: i for i, c in enumerate(self.categories)}
        index_other = {c: i for i, c in enumerate(other.categories)}
        p = np.zeros(len(union), dtype=np.float64)
        q = np.zeros(len(union), dtype=np.float64)
        sp, sq = self.proportions(), other.proportions()
        for j, cat in enumerate(union):
            if cat in index_self:
                p[j] = sp[index_self[cat]]
            if cat in index_other:
                q[j] = sq[index_other[cat]]
        return p, q


def equi_width_histogram(values: np.ndarray, bins: int = 20,
                         edges: np.ndarray | None = None) -> Histogram:
    """Build an equi-width histogram.

    Args:
        values: numeric sample; NaNs are excluded and counted.
        bins: number of bins when ``edges`` is not given.
        edges: optional pre-computed edges, so inside/outside groups can be
            binned on a *shared* grid (required for comparable densities).
    """
    if bins < 1:
        raise ValueError(f"bins must be >= 1, got {bins}")
    arr = np.asarray(values, dtype=np.float64).ravel()
    missing = np.isnan(arr)
    data = arr[~missing]
    n_missing = int(missing.sum())
    if edges is None:
        if data.size == 0:
            raise InsufficientDataError("equi_width_histogram", needed=1, got=0)
        lo, hi = float(data.min()), float(data.max())
        if lo == hi:
            # Degenerate range: widen symmetrically so the single value
            # falls in the middle bin.
            pad = abs(lo) * 1e-9 + 1e-9
            lo, hi = lo - pad, hi + pad
        edges = np.linspace(lo, hi, bins + 1)
    else:
        edges = np.asarray(edges, dtype=np.float64)
        if edges.ndim != 1 or edges.size < 2:
            raise ValueError("edges must be a 1-d array with at least 2 entries")
        if np.any(np.diff(edges) <= 0):
            raise ValueError("edges must be strictly increasing")
    counts, _ = np.histogram(data, bins=edges)
    return Histogram(edges=edges, counts=counts.astype(np.int64), n_missing=n_missing)


def equi_depth_edges(values: np.ndarray, bins: int = 10) -> np.ndarray:
    """Quantile-based bin edges (duplicates collapsed).

    Used by the binned mutual-information estimator: equi-depth binning is
    much more robust to skew than equi-width binning.
    """
    if bins < 1:
        raise ValueError(f"bins must be >= 1, got {bins}")
    arr = np.asarray(values, dtype=np.float64).ravel()
    data = arr[~np.isnan(arr)]
    if data.size == 0:
        raise InsufficientDataError("equi_depth_edges", needed=1, got=0)
    qs = np.linspace(0.0, 1.0, bins + 1)
    edges = np.unique(np.quantile(data, qs))
    if edges.size < 2:
        pad = abs(edges[0]) * 1e-9 + 1e-9
        edges = np.array([edges[0] - pad, edges[0] + pad])
    return edges


def frequency_profile(codes, missing_token=None) -> FrequencyProfile:
    """Build a :class:`FrequencyProfile` from a sequence of category labels.

    Args:
        codes: iterable of hashable labels; ``None``, ``missing_token`` and
            float NaN entries count as missing.
        missing_token: extra sentinel to treat as missing (e.g. ``""``).
    """
    counts: dict = {}
    n_missing = 0
    for code in codes:
        if code is None or code == missing_token or _is_nan(code):
            n_missing += 1
            continue
        counts[code] = counts.get(code, 0) + 1
    categories = tuple(sorted(counts, key=lambda c: (-counts[c], str(c))))
    arr = np.array([counts[c] for c in categories], dtype=np.int64)
    return FrequencyProfile(categories=categories, counts=arr, n_missing=n_missing)


def _is_nan(value) -> bool:
    return isinstance(value, float) and value != value
