"""Asymptotic significance tests for Zig-Components.

Ziggy's post-processing stage (Section 3) "tests the significance of the
Zig-Components separately, using asymptotic bounds from the literature".
Each test here returns a :class:`TestResult` carrying the statistic, the
p-value and the degrees of freedom, so the aggregation layer can combine
them and the explanation layer can report confidence.

Test statistics are computed from sufficient statistics whenever possible
(so the cache can run them without re-reading data); only the p-value
lookups use :mod:`scipy.stats` distributions.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from scipy import stats as sps

from repro.errors import InsufficientDataError
from repro.stats.correlation import fisher_z
from repro.stats.descriptive import SummaryStats, summarize


@dataclass(frozen=True)
class TestResult:
    """Outcome of one hypothesis test.

    (``__test__ = False`` tells pytest this is not a test class.)

    Attributes:
        name: short identifier of the test ("welch_t", "fisher_z", ...).
        statistic: the test statistic.
        p_value: two-sided p-value in [0, 1].
        df: degrees of freedom (NaN for z-tests).
    """

    __test__ = False

    name: str
    statistic: float
    p_value: float
    df: float = float("nan")

    @property
    def confidence(self) -> float:
        """``1 - p``: the confidence score used to pick explanations."""
        return 1.0 - self.p_value

    def significant(self, alpha: float = 0.05) -> bool:
        """Whether the null is rejected at level ``alpha``."""
        return self.p_value <= alpha


def _as_stats(sample) -> SummaryStats:
    if isinstance(sample, SummaryStats):
        return sample
    return summarize(np.asarray(sample, dtype=np.float64))


def _two_sided_from_z(z: float) -> float:
    return float(2.0 * sps.norm.sf(abs(z)))


def welch_t_test(inside, outside) -> TestResult:
    """Welch's unequal-variance t-test for a difference of means.

    The asymptotic counterpart of the mean-difference Zig-Component.
    Degrees of freedom via the Welch–Satterthwaite approximation.
    """
    a, b = _as_stats(inside), _as_stats(outside)
    if a.n < 2 or b.n < 2:
        raise InsufficientDataError("welch_t_test", needed=2, got=min(a.n, b.n))
    va, vb = a.variance / a.n, b.variance / b.n
    denom = va + vb
    if denom <= 0.0:
        # Both groups constant: equal means -> p = 1, unequal -> p = 0.
        p = 1.0 if a.mean == b.mean else 0.0
        return TestResult("welch_t", 0.0 if p == 1.0 else math.inf, p,
                          df=float(a.n + b.n - 2))
    t = (a.mean - b.mean) / math.sqrt(denom)
    df = denom ** 2 / (va ** 2 / (a.n - 1) + vb ** 2 / (b.n - 1))
    p = float(2.0 * sps.t.sf(abs(t), df))
    return TestResult("welch_t", float(t), p, df=float(df))


def f_test_variances(inside, outside) -> TestResult:
    """F-test for equality of variances (ratio of sample variances).

    The asymptotic counterpart of the SD-ratio Zig-Component.  Sensitive
    to non-normality; the component layer pairs it with Levene's test for
    robustness when raw values are available.
    """
    a, b = _as_stats(inside), _as_stats(outside)
    if a.n < 2 or b.n < 2:
        raise InsufficientDataError("f_test_variances", needed=2, got=min(a.n, b.n))
    va, vb = a.variance, b.variance
    if va <= 0.0 and vb <= 0.0:
        return TestResult("f_var", 1.0, 1.0, df=float(a.n - 1))
    if va <= 0.0 or vb <= 0.0:
        return TestResult("f_var", math.inf, 0.0, df=float(a.n - 1))
    f = va / vb
    d1, d2 = a.n - 1, b.n - 1
    # Two-sided p: double the tail of the observed direction.
    cdf = float(sps.f.cdf(f, d1, d2))
    p = 2.0 * min(cdf, 1.0 - cdf)
    return TestResult("f_var", float(f), float(min(1.0, p)), df=float(d1))


def levene_test(inside, outside, center: str = "median") -> TestResult:
    """Brown–Forsythe/Levene test for equality of spread (raw data only).

    Robust alternative to the F-test: one-way ANOVA on absolute deviations
    from the group center.

    Args:
        center: ``"median"`` (Brown–Forsythe, default) or ``"mean"``.
    """
    x = np.asarray(inside, dtype=np.float64).ravel()
    y = np.asarray(outside, dtype=np.float64).ravel()
    x = x[~np.isnan(x)]
    y = y[~np.isnan(y)]
    if x.size < 2 or y.size < 2:
        raise InsufficientDataError("levene_test", needed=2,
                                    got=int(min(x.size, y.size)))
    if center == "median":
        cx, cy = np.median(x), np.median(y)
    elif center == "mean":
        cx, cy = x.mean(), y.mean()
    else:
        raise ValueError(f"unknown center {center!r}")
    zx = np.abs(x - cx)
    zy = np.abs(y - cy)
    n1, n2 = zx.size, zy.size
    n = n1 + n2
    zbar = (zx.sum() + zy.sum()) / n
    between = n1 * (zx.mean() - zbar) ** 2 + n2 * (zy.mean() - zbar) ** 2
    within = ((zx - zx.mean()) ** 2).sum() + ((zy - zy.mean()) ** 2).sum()
    df2 = n - 2
    if within <= 0.0:
        p = 1.0 if between <= 0.0 else 0.0
        return TestResult("levene", math.inf if p == 0.0 else 0.0, p, df=float(df2))
    w = (n - 2) * between / within
    p = float(sps.f.sf(w, 1, df2))
    return TestResult("levene", float(w), p, df=float(df2))


def fisher_z_test(r_inside: float, n_inside: int,
                  r_outside: float, n_outside: int) -> TestResult:
    """Two-sample test for equality of correlation coefficients.

    Asymptotic z-test on the Fisher-transformed gap with standard error
    ``sqrt(1/(n1-3) + 1/(n2-3))`` — the textbook bound the paper alludes
    to for the correlation-gap component.
    """
    if n_inside < 4 or n_outside < 4:
        raise InsufficientDataError("fisher_z_test", needed=4,
                                    got=min(n_inside, n_outside))
    se = math.sqrt(1.0 / (n_inside - 3) + 1.0 / (n_outside - 3))
    z = (fisher_z(r_inside) - fisher_z(r_outside)) / se
    return TestResult("fisher_z", float(z), _two_sided_from_z(z))


def chi2_independence_test(table: np.ndarray,
                           min_expected: float = 1.0) -> TestResult:
    """Pearson χ² test of independence on a contingency table.

    Used for the categorical frequency-profile component: rows = group
    (inside/outside), columns = categories.  Columns whose *expected*
    count falls below ``min_expected`` in any row are pooled into a rest
    bucket to keep the asymptotic approximation honest.
    """
    obs = np.asarray(table, dtype=np.float64)
    if obs.ndim != 2 or obs.shape[0] < 2 or obs.shape[1] < 2:
        raise ValueError("table must be at least 2x2")
    n = obs.sum()
    if n <= 0:
        raise InsufficientDataError("chi2_independence_test", needed=1, got=0)
    expected = np.outer(obs.sum(axis=1), obs.sum(axis=0)) / n
    weak = (expected < min_expected).any(axis=0)
    if weak.any() and (~weak).sum() >= 1:
        strong = obs[:, ~weak]
        pooled = obs[:, weak].sum(axis=1, keepdims=True)
        obs = np.hstack([strong, pooled])
        expected = np.outer(obs.sum(axis=1), obs.sum(axis=0)) / n
    if obs.shape[1] < 2:
        return TestResult("chi2", 0.0, 1.0, df=0.0)
    with np.errstate(divide="ignore", invalid="ignore"):
        terms = (obs - expected) ** 2 / expected
    terms[~np.isfinite(terms)] = 0.0
    stat = float(terms.sum())
    df = (obs.shape[0] - 1) * (obs.shape[1] - 1)
    p = float(sps.chi2.sf(stat, df)) if df > 0 else 1.0
    return TestResult("chi2", stat, p, df=float(df))


def two_proportion_z_test(k_inside: int, n_inside: int,
                          k_outside: int, n_outside: int) -> TestResult:
    """Two-proportion z-test (pooled), for the missing-rate component."""
    if n_inside <= 0 or n_outside <= 0:
        raise InsufficientDataError("two_proportion_z_test", needed=1,
                                    got=min(n_inside, n_outside))
    p1 = k_inside / n_inside
    p2 = k_outside / n_outside
    pooled = (k_inside + k_outside) / (n_inside + n_outside)
    se = math.sqrt(pooled * (1.0 - pooled) * (1.0 / n_inside + 1.0 / n_outside))
    if se == 0.0:
        p = 1.0 if p1 == p2 else 0.0
        return TestResult("two_prop_z", 0.0 if p == 1.0 else math.inf, p)
    z = (p1 - p2) / se
    return TestResult("two_prop_z", float(z), _two_sided_from_z(z))


def mann_whitney_u_test(inside, outside) -> TestResult:
    """Mann–Whitney U test with normal approximation and tie correction.

    Non-parametric companion of Cliff's delta; included so users who
    weight the dominance component can validate it.
    """
    x = np.asarray(inside, dtype=np.float64).ravel()
    y = np.asarray(outside, dtype=np.float64).ravel()
    x = x[~np.isnan(x)]
    y = y[~np.isnan(y)]
    n1, n2 = x.size, y.size
    if n1 < 1 or n2 < 1:
        raise InsufficientDataError("mann_whitney_u_test", needed=1,
                                    got=min(n1, n2))
    combined = np.concatenate([x, y])
    from repro.stats.correlation import rankdata  # local import avoids cycle
    ranks = rankdata(combined)
    r1 = ranks[:n1].sum()
    u1 = r1 - n1 * (n1 + 1) / 2.0
    mu = n1 * n2 / 2.0
    # Tie correction on the rank variance.
    n = n1 + n2
    _, counts = np.unique(combined, return_counts=True)
    tie_term = ((counts ** 3 - counts).sum()) / (n * (n - 1)) if n > 1 else 0.0
    var = n1 * n2 / 12.0 * (n + 1 - tie_term)
    if var <= 0.0:
        return TestResult("mann_whitney", float(u1), 1.0)
    z = (u1 - mu) / math.sqrt(var)
    return TestResult("mann_whitney", float(u1), _two_sided_from_z(z))
