"""Sketch-tier statistics: cheap per-table summaries built once.

The preparation stage is "often the most time consuming step" (Section 3
of the paper), and every statistic in the exact tier is linear in rows.
This module provides the *sketch tier* underneath
:class:`~repro.core.stats_cache.TieredStatsCache`: a set of small,
mergeable per-column summaries built in one pass at table registration,
from which per-query component scoring can be answered in time
proportional to the **sketch size**, not the table size.

Per table the sketch holds:

* a deterministic uniform **reservoir sample** of row indices, shared by
  every column so sampled rows stay aligned (pairwise statistics need
  row-consistent samples);
* exact one-pass **streaming moments** per numeric column (these make
  whole-table summaries free at query time);
* an equi-width **approximate histogram** per numeric column;
* a **zone map** (block min/max) per numeric column, the classic
  scan-pruning structure.

Everything here is deterministic given ``(n_rows, seed)``, picklable,
and mergeable across disjoint row sets, so sketches ride the statistics
cache's ``snapshot()`` / ``merge_from`` / pickle paths unchanged — shard
warm-handoff and the persistence snapshot store carry them for free.

Error-bound convention: the half-width of a mean estimate from ``k``
sampled values is ``z * sd / sqrt(k)``; in standard-deviation units that
is ``z / sqrt(k)`` (:func:`mean_margin`).  The tiered cache inverts this
(:func:`required_sample`) to decide whether a sketch answer is decisive
or the exact tier must run.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.stats.descriptive import SummaryStats, merge_stats, summarize

#: Default reservoir capacity: tables at or under this many rows are
#: sampled *completely*, which makes sketch answers bit-exact there.
DEFAULT_SKETCH_CAPACITY = 4096

#: Default equi-width histogram resolution per column.
DEFAULT_HISTOGRAM_BINS = 64

#: Default zone-map block size (rows per min/max block).
DEFAULT_ZONE_BLOCK = 4096

#: Default deterministic seed for the shared row reservoir.
DEFAULT_SKETCH_SEED = 2016

#: Normal critical value backing the default error bounds (~95%).
Z_95 = 1.96


def mean_margin(k: int, z: float = Z_95) -> float:
    """Half-width of a mean estimate from ``k`` samples, in SD units."""
    if k <= 0:
        return float("inf")
    return z / math.sqrt(k)


def required_sample(margin: float, z: float = Z_95) -> int:
    """Smallest sample size whose :func:`mean_margin` is within ``margin``."""
    if margin <= 0:
        return 1 << 62  # unobtainable: forces the exact tier
    return int(math.ceil((z / margin) ** 2))


@dataclass(frozen=True)
class SketchEstimate:
    """A sketch-derived scalar with its error half-width.

    ``margin`` is in the same units as ``value``; ``exact`` marks
    estimates whose sample covered the whole population (zero error).
    """

    value: float
    margin: float
    exact: bool = False

    def decides(self, other: "SketchEstimate") -> bool:
        """Whether the two confidence intervals are disjoint — i.e. the
        sketch already decides which value is larger."""
        lo_a, hi_a = self.value - self.margin, self.value + self.margin
        lo_b, hi_b = other.value - other.margin, other.value + other.margin
        return hi_a < lo_b or hi_b < lo_a


@dataclass(frozen=True)
class ZoneMap:
    """Per-block min/max of one column — scan pruning for range predicates.

    ``mins``/``maxs`` are NaN for blocks that hold only missing values.
    """

    block_size: int
    mins: np.ndarray
    maxs: np.ndarray

    @classmethod
    def build(cls, values: np.ndarray,
              block_size: int = DEFAULT_ZONE_BLOCK) -> "ZoneMap":
        arr = np.asarray(values, dtype=np.float64).ravel()
        n_blocks = max(1, -(-arr.size // block_size)) if arr.size else 0
        mins = np.full(n_blocks, np.nan)
        maxs = np.full(n_blocks, np.nan)
        with np.errstate(invalid="ignore"):
            for b in range(n_blocks):
                chunk = arr[b * block_size:(b + 1) * block_size]
                valid = chunk[~np.isnan(chunk)]
                if valid.size:
                    mins[b] = valid.min()
                    maxs[b] = valid.max()
        return cls(block_size=int(block_size), mins=mins, maxs=maxs)

    def may_contain(self, low: float, high: float) -> np.ndarray:
        """Boolean per block: could any value fall inside ``[low, high]``?"""
        with np.errstate(invalid="ignore"):
            overlap = (self.maxs >= low) & (self.mins <= high)
        return np.where(np.isnan(self.mins), False, overlap)

    def merge(self, other: "ZoneMap") -> "ZoneMap":
        """Zone map of the row concatenation (block sizes must agree)."""
        if other.block_size != self.block_size:
            raise ValueError("cannot merge zone maps with different block sizes")
        return ZoneMap(block_size=self.block_size,
                       mins=np.concatenate([self.mins, other.mins]),
                       maxs=np.concatenate([self.maxs, other.maxs]))


@dataclass(frozen=True)
class ApproximateHistogram:
    """Equi-width histogram over the non-missing values of one column."""

    edges: np.ndarray
    counts: np.ndarray
    n_missing: int

    @classmethod
    def build(cls, values: np.ndarray,
              bins: int = DEFAULT_HISTOGRAM_BINS) -> "ApproximateHistogram":
        arr = np.asarray(values, dtype=np.float64).ravel()
        missing = np.isnan(arr)
        data = arr[~missing]
        if data.size == 0:
            return cls(edges=np.array([0.0, 1.0]),
                       counts=np.zeros(1, dtype=np.int64),
                       n_missing=int(missing.sum()))
        lo, hi = float(data.min()), float(data.max())
        if lo == hi:
            hi = lo + 1.0
        counts, edges = np.histogram(data, bins=int(bins), range=(lo, hi))
        return cls(edges=edges, counts=counts.astype(np.int64),
                   n_missing=int(missing.sum()))

    @property
    def n(self) -> int:
        """Number of non-missing values summarized."""
        return int(self.counts.sum())

    def estimate_fraction_below(self, threshold: float) -> float:
        """Approximate ``P(value <= threshold)`` by linear interpolation
        inside the straddling bin."""
        total = self.n
        if total == 0:
            return 0.0
        edges, counts = self.edges, self.counts
        if threshold < edges[0]:
            return 0.0
        if threshold >= edges[-1]:
            return 1.0
        idx = int(np.searchsorted(edges, threshold, side="right") - 1)
        idx = min(max(idx, 0), counts.size - 1)
        below = float(counts[:idx].sum())
        width = edges[idx + 1] - edges[idx]
        frac = (threshold - edges[idx]) / width if width > 0 else 0.0
        return (below + frac * float(counts[idx])) / total

    def merge(self, other: "ApproximateHistogram") -> "ApproximateHistogram":
        """Histogram of the combined samples, re-binned onto equi-width
        edges spanning both ranges (mass assigned at bin centers —
        approximate by design)."""
        if self.n == 0:
            return ApproximateHistogram(other.edges, other.counts.copy(),
                                        self.n_missing + other.n_missing)
        if other.n == 0:
            return ApproximateHistogram(self.edges, self.counts.copy(),
                                        self.n_missing + other.n_missing)
        lo = min(float(self.edges[0]), float(other.edges[0]))
        hi = max(float(self.edges[-1]), float(other.edges[-1]))
        if lo == hi:
            hi = lo + 1.0
        bins = max(self.counts.size, other.counts.size)
        edges = np.linspace(lo, hi, bins + 1)
        counts = np.zeros(bins, dtype=np.int64)
        for part in (self, other):
            centers = (part.edges[:-1] + part.edges[1:]) / 2.0
            idx = np.clip(np.searchsorted(edges, centers, side="right") - 1,
                          0, bins - 1)
            np.add.at(counts, idx, part.counts)
        return ApproximateHistogram(edges=edges, counts=counts,
                                    n_missing=self.n_missing + other.n_missing)


@dataclass(frozen=True)
class ColumnSketch:
    """All sketch structures for one numeric column.

    ``moments`` are **exact** (one streaming pass over the full column);
    ``sample`` holds the column's values at the table's shared reservoir
    rows, in row order.
    """

    name: str
    moments: SummaryStats
    sample: np.ndarray
    histogram: ApproximateHistogram
    zone_map: ZoneMap

    def estimate_mean(self, z: float = Z_95) -> SketchEstimate:
        """The column mean with its sampling half-width.

        The moments are exact, so the value itself has no error — the
        margin reported is the one a *sample of this size* carries, which
        is what downstream per-query estimates (computed from sample
        subsets) inherit.
        """
        sd = self.moments.std
        sd = sd if sd == sd else 0.0
        k = int(self.sample.size)
        exact = k >= self.moments.total
        margin = 0.0 if exact else mean_margin(k, z) * sd
        return SketchEstimate(value=self.moments.mean, margin=margin,
                              exact=exact)


def sample_indices(n_rows: int, capacity: int,
                   seed: int = DEFAULT_SKETCH_SEED) -> np.ndarray:
    """Deterministic uniform sample of row indices, sorted ascending.

    Tables with at most ``capacity`` rows are covered completely — the
    degenerate-but-important case that makes the sketch tier exact on
    small tables.
    """
    if n_rows <= capacity:
        return np.arange(n_rows, dtype=np.int64)
    rng = np.random.default_rng([int(seed), int(n_rows)])
    idx = rng.choice(n_rows, size=int(capacity), replace=False)
    return np.sort(idx.astype(np.int64))


@dataclass(frozen=True)
class TableSketch:
    """The sketch tier for one table: shared reservoir + per-column sketches.

    Keyed by the table's content fingerprint inside the tiered cache; the
    sketch itself never references the table.
    """

    fingerprint: str
    n_rows: int
    capacity: int
    seed: int
    row_indices: np.ndarray
    columns: dict[str, ColumnSketch] = field(default_factory=dict)

    @property
    def covers_all(self) -> bool:
        """Whether the reservoir holds every row (sketch == exact)."""
        return self.row_indices.size >= self.n_rows

    @property
    def sample_size(self) -> int:
        """Number of sampled rows."""
        return int(self.row_indices.size)

    def sample_mask(self, mask: np.ndarray) -> np.ndarray:
        """Restrict a full-length row mask to the sampled rows."""
        mask = np.asarray(mask)
        if mask.shape != (self.n_rows,):
            raise ValueError(
                f"mask length {mask.shape} does not match sketched table "
                f"({self.n_rows} rows)")
        return mask[self.row_indices]

    @classmethod
    def build(cls, table, capacity: int = DEFAULT_SKETCH_CAPACITY,
              seed: int = DEFAULT_SKETCH_SEED,
              histogram_bins: int = DEFAULT_HISTOGRAM_BINS,
              zone_block: int = DEFAULT_ZONE_BLOCK) -> "TableSketch":
        """One pass over each numeric column of a table.

        Build cost is O(rows x numeric columns) — paid once per table at
        registration, amortized over every subsequent query.
        """
        rows = sample_indices(table.n_rows, capacity, seed)
        columns: dict[str, ColumnSketch] = {}
        for name in table.numeric_column_names():
            values = table.column(name).numeric_values()
            columns[name] = ColumnSketch(
                name=name,
                moments=summarize(values),
                sample=np.ascontiguousarray(values[rows]),
                histogram=ApproximateHistogram.build(values, histogram_bins),
                zone_map=ZoneMap.build(values, zone_block),
            )
        return cls(fingerprint=table.fingerprint(), n_rows=table.n_rows,
                   capacity=int(capacity), seed=int(seed),
                   row_indices=rows, columns=columns)

    def sample_matrix(self, names: tuple[str, ...]) -> np.ndarray:
        """Sampled rows x named columns, row-aligned across columns."""
        if not names:
            return np.empty((self.sample_size, 0), dtype=np.float64)
        return np.column_stack([self.columns[n].sample for n in names])

    def merge(self, other: "TableSketch") -> "TableSketch":
        """Sketch of the row concatenation of two disjoint tables.

        Moments merge exactly (Chan et al.); the combined reservoir is
        re-thinned to capacity deterministically; histograms re-bin and
        zone maps concatenate.  The merged sketch carries a synthetic
        fingerprint — callers re-key it under the concatenated table's
        real fingerprint when they have one.
        """
        if set(self.columns) != set(other.columns):
            raise ValueError("cannot merge sketches with different columns")
        if other.capacity != self.capacity:
            raise ValueError("cannot merge sketches with different capacities")
        n_rows = self.n_rows + other.n_rows
        rows = np.concatenate([self.row_indices,
                               other.row_indices + self.n_rows])
        keep = np.arange(rows.size, dtype=np.int64)
        if rows.size > self.capacity:
            # Deterministic thinning: both sides are uniform over their own
            # tables, so a uniform pick over the union stays uniform.
            rng = np.random.default_rng([int(self.seed), int(n_rows)])
            keep = np.sort(rng.choice(rows.size, size=self.capacity,
                                      replace=False).astype(np.int64))
        columns: dict[str, ColumnSketch] = {}
        for name, col in self.columns.items():
            oth = other.columns[name]
            sample = np.concatenate([col.sample, oth.sample])[keep]
            columns[name] = ColumnSketch(
                name=name,
                moments=merge_stats(col.moments, oth.moments),
                sample=sample,
                histogram=col.histogram.merge(oth.histogram),
                zone_map=col.zone_map.merge(oth.zone_map),
            )
        return TableSketch(
            fingerprint=f"{self.fingerprint}+{other.fingerprint}",
            n_rows=n_rows, capacity=self.capacity, seed=self.seed,
            row_indices=rows[keep], columns=columns)


def estimate_summary(sample: SummaryStats, population_total: int,
                     population: SummaryStats | None = None) -> SummaryStats:
    """Scale a sample summary up to a known population size.

    The moment *sums* (``m2``..``m4``) scale linearly with the count;
    means and rates carry over.  When the exact ``population`` summary is
    given, the estimated missing count is clamped so the result stays a
    valid subtrahend for ``population.subtract`` (never more missing than
    the population has, never fewer than the population forces).
    """
    if sample.total == 0 or population_total <= sample.total:
        return sample
    est_missing = int(round(population_total * sample.missing_rate))
    if population is not None:
        lo = max(0, population_total - population.n)
        hi = min(population.n_missing, population_total)
        est_missing = min(max(est_missing, lo), hi)
    est_n = population_total - est_missing
    if sample.n == 0 or est_n <= 0:
        return SummaryStats(0, population_total, float("nan"),
                            0.0, 0.0, 0.0, float("nan"), float("nan"))
    scale = est_n / sample.n
    return SummaryStats(
        n=est_n,
        n_missing=est_missing,
        mean=sample.mean,
        m2=sample.m2 * scale,
        m3=sample.m3 * scale,
        m4=sample.m4 * scale,
        minimum=sample.minimum,
        maximum=sample.maximum,
    )
