"""Descriptive statistics with mergeable sufficient statistics.

The preparation stage of Ziggy computes per-column and per-column-pair
statistics over the *inside* (selected) and *outside* (complement) tuple
groups.  To support the cross-query computation-sharing strategy of the
paper (Section 3, "Preparation"), the summaries here are built on
*sufficient statistics* (count and centered moments up to order four) that
can be merged: the outside-group summary is derived as
``global - inside`` without re-scanning the complement.

All functions treat ``NaN`` as a missing value: it is excluded from the
moments but counted in :attr:`SummaryStats.n_missing`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import InsufficientDataError


@dataclass(frozen=True)
class SummaryStats:
    """Moment-based summary of a numeric sample.

    The first four centered moments are stored as *sums* (``m2`` is the sum
    of squared deviations, etc.) so that two summaries can be combined with
    :func:`merge_stats` or subtracted with :meth:`subtract` exactly — this
    is the algebraic backbone of the statistics cache.

    Attributes:
        n: number of non-missing observations.
        n_missing: number of missing (NaN) observations.
        mean: arithmetic mean of the non-missing observations.
        m2: sum of squared deviations from the mean.
        m3: sum of cubed deviations.
        m4: sum of fourth-power deviations.
        minimum: smallest non-missing value (``nan`` when ``n == 0``).
        maximum: largest non-missing value (``nan`` when ``n == 0``).
    """

    n: int
    n_missing: int
    mean: float
    m2: float
    m3: float
    m4: float
    minimum: float
    maximum: float

    # -- derived quantities -------------------------------------------------

    @property
    def total(self) -> int:
        """Total observations including missing ones."""
        return self.n + self.n_missing

    @property
    def missing_rate(self) -> float:
        """Fraction of observations that are missing (0 when empty)."""
        return self.n_missing / self.total if self.total else 0.0

    @property
    def variance(self) -> float:
        """Unbiased (n-1) sample variance; ``nan`` when ``n < 2``."""
        if self.n < 2:
            return float("nan")
        return self.m2 / (self.n - 1)

    @property
    def variance_population(self) -> float:
        """Population (n) variance; ``nan`` when ``n < 1``."""
        if self.n < 1:
            return float("nan")
        return self.m2 / self.n

    @property
    def std(self) -> float:
        """Unbiased sample standard deviation."""
        v = self.variance
        return math.sqrt(v) if v == v else float("nan")

    @property
    def sem(self) -> float:
        """Standard error of the mean."""
        if self.n < 2:
            return float("nan")
        return self.std / math.sqrt(self.n)

    @property
    def skewness(self) -> float:
        """Adjusted Fisher-Pearson skewness; ``nan`` when undefined."""
        if self.n < 3 or self.m2 <= 0:
            return float("nan")
        g1 = (self.m3 / self.n) / (self.m2 / self.n) ** 1.5
        n = self.n
        return math.sqrt(n * (n - 1)) / (n - 2) * g1

    @property
    def kurtosis_excess(self) -> float:
        """Excess kurtosis (normal = 0); ``nan`` when undefined."""
        if self.n < 4 or self.m2 <= 0:
            return float("nan")
        n = self.n
        g2 = (self.m4 / n) / (self.m2 / n) ** 2 - 3.0
        return ((n + 1) * g2 + 6) * (n - 1) / ((n - 2) * (n - 3))

    @property
    def value_range(self) -> float:
        """``maximum - minimum``; ``nan`` when empty."""
        return self.maximum - self.minimum

    # -- serialization -------------------------------------------------------

    def to_wire(self) -> tuple:
        """A flat 8-tuple of native numbers — the compact wire form.

        For protocols that move cache entries outside pickle (snapshot
        files, cross-host transports): a tuple of scalars serializes to
        a fraction of a full dataclass payload and round-trips exactly,
        non-finite floats included.  (In-process executor backends ship
        whole caches via :class:`StatsCache` pickling, which keeps the
        dataclasses; this is the building block for anything leaner.)
        """
        return (int(self.n), int(self.n_missing), float(self.mean),
                float(self.m2), float(self.m3), float(self.m4),
                float(self.minimum), float(self.maximum))

    @classmethod
    def from_wire(cls, wire: tuple) -> "SummaryStats":
        """Rebuild a summary from :meth:`to_wire` output."""
        n, n_missing, mean, m2, m3, m4, minimum, maximum = wire
        return cls(n=int(n), n_missing=int(n_missing), mean=float(mean),
                   m2=float(m2), m3=float(m3), m4=float(m4),
                   minimum=float(minimum), maximum=float(maximum))

    # -- algebra -------------------------------------------------------------

    def subtract(self, part: "SummaryStats") -> "SummaryStats":
        """Return the summary of ``self``'s sample minus ``part``'s sample.

        ``part`` must summarize a subset of the observations summarized by
        ``self``.  Min/max cannot be recovered by subtraction, so the
        result inherits the parent's bounds (a conservative superset —
        acceptable for effect-size normalization, which is what the cache
        uses it for).
        """
        n = self.n - part.n
        if n < 0:
            raise ValueError("cannot subtract a larger sample from a smaller one")
        n_missing = self.n_missing - part.n_missing
        if n_missing < 0:
            raise ValueError("missing counts are inconsistent between whole and part")
        if n == 0:
            return SummaryStats(0, n_missing, float("nan"), 0.0, 0.0, 0.0,
                                float("nan"), float("nan"))
        if part.n == 0:
            # Subtracting an empty sample: only missing counts change
            # (part.mean is NaN and must not enter the arithmetic).
            return SummaryStats(self.n, n_missing, self.mean, self.m2,
                                self.m3, self.m4, self.minimum, self.maximum)
        # Invert Chan et al.'s pairwise-merge update for the moments.
        mean = (self.mean * self.n - part.mean * part.n) / n
        delta = part.mean - mean
        n_a, n_b, n_ab = n, part.n, self.n
        m2 = self.m2 - part.m2 - delta * delta * n_a * n_b / n_ab
        m3 = (self.m3 - part.m3
              - delta ** 3 * n_a * n_b * (n_a - n_b) / n_ab ** 2
              - 3.0 * delta * (n_a * part.m2 - n_b * m2) / n_ab)
        m4 = (self.m4 - part.m4
              - delta ** 4 * n_a * n_b * (n_a ** 2 - n_a * n_b + n_b ** 2) / n_ab ** 3
              - 6.0 * delta ** 2 * (n_a ** 2 * part.m2 + n_b ** 2 * m2) / n_ab ** 2
              - 4.0 * delta * (n_a * part.m3 - n_b * m3) / n_ab)
        return SummaryStats(
            n=n,
            n_missing=n_missing,
            mean=mean,
            m2=max(m2, 0.0),
            m3=m3,
            m4=max(m4, 0.0),
            minimum=self.minimum,
            maximum=self.maximum,
        )


_EMPTY = SummaryStats(0, 0, float("nan"), 0.0, 0.0, 0.0, float("nan"), float("nan"))


def summarize(values: np.ndarray) -> SummaryStats:
    """Compute a :class:`SummaryStats` for a 1-d array of floats.

    NaNs are treated as missing.  Runs in one vectorized pass.
    """
    arr = np.asarray(values, dtype=np.float64).ravel()
    missing = np.isnan(arr)
    n_missing = int(missing.sum())
    data = arr[~missing]
    n = data.size
    if n == 0:
        return SummaryStats(0, n_missing, float("nan"), 0.0, 0.0, 0.0,
                            float("nan"), float("nan"))
    mean = float(data.mean())
    dev = data - mean
    dev2 = dev * dev
    m2 = float(dev2.sum())
    m3 = float((dev2 * dev).sum())
    m4 = float((dev2 * dev2).sum())
    return SummaryStats(
        n=n,
        n_missing=n_missing,
        mean=mean,
        m2=m2,
        m3=m3,
        m4=m4,
        minimum=float(data.min()),
        maximum=float(data.max()),
    )


def merge_stats(a: SummaryStats, b: SummaryStats) -> SummaryStats:
    """Combine summaries of two disjoint samples (Chan et al. update)."""
    if a.n == 0:
        if b.n == 0:
            return SummaryStats(0, a.n_missing + b.n_missing, float("nan"),
                                0.0, 0.0, 0.0, float("nan"), float("nan"))
        return SummaryStats(b.n, a.n_missing + b.n_missing, b.mean, b.m2,
                            b.m3, b.m4, b.minimum, b.maximum)
    if b.n == 0:
        return SummaryStats(a.n, a.n_missing + b.n_missing, a.mean, a.m2,
                            a.m3, a.m4, a.minimum, a.maximum)
    n = a.n + b.n
    delta = b.mean - a.mean
    mean = a.mean + delta * b.n / n
    m2 = a.m2 + b.m2 + delta * delta * a.n * b.n / n
    m3 = (a.m3 + b.m3
          + delta ** 3 * a.n * b.n * (a.n - b.n) / n ** 2
          + 3.0 * delta * (a.n * b.m2 - b.n * a.m2) / n)
    m4 = (a.m4 + b.m4
          + delta ** 4 * a.n * b.n * (a.n ** 2 - a.n * b.n + b.n ** 2) / n ** 3
          + 6.0 * delta ** 2 * (a.n ** 2 * b.m2 + b.n ** 2 * a.m2) / n ** 2
          + 4.0 * delta * (a.n * b.m3 - b.n * a.m3) / n)
    return SummaryStats(
        n=n,
        n_missing=a.n_missing + b.n_missing,
        mean=mean,
        m2=m2,
        m3=m3,
        m4=m4,
        minimum=min(a.minimum, b.minimum),
        maximum=max(a.maximum, b.maximum),
    )


def quantile(values: np.ndarray, q: float | np.ndarray) -> float | np.ndarray:
    """NaN-aware linear-interpolation quantile.

    Raises :class:`InsufficientDataError` when there are no observations,
    instead of returning NaN, so callers never propagate silent NaNs.
    """
    arr = np.asarray(values, dtype=np.float64).ravel()
    data = arr[~np.isnan(arr)]
    if data.size == 0:
        raise InsufficientDataError("quantile", needed=1, got=0)
    result = np.quantile(data, q)
    if np.isscalar(q) or getattr(q, "ndim", 0) == 0:
        return float(result)
    return result


def standardize(values: np.ndarray, center: float | None = None,
                scale: float | None = None) -> np.ndarray:
    """Return ``(values - center) / scale`` with NaNs preserved.

    When center/scale are omitted they default to the sample mean and
    standard deviation.  A zero or NaN scale degrades to pure centering so
    constant columns do not produce infinities.
    """
    arr = np.asarray(values, dtype=np.float64)
    stats = summarize(arr)
    if center is None:
        center = stats.mean if stats.n else 0.0
    if scale is None:
        scale = stats.std
    if not scale or scale != scale:
        scale = 1.0
    return (arr - center) / scale
