"""Process-wide table registration with ref-counting and LRU eviction.

The :class:`TableStore` is the runtime's answer to "who may keep a table
alive, and for how long?".  Every table that enters the shared runtime is
registered here under a name, identified by its content
:meth:`~repro.engine.table.Table.fingerprint`, and held with a strong
reference only while it fits the store's limits:

* ``max_tables`` bounds how many tables the store pins at once;
* ``max_bytes`` bounds their combined column-data footprint.

When a limit is exceeded the least-recently-used *unpinned* entry is
evicted: the store drops its strong reference and notifies its eviction
listeners (the :class:`~repro.runtime.SharedStatsRegistry` subscribes, so
an evicted table's cached moments are freed with it).  Entries whose
reference count is positive — a characterization is running against them
— are never evicted mid-run.

Weak-ref safety: after eviction the store remembers the table only
through a :class:`weakref.ref`, so a table kept alive by some other owner
(a session's database, a test fixture) can be looked up again without
re-hashing, while a table nobody else holds is actually freed — the
store never resurrects memory the process wanted back.
"""

from __future__ import annotations

import itertools
import threading
import weakref
from dataclasses import dataclass, field
from typing import Callable

from repro.engine.table import Table
from repro.errors import ReproError


class TableStoreError(ReproError):
    """Raised on table-store misuse (unknown names, unbalanced release)."""


@dataclass
class TableEntry:
    """The store's record of one registered table."""

    name: str
    fingerprint: str
    nbytes: int
    table: Table | None = None          # strong ref while resident
    weak: weakref.ref | None = field(default=None, repr=False)
    refcount: int = 0                   # pins held by running work
    last_used: int = 0                  # LRU clock tick
    registrations: int = 1              # how many times register() saw it
    doomed: bool = False                # displaced while pinned; evict on
                                        # last release

    @property
    def resident(self) -> bool:
        """Whether the store still holds a strong reference."""
        return self.table is not None

    def resolve(self) -> Table | None:
        """The table, via the strong or (post-eviction) weak reference."""
        if self.table is not None:
            return self.table
        return self.weak() if self.weak is not None else None


#: Eviction listener signature: called with the evicted entry *after* the
#: strong reference is dropped (the entry's ``table`` is already None).
EvictListener = Callable[[TableEntry], None]


class TableStore:
    """Named, fingerprinted, ref-counted table registry with LRU eviction.

    Args:
        max_tables: most resident (strongly held) tables; None = unbounded.
        max_bytes: byte budget over resident tables' column data;
            None = unbounded.
    """

    def __init__(self, max_tables: int | None = None,
                 max_bytes: int | None = None):
        if max_tables is not None and max_tables < 1:
            raise TableStoreError("max_tables must be at least 1")
        if max_bytes is not None and max_bytes < 0:
            raise TableStoreError("max_bytes must be non-negative")
        self.max_tables = max_tables
        self.max_bytes = max_bytes
        self._entries: dict[str, TableEntry] = {}
        self._clock = itertools.count(1)
        self._lock = threading.RLock()
        self._listeners: list[EvictListener] = []
        self.evictions = 0

    # -- registration -------------------------------------------------------------

    def register(self, table: Table, name: str | None = None) -> TableEntry:
        """Register (or refresh) a table; returns its entry.

        Re-registering the same content under the same name is a cheap
        LRU bump (it also revives an evicted entry).  Registering
        *different* content under an existing name replaces the entry
        (and evicts the old content's runtime state).  Without an
        explicit ``name``, content already registered under *any* name is
        recognized by fingerprint and refreshed in place — a catalog
        alias must never double-count bytes or split an entry.
        """
        return self._register(table, name, pin=False)

    def _register(self, table: Table, name: str | None,
                  pin: bool) -> TableEntry:
        fingerprint = table.fingerprint()
        with self._lock:
            if name is None:
                aliased = self._entry_by_fingerprint(fingerprint)
                key = aliased.name if aliased is not None else table.name
            else:
                key = name
            entry = self._entries.get(key)
            if entry is not None and entry.fingerprint != fingerprint:
                # Same name, new content: the old state goes — but never
                # out from under an active lease.  A pinned entry is
                # displaced to a tombstone key and evicted when its last
                # pin is released; an unpinned one goes immediately.
                del self._entries[key]
                if entry.refcount > 0:
                    entry.name = f"{key}#displaced-{next(self._clock)}"
                    entry.doomed = True
                    self._entries[entry.name] = entry
                else:
                    self._evict_entry(entry)
                entry = None
            if entry is not None:
                entry.table = table          # revive if it had been evicted
                entry.weak = weakref.ref(table)
                entry.last_used = next(self._clock)
                entry.registrations += 1
            else:
                entry = TableEntry(name=key, fingerprint=fingerprint,
                                   nbytes=table.nbytes(), table=table,
                                   weak=weakref.ref(table),
                                   last_used=next(self._clock))
                self._entries[key] = entry
            if pin:
                # Pin *before* enforcing limits, so the entry being
                # leased can never be chosen as its own eviction victim.
                entry.refcount += 1
            self._enforce_limits()
            return entry

    def get(self, name: str) -> Table:
        """Look up a registered table by name (bumps LRU recency)."""
        with self._lock:
            entry = self._entries.get(name)
            table = entry.resolve() if entry is not None else None
            if entry is None or table is None:
                raise TableStoreError(
                    f"table {name!r} is not registered"
                    + ("" if entry is None else " (evicted and collected)"))
            entry.last_used = next(self._clock)
            return table

    def entry_for(self, name: str) -> TableEntry | None:
        """The entry registered under ``name``, if any."""
        with self._lock:
            return self._entries.get(name)

    def _entry_by_fingerprint(self, fingerprint: str) -> TableEntry | None:
        # Caller holds the lock.  Linear scan: stores hold at most a few
        # dozen entries (max_tables-bounded), so an index isn't worth it.
        # A resident entry wins over a ghost sharing the fingerprint.
        ghost = None
        for entry in self._entries.values():
            if entry.fingerprint == fingerprint:
                if entry.resident:
                    return entry
                ghost = entry
        return ghost

    def has_resident_fingerprint(self, fingerprint: str) -> bool:
        """Whether any *resident* entry still carries this fingerprint
        (used by eviction listeners to avoid dropping shared state that
        another alias keeps alive)."""
        with self._lock:
            return any(e.fingerprint == fingerprint and e.resident
                       for e in self._entries.values())

    def names(self) -> tuple[str, ...]:
        """All registered names (resident or not), sorted."""
        with self._lock:
            return tuple(sorted(self._entries))

    # -- ref-counting -------------------------------------------------------------

    def acquire(self, table: Table, name: str | None = None) -> TableEntry:
        """Register-and-pin: the entry cannot be evicted until released
        (the pin lands before limit enforcement, so a lease taken under
        limit pressure never evicts its own table)."""
        return self._register(table, name, pin=True)

    def release(self, entry: TableEntry) -> None:
        """Drop one pin; eviction may reclaim the entry afterwards."""
        with self._lock:
            if entry.refcount <= 0:
                raise TableStoreError(
                    f"unbalanced release of table {entry.name!r}")
            entry.refcount -= 1
            if entry.refcount == 0 and entry.doomed and entry.resident:
                self._evict_entry(entry)
            self._enforce_limits()

    # -- eviction -----------------------------------------------------------------

    def add_evict_listener(self, listener: EvictListener) -> None:
        """Subscribe to evictions (called after the strong ref is dropped)."""
        self._listeners.append(listener)

    def evict(self, name: str) -> bool:
        """Explicitly evict one entry; returns False when absent,
        pinned, or already evicted."""
        with self._lock:
            entry = self._entries.get(name)
            if entry is None or not entry.resident or entry.refcount > 0:
                return False
            self._evict_entry(entry)
            return True

    def _evict_entry(self, entry: TableEntry) -> None:
        # Caller holds the lock.  Drop the strong ref but keep the entry
        # as a "ghost": the weak ref lets a table still alive elsewhere
        # be looked up or re-registered without re-hashing, while a table
        # nobody holds is actually freed.
        entry.table = None
        self.evictions += 1
        for listener in self._listeners:
            listener(entry)

    def _enforce_limits(self) -> None:
        # Caller holds the lock.
        # Opportunistically drop ghosts whose table has been collected —
        # they can never be revived and would accrete forever.
        dead = [name for name, e in self._entries.items()
                if not e.resident and e.resolve() is None]
        for name in dead:
            del self._entries[name]
        while True:
            resident = [e for e in self._entries.values() if e.resident]
            over_count = (self.max_tables is not None
                          and len(resident) > self.max_tables)
            over_bytes = (self.max_bytes is not None
                          and sum(e.nbytes for e in resident) > self.max_bytes)
            if not (over_count or over_bytes):
                return
            victims = sorted((e for e in resident if e.refcount == 0),
                             key=lambda e: e.last_used)
            if not victims:
                return  # everything is pinned; limits re-checked on release
            self._evict_entry(victims[0])

    # -- introspection ------------------------------------------------------------

    def stats(self) -> dict:
        """A snapshot for health endpoints and benchmarks."""
        with self._lock:
            resident = [e for e in self._entries.values() if e.resident]
            return {
                "tables": len(self._entries),
                "resident": len(resident),
                "pinned": sum(1 for e in resident if e.refcount > 0),
                "resident_bytes": sum(e.nbytes for e in resident),
                "evictions": self.evictions,
                "max_tables": self.max_tables,
                "max_bytes": self.max_bytes,
            }
