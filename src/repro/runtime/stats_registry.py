"""Cross-client sharing of per-table statistics caches.

The paper's headline performance claim is *computation sharing*: global
statistics are computed once per table and reused by every query.  The
:class:`SharedStatsRegistry` extends that guarantee across clients — it
keys one :class:`~repro.core.stats_cache.StatsCache` per table
**fingerprint** (content hash, never object identity) and hands the same
instance to every session, job and batch that touches that table, so two
clients exploring one table pay the preparation cost once between them.

The registry is lock-striped: fingerprints map onto a small fixed set of
locks, so concurrent lookups for *different* tables proceed in parallel
while lookups for the *same* table serialize just long enough to agree on
one cache instance.  The caches themselves are thread-safe (see
:class:`StatsCache`), so borrowers use them without further coordination.

Borrowers are tracked per fingerprint, which is how the registry can
report **cross-client hits** — the observable evidence that sharing is
happening (surfaced by the shared-cache benchmark and the acceptance
tests).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from zlib import crc32

from repro.core.stats_cache import StatsCache, TieredStatsCache
from repro.engine.table import Table

#: Default number of lock stripes (power of two; collisions are harmless,
#: they only serialize unrelated lookups occasionally).
DEFAULT_STRIPES = 16


class _Shard:
    """One stripe's slice of the registry: a lock plus the maps it guards."""

    __slots__ = ("lock", "caches", "borrowers")

    def __init__(self):
        self.lock = threading.Lock()
        self.caches: dict[str, StatsCache] = {}
        self.borrowers: dict[str, set[str]] = {}


@dataclass(frozen=True)
class RegistryStats:
    """A snapshot of the registry's sharing behaviour."""

    caches: int
    entries: int
    hits: int
    misses: int
    cross_client_hits: int
    evictions: int

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served by an existing cache."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def to_dict(self) -> dict:
        return {
            "caches": self.caches, "entries": self.entries,
            "hits": self.hits, "misses": self.misses,
            "cross_client_hits": self.cross_client_hits,
            "evictions": self.evictions, "hit_rate": self.hit_rate,
        }


class SharedStatsRegistry:
    """One :class:`StatsCache` per table fingerprint, shared by everyone.

    Args:
        stripes: number of locks guarding the fingerprint map.
    """

    def __init__(self, stripes: int = DEFAULT_STRIPES):
        if stripes < 1:
            raise ValueError("stripes must be at least 1")
        # Each stripe owns its slice of the fingerprint space: a lock and
        # the cache/borrower maps it guards.  Lookups for fingerprints on
        # different stripes genuinely proceed in parallel; whole-registry
        # operations (stats, clear) visit the stripes one at a time.
        self._shards = tuple(_Shard() for _ in range(stripes))
        self._counter_lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.cross_client_hits = 0
        self.evictions = 0

    def _shard(self, fingerprint: str) -> "_Shard":
        return self._shards[crc32(fingerprint.encode()) % len(self._shards)]

    @staticmethod
    def _make_cache() -> StatsCache:
        """Registry-created caches are tiered: the sketch underneath is
        what converts the warm hot path from linear to sublinear."""
        return TieredStatsCache()

    # -- lookup -------------------------------------------------------------------

    def cache_for(self, table: Table,
                  borrower: str = "anonymous") -> StatsCache:
        """The shared cache for one table, created on first borrow.

        ``borrower`` identifies the client/session asking; a lookup that
        finds a cache first borrowed by *someone else* counts as a
        cross-client hit.
        """
        return self.cache_for_fingerprint(table.fingerprint(),
                                          borrower=borrower)

    def cache_for_fingerprint(self, fingerprint: str,
                              borrower: str = "anonymous") -> StatsCache:
        """Fingerprint-keyed variant (for callers that pre-hashed)."""
        shard = self._shard(fingerprint)
        with shard.lock:
            cache = shard.caches.get(fingerprint)
            created = cache is None
            if created:
                cache = self._make_cache()
                shard.caches[fingerprint] = cache
                shard.borrowers[fingerprint] = set()
            borrowers = shard.borrowers[fingerprint]
            cross = not created and bool(borrowers - {borrower})
            borrowers.add(borrower)
        with self._counter_lock:
            if created:
                self.misses += 1
            else:
                self.hits += 1
                if cross:
                    self.cross_client_hits += 1
        return cache

    def warm(self, table: Table,
             snapshot: StatsCache | None = None) -> StatsCache:
        """Warm the table's cache without counting a borrow.

        Registration-time plumbing: gets (or creates) the cache for the
        table, merges an optional pre-warmed ``snapshot`` first (so a
        persisted or shipped sketch short-circuits the build), then
        ensures the sketch tier exists.  Neither the registry's
        hit/miss/borrower accounting nor the cache's own counters move —
        warming is infrastructure, not a client lookup, and the sharing
        metrics the benchmarks assert on must not be polluted by it.
        """
        fingerprint = table.fingerprint()
        shard = self._shard(fingerprint)
        with shard.lock:
            cache = shard.caches.get(fingerprint)
            if cache is None:
                cache = self._make_cache()
                shard.caches[fingerprint] = cache
                shard.borrowers[fingerprint] = set()
        if snapshot is not None:
            cache.merge_from(snapshot)
        if isinstance(cache, TieredStatsCache):
            cache.ensure_sketch(table)
        return cache

    def peek(self, fingerprint: str) -> StatsCache | None:
        """The cache for a fingerprint, without creating or counting."""
        shard = self._shard(fingerprint)
        with shard.lock:
            return shard.caches.get(fingerprint)

    def items(self) -> "list[tuple[str, StatsCache]]":
        """Every ``(fingerprint, cache)`` pair currently registered.

        A point-in-time copy (stripe by stripe), not a live view — this
        is what the persistence layer's snapshot daemon walks, and what
        lets it do so without holding any registry lock while pickling.
        """
        pairs: list[tuple[str, StatsCache]] = []
        for shard in self._shards:
            with shard.lock:
                pairs.extend(shard.caches.items())
        return pairs

    # -- eviction -----------------------------------------------------------------

    def evict(self, fingerprint: str) -> bool:
        """Drop the cache for one fingerprint (table-store eviction hook).

        Borrowers already holding the cache keep a working reference; the
        registry simply stops handing it out, so its entries become
        collectable as soon as the last borrower lets go.
        """
        shard = self._shard(fingerprint)
        with shard.lock:
            cache = shard.caches.pop(fingerprint, None)
            shard.borrowers.pop(fingerprint, None)
        if cache is None:
            return False
        with self._counter_lock:
            self.evictions += 1
        return True

    def clear(self) -> None:
        """Drop every cache (counters are preserved)."""
        for shard in self._shards:
            with shard.lock:
                shard.caches.clear()
                shard.borrowers.clear()

    # -- introspection ------------------------------------------------------------

    def stats(self) -> RegistryStats:
        """Counters plus current cache/entry totals."""
        with self._counter_lock:
            hits, misses = self.hits, self.misses
            cross, evictions = self.cross_client_hits, self.evictions
        caches: list[StatsCache] = []
        for shard in self._shards:
            with shard.lock:
                caches.extend(shard.caches.values())
        return RegistryStats(
            caches=len(caches),
            entries=sum(c.size for c in caches),
            hits=hits, misses=misses,
            cross_client_hits=cross, evictions=evictions,
        )
