"""Pluggable execution backends for characterization work.

See :mod:`repro.runtime.executors.base` for the contract and
``docs/executors.md`` for the ownership/sharding rules.  The factory
here is what the service and CLI speak::

    executor = create_executor("process", workers=4)
    executor.register_table(table)
    ...
    executor.close()
"""

from __future__ import annotations

from repro.runtime.executors.base import (
    BatchGroup,
    CharacterizationTask,
    ExecutionHandle,
    Executor,
    ExecutorError,
    OUTCOME_STATUSES,
    WorkerError,
    plan_batch,
    shard_index,
)
from repro.runtime.executors.local import (
    InlineExecutor,
    TaskContext,
    ThreadExecutor,
)
from repro.runtime.executors.process import (
    DEFAULT_MAX_RESTARTS,
    DEFAULT_MAX_RETRIES,
    ProcessShardExecutor,
    WORKER_RESTART_STAGE,
)

#: Backend names ``create_executor`` accepts, in rough cost order.
EXECUTOR_KINDS = ("inline", "thread", "process")

_EXECUTOR_CLASSES = {
    "inline": InlineExecutor,
    "thread": ThreadExecutor,
    "process": ProcessShardExecutor,
}


def create_executor(kind: str, workers: int = 2, *,
                    runtime=None, mp_context: str | None = None,
                    name: str | None = None,
                    max_restarts: int | None = None,
                    max_retries: int | None = None) -> Executor:
    """Build a backend by name.

    Args:
        kind: one of :data:`EXECUTOR_KINDS`.
        workers: thread-pool size / shard count (ignored by ``inline``).
        runtime: shared :class:`~repro.runtime.ZiggyRuntime` for the
            local backends' task context.  Process shards own their own
            runtimes, but inherit this runtime's **eviction limits**
            (``max_tables`` / ``max_bytes``), so the operator's memory
            bounds govern the processes where caches accumulate.
        mp_context: multiprocessing start method for ``process``.
        name: thread/process name prefix.
        max_restarts: respawn budget per dead worker shard (``process``
            only; default :data:`DEFAULT_MAX_RESTARTS`).
        max_retries: re-execution budget per in-flight task after a
            worker death (``process`` only; default
            :data:`DEFAULT_MAX_RETRIES`).
    """
    cls = _EXECUTOR_CLASSES.get(kind)
    if cls is None:
        raise ExecutorError(
            f"unknown executor kind {kind!r} "
            f"(available: {', '.join(EXECUTOR_KINDS)})")
    kwargs: dict = {}
    if kind == "inline":
        kwargs["runtime"] = runtime
    elif kind == "thread":
        kwargs.update(max_workers=workers, runtime=runtime)
        if name is not None:
            kwargs["name"] = name
    else:
        kwargs.update(workers=workers, mp_context=mp_context)
        if runtime is not None:
            kwargs.update(max_tables=runtime.tables.max_tables,
                          max_bytes=runtime.tables.max_bytes)
        if name is not None:
            kwargs["name"] = name
        if max_restarts is not None:
            kwargs["max_restarts"] = max_restarts
        if max_retries is not None:
            kwargs["max_retries"] = max_retries
    return cls(**kwargs)


__all__ = [
    "BatchGroup",
    "CharacterizationTask",
    "DEFAULT_MAX_RESTARTS",
    "DEFAULT_MAX_RETRIES",
    "EXECUTOR_KINDS",
    "ExecutionHandle",
    "Executor",
    "ExecutorError",
    "InlineExecutor",
    "OUTCOME_STATUSES",
    "ProcessShardExecutor",
    "TaskContext",
    "ThreadExecutor",
    "WORKER_RESTART_STAGE",
    "WorkerError",
    "create_executor",
    "plan_batch",
    "shard_index",
]
