"""In-process executor backends: inline (synchronous) and thread pool.

Both run work in the submitting process, so they accept plain callables
as well as :class:`CharacterizationTask`s.  Tasks are executed through a
:class:`TaskContext` — a private catalog + runtime + per-table engines —
which is exactly the state a process shard owns remotely; keeping the
code path identical means every backend produces the same results and
the same event stream, differing only in *where* the work runs.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future, ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError

from repro.core.pipeline import Ziggy
from repro.engine.database import Database
from repro.errors import JobCancelled
from repro.runtime.runtime import ZiggyRuntime
from repro.runtime.executors.base import (
    CharacterizationTask,
    CompletedHandle,
    ExecutionHandle,
    Executor,
    FinishFn,
    ProgressFn,
    WorkFn,
)


class TaskContext:
    """Catalog + runtime + engines for executing tasks locally.

    One of these backs each local executor, and one lives inside every
    worker process of the process-shard backend.  It mirrors what a
    session does — lease the table, converge the engine onto the
    runtime's current shared cache, run — without touching any
    app/service state.
    """

    def __init__(self, runtime: ZiggyRuntime | None = None):
        self.database = Database()
        self.runtime = runtime if runtime is not None else ZiggyRuntime()
        self._engines: dict[str, Ziggy] = {}
        self._lock = threading.Lock()

    def register_table(self, table, name: str | None = None,
                       cache=None) -> None:
        """Add a table to the catalog (idempotent) and optionally warm
        its shared statistics cache from a shipped snapshot."""
        with self._lock:
            self.database.register(table, name=name)
            if cache is not None:
                # Merge the shipped snapshot *before* registration warms
                # the sketch tier: a sketch that arrived with the
                # snapshot short-circuits the build entirely.
                self.runtime.stats.warm(table, snapshot=cache)
            self.runtime.register_table(table, name=name)

    def table_names(self) -> tuple[str, ...]:
        with self._lock:
            return self.database.table_names()

    def run(self, task: CharacterizationTask,
            progress: ProgressFn | None = None):
        """Execute one task; returns the CharacterizationResult.

        Events flow through ``progress`` in their legacy ``(stage,
        payload)`` form — the same stream a local closure produces — so
        the job manager's bookkeeping cannot tell the backends apart.

        A batch task (``task.wheres``) runs every predicate against one
        engine — one warm statistics cache, exactly like
        :meth:`~repro.app.session.ZiggySession.run_many` — emitting a
        ``batch_item`` event per predicate and returning the *list* of
        results in predicate order.
        """
        with self._lock:
            table = self.database.table(task.table)
        config = task.config
        if config is not None and task.weights:
            merged = dict(config.weights)
            merged.update({str(k): float(v)
                           for k, v in task.weights.items()})
            config = config.with_overrides(weights=merged)
        with self.runtime.lease(table, borrower=task.client_id) as cache:
            with self._lock:
                engine = self._engines.get(task.table)
                if engine is None:
                    engine = Ziggy(self.database, cache=cache)
                    self._engines[task.table] = engine
            if engine.cache is not cache:
                engine.rebind_cache(cache)
            if not task.is_batch:
                return engine.characterize(task.where, table=task.table,
                                           config=config, progress=progress)
            results = []
            for index, where in enumerate(task.wheres):
                result = engine.characterize(where, table=task.table,
                                             config=config,
                                             progress=progress)
                results.append(result)
                if progress is not None:
                    progress("batch_item", (index, result))
            return results


def run_unit(work: WorkFn | CharacterizationTask, context: TaskContext,
             progress: ProgressFn) -> object:
    """Run either work form through one code path."""
    if callable(work):
        return work(progress)
    return context.run(work, progress=progress)


def execute_and_finish(work, context: TaskContext, *,
                       begin, progress: ProgressFn,
                       finish: FinishFn) -> None:
    """The shared outcome protocol of the local backends."""
    try:
        begin()
        result = run_unit(work, context, progress)
    except JobCancelled:
        finish("cancelled", None, None)
    except BaseException as exc:  # noqa: BLE001 - reported via finish
        finish("failed", None, exc)
    else:
        finish("done", result, None)


class InlineExecutor(Executor):
    """Runs submissions synchronously on the caller's thread.

    ``submit`` does not return until ``finish`` has been called, which
    makes tests and CLI runs deterministic: a submitted job is terminal
    by the time its ID is handed back.
    """

    kind = "inline"
    supports_callables = True

    def __init__(self, runtime: ZiggyRuntime | None = None, **_ignored):
        self._context = TaskContext(runtime)

    def submit(self, work, *, begin, progress, finish) -> ExecutionHandle:
        execute_and_finish(work, self._context, begin=begin,
                           progress=progress, finish=finish)
        return CompletedHandle()

    def register_table(self, table, name=None, cache=None) -> None:
        self._context.register_table(table, name=name, cache=cache)

    def describe(self) -> dict:
        return {"kind": self.kind, "workers": 0,
                "tables": list(self._context.table_names())}


class _FutureHandle(ExecutionHandle):
    def __init__(self, future: Future):
        self._future = future

    def cancel(self) -> bool:
        # True only when the pooled function never ran — the same
        # guarantee Future.cancel gives.
        return self._future.cancel()

    def wait(self, timeout: float | None = None) -> bool:
        try:
            self._future.exception(timeout=timeout)
        except (TimeoutError, FutureTimeoutError):
            # distinct classes on Python 3.10, aliases from 3.11 on
            return False
        except BaseException:  # noqa: BLE001 - outcome surfaced via finish
            pass
        return True


class ThreadExecutor(Executor):
    """Runs submissions on a bounded thread pool (the GIL-bound
    pre-refactor behaviour, extracted from the job manager)."""

    kind = "thread"
    supports_callables = True

    def __init__(self, max_workers: int = 2, name: str = "ziggy-exec",
                 runtime: ZiggyRuntime | None = None, **_ignored):
        self.max_workers = max_workers
        self._pool = ThreadPoolExecutor(max_workers=max_workers,
                                        thread_name_prefix=name)
        self._context = TaskContext(runtime)
        self._closed = False

    def submit(self, work, *, begin, progress, finish) -> ExecutionHandle:
        future = self._pool.submit(
            execute_and_finish, work, self._context,
            begin=begin, progress=progress, finish=finish)
        return _FutureHandle(future)

    def register_table(self, table, name=None, cache=None) -> None:
        self._context.register_table(table, name=name, cache=cache)

    def close(self, wait: bool = True) -> None:
        if self._closed:
            return
        self._closed = True
        self._pool.shutdown(wait=wait, cancel_futures=True)

    def describe(self) -> dict:
        return {"kind": self.kind, "workers": self.max_workers,
                "tables": list(self._context.table_names())}
