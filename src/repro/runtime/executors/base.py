"""The executor backend contract — who runs a characterization, where.

The service's :class:`~repro.service.jobs.JobManager` used to own a
``ThreadPoolExecutor`` outright; now it consumes an :class:`Executor`
backend, so the same job lifecycle (pending → running → terminal, with
streamed stage events and cooperative cancellation) can run

* synchronously on the caller's thread (:class:`InlineExecutor` — tests,
  the CLI, deterministic debugging),
* on a thread pool in this process (:class:`ThreadExecutor` — the
  pre-refactor behaviour, GIL-bound), or
* sharded across a persistent pool of worker processes
  (:class:`ProcessShardExecutor` — one ``ZiggyRuntime`` per worker,
  jobs routed by table fingerprint, true multi-core throughput).

Work arrives in one of two forms.  A plain callable ``work(progress)``
can only run in this process (it closes over live service state); a
:class:`CharacterizationTask` is a small, picklable description that any
backend — including a worker process that shares nothing but the task —
can execute against its own catalog.  Backends advertise which forms
they accept via :attr:`Executor.supports_callables`.

The three callbacks a submission carries define the lifecycle contract:

``begin()``
    invoked exactly once when execution is about to start; it may raise
    :class:`~repro.errors.JobCancelled` to veto a job that was cancelled
    while queued (the backend then reports a ``cancelled`` outcome
    without running the work).
``progress(stage, payload)``
    invoked in the *submitting* process for every stage event, in order;
    raising :class:`JobCancelled` from it requests cooperative
    cancellation (local backends abort the work at that point; the
    process backend relays a cancel message to the owning shard, which
    aborts at its next stage boundary).
``finish(status, result, error)``
    invoked exactly once with the terminal outcome: ``("done", result,
    None)``, ``("failed", None, exc)`` or ``("cancelled", None, None)``.
"""

from __future__ import annotations

import abc
import zlib
from dataclasses import dataclass, field
from typing import Any, Callable, ClassVar, Mapping, Sequence

from repro.errors import ReproError

#: Terminal outcome statuses a backend can report.
OUTCOME_STATUSES = ("done", "failed", "cancelled")

#: ``progress(stage, payload)`` — the legacy-stage event relay.
ProgressFn = Callable[[str, Any], None]

#: ``work(progress) -> result`` — an in-process work function.
WorkFn = Callable[[ProgressFn], Any]

#: ``finish(status, result, error)`` — the terminal outcome callback.
FinishFn = Callable[[str, Any, "BaseException | None"], None]


class ExecutorError(ReproError):
    """An executor backend could not accept or run a submission."""


class WorkerError(ReproError):
    """A worker process failed in a way whose original exception could
    not cross the process boundary (unpicklable, or the worker died)."""


@dataclass(frozen=True)
class CharacterizationTask:
    """A serializable description of one characterization (or batch).

    This is the unit a process shard executes: everything is a value
    (names, predicate text, a frozen config), never live state, so the
    task pickles in microseconds and the receiving worker resolves it
    against *its own* catalog and statistics cache.

    Attributes:
        table: catalog name of the table to characterize against.
        where: predicate text (the body of a WHERE clause).
        fingerprint: the table's content fingerprint — the **routing
            key**: every task for one fingerprint lands on the same
            shard, so that table's statistics cache lives on exactly one
            worker.  When None the table name routes instead.
        config: the effective :class:`~repro.core.config.ZiggyConfig`
            for the run (None = the worker's default).
        weights: component-weight overrides merged into the config.
        client_id: borrower tag for the shard's runtime ledger.
        wheres: when non-empty, the task is a **batch**: the executing
            context runs every predicate sequentially against one engine
            (one warm statistics cache), emits a ``batch_item`` event
            per predicate, and the result is the *list* of
            characterization results in predicate order.  ``where`` is
            ignored for a batch task.
    """

    table: str
    where: str
    fingerprint: str | None = None
    config: Any = None
    weights: Mapping = field(default_factory=dict)
    client_id: str = "default"
    wheres: tuple = ()

    def __post_init__(self):
        object.__setattr__(self, "wheres", tuple(self.wheres))

    @property
    def routing_key(self) -> str:
        """What shard routing hashes on."""
        return self.fingerprint or self.table

    @property
    def is_batch(self) -> bool:
        """Whether this task carries several predicates for one table."""
        return bool(self.wheres)

    @property
    def predicates(self) -> tuple:
        """The predicate(s) this task executes, in order."""
        return self.wheres if self.wheres else (self.where,)


def shard_index(routing_key: str, n_shards: int) -> int:
    """Deterministic routing: key -> shard.

    Uses CRC-32, not :func:`hash` — Python string hashing is salted per
    process, and routing must agree between the coordinator and every
    worker, across restarts, and in tests.
    """
    if n_shards <= 0:
        raise ValueError("n_shards must be positive")
    return zlib.crc32(routing_key.encode("utf-8")) % n_shards


@dataclass(frozen=True)
class BatchGroup:
    """One shard-bound slice of a batch: every predicate of one table.

    Attributes:
        table: catalog table name shared by the group.
        routing_key: what the group routes on (fingerprint or name) —
            the executor derives the owning shard from it.
        indices: positions of the group's entries in the original batch,
            in submission order (how results fold back into place).
        wheres: the group's predicates, aligned with ``indices``.
    """

    table: str
    routing_key: str
    indices: tuple
    wheres: tuple

    def __post_init__(self):
        object.__setattr__(self, "indices", tuple(self.indices))
        object.__setattr__(self, "wheres", tuple(self.wheres))


def plan_batch(entries: "Sequence[tuple]") -> "list[BatchGroup]":
    """The shard-aware batch schedule: group entries by owning table.

    ``entries`` is a sequence of ``(table, routing_key, where)`` triples
    in submission order.  The plan has one :class:`BatchGroup` per
    distinct ``(table, routing_key)`` pair, in first-appearance order, so

    * one table's predicates **never split across shards** — every group
      routes on one key, so it runs back-to-back against that shard's
      single warm statistics cache instead of interleaving cold
      submissions, and groups for different shards run concurrently;
    * two *names* for identical content stay distinct groups (results
      and history must report the name the caller used) while still
      landing on the same shard — their routing keys are equal.

    Entry order is preserved inside each group; ``indices`` lets the
    caller reassemble results in original submission order.
    """
    groups: dict[tuple, list] = {}
    order: list[tuple] = []
    for position, (table, routing_key, where) in enumerate(entries):
        key = (str(table), str(routing_key))
        if key not in groups:
            groups[key] = []
            order.append(key)
        groups[key].append((position, str(where)))
    return [
        BatchGroup(
            table=key[0],
            routing_key=key[1],
            indices=tuple(position for position, _ in groups[key]),
            wheres=tuple(where for _, where in groups[key]),
        )
        for key in order
    ]


class ExecutionHandle(abc.ABC):
    """A backend's reference to one submitted unit of work."""

    @abc.abstractmethod
    def cancel(self) -> bool:
        """Best-effort cancellation.

        Returns True only when the backend can guarantee the work never
        began (it was still queued); the caller may then mark the job
        cancelled immediately.  Returns False when execution has started
        (or already finished) — cancellation then happens cooperatively
        through the ``progress`` callback / a worker cancel message, and
        the outcome arrives via ``finish``.
        """

    @abc.abstractmethod
    def wait(self, timeout: float | None = None) -> bool:
        """Block until ``finish`` has been delivered; True if it was."""


class Executor(abc.ABC):
    """A pluggable execution backend.

    Lifecycle: construct → ``register_table`` for every catalog table →
    any number of ``submit`` calls → ``close``.  All methods are
    thread-safe; ``close`` is idempotent.
    """

    #: Stable backend name (``"inline"`` / ``"thread"`` / ``"process"``).
    kind: ClassVar[str] = "abstract"

    #: Whether :meth:`submit` accepts plain callables.  Backends that
    #: cross a process boundary require :class:`CharacterizationTask`s.
    supports_callables: ClassVar[bool] = True

    @abc.abstractmethod
    def submit(self, work: WorkFn | CharacterizationTask, *,
               begin: Callable[[], None],
               progress: ProgressFn,
               finish: FinishFn) -> ExecutionHandle:
        """Run ``work`` somewhere; report through the three callbacks."""

    def register_table(self, table, name: str | None = None,
                       cache=None) -> None:
        """Make a table executable by task (no-op where irrelevant).

        ``cache`` optionally ships a pre-warmed
        :class:`~repro.core.stats_cache.StatsCache` snapshot along, so a
        shard starts with the coordinator's already-computed statistics.
        """

    def close(self, wait: bool = True) -> None:
        """Release threads/processes; idempotent."""

    def describe(self) -> dict:
        """JSON-able backend diagnostics (kind, workers, shard map)."""
        return {"kind": self.kind}


class CompletedHandle(ExecutionHandle):
    """Handle for work that finished before ``submit`` returned
    (the inline backend, and rejects)."""

    def cancel(self) -> bool:
        return False

    def wait(self, timeout: float | None = None) -> bool:
        return True
