"""The process-shard executor: characterizations across worker processes.

The GIL caps a thread backend at roughly one core of characterization
throughput no matter how many clients are hitting the service.  This
backend escapes it with a persistent pool of **worker processes**, each
owning a full :class:`~repro.runtime.ZiggyRuntime` (table store + shared
statistics registry) plus its own catalog and engines.

Sharding rule — the whole point of the layout:

* tables are **registered by value once per owning worker** (the table
  pickles over the task queue at registration time, never per job);
* every job routes by the table's **content fingerprint**
  (:func:`~repro.runtime.executors.base.shard_index`), so all work for
  one table lands on one shard and that table's statistics cache lives
  in exactly one process — computation sharing keeps working, it just
  happens per shard instead of per process.

Event relay: workers execute through the same task path as the local
backends, compact each stage event
(:func:`~repro.core.events.compact_event`) and put it on a shared
results queue; a pump thread in the coordinating process replays the
events into the submission's ``progress`` callback — in order, with the
legacy stage names — so the job event log, partial-view capture and SSE
streaming are byte-identical to a thread-backend run.

Cancellation crosses the boundary as a control message: when the
coordinator's ``progress`` raises
:class:`~repro.errors.JobCancelled` (or ``handle.cancel()`` is called),
the owning worker's listener thread flags the task and the worker aborts
at its next stage boundary — the same cooperative granularity the local
backends have.

The pool prefers the ``fork`` start method (cheap, tables already in
memory page-share until written) and falls back to ``spawn`` where fork
is unavailable; both are explicit via ``mp_context``.  Workers are
started eagerly in the constructor, before the service spins up any
server threads, so forking never races live locks.
"""

from __future__ import annotations

import itertools
import multiprocessing as mp
import pickle
import threading
import time
from typing import Any, Callable

from repro.core.events import StageEvent, compact_event, legacy_stage
from repro.errors import JobCancelled
from repro.runtime.runtime import DEFAULT_MAX_BYTES, DEFAULT_MAX_TABLES
from repro.runtime.executors.base import (
    CharacterizationTask,
    ExecutionHandle,
    Executor,
    ExecutorError,
    FinishFn,
    ProgressFn,
    WorkerError,
    shard_index,
)

#: Message tags, worker -> coordinator.
_STARTED, _EVENT, _DONE, _FAILED, _CANCELLED = (
    "started", "event", "done", "failed", "cancelled")

#: Registration-failure tag (keyed by table, not task).
_REGISTER_FAILED = "register-failed"


def _wire_exception(exc: BaseException) -> BaseException:
    """An exception that is guaranteed to survive the queue."""
    try:
        pickle.loads(pickle.dumps(exc))
        return exc
    except Exception:  # noqa: BLE001 - any pickling failure means wrap
        return WorkerError(f"{type(exc).__name__}: {exc}")


def _worker_main(worker_id: int, tasks, control, results,
                 limits: "tuple | None" = None) -> None:
    """Entry point of one shard (runs in the worker process).

    ``tasks`` carries registration and task messages; ``control``
    carries cancellation flags (read by a listener thread so they
    overtake the task the worker is busy with); ``results`` carries
    started/event/terminal messages back.  ``limits`` is the
    coordinator's ``(max_tables, max_bytes)`` pair, so the operator's
    memory bounds govern the shards where caches actually accumulate.
    """
    # Imported here (not at module top) so a spawn-started worker pays
    # the import once, and so this module stays importable in contexts
    # that never start workers.
    from repro.runtime.executors.local import TaskContext
    from repro.runtime.runtime import ZiggyRuntime

    cancelled: set[int] = set()
    flag_lock = threading.Lock()

    def listen() -> None:
        while True:
            message = control.get()
            if message is None:
                return
            with flag_lock:
                cancelled.add(message)

    threading.Thread(target=listen, daemon=True,
                     name=f"ziggy-shard-{worker_id}-ctl").start()

    limits = limits if limits is not None else (None, None)
    runtime = ZiggyRuntime(max_tables=limits[0], max_bytes=limits[1])
    context = TaskContext(runtime)
    while True:
        message = tasks.get()
        if message is None:
            control.put(None)  # release the listener thread
            return
        op = message[0]
        if op == "register":
            _, name, fingerprint, table, cache = message
            try:
                context.register_table(table, name=name, cache=cache)
            except Exception:  # noqa: BLE001 - snapshot may be at fault
                try:
                    # A corrupt cache snapshot must not cost the table.
                    context.register_table(table, name=name)
                except Exception as exc:  # noqa: BLE001 - report upstream
                    results.put((_REGISTER_FAILED, name, fingerprint,
                                 _wire_exception(exc)))
            continue
        _, task_id, task = message
        with flag_lock:
            if task_id in cancelled:
                cancelled.discard(task_id)
                results.put((_CANCELLED, task_id))
                continue
        results.put((_STARTED, task_id))

        def progress(stage: str, payload: Any,
                     _task_id: int = task_id) -> None:
            with flag_lock:
                if _task_id in cancelled:
                    raise JobCancelled(str(_task_id))
            event = compact_event(StageEvent(_stage_kind(stage), payload))
            results.put((_EVENT, _task_id,
                         legacy_stage(event.kind), event.payload))

        try:
            result = context.run(task, progress=progress)
        except JobCancelled:
            results.put((_CANCELLED, task_id))
        except BaseException as exc:  # noqa: BLE001 - relayed as outcome
            results.put((_FAILED, task_id, _wire_exception(exc)))
        else:
            # Queue puts pickle in a feeder thread, where a failure is
            # silent; pre-validate so an unpicklable result surfaces as
            # a failed outcome instead of a hung job.
            try:
                pickle.dumps(result)
            except Exception as exc:  # noqa: BLE001 - report, don't hang
                results.put((_FAILED, task_id, _wire_exception(exc)))
            else:
                results.put((_DONE, task_id, result))
        with flag_lock:
            cancelled.discard(task_id)


#: legacy stage name -> typed event kind (inverse of ``legacy_stage``,
#: for the compaction step; unknown names pass through).
_KIND_FOR_STAGE = {
    "preparation": "prepared",
    "view": "view-ranked",
    "search": "search-complete",
    "batch_item": "batch-item",
}


def _stage_kind(stage: str) -> str:
    return _KIND_FOR_STAGE.get(stage, stage)


class _ProcessHandle(ExecutionHandle):
    """Coordinator-side record of one task in flight on a shard."""

    def __init__(self, executor: "ProcessShardExecutor", task_id: int,
                 worker_index: int, begin: Callable[[], None],
                 progress: ProgressFn, finish: FinishFn):
        self.task_id = task_id
        self.worker_index = worker_index
        self.begin = begin
        self.progress = progress
        self._finish = finish
        self._executor = executor
        self._lock = threading.Lock()
        self._started = False
        self._finished = threading.Event()
        self._cancel_sent = False

    # -- pump-side -----------------------------------------------------------

    def mark_started(self) -> bool:
        with self._lock:
            already = self._started
            self._started = True
        return already

    def finish(self, status: str, result: Any,
               error: BaseException | None) -> None:
        with self._lock:
            if self._finished.is_set():
                return
            self._finished.set()
        self._finish(status, result, error)

    # -- ExecutionHandle -----------------------------------------------------

    def cancel(self) -> bool:
        # Never claim "the work provably never began": the task message
        # is already on the shard's queue, and a _STARTED report may be
        # in flight.  The cancel flag overtakes the queue (listener
        # thread), so a not-yet-started task is skipped and reported
        # cancelled, and a running one aborts at its next stage
        # boundary — the outcome always arrives through ``finish``.
        self._executor._send_cancel(self)
        return False

    def wait(self, timeout: float | None = None) -> bool:
        return self._finished.wait(timeout)


class _Worker:
    def __init__(self, process, tasks, control):
        self.process = process
        self.tasks = tasks
        self.control = control


class ProcessShardExecutor(Executor):
    """A persistent pool of worker processes, sharded by fingerprint.

    Args:
        workers: shard count (one process each).
        mp_context: multiprocessing start method (``"fork"`` where
            available, else ``"spawn"``); pass explicitly to override.
        name: process-name prefix.
    """

    kind = "process"
    supports_callables = False

    #: Seconds between pump liveness checks of the worker processes.
    POLL_SECONDS = 0.2

    def __init__(self, workers: int = 2, mp_context: str | None = None,
                 name: str = "ziggy-shard",
                 max_tables: "int | None" = DEFAULT_MAX_TABLES,
                 max_bytes: "int | None" = DEFAULT_MAX_BYTES, **_ignored):
        if workers < 1:
            raise ExecutorError("process backend needs at least 1 worker")
        if mp_context is None:
            mp_context = ("fork" if "fork" in mp.get_all_start_methods()
                          else "spawn")
        self._ctx = mp.get_context(mp_context)
        self.mp_method = mp_context
        self.n_workers = workers
        #: Eviction limits each worker's private runtime is built with.
        self.max_tables = max_tables
        self.max_bytes = max_bytes
        self._results = self._ctx.Queue()
        self._workers: list[_Worker] = []
        for index in range(workers):
            tasks = self._ctx.Queue()
            control = self._ctx.Queue()
            process = self._ctx.Process(
                target=_worker_main, args=(index, tasks, control,
                                           self._results,
                                           (max_tables, max_bytes)),
                daemon=True, name=f"{name}-{index}")
            process.start()
            self._workers.append(_Worker(process, tasks, control))
        self._lock = threading.Lock()
        self._pending: dict[int, _ProcessHandle] = {}
        self._task_ids = itertools.count(1)
        self._registered: dict[int, set[tuple[str, str]]] = {
            i: set() for i in range(workers)}
        self._register_errors: dict[str, str] = {}
        self._closed = False
        self._pump = threading.Thread(target=self._pump_loop, daemon=True,
                                      name=f"{name}-pump")
        self._pump.start()

    # -- registration --------------------------------------------------------

    def shard_for(self, routing_key: str) -> int:
        """The worker index a routing key maps to (stable)."""
        return shard_index(routing_key, self.n_workers)

    def register_table(self, table, name: str | None = None,
                       cache=None) -> None:
        """Ship a table, by value, to its owning shard (once).

        The optional ``cache`` snapshot warms the shard's statistics
        registry with entries the coordinator already computed.
        """
        fingerprint = table.fingerprint()
        index = self.shard_for(fingerprint)
        key = (name or table.name, fingerprint)
        with self._lock:
            if self._closed:
                raise ExecutorError("executor is closed")
            if key in self._registered[index]:
                return
            self._registered[index].add(key)
            # Enqueue while still holding the lock: a concurrent caller
            # who sees the key marked must be guaranteed the register
            # message is already ahead of any task it then submits
            # (queue puts are cheap — the feeder thread does the work).
            self._workers[index].tasks.put(("register", name or table.name,
                                            fingerprint, table, cache))

    # -- submission ----------------------------------------------------------

    def submit(self, work, *, begin, progress, finish) -> ExecutionHandle:
        if callable(work) or not isinstance(work, CharacterizationTask):
            raise ExecutorError(
                "the process backend executes serializable "
                "CharacterizationTasks, not in-process callables")
        index = self.shard_for(work.routing_key)
        with self._lock:
            if self._closed:
                raise ExecutorError("executor is closed")
            task_id = next(self._task_ids)
            handle = _ProcessHandle(self, task_id, index, begin, progress,
                                    finish)
            self._pending[task_id] = handle
        self._workers[index].tasks.put(("task", task_id, work))
        return handle

    def _send_cancel(self, handle: _ProcessHandle) -> None:
        with handle._lock:
            if handle._cancel_sent or handle._finished.is_set():
                return
            handle._cancel_sent = True
        try:
            self._workers[handle.worker_index].control.put(handle.task_id)
        except (OSError, ValueError):
            pass  # worker gone; the pump's liveness check fails the task

    # -- the event pump ------------------------------------------------------

    def _pump_loop(self) -> None:
        """Replay worker messages into the submitters' callbacks."""
        import queue as queue_mod
        last_reap = time.monotonic()
        while True:
            # Liveness-check the shards on idle gaps *and* on a clock,
            # so a dead worker is noticed even while other shards keep
            # the results queue busy.
            if time.monotonic() - last_reap >= 1.0:
                last_reap = time.monotonic()
                if self._reap_dead_workers():
                    return
            try:
                message = self._results.get(timeout=self.POLL_SECONDS)
            except queue_mod.Empty:
                last_reap = time.monotonic()
                if self._reap_dead_workers():
                    return
                continue
            if message is None:
                return
            tag = message[0]
            if tag == _REGISTER_FAILED:
                # Unmark so a later register_table re-ships the table
                # instead of silently assuming the shard has it.
                _, name, fingerprint, error = message
                with self._lock:
                    for keys in self._registered.values():
                        keys.discard((name, fingerprint))
                    self._register_errors[name] = str(error)
                continue
            task_id = message[1]
            with self._lock:
                handle = self._pending.get(task_id)
            if handle is None:
                continue
            if tag == _STARTED:
                handle.mark_started()
                try:
                    handle.begin()
                except JobCancelled:
                    self._send_cancel(handle)
                except BaseException:  # noqa: BLE001 - never kill the pump
                    self._send_cancel(handle)
            elif tag == _EVENT:
                _, _, stage, payload = message
                try:
                    handle.progress(stage, payload)
                except JobCancelled:
                    self._send_cancel(handle)
                except BaseException:  # noqa: BLE001 - never kill the pump
                    pass
            else:
                outcome = (("done", message[2], None) if tag == _DONE else
                           ("failed", None, message[2]) if tag == _FAILED
                           else ("cancelled", None, None))
                # Finish on its own thread: the caller's finish hook may
                # take session locks or post-process results, and must
                # not stall event relay for every other shard.  The
                # handle stays pending until the hook has run, so a
                # wait=True close cannot return with the job still
                # non-terminal.
                def _complete(handle=handle, outcome=outcome):
                    try:
                        handle.finish(*outcome)
                    finally:
                        with self._lock:
                            self._pending.pop(handle.task_id, None)

                threading.Thread(target=_complete, daemon=True,
                                 name="ziggy-shard-finish").start()

    def _reap_dead_workers(self) -> bool:
        """Fail tasks stranded on dead workers; True when the executor
        is closed **and** nothing is left in flight."""
        with self._lock:
            dead = {index for index, worker in enumerate(self._workers)
                    if not worker.process.is_alive()}
            stranded = [h for h in self._pending.values()
                        if h.worker_index in dead]
            for handle in stranded:
                self._pending.pop(handle.task_id, None)
        for handle in stranded:
            handle.finish("failed", None, WorkerError(
                f"worker shard {handle.worker_index} died "
                f"(exitcode {self._workers[handle.worker_index].process.exitcode})"))
        with self._lock:
            return self._closed and not self._pending

    # -- lifecycle -----------------------------------------------------------

    def close(self, wait: bool = True) -> None:
        """Stop the shards; idempotent.

        ``wait=True`` lets queued/running tasks finish first (the
        shutdown sentinel queues behind them); ``wait=False`` terminates
        the workers and fails whatever was in flight.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
        if wait:
            # The sentinel queues behind in-flight tasks: workers drain
            # their queues (outcomes land through the pump), then exit.
            for worker in self._workers:
                worker.tasks.put(None)
            for worker in self._workers:
                worker.process.join(timeout=30)
            # The workers have exited, but their final outcomes may
            # still sit in the results queue: let the pump deliver them
            # before declaring anything abandoned.
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline:
                with self._lock:
                    if not self._pending:
                        break
                time.sleep(0.02)
        with self._lock:
            leftovers = list(self._pending.values())
            self._pending.clear()
        for worker in self._workers:
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(timeout=5)
        for handle in leftovers:
            handle.finish("cancelled", None, None)
        self._results.put(None)
        self._pump.join(timeout=5)
        self._results.close()
        for worker in self._workers:
            worker.tasks.close()
            worker.control.close()

    def describe(self) -> dict:
        with self._lock:
            shards = {
                str(index): sorted(name for name, _fp in keys)
                for index, keys in self._registered.items()}
            in_flight = len(self._pending)
            register_errors = dict(self._register_errors)
        info = {"kind": self.kind, "workers": self.n_workers,
                "mp_method": self.mp_method, "shards": shards,
                "in_flight": in_flight}
        if register_errors:
            info["register_errors"] = register_errors
        return info
