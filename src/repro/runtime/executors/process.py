"""The process-shard executor: characterizations across worker processes.

The GIL caps a thread backend at roughly one core of characterization
throughput no matter how many clients are hitting the service.  This
backend escapes it with a persistent pool of **worker processes**, each
owning a full :class:`~repro.runtime.ZiggyRuntime` (table store + shared
statistics registry) plus its own catalog and engines.

Sharding rule — the whole point of the layout:

* tables are **registered by value once per owning worker** (the table
  pickles over the task queue at registration time, never per job);
* every job routes by the table's **content fingerprint**
  (:func:`~repro.runtime.executors.base.shard_index`), so all work for
  one table lands on one shard and that table's statistics cache lives
  in exactly one process — computation sharing keeps working, it just
  happens per shard instead of per process.

Event relay: workers execute through the same task path as the local
backends, compact each stage event
(:func:`~repro.core.events.compact_event`) and put it on a shared
results queue; a pump thread in the coordinating process replays the
events into the submission's ``progress`` callback — in order, with the
legacy stage names — so the job event log, partial-view capture and SSE
streaming are byte-identical to a thread-backend run.

Cancellation crosses the boundary as a control message: when the
coordinator's ``progress`` raises
:class:`~repro.errors.JobCancelled` (or ``handle.cancel()`` is called),
the owning worker's listener thread flags the task and the worker aborts
at its next stage boundary — the same cooperative granularity the local
backends have.

The pool prefers the ``fork`` start method (cheap, tables already in
memory page-share until written) and falls back to ``spawn`` where fork
is unavailable; both are explicit via ``mp_context``.  Workers are
started eagerly in the constructor, before the service spins up any
server threads, so forking never races live locks.

Self-healing: a worker that dies (OOM-killed, segfaulted, SIGKILL'd) is
**respawned** instead of taking its jobs down with it.  The pump's
liveness check hands the dead shard to a respawn thread, which starts a
replacement process, replays the shard's table registrations with fresh
:meth:`~repro.core.stats_cache.StatsCache.snapshot` warm-cache
snapshots, and re-enqueues the shard's in-flight tasks — each retried
task first emits a ``worker-restart`` stage event through its
``progress`` relay, so job event logs and SSE streams observe the
recovery.  Two bounds keep this honest: ``max_restarts`` caps how often
one shard may be respawned (exhausting it fails the shard's jobs with
:class:`WorkerError` and marks the shard dead for new submissions), and
``max_retries`` caps how often one task may be re-executed (a task is
retried at-least-once semantics only while its budget lasts; past it,
the task fails with :class:`WorkerError` even though the shard itself
recovers).  A cancel that arrives while the shard is down wins: the
task is reported ``cancelled`` instead of being re-enqueued.
"""

from __future__ import annotations

import itertools
import multiprocessing as mp
import os
import pickle
import threading
import time
from typing import Any, Callable

from repro.core.events import StageEvent, compact_event, legacy_stage
from repro.core.stats_cache import StatsCache
from repro.errors import JobCancelled
from repro.runtime.runtime import DEFAULT_MAX_BYTES, DEFAULT_MAX_TABLES
from repro.runtime.executors.base import (
    CharacterizationTask,
    ExecutionHandle,
    Executor,
    ExecutorError,
    FinishFn,
    ProgressFn,
    WorkerError,
    shard_index,
)

#: Message tags, worker -> coordinator.
_STARTED, _EVENT, _DONE, _FAILED, _CANCELLED = (
    "started", "event", "done", "failed", "cancelled")

#: Registration-failure tag (keyed by table, not task).
_REGISTER_FAILED = "register-failed"

#: The stage name a retried task's recovery event carries (flows through
#: the ordinary progress relay, so job event logs and SSE streams see it
#: as a ``worker-restart`` event between the stages of the two attempts).
WORKER_RESTART_STAGE = "worker-restart"

#: How often one shard may be respawned before it is declared dead.
DEFAULT_MAX_RESTARTS = 2

#: How often one in-flight task may be re-executed after worker deaths.
DEFAULT_MAX_RETRIES = 1


def _wire_exception(exc: BaseException) -> BaseException:
    """An exception that is guaranteed to survive the queue."""
    try:
        pickle.loads(pickle.dumps(exc))
        return exc
    except Exception:  # noqa: BLE001 - any pickling failure means wrap
        return WorkerError(f"{type(exc).__name__}: {exc}")


def _worker_main(worker_id: int, tasks, control, results,
                 limits: "tuple | None" = None) -> None:
    """Entry point of one shard (runs in the worker process).

    ``tasks`` carries registration and task messages; ``control``
    carries cancellation flags (read by a listener thread so they
    overtake the task the worker is busy with); ``results`` carries
    started/event/terminal messages back.  ``limits`` is the
    coordinator's ``(max_tables, max_bytes)`` pair, so the operator's
    memory bounds govern the shards where caches actually accumulate.
    """
    # Imported here (not at module top) so a spawn-started worker pays
    # the import once, and so this module stays importable in contexts
    # that never start workers.
    from repro.runtime.executors.local import TaskContext
    from repro.runtime.runtime import ZiggyRuntime

    cancelled: set[int] = set()
    flag_lock = threading.Lock()

    def listen() -> None:
        while True:
            message = control.get()
            if message is None:
                return
            with flag_lock:
                cancelled.add(message)

    threading.Thread(target=listen, daemon=True,
                     name=f"ziggy-shard-{worker_id}-ctl").start()

    parent = os.getppid()

    def watch_parent() -> None:
        # A hard-killed coordinator (SIGKILL, default-action SIGTERM)
        # never runs the multiprocessing atexit cleanup, so its daemon
        # workers would linger — holding inherited sockets (including
        # the server's listening port) forever.  Reparenting is the
        # tell: exit immediately.
        while True:
            time.sleep(1.0)
            if os.getppid() != parent:
                os._exit(0)

    threading.Thread(target=watch_parent, daemon=True,
                     name=f"ziggy-shard-{worker_id}-watchdog").start()

    limits = limits if limits is not None else (None, None)
    runtime = ZiggyRuntime(max_tables=limits[0], max_bytes=limits[1])
    context = TaskContext(runtime)
    while True:
        message = tasks.get()
        if message is None:
            control.put(None)  # release the listener thread
            return
        op = message[0]
        if op == "register":
            _, name, fingerprint, table, cache = message
            try:
                context.register_table(table, name=name, cache=cache)
            except Exception:  # noqa: BLE001 - snapshot may be at fault
                try:
                    # A corrupt cache snapshot must not cost the table.
                    context.register_table(table, name=name)
                except Exception as exc:  # noqa: BLE001 - report upstream
                    results.put((_REGISTER_FAILED, name, fingerprint,
                                 _wire_exception(exc)))
            continue
        _, task_id, task = message
        with flag_lock:
            if task_id in cancelled:
                cancelled.discard(task_id)
                results.put((_CANCELLED, task_id))
                continue
        results.put((_STARTED, task_id))

        def progress(stage: str, payload: Any,
                     _task_id: int = task_id) -> None:
            with flag_lock:
                if _task_id in cancelled:
                    raise JobCancelled(str(_task_id))
            event = compact_event(StageEvent(_stage_kind(stage), payload))
            results.put((_EVENT, _task_id,
                         legacy_stage(event.kind), event.payload))

        try:
            result = context.run(task, progress=progress)
        except JobCancelled:
            results.put((_CANCELLED, task_id))
        except BaseException as exc:  # noqa: BLE001 - relayed as outcome
            results.put((_FAILED, task_id, _wire_exception(exc)))
        else:
            # Queue puts pickle in a feeder thread, where a failure is
            # silent; pre-validate so an unpicklable result surfaces as
            # a failed outcome instead of a hung job.
            try:
                pickle.dumps(result)
            except Exception as exc:  # noqa: BLE001 - report, don't hang
                results.put((_FAILED, task_id, _wire_exception(exc)))
            else:
                results.put((_DONE, task_id, result))
        with flag_lock:
            cancelled.discard(task_id)


#: legacy stage name -> typed event kind (inverse of ``legacy_stage``,
#: for the compaction step; unknown names pass through).
_KIND_FOR_STAGE = {
    "preparation": "prepared",
    "view": "view-ranked",
    "search": "search-complete",
    "batch_item": "batch-item",
}


def _stage_kind(stage: str) -> str:
    return _KIND_FOR_STAGE.get(stage, stage)


class _ProcessHandle(ExecutionHandle):
    """Coordinator-side record of one task in flight on a shard."""

    def __init__(self, executor: "ProcessShardExecutor", task_id: int,
                 worker_index: int, task: CharacterizationTask,
                 begin: Callable[[], None],
                 progress: ProgressFn, finish: FinishFn):
        self.task_id = task_id
        self.worker_index = worker_index
        #: Kept for re-enqueueing after a worker respawn.
        self.task = task
        #: Failed execution attempts so far (bumped per worker death).
        self.attempts = 0
        self.begin = begin
        self.progress = progress
        self._finish = finish
        self._executor = executor
        self._lock = threading.Lock()
        self._started = False
        #: Whether the *current* attempt began executing (reset on every
        #: requeue) — distinct from ``_started``, which deduplicates the
        #: job-lifetime ``begin`` callback and is never reset.
        self._attempt_started = False
        self._finished = threading.Event()
        self._cancel_sent = False

    # -- pump-side -----------------------------------------------------------

    def mark_started(self) -> bool:
        with self._lock:
            already = self._started
            self._started = True
            self._attempt_started = True
        return already

    def reset_attempt(self) -> None:
        """Called by the respawn requeue, before the retry is enqueued:
        the new attempt has not started until its own ``_STARTED``."""
        with self._lock:
            self._attempt_started = False

    @property
    def cancel_requested(self) -> bool:
        with self._lock:
            return self._cancel_sent

    @property
    def attempt_started(self) -> bool:
        with self._lock:
            return self._attempt_started

    @property
    def finished(self) -> bool:
        return self._finished.is_set()

    def finish(self, status: str, result: Any,
               error: BaseException | None) -> None:
        with self._lock:
            if self._finished.is_set():
                return
            self._finished.set()
        self._finish(status, result, error)

    # -- ExecutionHandle -----------------------------------------------------

    def cancel(self) -> bool:
        # Never claim "the work provably never began": the task message
        # is already on the shard's queue, and a _STARTED report may be
        # in flight.  The cancel flag overtakes the queue (listener
        # thread), so a not-yet-started task is skipped and reported
        # cancelled, and a running one aborts at its next stage
        # boundary — the outcome always arrives through ``finish``.
        self._executor._send_cancel(self)
        return False

    def wait(self, timeout: float | None = None) -> bool:
        return self._finished.wait(timeout)


class _Worker:
    def __init__(self, process, tasks, control):
        self.process = process
        self.tasks = tasks
        self.control = control

    def dispose_queues(self) -> None:
        """Release the queues of a worker that will never read again.

        ``cancel_join_thread`` first: a feeder thread may be blocked
        mid-``send`` on a pipe whose reader was SIGKILL'd with the pipe
        full — without the cancel, interpreter exit would join that
        feeder forever.  Losing the buffered messages is exactly right:
        the reader is gone.
        """
        for queue in (self.tasks, self.control):
            try:
                queue.cancel_join_thread()
                queue.close()
            except (OSError, ValueError):
                pass  # already closed


class ProcessShardExecutor(Executor):
    """A persistent, self-healing pool of worker processes, sharded by
    fingerprint.

    Args:
        workers: shard count (one process each).
        mp_context: multiprocessing start method (``"fork"`` where
            available, else ``"spawn"``); pass explicitly to override.
        name: process-name prefix.
        max_restarts: how often one dead shard may be respawned before
            it is declared dead (0 disables self-healing: the
            pre-respawn behaviour of failing jobs on the first death).
        max_retries: how often one in-flight task may be re-executed
            after worker deaths before it fails with
            :class:`WorkerError`.
    """

    kind = "process"
    supports_callables = False

    #: Seconds between pump liveness checks of the worker processes.
    POLL_SECONDS = 0.2

    #: Longest a clean close waits for an active respawn to settle
    #: before failing its tasks with a shutdown error instead.
    RESPAWN_DRAIN_SECONDS = 10.0

    def __init__(self, workers: int = 2, mp_context: str | None = None,
                 name: str = "ziggy-shard",
                 max_tables: "int | None" = DEFAULT_MAX_TABLES,
                 max_bytes: "int | None" = DEFAULT_MAX_BYTES,
                 max_restarts: int = DEFAULT_MAX_RESTARTS,
                 max_retries: int = DEFAULT_MAX_RETRIES, **_ignored):
        if workers < 1:
            raise ExecutorError("process backend needs at least 1 worker")
        if mp_context is None:
            mp_context = ("fork" if "fork" in mp.get_all_start_methods()
                          else "spawn")
        self._ctx = mp.get_context(mp_context)
        self.mp_method = mp_context
        self.n_workers = workers
        self.name = name
        #: Eviction limits each worker's private runtime is built with.
        self.max_tables = max_tables
        self.max_bytes = max_bytes
        self.max_restarts = max(0, int(max_restarts))
        self.max_retries = max(0, int(max_retries))
        self._results = self._ctx.Queue()
        self._workers: list[_Worker] = [
            self._spawn_process(index) for index in range(workers)]
        self._lock = threading.Lock()
        self._pending: dict[int, _ProcessHandle] = {}
        self._task_ids = itertools.count(1)
        #: Per shard: (name, fingerprint) -> (table, cache) — both the
        #: "already shipped" marker and the replay source for respawns.
        self._registrations: "dict[int, dict[tuple[str, str], tuple]]" = {
            i: {} for i in range(workers)}
        self._register_errors: dict[str, str] = {}
        #: Respawns spent per shard, and shards past their cap.
        self._restarts: dict[int, int] = {i: 0 for i in range(workers)}
        self._dead_shards: set[int] = set()
        #: Shards currently being respawned, and the threads doing it.
        self._respawning: set[int] = set()
        self._respawn_threads: list[threading.Thread] = []
        #: Tasks submitted while their shard was down — enqueued onto
        #: the replacement worker once the respawn settles.
        self._parked: dict[int, list[_ProcessHandle]] = {
            i: [] for i in range(workers)}
        self._closed = False
        self._pump = threading.Thread(target=self._pump_loop, daemon=True,
                                      name=f"{name}-pump")
        self._pump.start()

    def _spawn_process(self, index: int, generation: int = 0) -> _Worker:
        """Start one shard process (initial spawn and respawns)."""
        tasks = self._ctx.Queue()
        control = self._ctx.Queue()
        suffix = f"-r{generation}" if generation else ""
        process = self._ctx.Process(
            target=_worker_main, args=(index, tasks, control,
                                       self._results,
                                       (self.max_tables, self.max_bytes)),
            daemon=True, name=f"{self.name}-{index}{suffix}")
        process.start()
        return _Worker(process, tasks, control)

    # -- registration --------------------------------------------------------

    def shard_for(self, routing_key: str) -> int:
        """The worker index a routing key maps to (stable)."""
        return shard_index(routing_key, self.n_workers)

    def register_table(self, table, name: str | None = None,
                       cache=None) -> None:
        """Ship a table, by value, to its owning shard (once).

        The optional ``cache`` snapshot warms the shard's statistics
        registry with entries the coordinator already computed.
        """
        fingerprint = table.fingerprint()
        index = self.shard_for(fingerprint)
        key = (name or table.name, fingerprint)
        with self._lock:
            if self._closed:
                raise ExecutorError("executor is closed")
            if key in self._registrations[index]:
                return
            # The stored pair doubles as the respawn replay source: a
            # replacement worker receives the same table and a fresh
            # snapshot of this cache.
            self._registrations[index][key] = (table, cache)
            # Enqueue while still holding the lock: a concurrent caller
            # who sees the key marked must be guaranteed the register
            # message is already ahead of any task it then submits
            # (queue puts are cheap — the feeder thread does the work).
            self._workers[index].tasks.put(("register", name or table.name,
                                            fingerprint, table, cache))

    # -- submission ----------------------------------------------------------

    def submit(self, work, *, begin, progress, finish) -> ExecutionHandle:
        if callable(work) or not isinstance(work, CharacterizationTask):
            raise ExecutorError(
                "the process backend executes serializable "
                "CharacterizationTasks, not in-process callables")
        index = self.shard_for(work.routing_key)
        with self._lock:
            if self._closed:
                raise ExecutorError("executor is closed")
            if index in self._dead_shards:
                raise ExecutorError(
                    f"worker shard {index} is dead (respawn cap of "
                    f"{self.max_restarts} exhausted); its tables are "
                    "unavailable")
            task_id = next(self._task_ids)
            handle = _ProcessHandle(self, task_id, index, work, begin,
                                    progress, finish)
            self._pending[task_id] = handle
            if index in self._respawning:
                # The shard is mid-respawn: its old queue is gone and
                # the replacement is not accepting yet.  Park the task;
                # the respawn thread enqueues it once the worker is up.
                self._parked[index].append(handle)
            else:
                self._workers[index].tasks.put(("task", task_id, work))
        return handle

    def _send_cancel(self, handle: _ProcessHandle) -> None:
        with handle._lock:
            if handle._cancel_sent or handle._finished.is_set():
                return
            handle._cancel_sent = True
        try:
            self._workers[handle.worker_index].control.put(handle.task_id)
        except (OSError, ValueError):
            pass  # worker gone; the pump's liveness check fails the task

    # -- the event pump ------------------------------------------------------

    def _pump_loop(self) -> None:
        """Replay worker messages into the submitters' callbacks."""
        import queue as queue_mod
        last_reap = time.monotonic()
        while True:
            # Liveness-check the shards on idle gaps *and* on a clock,
            # so a dead worker is noticed even while other shards keep
            # the results queue busy.
            if time.monotonic() - last_reap >= 1.0:
                last_reap = time.monotonic()
                if self._reap_dead_workers():
                    return
            try:
                message = self._results.get(timeout=self.POLL_SECONDS)
            except queue_mod.Empty:
                last_reap = time.monotonic()
                if self._reap_dead_workers():
                    return
                continue
            if message is None:
                return
            tag = message[0]
            if tag == _REGISTER_FAILED:
                # Unmark so a later register_table re-ships the table
                # instead of silently assuming the shard has it.
                _, name, fingerprint, error = message
                with self._lock:
                    for registrations in self._registrations.values():
                        registrations.pop((name, fingerprint), None)
                    self._register_errors[name] = str(error)
                continue
            task_id = message[1]
            with self._lock:
                handle = self._pending.get(task_id)
            if handle is None:
                continue
            if tag == _STARTED:
                # ``begin`` fires exactly once per job, even when the
                # task is re-executed on a respawned worker.
                if handle.mark_started():
                    continue
                try:
                    handle.begin()
                except JobCancelled:
                    self._send_cancel(handle)
                except BaseException:  # noqa: BLE001 - never kill the pump
                    self._send_cancel(handle)
            elif tag == _EVENT:
                _, _, stage, payload = message
                try:
                    handle.progress(stage, payload)
                except JobCancelled:
                    self._send_cancel(handle)
                except BaseException:  # noqa: BLE001 - never kill the pump
                    pass
            else:
                outcome = (("done", message[2], None) if tag == _DONE else
                           ("failed", None, message[2]) if tag == _FAILED
                           else ("cancelled", None, None))
                # Finish on its own thread: the caller's finish hook may
                # take session locks or post-process results, and must
                # not stall event relay for every other shard.  The
                # handle stays pending until the hook has run, so a
                # wait=True close cannot return with the job still
                # non-terminal.
                def _complete(handle=handle, outcome=outcome):
                    try:
                        handle.finish(*outcome)
                    finally:
                        with self._lock:
                            self._pending.pop(handle.task_id, None)

                threading.Thread(target=_complete, daemon=True,
                                 name="ziggy-shard-finish").start()

    def _reap_dead_workers(self) -> bool:
        """Detect dead workers and recover (or fail) their shards; True
        when the executor is closed **and** nothing is left in flight."""
        with self._lock:
            dead = [index for index, worker in enumerate(self._workers)
                    if not worker.process.is_alive()
                    and index not in self._respawning
                    and index not in self._dead_shards]
        for index in dead:
            self._recover_shard(index)
        with self._lock:
            return (self._closed and not self._pending
                    and not self._respawning)

    def _recover_shard(self, index: int) -> None:
        """One dead shard: budget its tasks' retries and either kick off
        a respawn or fail everything stranded there."""
        doomed: list[tuple[_ProcessHandle, str]] = []
        thread: threading.Thread | None = None
        with self._lock:
            worker = self._workers[index]
            if worker.process.is_alive():  # lost a race with a respawn
                return
            exitcode = worker.process.exitcode
            stranded = [h for h in self._pending.values()
                        if h.worker_index == index]
            died = f"worker shard {index} died (exitcode {exitcode})"
            if self._closed or self._restarts[index] >= self.max_restarts:
                if not self._closed:
                    self._dead_shards.add(index)
                reason = (f"{died} while the executor was closing"
                          if self._closed else
                          f"{died} and its respawn cap is exhausted "
                          f"(max_restarts={self.max_restarts})")
                for handle in stranded:
                    self._pending.pop(handle.task_id, None)
                    doomed.append((handle, reason))
            else:
                self._restarts[index] += 1
                restart_no = self._restarts[index]
                self._respawning.add(index)
                retried: list[_ProcessHandle] = []
                for handle in stranded:
                    if handle.attempt_started:
                        # Only an attempt that actually began is
                        # charged: it may be the task that crashed the
                        # worker.  A still-queued task (including a
                        # retry that never got to run) retries free.
                        handle.attempts += 1
                    if handle.attempts > self.max_retries:
                        self._pending.pop(handle.task_id, None)
                        doomed.append((handle,
                            f"{died}; the task's retry budget is "
                            f"exhausted (max_retries={self.max_retries})"))
                    else:
                        retried.append(handle)
                thread = threading.Thread(
                    target=self._respawn_shard,
                    args=(index, exitcode, restart_no, retried),
                    daemon=True, name=f"{self.name}-respawn-{index}")
                self._respawn_threads.append(thread)
        for handle, reason in doomed:
            handle.finish("failed", None, WorkerError(reason))
        if thread is not None:
            thread.start()

    def _respawn_shard(self, index: int, exitcode, restart_no: int,
                       retried: "list[_ProcessHandle]") -> None:
        """Replace one dead worker: fresh process, registrations
        replayed with warm-cache snapshots, in-flight tasks re-enqueued
        (each announcing a ``worker-restart`` event).  Runs on its own
        thread so the event pump keeps relaying for healthy shards."""
        try:
            worker = None
            spawn_error: BaseException | None = None
            if not self._closed:
                try:
                    worker = self._spawn_process(index,
                                                 generation=restart_no)
                except BaseException as exc:  # noqa: BLE001 - fork/EAGAIN
                    spawn_error = exc
            if worker is not None:
                swapped = False
                with self._lock:
                    # Decide under the lock, once: a close() that wins
                    # the race sees either the old worker (and disposes
                    # it) or the swapped-in replacement — never neither.
                    if not self._closed:
                        retired = self._workers[index]
                        self._workers[index] = worker
                        registrations = list(
                            self._registrations[index].items())
                        swapped = True
                if swapped:
                    # The dead predecessor's queues are unreachable now
                    # (every put path goes through the swap lock above);
                    # release them so their feeder threads cannot pin
                    # interpreter exit.
                    retired.dispose_queues()
                else:
                    worker.process.terminate()
                    worker = None
            if worker is None:
                if spawn_error is not None:
                    # The replacement could not even start: the shard is
                    # gone for good, exactly like an exhausted cap.
                    with self._lock:
                        self._dead_shards.add(index)
                    self._abandon(retried, WorkerError(
                        f"respawn of worker shard {index} failed: "
                        f"{type(spawn_error).__name__}: {spawn_error}"))
                else:
                    self._abandon(retried, ExecutorError(
                        f"executor closed during respawn of worker shard "
                        f"{index}"))
                return
            for (name, fingerprint), (table, cache) in registrations:
                # Snapshot live caches at replay time, so statistics
                # computed since registration warm-restore as well.
                snapshot = (cache.snapshot()
                            if isinstance(cache, StatsCache) else cache)
                worker.tasks.put(("register", name, fingerprint, table,
                                  snapshot))
            for handle in sorted(retried, key=lambda h: h.task_id):
                if handle.finished:
                    continue  # its outcome arrived before the death
                self._requeue(handle, worker, restart_no, exitcode)
        finally:
            self._settle_respawn(index)

    def _requeue(self, handle: _ProcessHandle, worker: _Worker,
                 restart_no: int, exitcode) -> bool:
        """Re-enqueue one retried task (cancel wins; restart announced)."""
        if handle.cancel_requested:
            with self._lock:
                self._pending.pop(handle.task_id, None)
            handle.finish("cancelled", None, None)
            return False
        try:
            handle.progress(WORKER_RESTART_STAGE, {
                "worker": handle.worker_index,
                "restart": restart_no,
                "attempt": handle.attempts + 1,
                "max_retries": self.max_retries,
                "exitcode": exitcode,
            })
        except JobCancelled:
            with self._lock:
                self._pending.pop(handle.task_id, None)
            handle.finish("cancelled", None, None)
            return False
        except BaseException:  # noqa: BLE001 - never kill the respawn
            pass
        handle.reset_attempt()
        worker.tasks.put(("task", handle.task_id, handle.task))
        return True

    def _settle_respawn(self, index: int) -> None:
        """Drain tasks parked during the respawn and reopen the shard."""
        while True:
            with self._lock:
                parked = self._parked[index]
                self._parked[index] = []
                if not parked:
                    # Clear the flag while holding the lock, so the
                    # next submit enqueues directly — behind everything
                    # this drain already enqueued.
                    self._respawning.discard(index)
                    return
                worker = self._workers[index]
                closed = self._closed
                dead = index in self._dead_shards
            if closed or dead:
                self._abandon(parked, ExecutorError(
                    f"worker shard {index} went away mid-submission "
                    + ("(executor closed during its respawn)" if closed
                       else "(its respawn failed)")))
                continue
            for handle in parked:
                if handle.cancel_requested:
                    with self._lock:
                        self._pending.pop(handle.task_id, None)
                    handle.finish("cancelled", None, None)
                else:
                    worker.tasks.put(("task", handle.task_id, handle.task))

    def _abandon(self, handles: "list[_ProcessHandle]",
                 error: BaseException) -> None:
        """Fail handles with a clean error (shutdown mid-respawn)."""
        with self._lock:
            for handle in handles:
                self._pending.pop(handle.task_id, None)
        for handle in handles:
            handle.finish("failed", None, error)

    # -- lifecycle -----------------------------------------------------------

    def close(self, wait: bool = True) -> None:
        """Stop the shards; idempotent.

        ``wait=True`` lets queued/running tasks finish first (the
        shutdown sentinel queues behind them); ``wait=False`` terminates
        the workers and fails whatever was in flight.

        A close that lands **during an active worker respawn** must not
        hang: the drain waits on the respawn thread(s) for at most
        :attr:`RESPAWN_DRAIN_SECONDS`, and anything still stranded after
        that fails with a clean shutdown :class:`ExecutorError` instead
        of blocking the caller forever.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            respawn_threads = list(self._respawn_threads)
        # Respawn threads observe ``_closed`` and abandon their tasks
        # with a clean error; the bounded join is the backstop for a
        # thread wedged mid-spawn.
        deadline = time.monotonic() + (self.RESPAWN_DRAIN_SECONDS
                                       if wait else 1.0)
        for thread in respawn_threads:
            thread.join(timeout=max(0.0, deadline - time.monotonic()))
        with self._lock:
            stuck = [h for h in self._pending.values()
                     if h.worker_index in self._respawning]
            for handle in stuck:
                self._pending.pop(handle.task_id, None)
        for handle in stuck:
            handle.finish("failed", None, ExecutorError(
                f"executor closed during respawn of worker shard "
                f"{handle.worker_index} (drain timed out)"))
        if wait:
            # The sentinel queues behind in-flight tasks: workers drain
            # their queues (outcomes land through the pump), then exit.
            for worker in self._workers:
                worker.tasks.put(None)
            for worker in self._workers:
                worker.process.join(timeout=30)
            # The workers have exited, but their final outcomes may
            # still sit in the results queue: let the pump deliver them
            # before declaring anything abandoned.
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline:
                with self._lock:
                    if not self._pending:
                        break
                time.sleep(0.02)
        with self._lock:
            leftovers = list(self._pending.values())
            self._pending.clear()
        for worker in self._workers:
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(timeout=5)
        for handle in leftovers:
            handle.finish("cancelled", None, None)
        self._results.put(None)
        self._pump.join(timeout=5)
        # Every reader is gone (workers terminated, pump stopped):
        # buffered messages are undeliverable, so the feeders must not
        # be joined on them at interpreter exit.
        self._results.cancel_join_thread()
        self._results.close()
        for worker in self._workers:
            worker.dispose_queues()

    def describe(self) -> dict:
        with self._lock:
            shards = {
                str(index): sorted(name for name, _fp in registrations)
                for index, registrations in self._registrations.items()}
            in_flight = len(self._pending)
            register_errors = dict(self._register_errors)
            restarts = {str(index): count
                        for index, count in self._restarts.items() if count}
            dead_shards = sorted(self._dead_shards)
            respawning = sorted(self._respawning)
        info = {"kind": self.kind, "workers": self.n_workers,
                "mp_method": self.mp_method, "shards": shards,
                "in_flight": in_flight,
                "max_restarts": self.max_restarts,
                "max_retries": self.max_retries}
        if restarts:
            info["restarts"] = restarts
        if dead_shards:
            info["dead_shards"] = dead_shards
        if respawning:
            info["respawning"] = respawning
        if register_errors:
            info["register_errors"] = register_errors
        return info
