"""The shared runtime layer: process-wide, cross-request state.

Everything that outlives a single request lives here (see
``docs/runtime.md`` for the ownership rules):

* :class:`TableStore` — named, fingerprinted, ref-counted table
  registration with LRU eviction under table/byte limits;
* :class:`SharedStatsRegistry` — one thread-safe ``StatsCache`` per table
  fingerprint, shared across every client session, job and batch;
* :class:`ZiggyRuntime` — the composition of the two, with a
  process-wide default (:func:`get_runtime`);
* :mod:`repro.runtime.executors` — pluggable execution backends
  (inline / thread / process shards routed by table fingerprint) that
  run characterization jobs for the service layer (see
  ``docs/executors.md``).

Layering: ``runtime`` sits between the engine (tables, fingerprints) and
the app/service layers, which *borrow* state from it instead of owning
cross-request caches themselves.
"""

from repro.runtime.runtime import (
    DEFAULT_MAX_BYTES,
    DEFAULT_MAX_TABLES,
    ZiggyRuntime,
    get_runtime,
    reset_runtime,
    set_runtime,
)
from repro.runtime.executors import (
    EXECUTOR_KINDS,
    WORKER_RESTART_STAGE,
    BatchGroup,
    CharacterizationTask,
    Executor,
    ExecutorError,
    InlineExecutor,
    ProcessShardExecutor,
    ThreadExecutor,
    WorkerError,
    create_executor,
    plan_batch,
    shard_index,
)
from repro.runtime.stats_registry import RegistryStats, SharedStatsRegistry
from repro.runtime.table_store import TableEntry, TableStore, TableStoreError

__all__ = [
    "BatchGroup",
    "CharacterizationTask",
    "EXECUTOR_KINDS",
    "WORKER_RESTART_STAGE",
    "plan_batch",
    "Executor",
    "ExecutorError",
    "InlineExecutor",
    "ProcessShardExecutor",
    "ThreadExecutor",
    "WorkerError",
    "create_executor",
    "shard_index",
    "ZiggyRuntime",
    "get_runtime",
    "set_runtime",
    "reset_runtime",
    "DEFAULT_MAX_TABLES",
    "DEFAULT_MAX_BYTES",
    "TableStore",
    "TableEntry",
    "TableStoreError",
    "SharedStatsRegistry",
    "RegistryStats",
]
