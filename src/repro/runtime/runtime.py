"""The shared runtime — all cross-request state under one roof.

A :class:`ZiggyRuntime` composes the two cross-request stores:

* :class:`~repro.runtime.table_store.TableStore` — who holds tables, for
  how long (ref-counted pins, LRU eviction under table/byte limits);
* :class:`~repro.runtime.stats_registry.SharedStatsRegistry` — one
  thread-safe :class:`StatsCache` per table fingerprint, shared by every
  session, job and batch.

The store's evictions are wired into the registry, so reclaiming a table
also frees its cached moments — bounded memory end to end.

Sessions and services *borrow* state from the runtime instead of owning
it: :meth:`ZiggyRuntime.stats_for` hands out the shared cache for a
table, and :meth:`ZiggyRuntime.lease` pins a table for the duration of a
characterization so eviction never races a running query.

A process-wide default runtime (:func:`get_runtime`) makes sharing the
zero-configuration behaviour — two independently constructed sessions in
one process automatically share per-table statistics.  Deployments that
want their own limits build a runtime explicitly and pass it down
(``repro serve --max-tables N --cache-bytes B`` does exactly that).
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Iterator

from repro.core.stats_cache import StatsCache
from repro.engine.table import Table
from repro.runtime.stats_registry import SharedStatsRegistry
from repro.runtime.table_store import TableEntry, TableStore

#: Default eviction limits of the process-wide runtime (and of
#: ``repro serve``): plenty for interactive exploration, small enough
#: that a long-lived process cannot accrete unbounded table state.
DEFAULT_MAX_TABLES = 16
DEFAULT_MAX_BYTES = 1 << 30  # 1 GiB of resident column data


class ZiggyRuntime:
    """Cross-request state: the table store plus the stats registry.

    Args:
        max_tables: resident-table limit for the store (None = unbounded).
        max_bytes: resident-byte limit for the store (None = unbounded).
    """

    def __init__(self, max_tables: int | None = DEFAULT_MAX_TABLES,
                 max_bytes: int | None = DEFAULT_MAX_BYTES):
        self.tables = TableStore(max_tables=max_tables, max_bytes=max_bytes)
        self.stats = SharedStatsRegistry()
        self.tables.add_evict_listener(self._on_table_evicted)

    def _on_table_evicted(self, entry) -> None:
        # An alias registered under another name may keep the content
        # resident; only drop the shared cache when the last one goes.
        if not self.tables.has_resident_fingerprint(entry.fingerprint):
            self.stats.evict(entry.fingerprint)

    # -- borrowing ----------------------------------------------------------------

    def register_table(self, table: Table, name: str | None = None) -> TableEntry:
        """Make a table known to the runtime (idempotent, LRU bump).

        Registration also warms the table's shared cache with its sketch
        tier (built once per content fingerprint; a no-op when a sketch
        already arrived via snapshot restore or shard handoff), so the
        first query already runs on the sublinear path.
        """
        entry = self.tables.register(table, name=name)
        self.stats.warm(table)
        return entry

    def stats_for(self, table: Table,
                  borrower: str = "anonymous") -> StatsCache:
        """The shared statistics cache for one table.

        Registers the table as a side effect so the store's eviction
        policy governs how long its derived state stays resident (and
        warms the sketch tier, amortized to a lookup after first build).
        """
        self.register_table(table)
        return self.stats.cache_for(table, borrower=borrower)

    @contextmanager
    def lease(self, table: Table,
              borrower: str = "anonymous") -> Iterator[StatsCache]:
        """Pin a table for the duration of a characterization.

        Yields the table's shared cache; while the lease is held the
        table (and therefore its cache) cannot be evicted, so limits
        never interrupt running work — they apply between requests.
        """
        entry = self.tables.acquire(table)
        try:
            yield self.stats.cache_for(table, borrower=borrower)
        finally:
            self.tables.release(entry)

    # -- introspection ------------------------------------------------------------

    def stats_snapshot(self) -> dict:
        """Store + registry health in one JSON-able dict."""
        return {"tables": self.tables.stats(),
                "registry": self.stats.stats().to_dict()}


# ---------------------------------------------------------------------------
# The process-wide default
# ---------------------------------------------------------------------------

_default_runtime: ZiggyRuntime | None = None
_default_lock = threading.Lock()


def get_runtime() -> ZiggyRuntime:
    """The process-wide runtime, created on first use."""
    global _default_runtime
    with _default_lock:
        if _default_runtime is None:
            _default_runtime = ZiggyRuntime()
        return _default_runtime


def set_runtime(runtime: ZiggyRuntime) -> ZiggyRuntime:
    """Install a specific runtime as the process-wide default."""
    global _default_runtime
    with _default_lock:
        _default_runtime = runtime
        return runtime


def reset_runtime() -> None:
    """Forget the process-wide runtime (tests; a fresh one is lazily
    created on the next :func:`get_runtime` call)."""
    global _default_runtime
    with _default_lock:
        _default_runtime = None
