"""CSV import/export with type inference.

The demo datasets (UCI Communities & Crime, OECD innovation tables) ship
as CSV; :func:`read_csv` loads such files into engine tables, inferring
numeric / boolean / categorical types per column and mapping the usual
missing-value tokens to NULL.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import Sequence

from repro.engine.column import (
    BooleanColumn,
    CategoricalColumn,
    Column,
    NumericColumn,
)
from repro.engine.table import Table
from repro.errors import CsvFormatError

#: Tokens treated as missing on import (case-insensitive).
MISSING_TOKENS = frozenset({"", "na", "n/a", "nan", "null", "none", "?", "-"})

_TRUE_TOKENS = frozenset({"true", "t", "yes", "y"})
_FALSE_TOKENS = frozenset({"false", "f", "no", "n"})


def infer_column(name: str, raw: Sequence[str]) -> Column:
    """Infer the best column type for a list of raw CSV strings.

    Order of preference: boolean (only true/false tokens), numeric (all
    entries parse as floats), else categorical.  Missing tokens never
    influence the choice.
    """
    present = [(i, s.strip()) for i, s in enumerate(raw)
               if s is not None and s.strip().lower() not in MISSING_TOKENS]
    values = [s for _, s in present]
    lowered = [s.lower() for s in values]
    if values and all(s in _TRUE_TOKENS | _FALSE_TOKENS for s in lowered):
        data: list = [None] * len(raw)
        for (i, _), s in zip(present, lowered):
            data[i] = s in _TRUE_TOKENS
        return BooleanColumn(name, data)
    if values:
        parsed: list[float] = []
        numeric = True
        for s in values:
            try:
                parsed.append(float(s.replace(",", "")))
            except ValueError:
                numeric = False
                break
        if numeric:
            data = [None] * len(raw)
            for (i, _), v in zip(present, parsed):
                data[i] = v
            return NumericColumn(name, data)
    data = [None] * len(raw)
    for i, s in present:
        data[i] = s
    return CategoricalColumn(name, data)


def read_csv(path_or_buffer, name: str | None = None,
             delimiter: str = ",") -> Table:
    """Load a CSV file (with a header row) into a :class:`Table`.

    Args:
        path_or_buffer: file path or an open text stream.
        name: table name (defaults to the file stem or "table").
        delimiter: field separator.
    """
    if isinstance(path_or_buffer, (str, Path)):
        path = Path(path_or_buffer)
        with path.open("r", newline="", encoding="utf-8") as fh:
            return _read_stream(fh, name or path.stem, delimiter)
    return _read_stream(path_or_buffer, name or "table", delimiter)


def _read_stream(stream, name: str, delimiter: str) -> Table:
    reader = csv.reader(stream, delimiter=delimiter)
    try:
        header = next(reader)
    except StopIteration:
        raise CsvFormatError("CSV input is empty (no header row)") from None
    header = [h.strip() for h in header]
    if any(not h for h in header):
        raise CsvFormatError("CSV header contains empty column names")
    buffers: list[list[str]] = [[] for _ in header]
    for lineno, row in enumerate(reader, start=2):
        if not row or all(not cell.strip() for cell in row):
            continue  # skip blank lines
        if len(row) != len(header):
            raise CsvFormatError(
                f"line {lineno}: expected {len(header)} fields, got {len(row)}")
        for buf, cell in zip(buffers, row):
            buf.append(cell)
    columns = [infer_column(h, buf) for h, buf in zip(header, buffers)]
    return Table(columns, name=name)


def write_csv(table: Table, path_or_buffer, delimiter: str = ",") -> None:
    """Write a table as CSV (missing values become empty fields)."""
    if isinstance(path_or_buffer, (str, Path)):
        with Path(path_or_buffer).open("w", newline="", encoding="utf-8") as fh:
            _write_stream(table, fh, delimiter)
        return
    _write_stream(table, path_or_buffer, delimiter)


def _write_stream(table: Table, stream, delimiter: str) -> None:
    from repro.engine.types import ColumnType

    writer = csv.writer(stream, delimiter=delimiter, lineterminator="\n")
    writer.writerow(table.column_names)
    is_bool = [c.ctype is ColumnType.BOOLEAN for c in table.columns]
    for row in table.rows():
        out = []
        for v, boolean in zip(row, is_bool):
            if v is None:
                out.append("")
            elif boolean:
                out.append("true" if v else "false")
            elif isinstance(v, float) and v == int(v) and abs(v) < 1e15:
                out.append(str(int(v)))
            else:
                out.append(str(v))
        writer.writerow(out)


def table_to_csv_text(table: Table) -> str:
    """Render a table as a CSV string (used by the JSON API layer)."""
    buf = io.StringIO()
    write_csv(table, buf)
    return buf.getvalue()
