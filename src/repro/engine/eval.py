"""Vectorized expression evaluation with SQL three-valued logic.

Boolean results use Kleene logic encoded as float64:
``0.0`` = false, ``0.5`` = unknown (NULL), ``1.0`` = true.  With this
encoding ``AND`` is elementwise ``min``, ``OR`` is ``max`` and ``NOT`` is
``1 - x`` — exactly Kleene's strong three-valued connectives.  A WHERE
clause keeps the rows whose value is exactly ``1.0`` (SQL's "NULL is not
selected" rule), which :func:`evaluate_predicate` applies at the end.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

import numpy as np

from repro.engine.column import CategoricalColumn
from repro.engine.expr import (
    ARITHMETIC_OPS,
    Between,
    BinaryOp,
    ColumnRef,
    Expression,
    FunctionCall,
    InList,
    IsNull,
    Like,
    Literal,
    LOGICAL_OPS,
    UnaryOp,
)
from repro.engine.functions import apply_function
from repro.engine.table import Table
from repro.errors import QueryTypeError

FALSE, UNKNOWN, TRUE = 0.0, 0.5, 1.0


@dataclass(frozen=True)
class Value:
    """An evaluated expression: a typed, table-length numpy array.

    ``kind`` is one of ``"num"`` (float64, NaN = NULL), ``"str"`` (object
    array, None = NULL) or ``"bool"`` (float64 Kleene encoding).
    """

    kind: str
    data: np.ndarray

    def __post_init__(self):
        if self.kind not in ("num", "str", "bool"):
            raise ValueError(f"bad value kind {self.kind!r}")


def _num_const(x: float, n: int) -> Value:
    return Value("num", np.full(n, x, dtype=np.float64))


def _str_const(s: str | None, n: int) -> Value:
    arr = np.empty(n, dtype=object)
    arr[:] = s
    return Value("str", arr)


def _bool_from_mask(true_mask: np.ndarray, unknown_mask: np.ndarray) -> Value:
    out = np.where(true_mask, TRUE, FALSE)
    out = np.where(unknown_mask, UNKNOWN, out)
    return Value("bool", out.astype(np.float64))


def _to_bool(value: Value, what: str) -> np.ndarray:
    """Coerce a value to the Kleene encoding (numbers: nonzero = true)."""
    if value.kind == "bool":
        return value.data
    if value.kind == "num":
        unknown = np.isnan(value.data)
        return _bool_from_mask(value.data != 0.0, unknown).data
    raise QueryTypeError(f"{what}: expected a boolean, got a string expression")


def _to_num(value: Value, what: str) -> np.ndarray:
    if value.kind == "num":
        return value.data
    if value.kind == "bool":
        # Kleene unknown (0.5) maps back to NaN for arithmetic.
        data = value.data.copy()
        data[data == UNKNOWN] = np.nan
        return data
    raise QueryTypeError(f"{what}: expected a numeric operand, got a string")


class Evaluator:
    """Evaluates an :class:`Expression` over one table."""

    def __init__(self, table: Table):
        self.table = table
        self.n = table.n_rows

    # -- dispatch --------------------------------------------------------------

    def evaluate(self, expr: Expression) -> Value:
        method = getattr(self, "_eval_" + type(expr).__name__.lower(), None)
        if method is None:
            raise QueryTypeError(f"cannot evaluate node {type(expr).__name__}")
        return method(expr)

    # -- leaves ------------------------------------------------------------------

    def _eval_literal(self, expr: Literal) -> Value:
        v = expr.value
        if v is None:
            return _num_const(np.nan, self.n)
        if isinstance(v, bool):
            return Value("bool", np.full(self.n, TRUE if v else FALSE))
        if isinstance(v, str):
            return _str_const(v, self.n)
        return _num_const(float(v), self.n)

    def _eval_columnref(self, expr: ColumnRef) -> Value:
        col = self.table.column(expr.name)
        if isinstance(col, CategoricalColumn):
            return Value("str", col.values())
        return Value("num", col.numeric_values())

    # -- operators ----------------------------------------------------------------

    def _eval_unaryop(self, expr: UnaryOp) -> Value:
        operand = self.evaluate(expr.operand)
        if expr.op == "NEG":
            return Value("num", -_to_num(operand, "unary '-'"))
        mask = _to_bool(operand, "NOT")
        return Value("bool", 1.0 - mask)

    def _eval_binaryop(self, expr: BinaryOp) -> Value:
        if expr.op in LOGICAL_OPS:
            left = _to_bool(self.evaluate(expr.left), expr.op)
            right = _to_bool(self.evaluate(expr.right), expr.op)
            if expr.op == "AND":
                return Value("bool", np.minimum(left, right))
            return Value("bool", np.maximum(left, right))
        left = self.evaluate(expr.left)
        right = self.evaluate(expr.right)
        if expr.op in ARITHMETIC_OPS:
            return self._arithmetic(expr.op, left, right)
        return self._comparison(expr.op, left, right)

    def _arithmetic(self, op: str, left: Value, right: Value) -> Value:
        a = _to_num(left, f"'{op}'")
        b = _to_num(right, f"'{op}'")
        with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
            if op == "+":
                out = a + b
            elif op == "-":
                out = a - b
            elif op == "*":
                out = a * b
            elif op == "/":
                out = a / b
            else:  # "%"
                out = np.mod(a, b)
        out = np.asarray(out, dtype=np.float64)
        out[~np.isfinite(out)] = np.nan
        return Value("num", out)

    def _comparison(self, op: str, left: Value, right: Value) -> Value:
        if left.kind == "str" or right.kind == "str":
            return self._string_comparison(op, left, right)
        a = _to_num(left, f"'{op}'")
        b = _to_num(right, f"'{op}'")
        unknown = np.isnan(a) | np.isnan(b)
        with np.errstate(invalid="ignore"):
            if op == "=":
                mask = a == b
            elif op == "!=":
                mask = a != b
            elif op == "<":
                mask = a < b
            elif op == "<=":
                mask = a <= b
            elif op == ">":
                mask = a > b
            else:  # ">="
                mask = a >= b
        return _bool_from_mask(mask, unknown)

    def _string_comparison(self, op: str, left: Value, right: Value) -> Value:
        if left.kind != "str" or right.kind != "str":
            raise QueryTypeError(
                f"'{op}': cannot compare a string with a number")
        a, b = left.data, right.data
        unknown = np.array([x is None or y is None for x, y in zip(a, b)])
        if op in ("=", "!="):
            eq = np.array([x == y for x, y in zip(a, b)], dtype=bool)
            mask = eq if op == "=" else ~eq
        elif op in ("<", "<=", ">", ">="):
            import operator as _op
            fn = {"<": _op.lt, "<=": _op.le, ">": _op.gt, ">=": _op.ge}[op]
            mask = np.array([bool(fn(x, y)) if x is not None and y is not None
                             else False for x, y in zip(a, b)])
        else:  # pragma: no cover - parser only emits the above
            raise QueryTypeError(f"unsupported string comparison {op!r}")
        return _bool_from_mask(mask, unknown)

    # -- special predicates ---------------------------------------------------------

    def _eval_isnull(self, expr: IsNull) -> Value:
        operand = self.evaluate(expr.operand)
        if operand.kind == "str":
            missing = np.array([v is None for v in operand.data], dtype=bool)
        else:
            data = operand.data
            if operand.kind == "bool":
                missing = data == UNKNOWN
            else:
                missing = np.isnan(data)
        if expr.negated:
            missing = ~missing
        return Value("bool", missing.astype(np.float64))

    def _eval_inlist(self, expr: InList) -> Value:
        operand = self.evaluate(expr.operand)
        values = [item.value for item in expr.items]
        if operand.kind == "str":
            wanted = {v for v in values if isinstance(v, str)}
            unknown = np.array([v is None for v in operand.data], dtype=bool)
            mask = np.array([v in wanted if v is not None else False
                             for v in operand.data], dtype=bool)
        else:
            data = _to_num(operand, "IN")
            nums = [float(v) for v in values
                    if isinstance(v, (int, float)) and not isinstance(v, bool)]
            nums += [1.0 if v else 0.0 for v in values if isinstance(v, bool)]
            unknown = np.isnan(data)
            mask = np.zeros(data.size, dtype=bool)
            for v in nums:
                mask |= data == v
        if expr.negated:
            mask = ~mask & ~unknown
        return _bool_from_mask(mask, unknown)

    def _eval_between(self, expr: Between) -> Value:
        operand = _to_num(self.evaluate(expr.operand), "BETWEEN")
        low = _to_num(self.evaluate(expr.low), "BETWEEN")
        high = _to_num(self.evaluate(expr.high), "BETWEEN")
        unknown = np.isnan(operand) | np.isnan(low) | np.isnan(high)
        with np.errstate(invalid="ignore"):
            mask = (operand >= low) & (operand <= high)
        if expr.negated:
            mask = ~mask & ~unknown
        return _bool_from_mask(mask, unknown)

    def _eval_like(self, expr: Like) -> Value:
        operand = self.evaluate(expr.operand)
        if operand.kind != "str":
            raise QueryTypeError("LIKE applies to string expressions only")
        regex = _like_to_regex(expr.pattern)
        unknown = np.array([v is None for v in operand.data], dtype=bool)
        mask = np.array([bool(regex.fullmatch(v)) if v is not None else False
                         for v in operand.data], dtype=bool)
        if expr.negated:
            mask = ~mask & ~unknown
        return _bool_from_mask(mask, unknown)

    def _eval_functioncall(self, expr: FunctionCall) -> Value:
        args = [_to_num(self.evaluate(a), f"{expr.name}()") for a in expr.args]
        return Value("num", apply_function(expr.name, args))


def _like_to_regex(pattern: str) -> re.Pattern:
    """Translate a SQL LIKE pattern (``%``, ``_``) into a regex."""
    out: list[str] = []
    for ch in pattern:
        if ch == "%":
            out.append(".*")
        elif ch == "_":
            out.append(".")
        else:
            out.append(re.escape(ch))
    return re.compile("".join(out), flags=re.IGNORECASE)


def evaluate_expression(table: Table, expr: Expression) -> Value:
    """Evaluate any expression over ``table`` and return the typed Value."""
    return Evaluator(table).evaluate(expr)


def evaluate_predicate(table: Table, expr: Expression) -> np.ndarray:
    """Evaluate a predicate and return the boolean selection mask.

    Rows where the predicate is NULL (unknown) are *not* selected, per
    SQL semantics.
    """
    value = Evaluator(table).evaluate(expr)
    kleene = _to_bool(value, "WHERE")
    return kleene == TRUE
