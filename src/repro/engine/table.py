"""The Table: an ordered collection of equal-length typed columns."""

from __future__ import annotations

import hashlib
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.engine.column import (
    BooleanColumn,
    CategoricalColumn,
    Column,
    NumericColumn,
    column_from_values,
)
from repro.engine.types import ColumnType
from repro.errors import SchemaError, UnknownColumnError


class Table:
    """An immutable in-memory table.

    Construction validates that column names are unique and lengths agree.
    All row-level operations (``select``, ``sort_by``, ``head``) return new
    tables; columns themselves are shared, never copied, when possible.
    """

    def __init__(self, columns: Sequence[Column], name: str = "table"):
        names = [c.name for c in columns]
        if len(set(names)) != len(names):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise SchemaError(f"duplicate column names: {', '.join(dupes)}")
        lengths = {len(c) for c in columns}
        if len(lengths) > 1:
            raise SchemaError(f"columns have mismatched lengths: {sorted(lengths)}")
        self.name = name
        self._columns: tuple[Column, ...] = tuple(columns)
        self._index: dict[str, int] = {c.name: i for i, c in enumerate(columns)}
        self._n_rows = lengths.pop() if lengths else 0
        self._fingerprint: str | None = None
        self._matrix_memo: dict[tuple[str, ...], np.ndarray] = {}

    # -- construction ---------------------------------------------------------

    @classmethod
    def from_dict(cls, data: Mapping[str, Sequence], name: str = "table") -> "Table":
        """Build a table from ``{column_name: values}``.

        Numpy float/int arrays become numeric columns; bool arrays become
        boolean; anything else goes through type sniffing.
        """
        cols: list[Column] = []
        for cname, values in data.items():
            if isinstance(values, np.ndarray):
                if values.dtype == np.bool_:
                    cols.append(BooleanColumn(cname, values))
                elif np.issubdtype(values.dtype, np.number):
                    cols.append(NumericColumn(cname, values.astype(np.float64)))
                else:
                    cols.append(CategoricalColumn(cname, list(values)))
            else:
                cols.append(column_from_values(cname, list(values)))
        return cls(cols, name=name)

    @classmethod
    def from_rows(cls, column_names: Sequence[str],
                  rows: Iterable[Sequence], name: str = "table") -> "Table":
        """Build a table from a row-major iterable."""
        buffers: list[list] = [[] for _ in column_names]
        for r, row in enumerate(rows):
            if len(row) != len(column_names):
                raise SchemaError(
                    f"row {r} has {len(row)} values, expected {len(column_names)}")
            for buf, value in zip(buffers, row):
                buf.append(value)
        cols = [column_from_values(cname, buf)
                for cname, buf in zip(column_names, buffers)]
        return cls(cols, name=name)

    # -- shape / lookup -------------------------------------------------------

    @property
    def n_rows(self) -> int:
        """Number of rows."""
        return self._n_rows

    @property
    def n_columns(self) -> int:
        """Number of columns."""
        return len(self._columns)

    @property
    def shape(self) -> tuple[int, int]:
        """``(n_rows, n_columns)``."""
        return (self._n_rows, len(self._columns))

    @property
    def column_names(self) -> tuple[str, ...]:
        """Column names in schema order."""
        return tuple(c.name for c in self._columns)

    @property
    def columns(self) -> tuple[Column, ...]:
        """The column objects in schema order."""
        return self._columns

    def __len__(self) -> int:
        return self._n_rows

    def __contains__(self, name: str) -> bool:
        return name in self._index

    def column(self, name: str) -> Column:
        """Look up a column by name; raises :class:`UnknownColumnError`."""
        idx = self._index.get(name)
        if idx is None:
            raise UnknownColumnError(name, self.column_names)
        return self._columns[idx]

    def __getitem__(self, name: str) -> Column:
        return self.column(name)

    def fingerprint(self) -> str:
        """A stable content hash of this table (name, schema and data).

        Tables are immutable, so the digest is computed once and memoized.
        The runtime layer keys cross-client state (the shared statistics
        registry, the table store) on this value: two tables with equal
        content share one fingerprint even across separate loads, while
        same-named tables with different rows never collide — unlike
        ``id(table)``, the fingerprint survives the table object itself,
        so caches keyed on it hold no reference to the data.
        """
        if self._fingerprint is None:
            digest = hashlib.blake2b(digest_size=16)
            digest.update(f"{self.name}\x00{self._n_rows}".encode())
            for col in self._columns:
                digest.update(f"\x00{col.name}\x00{col.ctype.name}\x00".encode())
                if isinstance(col, CategoricalColumn):
                    digest.update("\x1f".join(col.labels).encode())
                    digest.update(np.ascontiguousarray(col.codes).tobytes())
                else:
                    digest.update(np.ascontiguousarray(
                        col.numeric_values()).tobytes())
            self._fingerprint = digest.hexdigest()
        return self._fingerprint

    def nbytes(self) -> int:
        """Approximate in-memory footprint of the column data, in bytes.

        Used by the runtime's :class:`~repro.runtime.TableStore` to
        enforce byte-budget eviction; label storage of categoricals is
        estimated, not measured.
        """
        total = 0
        for col in self._columns:
            if isinstance(col, CategoricalColumn):
                total += col.codes.nbytes
                total += sum(len(label) for label in col.labels)
            else:
                total += col.numeric_values().nbytes
        return total

    def numeric_column_names(self) -> tuple[str, ...]:
        """Names of numeric and boolean columns, in schema order."""
        return tuple(c.name for c in self._columns if c.ctype.is_numeric)

    def categorical_column_names(self) -> tuple[str, ...]:
        """Names of categorical columns, in schema order."""
        return tuple(c.name for c in self._columns
                     if c.ctype is ColumnType.CATEGORICAL)

    #: Column-stacked matrices memoized per column tuple (see
    #: :meth:`numeric_matrix`).  Small on purpose: the hot path asks for
    #: the same one or two projections per table over and over.
    _MATRIX_MEMO_ENTRIES = 8

    def numeric_matrix(self, names: Sequence[str] | None = None) -> np.ndarray:
        """Float64 matrix (rows x selected numeric columns).

        The stacked result is memoized per column tuple — tables are
        immutable, and re-stacking an n x M matrix on every query was a
        measurable share of the warm path.  Callers must not mutate the
        returned array (consistent with the engine's copy-on-write
        column sharing); row-subsetting via fancy indexing copies, which
        is what every current caller does.
        """
        if names is None:
            names = self.numeric_column_names()
        key = tuple(names)
        cached = self._matrix_memo.get(key)
        if cached is not None:
            return cached
        arrays = [self.column(n).numeric_values() for n in key]
        if not arrays:
            return np.empty((self._n_rows, 0), dtype=np.float64)
        mat = np.column_stack(arrays)
        if len(self._matrix_memo) >= self._MATRIX_MEMO_ENTRIES:
            self._matrix_memo.pop(next(iter(self._matrix_memo)))
        self._matrix_memo[key] = mat
        return mat

    def __getstate__(self) -> dict:
        """Pickle without the matrix memo (pure derived data — shipping
        it would double the payload of every table that crossed a
        process boundary)."""
        state = dict(self.__dict__)
        state["_matrix_memo"] = {}
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        # Tables pickled by older revisions predate the memo.
        if "_matrix_memo" not in self.__dict__:
            self._matrix_memo = {}

    # -- row operations -------------------------------------------------------

    def select(self, mask: np.ndarray, name: str | None = None) -> "Table":
        """New table with the rows where ``mask`` is True."""
        mask = np.asarray(mask)
        if mask.dtype != np.bool_ or mask.shape != (self._n_rows,):
            raise ValueError(
                f"mask must be a boolean array of length {self._n_rows}")
        return Table([c.take(mask) for c in self._columns],
                     name=name or self.name)

    def take(self, indices: np.ndarray, name: str | None = None) -> "Table":
        """New table with rows gathered by integer indices (in order)."""
        idx = np.asarray(indices, dtype=np.int64)
        return Table([c.take(idx) for c in self._columns],
                     name=name or self.name)

    def project(self, names: Sequence[str], name: str | None = None) -> "Table":
        """New table restricted to the given columns, in the given order."""
        return Table([self.column(n) for n in names], name=name or self.name)

    def head(self, n: int = 10) -> "Table":
        """First ``n`` rows."""
        idx = np.arange(min(n, self._n_rows))
        return self.take(idx)

    def sort_by(self, column_name: str, descending: bool = False) -> "Table":
        """Stable sort by one column (missing values last)."""
        col = self.column(column_name)
        if col.ctype.is_numeric:
            keys = col.numeric_values()
            order = np.argsort(keys, kind="mergesort")
            nan_count = int(np.isnan(keys).sum())
            if descending:
                valid = order[: keys.size - nan_count][::-1]
                nans = order[keys.size - nan_count:]
                order = np.concatenate([valid, nans])
        else:
            labels = col.values()
            sentinel = "￿"  # sorts after any real label
            keys = np.array([sentinel if v is None else str(v) for v in labels])
            order = np.argsort(keys, kind="mergesort")
            if descending:
                missing = keys[order] == sentinel
                order = np.concatenate([order[~missing][::-1], order[missing]])
        return self.take(order)

    def with_column(self, column: Column) -> "Table":
        """New table with ``column`` appended (or replaced if the name exists)."""
        if len(column) != self._n_rows and self._n_rows:
            raise SchemaError(
                f"column {column.name!r} has {len(column)} rows, table has "
                f"{self._n_rows}")
        cols = [c for c in self._columns if c.name != column.name]
        cols.append(column)
        return Table(cols, name=self.name)

    def rows(self) -> list[tuple]:
        """Materialize as a list of row tuples (labels for categoricals)."""
        raw = [c.values() for c in self._columns]
        out = []
        for i in range(self._n_rows):
            row = []
            for c, vals in zip(self._columns, raw):
                v = vals[i]
                if c.ctype.is_numeric and isinstance(v, float) and v != v:
                    v = None
                row.append(v)
            out.append(tuple(row))
        return out

    # -- display --------------------------------------------------------------

    def preview(self, n: int = 8, max_width: int = 14) -> str:
        """A fixed-width textual preview of the first ``n`` rows."""
        names = [str(c)[:max_width] for c in self.column_names]
        lines = [" | ".join(f"{c:>{max_width}}" for c in names)]
        lines.append("-+-".join("-" * max_width for _ in names))
        for row in self.head(n).rows():
            cells = []
            for v in row:
                if v is None:
                    s = "·"
                elif isinstance(v, float):
                    s = f"{v:.4g}"
                else:
                    s = str(v)
                cells.append(f"{s[:max_width]:>{max_width}}")
            lines.append(" | ".join(cells))
        if self._n_rows > n:
            lines.append(f"... ({self._n_rows} rows total)")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Table {self.name!r} {self._n_rows}x{len(self._columns)}>"
