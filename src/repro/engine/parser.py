"""Recursive-descent parser for the SQL-subset query language.

Grammar (informally)::

    query       := SELECT select_list FROM ident [WHERE predicate]
                   [ORDER BY ident [ASC|DESC]] [LIMIT number]
    select_list := '*' | ident (',' ident)*
    predicate   := or_expr
    or_expr     := and_expr (OR and_expr)*
    and_expr    := not_expr (AND not_expr)*
    not_expr    := NOT not_expr | comparison
    comparison  := additive comp_tail?
    comp_tail   := ('='|'=='|'!='|'<>'|'<'|'<='|'>'|'>=') additive
                 | IS [NOT] NULL
                 | [NOT] IN '(' literal (',' literal)* ')'
                 | [NOT] BETWEEN additive AND additive
                 | [NOT] LIKE string
    additive    := multiplicative (('+'|'-') multiplicative)*
    multiplicative := unary (('*'|'/'|'%') unary)*
    unary       := '-' unary | primary
    primary     := NUMBER | STRING | TRUE | FALSE | NULL
                 | ident '(' args ')' | ident | '(' predicate ')'

``parse_predicate`` parses a bare predicate (the text of a WHERE clause),
which is what the Ziggy session passes around.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine.expr import (
    Between,
    BinaryOp,
    CANONICAL_OPERATORS,
    ColumnRef,
    Expression,
    FunctionCall,
    InList,
    IsNull,
    Like,
    Literal,
    UnaryOp,
)
from repro.engine.lexer import Token, TokenKind, tokenize
from repro.errors import QuerySyntaxError


@dataclass(frozen=True)
class ParsedQuery:
    """A parsed SELECT statement.

    Attributes:
        table: name of the table in the FROM clause.
        columns: projected column names, or ``None`` for ``*``.  When
            aggregates are present these are the grouping columns to
            echo in the output.
        predicate: the WHERE expression, or ``None``.
        aggregates: aggregate select items (``avg(x)``, ``count(*)``).
        group_by: GROUP BY columns (empty = one global group when
            aggregates are present).
        order_by: column to sort by, or ``None``.
        descending: sort direction when ``order_by`` is set.
        limit: row limit, or ``None``.
    """

    table: str
    columns: tuple[str, ...] | None
    predicate: Expression | None
    aggregates: tuple["AggregateItem", ...] = ()
    group_by: tuple[str, ...] = ()
    order_by: str | None = None
    descending: bool = False
    limit: int | None = None

    @property
    def is_aggregation(self) -> bool:
        """Whether this query has an aggregate select list."""
        return bool(self.aggregates)

    def canonical(self) -> str:
        """Canonical text of the full query (used in logs and tests)."""
        items: list[str] = []
        if self.columns is None and not self.aggregates:
            items.append("*")
        else:
            items.extend(self.columns or ())
            items.extend(a.canonical() for a in self.aggregates)
        parts = [f"SELECT {', '.join(items)} FROM {self.table}"]
        if self.predicate is not None:
            parts.append(f"WHERE {self.predicate.canonical()}")
        if self.group_by:
            parts.append(f"GROUP BY {', '.join(self.group_by)}")
        if self.order_by is not None:
            parts.append(f"ORDER BY {self.order_by} "
                         f"{'DESC' if self.descending else 'ASC'}")
        if self.limit is not None:
            parts.append(f"LIMIT {self.limit}")
        return " ".join(parts)


class _Parser:
    """Token-stream cursor with the grammar methods."""

    def __init__(self, text: str):
        self.text = text
        self.tokens = tokenize(text)
        self.pos = 0

    # -- cursor helpers -------------------------------------------------------

    def peek(self) -> Token:
        return self.tokens[self.pos]

    def advance(self) -> Token:
        tok = self.tokens[self.pos]
        self.pos += 1
        return tok

    def error(self, message: str) -> QuerySyntaxError:
        tok = self.peek()
        return QuerySyntaxError(message, position=tok.position, text=self.text)

    def expect_keyword(self, word: str) -> Token:
        tok = self.peek()
        if tok.kind is TokenKind.KEYWORD and tok.text == word:
            return self.advance()
        raise self.error(f"expected {word}, found {tok.text or 'end of input'!r}")

    def match_keyword(self, word: str) -> bool:
        tok = self.peek()
        if tok.kind is TokenKind.KEYWORD and tok.text == word:
            self.advance()
            return True
        return False

    def match_operator(self, *ops: str) -> Token | None:
        tok = self.peek()
        if tok.kind is TokenKind.OPERATOR and tok.text in ops:
            return self.advance()
        return None

    def expect_ident(self) -> str:
        tok = self.peek()
        if tok.kind is TokenKind.IDENT:
            self.advance()
            return str(tok.value)
        raise self.error(f"expected identifier, found {tok.text or 'end of input'!r}")

    # -- grammar ---------------------------------------------------------------

    def parse_select_item(self, names: list[str],
                          aggregates: list["AggregateItem"]) -> None:
        """One select-list entry: a column or an aggregate call."""
        from repro.engine.aggregates import AGGREGATE_FUNCTIONS, AggregateItem

        name = self.expect_ident()
        if (name.lower() in AGGREGATE_FUNCTIONS
                and self.peek().kind is TokenKind.OPERATOR
                and self.peek().text == "("):
            self.advance()  # '('
            if self.peek().kind is TokenKind.STAR:
                self.advance()
                column: str | None = None
            else:
                column = self.expect_ident()
            if not self.match_operator(")"):
                raise self.error(f"expected ')' closing {name}(...)")
            try:
                aggregates.append(AggregateItem(name.lower(), column))
            except Exception as exc:
                raise self.error(str(exc)) from None
            return
        names.append(name)

    def parse_query(self) -> ParsedQuery:
        self.expect_keyword("SELECT")
        columns: tuple[str, ...] | None
        aggregates: list = []
        if self.peek().kind is TokenKind.STAR:
            self.advance()
            columns = None
        else:
            names: list[str] = []
            self.parse_select_item(names, aggregates)
            while self.match_operator(","):
                self.parse_select_item(names, aggregates)
            columns = tuple(names) if (names or not aggregates) else tuple(names)
        self.expect_keyword("FROM")
        table = self.expect_ident()
        predicate = None
        if self.match_keyword("WHERE"):
            predicate = self.parse_or()
        group_by: tuple[str, ...] = ()
        if self.match_keyword("GROUP"):
            self.expect_keyword("BY")
            group_names = [self.expect_ident()]
            while self.match_operator(","):
                group_names.append(self.expect_ident())
            group_by = tuple(group_names)
        if group_by and not aggregates:
            raise self.error("GROUP BY requires at least one aggregate "
                             "in the select list")
        if aggregates and columns:
            missing = [c for c in columns if c not in group_by]
            if missing:
                raise self.error(
                    f"column(s) {', '.join(missing)} must appear in "
                    "GROUP BY when aggregates are present")
        order_by = None
        descending = False
        if self.match_keyword("ORDER"):
            self.expect_keyword("BY")
            order_by = self.expect_ident()
            if self.match_keyword("DESC"):
                descending = True
            else:
                self.match_keyword("ASC")
        limit = None
        if self.match_keyword("LIMIT"):
            tok = self.peek()
            if tok.kind is not TokenKind.NUMBER:
                raise self.error("expected a number after LIMIT")
            self.advance()
            limit = int(tok.value)
            if limit < 0:
                raise self.error("LIMIT must be non-negative")
        self.expect_end()
        return ParsedQuery(table=table, columns=columns, predicate=predicate,
                           aggregates=tuple(aggregates), group_by=group_by,
                           order_by=order_by, descending=descending,
                           limit=limit)

    def expect_end(self):
        tok = self.peek()
        if tok.kind is not TokenKind.END:
            raise self.error(f"unexpected trailing input {tok.text!r}")

    def parse_or(self) -> Expression:
        expr = self.parse_and()
        while self.match_keyword("OR"):
            expr = BinaryOp("OR", expr, self.parse_and())
        return expr

    def parse_and(self) -> Expression:
        expr = self.parse_not()
        while self.match_keyword("AND"):
            expr = BinaryOp("AND", expr, self.parse_not())
        return expr

    def parse_not(self) -> Expression:
        if self.match_keyword("NOT"):
            return UnaryOp("NOT", self.parse_not())
        return self.parse_comparison()

    def parse_comparison(self) -> Expression:
        left = self.parse_additive()
        tok = self.match_operator("=", "==", "!=", "<>", "<", "<=", ">", ">=")
        if tok is not None:
            right = self.parse_additive()
            return BinaryOp(CANONICAL_OPERATORS[tok.text], left, right)
        if self.match_keyword("IS"):
            negated = self.match_keyword("NOT")
            self.expect_keyword("NULL")
            return IsNull(left, negated=negated)
        negated = self.match_keyword("NOT")
        if self.match_keyword("IN"):
            if not self.match_operator("("):
                raise self.error("expected '(' after IN")
            items = [self.parse_literal()]
            while self.match_operator(","):
                items.append(self.parse_literal())
            if not self.match_operator(")"):
                raise self.error("expected ')' closing IN list")
            return InList(left, tuple(items), negated=negated)
        if self.match_keyword("BETWEEN"):
            low = self.parse_additive()
            self.expect_keyword("AND")
            high = self.parse_additive()
            return Between(left, low, high, negated=negated)
        if self.match_keyword("LIKE"):
            tok = self.peek()
            if tok.kind is not TokenKind.STRING:
                raise self.error("LIKE requires a string pattern")
            self.advance()
            return Like(left, str(tok.value), negated=negated)
        if negated:
            raise self.error("expected IN, BETWEEN or LIKE after NOT")
        return left

    def parse_literal(self) -> Literal:
        tok = self.peek()
        if tok.kind is TokenKind.NUMBER:
            self.advance()
            return Literal(float(tok.value))
        if tok.kind is TokenKind.STRING:
            self.advance()
            return Literal(str(tok.value))
        if tok.kind is TokenKind.KEYWORD and tok.text in ("TRUE", "FALSE", "NULL"):
            self.advance()
            return Literal({"TRUE": True, "FALSE": False, "NULL": None}[tok.text])
        if tok.kind is TokenKind.OPERATOR and tok.text == "-":
            self.advance()
            inner = self.parse_literal()
            if not isinstance(inner.value, float):
                raise self.error("'-' must precede a number")
            return Literal(-inner.value)
        raise self.error(f"expected literal, found {tok.text or 'end of input'!r}")

    def parse_additive(self) -> Expression:
        expr = self.parse_multiplicative()
        while True:
            tok = self.match_operator("+", "-")
            if tok is None:
                return expr
            expr = BinaryOp(tok.text, expr, self.parse_multiplicative())

    def parse_multiplicative(self) -> Expression:
        expr = self.parse_unary()
        while True:
            tok = self.peek()
            if tok.kind is TokenKind.STAR:
                self.advance()
                expr = BinaryOp("*", expr, self.parse_unary())
                continue
            tok = self.match_operator("/", "%")
            if tok is None:
                return expr
            expr = BinaryOp(tok.text, expr, self.parse_unary())

    def parse_unary(self) -> Expression:
        if self.match_operator("-"):
            return UnaryOp("NEG", self.parse_unary())
        return self.parse_primary()

    def parse_primary(self) -> Expression:
        tok = self.peek()
        if tok.kind is TokenKind.NUMBER:
            self.advance()
            return Literal(float(tok.value))
        if tok.kind is TokenKind.STRING:
            self.advance()
            return Literal(str(tok.value))
        if tok.kind is TokenKind.KEYWORD and tok.text in ("TRUE", "FALSE", "NULL"):
            self.advance()
            return Literal({"TRUE": True, "FALSE": False, "NULL": None}[tok.text])
        if tok.kind is TokenKind.IDENT:
            self.advance()
            if self.match_operator("("):
                args: list[Expression] = []
                if not self.match_operator(")"):
                    args.append(self.parse_or())
                    while self.match_operator(","):
                        args.append(self.parse_or())
                    if not self.match_operator(")"):
                        raise self.error("expected ')' closing argument list")
                return FunctionCall(str(tok.value).lower(), tuple(args))
            return ColumnRef(str(tok.value))
        if self.match_operator("("):
            inner = self.parse_or()
            if not self.match_operator(")"):
                raise self.error("expected ')'")
            return inner
        raise self.error(f"unexpected token {tok.text or 'end of input'!r}")


def parse_query(text: str) -> ParsedQuery:
    """Parse a full SELECT statement."""
    return _Parser(text).parse_query()


def parse_predicate(text: str) -> Expression:
    """Parse a bare predicate (the body of a WHERE clause)."""
    parser = _Parser(text)
    expr = parser.parse_or()
    parser.expect_end()
    return expr
