"""Scalar functions available in query expressions.

All functions are vectorized over float64 arrays and propagate NaN.
Domain violations (log of a non-positive number, sqrt of a negative)
yield NaN rather than raising, matching SQL semantics where a bad row
becomes NULL instead of killing the query.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.errors import QueryTypeError


def _log(x: np.ndarray) -> np.ndarray:
    with np.errstate(invalid="ignore", divide="ignore"):
        out = np.log(x)
    out[~np.isfinite(out)] = np.nan
    return out


def _log2(x: np.ndarray) -> np.ndarray:
    with np.errstate(invalid="ignore", divide="ignore"):
        out = np.log2(x)
    out[~np.isfinite(out)] = np.nan
    return out


def _log10(x: np.ndarray) -> np.ndarray:
    with np.errstate(invalid="ignore", divide="ignore"):
        out = np.log10(x)
    out[~np.isfinite(out)] = np.nan
    return out


def _sqrt(x: np.ndarray) -> np.ndarray:
    with np.errstate(invalid="ignore"):
        return np.sqrt(x)


def _exp(x: np.ndarray) -> np.ndarray:
    with np.errstate(over="ignore"):
        out = np.exp(x)
    out[np.isinf(out)] = np.nan
    return out


def _sign(x: np.ndarray) -> np.ndarray:
    return np.sign(x)


_UNARY: dict[str, Callable[[np.ndarray], np.ndarray]] = {
    "abs": np.abs,
    "log": _log,
    "ln": _log,
    "log2": _log2,
    "log10": _log10,
    "sqrt": _sqrt,
    "exp": _exp,
    "floor": np.floor,
    "ceil": np.ceil,
    "round": np.round,
    "sign": _sign,
}


def apply_function(name: str, args: list[np.ndarray]) -> np.ndarray:
    """Apply the scalar function ``name`` to evaluated float64 arguments.

    Raises :class:`QueryTypeError` for unknown functions or arity
    mismatches; the error lists the available functions so typos in an
    interactive session are self-explanatory.
    """
    fn = _UNARY.get(name)
    if fn is not None:
        if len(args) != 1:
            raise QueryTypeError(f"{name}() takes exactly 1 argument, "
                                 f"got {len(args)}")
        return fn(np.asarray(args[0], dtype=np.float64))
    if name == "pow":
        if len(args) != 2:
            raise QueryTypeError(f"pow() takes exactly 2 arguments, got {len(args)}")
        with np.errstate(invalid="ignore", over="ignore", divide="ignore"):
            out = np.power(np.asarray(args[0], dtype=np.float64),
                           np.asarray(args[1], dtype=np.float64))
        out = np.asarray(out, dtype=np.float64)
        out[~np.isfinite(out)] = np.nan
        return out
    available = sorted(list(_UNARY) + ["pow"])
    raise QueryTypeError(
        f"unknown function {name!r}; available: {', '.join(available)}")


def known_functions() -> tuple[str, ...]:
    """Names of all scalar functions the evaluator supports."""
    return tuple(sorted(list(_UNARY) + ["pow"]))
