"""Typed expression AST for the query language.

Every node knows how to print a *canonical form* of itself
(:meth:`Expression.canonical`), which normalizes whitespace, case of
keywords and operator synonyms (``=``/``==``, ``<>``/``!=``).  The
canonical form is the statistics cache's fingerprint: two syntactically
different spellings of the same predicate share cached inside-group
statistics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence


class Expression:
    """Base class for AST nodes."""

    def canonical(self) -> str:
        """Canonical textual form (stable across spelling variants)."""
        raise NotImplementedError

    def referenced_columns(self) -> set[str]:
        """Names of all columns mentioned anywhere under this node."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.canonical()}>"


@dataclass(frozen=True, repr=False)
class ColumnRef(Expression):
    """Reference to a column by name."""

    name: str

    def canonical(self) -> str:
        if self.name.isidentifier():
            return self.name
        return '"' + self.name.replace('"', '""') + '"'

    def referenced_columns(self) -> set[str]:
        return {self.name}


@dataclass(frozen=True, repr=False)
class Literal(Expression):
    """A constant: number, string, boolean or NULL (None)."""

    value: float | str | bool | None

    def canonical(self) -> str:
        v = self.value
        if v is None:
            return "NULL"
        if isinstance(v, bool):
            return "TRUE" if v else "FALSE"
        if isinstance(v, str):
            return "'" + v.replace("'", "''") + "'"
        # Normalize 2.0 -> 2 so numerically equal literals fingerprint equal.
        f = float(v)
        if f == int(f) and abs(f) < 1e15:
            return str(int(f))
        return repr(f)

    def referenced_columns(self) -> set[str]:
        return set()


#: Operator synonym table used at parse time; canonical spellings only
#: ever appear in the AST.
CANONICAL_OPERATORS = {
    "==": "=",
    "=": "=",
    "<>": "!=",
    "!=": "!=",
    "<": "<",
    "<=": "<=",
    ">": ">",
    ">=": ">=",
    "+": "+",
    "-": "-",
    "*": "*",
    "/": "/",
    "%": "%",
    "AND": "AND",
    "OR": "OR",
}

COMPARISON_OPS = frozenset({"=", "!=", "<", "<=", ">", ">="})
ARITHMETIC_OPS = frozenset({"+", "-", "*", "/", "%"})
LOGICAL_OPS = frozenset({"AND", "OR"})


@dataclass(frozen=True, repr=False)
class BinaryOp(Expression):
    """Binary operator (comparison, arithmetic or logical)."""

    op: str
    left: Expression
    right: Expression

    def __post_init__(self):
        if self.op not in COMPARISON_OPS | ARITHMETIC_OPS | LOGICAL_OPS:
            raise ValueError(f"unknown binary operator {self.op!r}")

    def canonical(self) -> str:
        return f"({self.left.canonical()} {self.op} {self.right.canonical()})"

    def referenced_columns(self) -> set[str]:
        return self.left.referenced_columns() | self.right.referenced_columns()


@dataclass(frozen=True, repr=False)
class UnaryOp(Expression):
    """Unary operator: ``NOT`` or arithmetic negation (``NEG``)."""

    op: str
    operand: Expression

    def __post_init__(self):
        if self.op not in ("NOT", "NEG"):
            raise ValueError(f"unknown unary operator {self.op!r}")

    def canonical(self) -> str:
        if self.op == "NOT":
            return f"(NOT {self.operand.canonical()})"
        return f"(- {self.operand.canonical()})"

    def referenced_columns(self) -> set[str]:
        return self.operand.referenced_columns()


@dataclass(frozen=True, repr=False)
class FunctionCall(Expression):
    """Scalar function call, e.g. ``abs(x)``, ``log(price)``."""

    name: str
    args: tuple[Expression, ...]

    def canonical(self) -> str:
        inner = ", ".join(a.canonical() for a in self.args)
        return f"{self.name.lower()}({inner})"

    def referenced_columns(self) -> set[str]:
        out: set[str] = set()
        for a in self.args:
            out |= a.referenced_columns()
        return out


@dataclass(frozen=True, repr=False)
class InList(Expression):
    """``expr [NOT] IN (v1, v2, ...)``."""

    operand: Expression
    items: tuple[Expression, ...]
    negated: bool = False

    def canonical(self) -> str:
        items = sorted(i.canonical() for i in self.items)
        kw = "NOT IN" if self.negated else "IN"
        return f"({self.operand.canonical()} {kw} ({', '.join(items)}))"

    def referenced_columns(self) -> set[str]:
        out = self.operand.referenced_columns()
        for i in self.items:
            out |= i.referenced_columns()
        return out


@dataclass(frozen=True, repr=False)
class Between(Expression):
    """``expr [NOT] BETWEEN low AND high`` (inclusive both ends)."""

    operand: Expression
    low: Expression
    high: Expression
    negated: bool = False

    def canonical(self) -> str:
        kw = "NOT BETWEEN" if self.negated else "BETWEEN"
        return (f"({self.operand.canonical()} {kw} "
                f"{self.low.canonical()} AND {self.high.canonical()})")

    def referenced_columns(self) -> set[str]:
        return (self.operand.referenced_columns()
                | self.low.referenced_columns()
                | self.high.referenced_columns())


@dataclass(frozen=True, repr=False)
class IsNull(Expression):
    """``expr IS [NOT] NULL``."""

    operand: Expression
    negated: bool = False

    def canonical(self) -> str:
        kw = "IS NOT NULL" if self.negated else "IS NULL"
        return f"({self.operand.canonical()} {kw})"

    def referenced_columns(self) -> set[str]:
        return self.operand.referenced_columns()


@dataclass(frozen=True, repr=False)
class Like(Expression):
    """``expr [NOT] LIKE pattern`` with ``%`` and ``_`` wildcards."""

    operand: Expression
    pattern: str
    negated: bool = False

    def canonical(self) -> str:
        kw = "NOT LIKE" if self.negated else "LIKE"
        pat = "'" + self.pattern.replace("'", "''") + "'"
        return f"({self.operand.canonical()} {kw} {pat})"

    def referenced_columns(self) -> set[str]:
        return self.operand.referenced_columns()


def conjunction(parts: Sequence[Expression]) -> Expression:
    """AND-combine a sequence of predicates (empty -> TRUE literal)."""
    parts = list(parts)
    if not parts:
        return Literal(True)
    expr = parts[0]
    for p in parts[1:]:
        expr = BinaryOp("AND", expr, p)
    return expr
