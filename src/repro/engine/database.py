"""The Database: named tables plus query execution.

The central product for Ziggy is :class:`Selection` — a base table, a
boolean row mask and a canonical predicate fingerprint.  Characterization
always happens against a selection, never against a detached result set,
because the outside group (the complement) must stay addressable.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

import numpy as np

from repro.engine.eval import evaluate_predicate
from repro.engine.expr import Expression
from repro.engine.parser import ParsedQuery, parse_predicate, parse_query
from repro.engine.table import Table
from repro.errors import UnknownTableError


@dataclass(frozen=True)
class Selection:
    """A query's selection over a base table.

    Attributes:
        table: the *base* table the query ran against.
        mask: boolean array over the base table's rows (True = selected).
        predicate: the parsed WHERE expression (None = all rows).
        fingerprint: stable hash of the canonical predicate text; the
            statistics cache keys per-query artifacts on it.
    """

    table: Table
    mask: np.ndarray
    predicate: Expression | None
    fingerprint: str

    @property
    def n_inside(self) -> int:
        """Number of selected rows."""
        return int(self.mask.sum())

    @property
    def n_outside(self) -> int:
        """Number of rows in the complement."""
        return int(self.table.n_rows - self.n_inside)

    @property
    def selectivity(self) -> float:
        """Fraction of rows selected (0 when the table is empty)."""
        n = self.table.n_rows
        return self.n_inside / n if n else 0.0

    def inside(self) -> Table:
        """The selected rows as a table."""
        return self.table.select(self.mask, name=f"{self.table.name}/inside")

    def outside(self) -> Table:
        """The complement rows as a table."""
        return self.table.select(~self.mask, name=f"{self.table.name}/outside")

    def describe(self) -> str:
        """One-line human-readable description of the selection."""
        text = self.predicate.canonical() if self.predicate is not None else "TRUE"
        return (f"{self.table.name}: {text} -> {self.n_inside}/"
                f"{self.table.n_rows} rows")


def predicate_fingerprint(predicate: Expression | None, table_name: str) -> str:
    """Stable fingerprint of (table, canonical predicate text)."""
    text = predicate.canonical() if predicate is not None else "TRUE"
    digest = hashlib.sha256(f"{table_name}\x00{text}".encode()).hexdigest()
    return digest[:16]


def selection_from_mask(table: Table, mask: np.ndarray,
                        label: str | None = None) -> Selection:
    """Build a :class:`Selection` from an explicit row mask.

    Used by synthetic experiments (planted ground truth) and by
    front-ends that select rows interactively (brushing) rather than
    through a predicate.  The fingerprint hashes the mask itself so the
    statistics cache keys stay sound.
    """
    mask = np.asarray(mask)
    if mask.dtype != np.bool_ or mask.shape != (table.n_rows,):
        raise ValueError(
            f"mask must be a boolean array of length {table.n_rows}")
    payload = mask.tobytes() + (label or "").encode()
    digest = hashlib.sha256(f"{table.name}\x00mask\x00".encode() + payload)
    return Selection(table=table, mask=mask, predicate=None,
                     fingerprint=digest.hexdigest()[:16])


@dataclass
class QueryStats:
    """Execution counters, exposed for the benchmarks."""

    queries_run: int = 0
    rows_scanned: int = 0


class Database:
    """A named collection of tables with query execution.

    Example::

        db = Database()
        db.register(table)
        sel = db.select("crime", "violent_crime_rate > 0.8")
        result = db.query("SELECT pop_density FROM crime WHERE state = 'CA'")
    """

    def __init__(self):
        self._tables: dict[str, Table] = {}
        self.stats = QueryStats()

    # -- catalog ---------------------------------------------------------------

    def register(self, table: Table, name: str | None = None) -> None:
        """Add (or replace) a table under ``name`` (default: ``table.name``)."""
        self._tables[name or table.name] = table

    def drop(self, name: str) -> None:
        """Remove a table; raises :class:`UnknownTableError` if absent."""
        if name not in self._tables:
            raise UnknownTableError(name, tuple(self._tables))
        del self._tables[name]

    def table(self, name: str) -> Table:
        """Look up a table by name."""
        tbl = self._tables.get(name)
        if tbl is None:
            raise UnknownTableError(name, tuple(self._tables))
        return tbl

    def table_names(self) -> tuple[str, ...]:
        """All registered table names, sorted."""
        return tuple(sorted(self._tables))

    def __contains__(self, name: str) -> bool:
        return name in self._tables

    # -- execution ---------------------------------------------------------------

    def select(self, table_name: str, where: str | Expression | None) -> Selection:
        """Run a predicate against a table and return the :class:`Selection`.

        Args:
            table_name: registered table to select from.
            where: predicate text, a parsed expression, or ``None``
                (select everything).
        """
        table = self.table(table_name)
        if where is None:
            predicate = None
            mask = np.ones(table.n_rows, dtype=bool)
        else:
            predicate = parse_predicate(where) if isinstance(where, str) else where
            mask = evaluate_predicate(table, predicate)
        self.stats.queries_run += 1
        self.stats.rows_scanned += table.n_rows
        return Selection(
            table=table,
            mask=mask,
            predicate=predicate,
            fingerprint=predicate_fingerprint(predicate, table_name),
        )

    def query(self, sql: str) -> Table:
        """Run a full SELECT statement and return the result table."""
        parsed = parse_query(sql)
        return self.run(parsed)

    def run(self, parsed: ParsedQuery) -> Table:
        """Execute an already-parsed query."""
        table = self.table(parsed.table)
        self.stats.queries_run += 1
        self.stats.rows_scanned += table.n_rows
        result = table
        if parsed.predicate is not None:
            mask = evaluate_predicate(table, parsed.predicate)
            result = result.select(mask)
        if parsed.is_aggregation:
            from repro.engine.aggregates import execute_aggregation
            result = execute_aggregation(result, parsed.aggregates,
                                         parsed.group_by)
            if parsed.order_by is not None:
                result = result.sort_by(parsed.order_by,
                                        descending=parsed.descending)
            if parsed.limit is not None:
                result = result.head(parsed.limit)
            return result
        if parsed.order_by is not None:
            result = result.sort_by(parsed.order_by, descending=parsed.descending)
        if parsed.columns is not None:
            result = result.project(parsed.columns)
        if parsed.limit is not None:
            result = result.head(parsed.limit)
        return result

    def selection_for_query(self, sql: str) -> Selection:
        """Parse a full SELECT and return its :class:`Selection`.

        Projection/order/limit do not affect which rows are "inside", so
        Ziggy's session accepts any SELECT and characterizes its WHERE
        clause.
        """
        parsed = parse_query(sql)
        return self.select(parsed.table, parsed.predicate)
