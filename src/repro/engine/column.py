"""Typed column storage.

Columns are immutable after construction (the arrays are set read-only),
which is what makes the statistics cache sound: a cached summary can never
drift from its column.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.engine.types import ColumnType
from repro.errors import SchemaError

#: Code used for missing values in dictionary-encoded categorical columns.
MISSING_CODE = -1


class Column:
    """Abstract base for typed columns.

    Subclasses store their data in numpy arrays and expose:

    * ``values()`` — a float64 view for numeric/boolean columns, an object
      array of labels for categorical ones;
    * ``numeric_values()`` — a float64 array usable by the statistics
      layer (categorical columns raise);
    * ``missing_mask()`` — boolean mask of missing entries;
    * ``take(mask)`` — a new column restricted to ``mask``.
    """

    name: str
    ctype: ColumnType

    def __len__(self) -> int:
        raise NotImplementedError

    def values(self) -> np.ndarray:
        """Raw values (dtype depends on the column type)."""
        raise NotImplementedError

    def numeric_values(self) -> np.ndarray:
        """Float64 representation; raises for categorical columns."""
        raise NotImplementedError

    def missing_mask(self) -> np.ndarray:
        """Boolean mask, True where the value is missing."""
        raise NotImplementedError

    def take(self, selector: np.ndarray) -> "Column":
        """New column with the rows selected by a mask or index array."""
        raise NotImplementedError

    @property
    def n_missing(self) -> int:
        """Number of missing entries."""
        return int(self.missing_mask().sum())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<{type(self).__name__} {self.name!r} "
                f"len={len(self)} missing={self.n_missing}>")


class NumericColumn(Column):
    """Float64 column; NaN marks missing values."""

    ctype = ColumnType.NUMERIC

    def __init__(self, name: str, data: Iterable[float]):
        if not name:
            raise SchemaError("column name must be non-empty")
        self.name = name
        arr = np.asarray(
            [np.nan if v is None else v for v in data] if not isinstance(data, np.ndarray) else data,
            dtype=np.float64,
        ).ravel()
        arr.setflags(write=False)
        self._data = arr

    def __len__(self) -> int:
        return int(self._data.size)

    def values(self) -> np.ndarray:
        return self._data

    def numeric_values(self) -> np.ndarray:
        return self._data

    def missing_mask(self) -> np.ndarray:
        return np.isnan(self._data)

    def take(self, selector: np.ndarray) -> "NumericColumn":
        return NumericColumn(self.name, self._data[selector])


class BooleanColumn(Column):
    """Boolean column stored as float64 {0, 1, NaN}."""

    ctype = ColumnType.BOOLEAN

    def __init__(self, name: str, data: Iterable):
        if not name:
            raise SchemaError("column name must be non-empty")
        self.name = name
        if isinstance(data, np.ndarray) and data.dtype == np.bool_:
            arr = data.astype(np.float64)
        elif isinstance(data, np.ndarray) and np.issubdtype(data.dtype, np.number):
            # Numeric arrays must already be 0/1/NaN encoded; validated below.
            arr = data.astype(np.float64)
        else:
            converted = []
            for v in data:
                if v is None or (isinstance(v, float) and v != v):
                    converted.append(np.nan)
                else:
                    converted.append(1.0 if bool(v) else 0.0)
            arr = np.asarray(converted, dtype=np.float64)
        arr = arr.ravel()
        bad = ~(np.isnan(arr) | (arr == 0.0) | (arr == 1.0))
        if bad.any():
            raise SchemaError(
                f"boolean column {name!r} contains non-boolean values")
        arr.setflags(write=False)
        self._data = arr

    def __len__(self) -> int:
        return int(self._data.size)

    def values(self) -> np.ndarray:
        return self._data

    def numeric_values(self) -> np.ndarray:
        return self._data

    def missing_mask(self) -> np.ndarray:
        return np.isnan(self._data)

    def take(self, selector: np.ndarray) -> "BooleanColumn":
        return BooleanColumn(self.name, self._data[selector])


class CategoricalColumn(Column):
    """Dictionary-encoded text column.

    Stores int32 codes into a tuple of labels; ``MISSING_CODE`` marks
    missing entries.  The label dictionary is deduplicated and ordered by
    first appearance, so round-tripping through ``take`` is stable.
    """

    ctype = ColumnType.CATEGORICAL

    def __init__(self, name: str, data: Sequence | None = None, *,
                 codes: np.ndarray | None = None,
                 labels: tuple[str, ...] | None = None):
        if not name:
            raise SchemaError("column name must be non-empty")
        self.name = name
        if codes is not None:
            if labels is None:
                raise SchemaError("codes require labels")
            codes = np.asarray(codes, dtype=np.int32).ravel()
            if codes.size and (codes.max(initial=MISSING_CODE) >= len(labels)
                               or codes.min(initial=MISSING_CODE) < MISSING_CODE):
                raise SchemaError(f"categorical codes out of range for {name!r}")
            self._labels = tuple(labels)
        else:
            if data is None:
                raise SchemaError("either data or codes must be provided")
            label_index: dict[str, int] = {}
            code_list = np.empty(len(data), dtype=np.int32)
            for i, v in enumerate(data):
                if v is None or (isinstance(v, float) and v != v):
                    code_list[i] = MISSING_CODE
                    continue
                label = str(v)
                idx = label_index.get(label)
                if idx is None:
                    idx = len(label_index)
                    label_index[label] = idx
                code_list[i] = idx
            self._labels = tuple(label_index)
            codes = code_list
        codes.setflags(write=False)
        self._codes = codes

    @property
    def labels(self) -> tuple[str, ...]:
        """The dictionary of distinct labels."""
        return self._labels

    @property
    def codes(self) -> np.ndarray:
        """Int32 codes; ``MISSING_CODE`` (-1) marks missing."""
        return self._codes

    def __len__(self) -> int:
        return int(self._codes.size)

    def values(self) -> np.ndarray:
        """Object array of labels with None for missing entries."""
        out = np.empty(self._codes.size, dtype=object)
        lab = self._labels
        for i, c in enumerate(self._codes):
            out[i] = lab[c] if c >= 0 else None
        return out

    def numeric_values(self) -> np.ndarray:
        raise SchemaError(
            f"column {self.name!r} is categorical; no numeric view exists")

    def missing_mask(self) -> np.ndarray:
        return self._codes == MISSING_CODE

    def take(self, selector: np.ndarray) -> "CategoricalColumn":
        return CategoricalColumn(self.name, codes=self._codes[selector].copy(),
                                 labels=self._labels)

    def label_list(self) -> list:
        """Python list of labels (None for missing) — convenient for tests."""
        return list(self.values())


def column_from_values(name: str, values: Sequence) -> Column:
    """Build the most specific column type for a sequence of values.

    Booleans (only ``True``/``False``/missing) become
    :class:`BooleanColumn`; anything fully numeric becomes
    :class:`NumericColumn`; everything else is categorical.
    """
    non_missing = [v for v in values
                   if v is not None and not (isinstance(v, float) and v != v)]
    if non_missing and all(isinstance(v, bool) for v in non_missing):
        return BooleanColumn(name, values)
    if non_missing and all(isinstance(v, (int, float)) and not isinstance(v, bool)
                           for v in non_missing):
        return NumericColumn(name, [float(v) if v is not None else None
                                    for v in values])
    return CategoricalColumn(name, values)
