"""In-memory columnar engine — the storage substrate under Ziggy.

The demo system of the paper uses MonetDB to "store and deliver the data".
This package is our stand-in: a small, fully functional in-memory columnar
store with

* typed columns (numeric, categorical, boolean) with missing values;
* a SQL-subset query language (``SELECT ... FROM ... WHERE ... ORDER BY
  ... LIMIT ...``) with a tokenizer, recursive-descent parser, typed
  expression AST and vectorized numpy evaluator;
* selection *masks*: Ziggy characterizes a selection against its
  complement, so the engine's central product is a boolean row mask plus a
  canonical predicate fingerprint for the statistics cache;
* CSV import/export with type inference.
"""

from repro.engine.types import ColumnType
from repro.engine.column import Column, NumericColumn, CategoricalColumn, BooleanColumn
from repro.engine.table import Table
from repro.engine.expr import (
    Expression,
    ColumnRef,
    Literal,
    BinaryOp,
    UnaryOp,
    FunctionCall,
    InList,
    Between,
    IsNull,
    Like,
)
from repro.engine.parser import parse_query, parse_predicate, ParsedQuery
from repro.engine.eval import evaluate_predicate, evaluate_expression
from repro.engine.database import Database, Selection, selection_from_mask
from repro.engine.csvio import read_csv, write_csv, infer_column

__all__ = [
    "ColumnType",
    "Column",
    "NumericColumn",
    "CategoricalColumn",
    "BooleanColumn",
    "Table",
    "Expression",
    "ColumnRef",
    "Literal",
    "BinaryOp",
    "UnaryOp",
    "FunctionCall",
    "InList",
    "Between",
    "IsNull",
    "Like",
    "parse_query",
    "parse_predicate",
    "ParsedQuery",
    "evaluate_predicate",
    "evaluate_expression",
    "Database",
    "Selection",
    "selection_from_mask",
    "read_csv",
    "write_csv",
    "infer_column",
]
