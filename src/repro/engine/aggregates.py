"""Aggregate functions and GROUP BY execution.

Exploration front-ends summarize before they select — "average crime by
region" is the query that precedes "the dangerous communities".  The
engine therefore supports the classic aggregate set (COUNT, SUM, AVG,
MIN, MAX, STDDEV, MEDIAN) with an optional GROUP BY over one or more
columns, all vectorized per group.

NULL semantics follow SQL: aggregates skip NULLs; ``COUNT(*)`` counts
rows, ``COUNT(col)`` counts non-NULL values; an empty group yields NULL
for everything except counts.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.engine.column import CategoricalColumn, NumericColumn, column_from_values
from repro.engine.table import Table
from repro.errors import QueryTypeError

#: Aggregate names accepted by the parser (COUNT additionally accepts *).
AGGREGATE_FUNCTIONS = ("count", "sum", "avg", "min", "max", "stddev",
                       "median")


@dataclass(frozen=True)
class AggregateItem:
    """One aggregate in a select list, e.g. ``avg(budget)``.

    ``column`` is None only for ``count(*)``.
    """

    function: str
    column: str | None

    def __post_init__(self):
        if self.function not in AGGREGATE_FUNCTIONS:
            raise QueryTypeError(
                f"unknown aggregate {self.function!r}; available: "
                f"{', '.join(AGGREGATE_FUNCTIONS)}")
        if self.column is None and self.function != "count":
            raise QueryTypeError(f"{self.function}(*) is not defined; "
                                 "only count(*) accepts '*'")

    @property
    def output_name(self) -> str:
        """Column name of the aggregate in the result table."""
        inner = self.column if self.column is not None else "*"
        return f"{self.function}({inner})"

    def canonical(self) -> str:
        """Canonical text (lower-case function, bare column name)."""
        return self.output_name


def _aggregate_values(function: str, values: np.ndarray) -> float | None:
    """Apply one aggregate to a (possibly empty) float array with NaNs."""
    data = values[~np.isnan(values)]
    if function == "count":
        return float(data.size)
    if data.size == 0:
        return None
    if function == "sum":
        return float(data.sum())
    if function == "avg":
        return float(data.mean())
    if function == "min":
        return float(data.min())
    if function == "max":
        return float(data.max())
    if function == "median":
        return float(np.median(data))
    if function == "stddev":
        if data.size < 2:
            return None
        return float(data.std(ddof=1))
    raise QueryTypeError(f"unknown aggregate {function!r}")


def _group_keys(table: Table, group_by: tuple[str, ...]) -> tuple[np.ndarray, list[tuple]]:
    """Group id per row plus the distinct key tuples, in first-seen order."""
    n = table.n_rows
    if not group_by:
        return np.zeros(n, dtype=np.int64), [()]
    key_columns = []
    for name in group_by:
        col = table.column(name)
        if isinstance(col, CategoricalColumn):
            key_columns.append(col.values())
        else:
            vals = col.numeric_values()
            key_columns.append([None if v != v else float(v) for v in vals])
    ids = np.empty(n, dtype=np.int64)
    index: dict[tuple, int] = {}
    keys: list[tuple] = []
    for r in range(n):
        key = tuple(kc[r] for kc in key_columns)
        gid = index.get(key)
        if gid is None:
            gid = len(keys)
            index[key] = gid
            keys.append(key)
        ids[r] = gid
    return ids, keys


def execute_aggregation(table: Table, aggregates: tuple[AggregateItem, ...],
                        group_by: tuple[str, ...]) -> Table:
    """Run an aggregate query against (already filtered) rows.

    Args:
        table: the input rows (WHERE already applied).
        aggregates: the aggregate select items, in output order.
        group_by: grouping columns (empty = one global group).

    Returns:
        A result table with the group-by columns first, then one column
        per aggregate.
    """
    for item in aggregates:
        if item.column is not None:
            col = table.column(item.column)
            if isinstance(col, CategoricalColumn) and item.function != "count":
                raise QueryTypeError(
                    f"{item.function}() requires a numeric column, "
                    f"{item.column!r} is categorical")
    ids, keys = _group_keys(table, group_by)
    n_groups = len(keys)

    # Pre-split row indices per group.
    order = np.argsort(ids, kind="stable")
    sorted_ids = ids[order]
    boundaries = np.flatnonzero(np.diff(sorted_ids)) + 1
    starts = np.concatenate(([0], boundaries))
    ends = np.concatenate((boundaries, [ids.size])) if ids.size else boundaries
    rows_of_group: dict[int, np.ndarray] = {}
    for s, e in zip(starts, ends):
        if s < e:
            rows_of_group[int(sorted_ids[s])] = order[s:e]

    out_columns = []
    for j, name in enumerate(group_by):
        values = [keys[g][j] for g in range(n_groups)]
        out_columns.append(column_from_values(name, values))
    for item in aggregates:
        results: list[float | None] = []
        if item.column is None:
            for g in range(n_groups):
                results.append(float(rows_of_group.get(g, np.empty(0)).size))
        else:
            col = table.column(item.column)
            if isinstance(col, CategoricalColumn):
                missing = col.missing_mask()
                for g in range(n_groups):
                    rows = rows_of_group.get(g)
                    count = 0 if rows is None else int((~missing[rows]).sum())
                    results.append(float(count))
            else:
                values = col.numeric_values()
                for g in range(n_groups):
                    rows = rows_of_group.get(g)
                    group_values = (values[rows] if rows is not None
                                    else np.empty(0))
                    results.append(_aggregate_values(item.function,
                                                     group_values))
        out_columns.append(NumericColumn(item.output_name, results))
    return Table(out_columns, name=f"{table.name}/agg")
