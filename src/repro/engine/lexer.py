"""Tokenizer for the SQL-subset query language."""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import QuerySyntaxError

KEYWORDS = frozenset({
    "SELECT", "FROM", "WHERE", "AND", "OR", "NOT", "IN", "BETWEEN",
    "IS", "NULL", "LIKE", "TRUE", "FALSE", "ORDER", "BY", "ASC",
    "DESC", "LIMIT", "GROUP",
})

#: Multi-character operators, longest first so the scanner is greedy.
OPERATORS = ("<=", ">=", "<>", "!=", "==", "=", "<", ">", "+", "-", "*",
             "/", "%", "(", ")", ",")


class TokenKind(enum.Enum):
    """Lexical category of a token."""

    KEYWORD = "keyword"
    IDENT = "ident"
    NUMBER = "number"
    STRING = "string"
    OPERATOR = "operator"
    STAR = "star"
    END = "end"


@dataclass(frozen=True)
class Token:
    """One lexical token with its source position (for error messages)."""

    kind: TokenKind
    text: str
    position: int
    value: float | str | None = None


def tokenize(text: str) -> list[Token]:
    """Scan ``text`` into a token list ending with an END token.

    Raises :class:`QuerySyntaxError` on unterminated strings or unknown
    characters, pointing at the offending position.
    """
    tokens: list[Token] = []
    i, n = 0, len(text)
    while i < n:
        ch = text[i]
        if ch.isspace():
            i += 1
            continue
        # String literal: single quotes, '' escapes a quote.
        if ch == "'":
            j = i + 1
            buf: list[str] = []
            while True:
                if j >= n:
                    raise QuerySyntaxError("unterminated string literal",
                                           position=i, text=text)
                if text[j] == "'":
                    if j + 1 < n and text[j + 1] == "'":
                        buf.append("'")
                        j += 2
                        continue
                    break
                buf.append(text[j])
                j += 1
            tokens.append(Token(TokenKind.STRING, text[i:j + 1], i,
                                value="".join(buf)))
            i = j + 1
            continue
        # Quoted identifier: double quotes, "" escapes a quote.
        if ch == '"':
            j = i + 1
            buf = []
            while True:
                if j >= n:
                    raise QuerySyntaxError("unterminated quoted identifier",
                                           position=i, text=text)
                if text[j] == '"':
                    if j + 1 < n and text[j + 1] == '"':
                        buf.append('"')
                        j += 2
                        continue
                    break
                buf.append(text[j])
                j += 1
            tokens.append(Token(TokenKind.IDENT, text[i:j + 1], i,
                                value="".join(buf)))
            i = j + 1
            continue
        # Number: digits with optional decimal part and exponent.
        if ch.isdigit() or (ch == "." and i + 1 < n and text[i + 1].isdigit()):
            j = i
            while j < n and (text[j].isdigit() or text[j] == "."):
                j += 1
            if j < n and text[j] in "eE":
                k = j + 1
                if k < n and text[k] in "+-":
                    k += 1
                if k < n and text[k].isdigit():
                    j = k
                    while j < n and text[j].isdigit():
                        j += 1
            literal = text[i:j]
            try:
                value = float(literal)
            except ValueError:
                raise QuerySyntaxError(f"malformed number {literal!r}",
                                       position=i, text=text) from None
            tokens.append(Token(TokenKind.NUMBER, literal, i, value=value))
            i = j
            continue
        # Identifier or keyword.
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            word = text[i:j]
            upper = word.upper()
            if upper in KEYWORDS:
                tokens.append(Token(TokenKind.KEYWORD, upper, i))
            else:
                tokens.append(Token(TokenKind.IDENT, word, i, value=word))
            i = j
            continue
        # Operator / punctuation.
        matched = False
        for op in OPERATORS:
            if text.startswith(op, i):
                kind = TokenKind.STAR if op == "*" else TokenKind.OPERATOR
                tokens.append(Token(kind, op, i))
                i += len(op)
                matched = True
                break
        if matched:
            continue
        raise QuerySyntaxError(f"unexpected character {ch!r}",
                               position=i, text=text)
    tokens.append(Token(TokenKind.END, "", n))
    return tokens
