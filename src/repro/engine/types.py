"""Column type system for the columnar engine."""

from __future__ import annotations

import enum


class ColumnType(enum.Enum):
    """Logical type of a column.

    NUMERIC covers integers and floats (stored as float64 so NaN can mark
    missing values — the same choice MonetDB-to-R bridges make).
    CATEGORICAL is dictionary-encoded text.  BOOLEAN is stored as float64
    {0.0, 1.0, NaN} so it composes with numeric expressions.
    """

    NUMERIC = "numeric"
    CATEGORICAL = "categorical"
    BOOLEAN = "boolean"

    @property
    def is_numeric(self) -> bool:
        """Whether values of this type support arithmetic."""
        return self in (ColumnType.NUMERIC, ColumnType.BOOLEAN)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value
