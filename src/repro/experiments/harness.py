"""Timing utilities for the experiment harness."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable


@dataclass
class Timer:
    """Accumulating stopwatch with named laps.

    Example::

        timer = Timer()
        with timer.lap("prepare"):
            ...
        print(timer.laps["prepare"])
    """

    laps: dict[str, float] = field(default_factory=dict)

    class _Lap:
        def __init__(self, timer: "Timer", name: str):
            self._timer = timer
            self._name = name

        def __enter__(self):
            self._start = time.perf_counter()
            return self

        def __exit__(self, *exc):
            elapsed = time.perf_counter() - self._start
            self._timer.laps[self._name] = (
                self._timer.laps.get(self._name, 0.0) + elapsed)
            return False

    def lap(self, name: str) -> "Timer._Lap":
        """Context manager accumulating wall time under ``name``."""
        return Timer._Lap(self, name)

    @property
    def total(self) -> float:
        """Sum of all laps."""
        return sum(self.laps.values())


def repeat_time(fn: Callable[[], object], repeats: int = 3,
                warmup: int = 1) -> float:
    """Median wall time of ``fn`` over ``repeats`` runs (after warmup).

    Used where pytest-benchmark's fixture does not fit (per-sweep-point
    timing inside a single benchmark body).
    """
    for _ in range(warmup):
        fn()
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    times.sort()
    return times[len(times) // 2]
