"""Fixed-width table/series reporting for the benchmark harness.

Every benchmark prints the rows/series the corresponding paper artifact
shows, in a stable plain-text format (so ``bench_output.txt`` diffs are
meaningful run-to-run).
"""

from __future__ import annotations

from typing import Sequence


def _fmt_cell(value, width: int) -> str:
    if value is None:
        text = "-"
    elif isinstance(value, float):
        if value != value:
            text = "nan"
        elif abs(value) >= 1e5 or (abs(value) < 1e-3 and value != 0.0):
            text = f"{value:.3e}"
        else:
            text = f"{value:.4g}"
    else:
        text = str(value)
    if len(text) > width:
        text = text[: width - 1] + "…"
    return text.rjust(width)


def format_table(headers: Sequence[str], rows: Sequence[Sequence],
                 title: str | None = None, min_width: int = 8) -> str:
    """Render a fixed-width table as text."""
    widths = []
    for j, head in enumerate(headers):
        cells = [str(head)] + [
            _fmt_cell(row[j], 999).strip() for row in rows
        ]
        widths.append(max(min_width, max(len(c) for c in cells)))
    lines = []
    if title:
        lines.append(f"== {title} ==")
    lines.append("  ".join(str(h).rjust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(_fmt_cell(v, w) for v, w in zip(row, widths)))
    return "\n".join(lines)


class Reporter:
    """Accumulates and prints experiment tables.

    Benchmarks create one Reporter per experiment, add rows as the sweep
    runs, and flush once — keeping pytest-benchmark timing output and the
    experiment tables visually separate in ``bench_output.txt``.
    """

    def __init__(self, experiment_id: str, description: str = ""):
        self.experiment_id = experiment_id
        self.description = description
        self._sections: list[str] = []

    def add_table(self, headers: Sequence[str], rows: Sequence[Sequence],
                  title: str | None = None) -> None:
        """Queue one table for the final flush."""
        self._sections.append(format_table(headers, rows, title=title))

    def add_text(self, text: str) -> None:
        """Queue free-form text (e.g. a rendered dendrogram or view)."""
        self._sections.append(text)

    def flush(self) -> str:
        """Print and return the full report."""
        banner = f"\n{'=' * 72}\n[{self.experiment_id}] {self.description}\n{'=' * 72}"
        body = "\n\n".join(self._sections)
        report = f"{banner}\n{body}\n"
        print(report)
        return report
