"""Experiment harness: metrics, workloads, reporting.

Shared by the benchmark suite (``benchmarks/``), which regenerates every
figure of the paper plus the extension experiments indexed in DESIGN.md.
"""

from repro.experiments.metrics import (
    RecoveryScore,
    column_recovery,
    view_recovery,
    best_jaccard_matching,
    rank_of_first_hit,
)
from repro.experiments.reporting import Reporter, format_table
from repro.experiments.workloads import (
    threshold_sweep_predicates,
    random_predicates,
)
from repro.experiments.harness import Timer, repeat_time

__all__ = [
    "RecoveryScore",
    "column_recovery",
    "view_recovery",
    "best_jaccard_matching",
    "rank_of_first_hit",
    "Reporter",
    "format_table",
    "threshold_sweep_predicates",
    "random_predicates",
    "Timer",
    "repeat_time",
]
