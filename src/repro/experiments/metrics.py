"""Recovery metrics for the planted-view accuracy experiments."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.views import View
from repro.data.planted import PlantedView


@dataclass(frozen=True)
class RecoveryScore:
    """Precision / recall / F1 triple."""

    precision: float
    recall: float

    @property
    def f1(self) -> float:
        """Harmonic mean of precision and recall (0 when both are 0)."""
        p, r = self.precision, self.recall
        if p + r == 0.0:
            return 0.0
        return 2.0 * p * r / (p + r)


def column_recovery(predicted: Sequence[View],
                    truth: Sequence[PlantedView]) -> RecoveryScore:
    """Column-level recovery: does the method surface the right columns?

    Precision = fraction of reported columns that are planted;
    recall = fraction of planted columns that are reported.
    """
    pred_cols: set[str] = set()
    for view in predicted:
        pred_cols.update(view.columns)
    true_cols: set[str] = set()
    for pv in truth:
        true_cols.update(pv.columns)
    if not pred_cols:
        return RecoveryScore(0.0, 0.0 if true_cols else 1.0)
    hit = len(pred_cols & true_cols)
    precision = hit / len(pred_cols)
    recall = hit / len(true_cols) if true_cols else 1.0
    return RecoveryScore(precision, recall)


def jaccard(a: Sequence[str], b: Sequence[str]) -> float:
    """Jaccard similarity of two column sets."""
    sa, sb = set(a), set(b)
    union = sa | sb
    if not union:
        return 1.0
    return len(sa & sb) / len(union)


def best_jaccard_matching(predicted: Sequence[View],
                          truth: Sequence[PlantedView]
                          ) -> list[tuple[int, int, float]]:
    """Greedy one-to-one matching of predicted to planted views.

    Returns ``(predicted_index, truth_index, jaccard)`` triples in
    decreasing similarity order; each side is matched at most once.
    """
    pairs: list[tuple[float, int, int]] = []
    for i, view in enumerate(predicted):
        for j, pv in enumerate(truth):
            s = jaccard(view.columns, pv.columns)
            if s > 0.0:
                pairs.append((s, i, j))
    pairs.sort(key=lambda t: (-t[0], t[1], t[2]))
    used_pred: set[int] = set()
    used_truth: set[int] = set()
    matching: list[tuple[int, int, float]] = []
    for s, i, j in pairs:
        if i in used_pred or j in used_truth:
            continue
        used_pred.add(i)
        used_truth.add(j)
        matching.append((i, j, s))
    return matching


def view_recovery(predicted: Sequence[View], truth: Sequence[PlantedView],
                  min_jaccard: float = 0.5) -> RecoveryScore:
    """View-level recovery: a planted view counts as found when some
    predicted view matches it with Jaccard >= ``min_jaccard``.

    With 2-column views the default threshold means "at least one of the
    two planted columns, with at most one stray column" — strict enough
    to punish scattershot output, lenient enough not to punish a method
    for splitting a planted pair across two reported views.
    """
    matching = best_jaccard_matching(predicted, truth)
    found = sum(1 for _, _, s in matching if s >= min_jaccard)
    recall = found / len(truth) if truth else 1.0
    precision = found / len(predicted) if predicted else (1.0 if not truth else 0.0)
    return RecoveryScore(precision, recall)


def rank_of_first_hit(predicted: Sequence[View], truth: Sequence[PlantedView],
                      min_jaccard: float = 0.5) -> int | None:
    """1-based rank of the first predicted view matching any planted view,
    or None when nothing matches — a user-facing quality signal (how far
    down the list the first real finding sits)."""
    for rank, view in enumerate(predicted, start=1):
        for pv in truth:
            if jaccard(view.columns, pv.columns) >= min_jaccard:
                return rank
    return None
