"""Query workload generators for the runtime/caching experiments."""

from __future__ import annotations

import numpy as np

from repro.engine.table import Table


def threshold_sweep_predicates(table: Table, column: str,
                               quantiles: tuple[float, ...] = (
                                   0.95, 0.9, 0.85, 0.8, 0.75, 0.7)
                               ) -> list[str]:
    """Predicates selecting the top tail of one column at several cuts.

    This is the canonical exploration session: the user tries a
    threshold, looks at the views, loosens it, tries again — exactly the
    workload the statistics cache is designed to accelerate (same table,
    different inside groups).
    """
    values = table.column(column).numeric_values()
    predicates = []
    for q in quantiles:
        threshold = float(np.nanquantile(values, q))
        predicates.append(f"{column} > {threshold:.6f}")
    return predicates


def random_predicates(table: Table, n_queries: int = 10,
                      selectivity: tuple[float, float] = (0.05, 0.3),
                      seed: int = 11) -> list[str]:
    """Random single-column range predicates with bounded selectivity.

    Used by the false-positive-rate experiment (selections that are
    arbitrary slices, not planted phenomena) and as cache-unfriendly
    workload (every query touches a different column).
    """
    rng = np.random.default_rng(seed)
    numeric = list(table.numeric_column_names())
    if not numeric:
        raise ValueError("table has no numeric columns")
    predicates = []
    for _ in range(n_queries):
        column = numeric[int(rng.integers(len(numeric)))]
        values = table.column(column).numeric_values()
        frac = float(rng.uniform(*selectivity))
        lo_q = float(rng.uniform(0.0, 1.0 - frac))
        lo = float(np.nanquantile(values, lo_q))
        hi = float(np.nanquantile(values, lo_q + frac))
        if lo == hi:
            predicates.append(f"{column} >= {lo:.6f}")
        else:
            predicates.append(f"{column} BETWEEN {lo:.6f} AND {hi:.6f}")
    return predicates
