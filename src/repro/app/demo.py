"""The scripted demo walkthrough (Section 4.2's three use cases).

Runs the ready-made queries the presenters would use at the demo booth —
one per dataset — and returns the full transcript: query, ranked views,
detail panel for the top view, explanations.  Used by the FIG5 benchmark
and the examples.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.app.session import ZiggySession
from repro.data.registry import load_dataset
from repro.engine.table import Table


@dataclass(frozen=True)
class DemoStep:
    """One booth interaction: which dataset, which ready-made query."""

    dataset: str
    description: str
    predicate: str


def _quantile_predicate(table: Table, column: str, q: float) -> str:
    values = table.column(column).numeric_values()
    threshold = float(np.nanquantile(values[~np.isnan(values)], q))
    return f"{column} > {threshold:.6f}"


def default_script(tables: dict[str, Table]) -> list[DemoStep]:
    """The three ready-made queries of the demo."""
    return [
        DemoStep(
            dataset="boxoffice",
            description="blockbusters: the top-grossing decile",
            predicate=_quantile_predicate(tables["boxoffice"], "gross", 0.9),
        ),
        DemoStep(
            dataset="us_crime",
            description="the most dangerous communities (running example)",
            predicate=_quantile_predicate(tables["us_crime"],
                                          "violent_crime_rate", 0.9),
        ),
        DemoStep(
            dataset="innovation",
            description="highly innovative region-years (patent intensity)",
            predicate=_quantile_predicate(tables["innovation"],
                                          "patents_00", 0.9),
        ),
    ]


def run_demo_script(session: ZiggySession | None = None,
                    small: bool = False,
                    max_views_shown: int = 4) -> str:
    """Run the full booth script and return the transcript.

    Args:
        session: an existing session (a fresh one with the three demo
            datasets is created when None).
        small: shrink the datasets (for tests; the shapes stay
            proportionate).
        max_views_shown: how many views to print per step.
    """
    if session is None:
        session = ZiggySession()
        sizes = ({"boxoffice": {"n_rows": 300},
                  "us_crime": {"n_rows": 600},
                  "innovation": {"n_rows": 800, "n_columns": 80}}
                 if small else {})
        for name in ("boxoffice", "us_crime", "innovation"):
            session.add_table(load_dataset(name, **sizes.get(name, {})))
    tables = {name: session.database.table(name)
              for name in session.tables()}
    transcript: list[str] = []
    for step in default_script(tables):
        transcript.append("=" * 70)
        transcript.append(f"USE CASE: {step.dataset} — {step.description}")
        transcript.append(f"query> SELECT * FROM {step.dataset} "
                          f"WHERE {step.predicate}")
        result = session.run(step.predicate, table=step.dataset)
        transcript.append(session.view_list())
        shown = min(max_views_shown, len(result.views))
        if shown:
            transcript.append("")
            transcript.append(session.view_detail(1))
            if shown > 1:
                transcript.append("")
                transcript.append("other explanations:")
                for i in range(2, shown + 1):
                    transcript.append(f"  {i}. {result.views[i - 1].explanation}")
        transcript.append("")
    return "\n".join(transcript)
