"""Command-line interface: characterize a query from the shell.

Examples::

    python -m repro --dataset us_crime --where "violent_crime_rate > 0.25"
    python -m repro --csv mydata.csv --where "price > 100" --views 5 --plot
    python -m repro --dataset boxoffice --sql \
        "SELECT genre, count(*), avg(gross) FROM boxoffice GROUP BY genre"
    python -m repro --list-datasets
    python -m repro serve --dataset boxoffice --port 8765

With ``--sql`` and an aggregate/projection query the result table is
printed; with ``--where`` (or a SQL query whose WHERE clause selects a
strict subset) the selection is characterized and the ranked views with
explanations are printed.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.app.render import view_card
from repro.core.config import ZiggyConfig
from repro.core.pipeline import Ziggy
from repro.data.registry import dataset_names, load_dataset
from repro.engine.csvio import read_csv
from repro.engine.database import Database
from repro.errors import ReproError


def build_parser() -> argparse.ArgumentParser:
    """The argparse definition (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Ziggy: characterize query results for data explorers "
                    "(VLDB 2016 reproduction)")
    source = parser.add_mutually_exclusive_group()
    source.add_argument("--dataset", choices=dataset_names(),
                        help="built-in demo dataset to load")
    source.add_argument("--csv", metavar="PATH",
                        help="CSV file to load as the table")
    parser.add_argument("--list-datasets", action="store_true",
                        help="list built-in datasets and exit")
    query = parser.add_mutually_exclusive_group()
    query.add_argument("--where", metavar="PREDICATE",
                       help="predicate defining the selection to "
                            "characterize")
    query.add_argument("--sql", metavar="QUERY",
                       help="full SELECT; aggregates/projections print the "
                            "result table, otherwise the WHERE clause is "
                            "characterized")
    parser.add_argument("--views", type=int, default=8,
                        help="maximum number of views (default 8)")
    parser.add_argument("--dim", type=int, default=2,
                        help="maximum view dimension D (default 2)")
    parser.add_argument("--tightness", type=float, default=0.35,
                        help="MIN_tight constraint (default 0.35)")
    parser.add_argument("--strategy", choices=("linkage", "clique"),
                        default="linkage", help="view-search strategy")
    parser.add_argument("--aggregation",
                        choices=("min", "bonferroni", "holm", "fisher"),
                        default="bonferroni",
                        help="p-value aggregation scheme")
    parser.add_argument("--weight", action="append", default=[],
                        metavar="COMPONENT=W",
                        help="component weight override (repeatable)")
    parser.add_argument("--plot", action="store_true",
                        help="print the ASCII plot panel for each view")
    parser.add_argument("--dendrogram", action="store_true",
                        help="print the dependency dendrogram (tuning aid)")
    parser.add_argument("--exclude", action="append", default=[],
                        metavar="COLUMN",
                        help="column to exclude from the search (repeatable)")
    parser.add_argument("--seed-rows", type=int, default=None,
                        metavar="N", help="shrink a built-in dataset to N rows")
    return parser


def _parse_weights(pairs: Sequence[str]) -> dict[str, float]:
    weights: dict[str, float] = {}
    for pair in pairs:
        if "=" not in pair:
            raise ReproError(f"--weight expects COMPONENT=W, got {pair!r}")
        name, _, value = pair.partition("=")
        try:
            weights[name.strip()] = float(value)
        except ValueError:
            raise ReproError(f"--weight {pair!r}: {value!r} is not a number") \
                from None
    return weights


def _load_table(args) -> "Table":  # noqa: F821 - forward name for docs
    if args.csv:
        return read_csv(args.csv)
    name = args.dataset or "us_crime"
    kwargs = {}
    if args.seed_rows:
        kwargs["n_rows"] = args.seed_rows
    return load_dataset(name, **kwargs)


def build_serve_parser() -> argparse.ArgumentParser:
    """The argparse definition of the ``serve`` subcommand."""
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description="Run the Ziggy characterization service over HTTP "
                    "(protocol v2 + /v1 compatibility endpoint)")
    parser.add_argument("--host", default="127.0.0.1",
                        help="bind address (default 127.0.0.1)")
    parser.add_argument("--port", type=int, default=8765,
                        help="TCP port (default 8765; 0 picks a free port)")
    parser.add_argument("--dataset", action="append", default=[],
                        choices=dataset_names(), metavar="NAME",
                        help="built-in dataset to serve (repeatable; "
                             "default: all built-ins)")
    parser.add_argument("--csv", action="append", default=[], metavar="PATH",
                        help="CSV file to serve as a table (repeatable)")
    parser.add_argument("--seed-rows", type=int, default=None, metavar="N",
                        help="shrink built-in datasets to N rows")
    parser.add_argument("--executor", choices=("inline", "thread", "process"),
                        default="thread",
                        help="job execution backend: 'thread' (one pool in "
                             "this process, the default), 'process' (shard "
                             "jobs across worker processes by table "
                             "fingerprint for multi-core throughput), or "
                             "'inline' (synchronous; debugging)")
    parser.add_argument("--workers", type=int, default=2,
                        help="executor worker count: thread-pool size, or "
                             "worker-process shard count with "
                             "--executor process (default 2)")
    parser.add_argument("--max-restarts", type=int, default=None, metavar="N",
                        help="with --executor process: how often one dead "
                             "worker shard is respawned (registrations "
                             "replayed, in-flight jobs retried) before the "
                             "shard is declared dead (default 2; 0 disables "
                             "self-healing)")
    parser.add_argument("--state-dir", default=None, metavar="PATH",
                        help="directory for durable state: the job journal "
                             "and warm-cache snapshots survive restarts "
                             "(default: none — fully in-memory)")
    parser.add_argument("--recover", choices=("resume", "fail", "discard"),
                        default="resume",
                        help="with --state-dir: what happens to jobs that "
                             "were in flight when the previous coordinator "
                             "stopped — 'resume' re-runs them under their "
                             "original ids (default), 'fail' marks them "
                             "interrupted, 'discard' forgets them")
    parser.add_argument("--snapshot-interval", type=float, default=None,
                        metavar="SECONDS",
                        help="with --state-dir: cadence of background "
                             "warm-cache snapshot passes (default 30; 0 "
                             "disables the cadence, drain-time snapshots "
                             "still happen)")
    parser.add_argument("--fsync", choices=("never", "rotate", "always"),
                        default=None,
                        help="with --state-dir: journal fsync policy "
                             "(default 'rotate' — fsync at segment "
                             "boundaries and close; see "
                             "docs/persistence.md for the durability "
                             "matrix)")
    parser.add_argument("--max-tables", type=int, default=None, metavar="N",
                        help="most tables the shared runtime keeps resident "
                             "before LRU-evicting their cached statistics "
                             "(default 16; 0 = unbounded)")
    parser.add_argument("--cache-bytes", type=int, default=None, metavar="B",
                        help="byte budget for resident table data in the "
                             "shared runtime; exceeding it LRU-evicts tables "
                             "and their statistics caches (default "
                             "1073741824 = 1 GiB; 0 = unbounded)")
    parser.add_argument("--frontend", choices=("threaded", "async"),
                        default="threaded",
                        help="HTTP front-end: 'threaded' (one OS thread "
                             "per connection, the compatibility default) "
                             "or 'async' (one event loop multiplexing "
                             "thousands of concurrent SSE subscribers; "
                             "see docs/gateway.md)")
    parser.add_argument("--max-pending-jobs", type=int, default=None,
                        metavar="N",
                        help="bound the job queue: submissions beyond N "
                             "open (pending+running) jobs are answered "
                             "429 + Retry-After instead of queueing "
                             "without limit (default: unbounded)")
    parser.add_argument("--client-rate", type=float, default=None,
                        metavar="R",
                        help="per-client admission control: sustained "
                             "compute requests/second per client_id "
                             "(token bucket; default: off)")
    parser.add_argument("--client-burst", type=float, default=None,
                        metavar="B",
                        help="per-client token-bucket burst capacity "
                             "(default: max(1, --client-rate))")
    parser.add_argument("--table-rate", type=float, default=None,
                        metavar="R",
                        help="per-table admission control: sustained "
                             "compute requests/second per table "
                             "(token bucket; default: off)")
    parser.add_argument("--table-burst", type=float, default=None,
                        metavar="B",
                        help="per-table token-bucket burst capacity "
                             "(default: max(1, --table-rate))")
    parser.add_argument("--sse-eviction-seconds", type=float, default=None,
                        metavar="S",
                        help="evict an SSE subscriber whose socket stays "
                             "unwritable this long — a slow consumer is "
                             "dropped with a ': client-evicted' comment "
                             "instead of pinning server resources "
                             "(default 10)")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress per-request access logging")
    return parser


def serve_main(argv: Sequence[str] | None = None, stream=None) -> int:
    """Entry point of ``repro serve``; blocks until interrupted."""
    out = stream if stream is not None else sys.stdout
    args = build_serve_parser().parse_args(argv)

    # Imported here so plain CLI runs never pay for the service stack.
    from repro.gateway import GatewayPolicy, make_frontend
    from repro.runtime import DEFAULT_MAX_BYTES, DEFAULT_MAX_TABLES, ZiggyRuntime
    from repro.service.service import ZiggyService

    # 0 means unbounded; absent means the documented defaults.
    max_tables = (DEFAULT_MAX_TABLES if args.max_tables is None
                  else (args.max_tables or None))
    cache_bytes = (DEFAULT_MAX_BYTES if args.cache_bytes is None
                   else (args.cache_bytes or None))
    try:
        runtime = ZiggyRuntime(max_tables=max_tables, max_bytes=cache_bytes)
        service = ZiggyService(max_workers=args.workers, runtime=runtime,
                               executor=args.executor,
                               max_restarts=args.max_restarts,
                               state_dir=args.state_dir,
                               snapshot_interval=args.snapshot_interval,
                               fsync=args.fsync)
    except (ReproError, OSError) as exc:
        print(f"error: {exc}", file=out)
        return 1

    # The service now owns live resources (worker processes / thread
    # pool); every startup failure past this point must release them.
    try:
        names = args.dataset or list(dataset_names())
        kwargs = {"n_rows": args.seed_rows} if args.seed_rows else {}
        for name in names:
            service.register_table(load_dataset(name, **kwargs))
        for path in args.csv:
            service.register_table(read_csv(path))
        # Recovery runs after the catalog is registered (resume
        # re-executes against it) and before the first request lands.
        report = service.recover(policy=args.recover)
        policy_kwargs = {}
        if args.max_pending_jobs is not None:
            policy_kwargs["max_pending_jobs"] = args.max_pending_jobs
        if args.client_rate is not None:
            policy_kwargs["client_rate"] = args.client_rate
        if args.client_burst is not None:
            policy_kwargs["client_burst"] = args.client_burst
        if args.table_rate is not None:
            policy_kwargs["table_rate"] = args.table_rate
        if args.table_burst is not None:
            policy_kwargs["table_burst"] = args.table_burst
        if args.sse_eviction_seconds is not None:
            policy_kwargs["sse_write_timeout"] = args.sse_eviction_seconds
        policy = GatewayPolicy(**policy_kwargs) if policy_kwargs else None
        server = make_frontend(service, frontend=args.frontend,
                               host=args.host, port=args.port,
                               verbose=not args.quiet, policy=policy)
    except (ReproError, OSError) as exc:  # bad data, port in use, ...
        service.shutdown(wait=False)
        print(f"error: {exc}", file=out)
        return 1
    # `kill <pid>` (systemd stop, CI teardown) must be a *clean* stop —
    # drain handlers, snapshot warm caches, compact the journal — not a
    # silent process death that skips the finally below.  SIGKILL
    # remains the crash path the recovery subsystem exists for.
    import signal as _signal

    def _sigterm(_signum, _frame):
        raise KeyboardInterrupt

    try:
        _signal.signal(_signal.SIGTERM, _sigterm)
    except ValueError:
        pass  # not the main thread (embedded/test use); skip the hook

    if report is not None:
        print(report.summary(), file=out, flush=True)
    host, port = server.server_address[:2]
    state_note = (f", state-dir={service.state.state_dir}"
                  if service.state is not None else "")
    print(f"serving {', '.join(service.database.table_names())} "
          f"on http://{host}:{port} (protocol v2, "
          f"frontend={args.frontend}, "
          f"executor={args.executor} x{args.workers}{state_note}; "
          f"Ctrl-C to stop)",
          file=out, flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("shutting down", file=out)
    finally:
        server.close(wait=False)
    return 0


def main(argv: Sequence[str] | None = None, stream=None) -> int:
    """CLI entry point; returns the process exit code."""
    out = stream if stream is not None else sys.stdout
    argv = list(argv) if argv is not None else sys.argv[1:]
    if argv and argv[0] == "serve":
        return serve_main(argv[1:], stream=stream)
    parser = build_parser()
    args = parser.parse_args(argv)

    def emit(text: str = "") -> None:
        print(text, file=out)

    try:
        if args.list_datasets:
            for name in dataset_names():
                table = load_dataset(name, **(
                    {"n_rows": 50} if name != "boxoffice" else {"n_rows": 50}))
                emit(f"{name:<12} {table.n_columns} columns "
                     f"(sampled 50 rows; defaults to paper size)")
            return 0
        table = _load_table(args)
        db = Database()
        db.register(table)

        if args.sql:
            from repro.engine.parser import parse_query
            parsed = parse_query(args.sql)
            if parsed.is_aggregation or parsed.columns is not None:
                result_table = db.run(parsed)
                emit(result_table.preview(n=50))
                return 0
            where_predicate = parsed.predicate
        elif args.where:
            where_predicate = args.where
        else:
            parser.error("one of --where, --sql or --list-datasets is required")
            return 2  # pragma: no cover - argparse exits first

        config = ZiggyConfig(
            max_views=args.views,
            max_view_dim=args.dim,
            min_tightness=args.tightness,
            search_strategy=args.strategy,
            aggregation=args.aggregation,
            weights=_parse_weights(args.weight),
            excluded_columns=tuple(args.exclude),
        )
        ziggy = Ziggy(db, config=config)
        selection = db.select(table.name, where_predicate)
        result = ziggy.characterize_selection(selection)
        emit(result.describe())
        emit()
        for i, view in enumerate(result.views, start=1):
            if args.plot:
                emit(view_card(view, selection, rank=i))
                emit()
            else:
                emit(f"{i}. {view.explanation}")
        if args.dendrogram:
            emit()
            emit(ziggy.dendrogram_text() or "(no dendrogram)")
        return 0
    except ReproError as exc:
        emit(f"error: {exc}")
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
