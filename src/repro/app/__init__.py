"""The demo application layer.

Stand-in for the paper's Shiny/HTML front-end (Section 4.1, Figure 5):
an in-process session object with the same three panels — query box,
ranked view list, per-view detail with explanation — plus a JSON API
(what the web server would speak) and ASCII renderings of the
characteristic-view plots of Figure 1.
"""

from repro.app.render import ascii_scatter, ascii_histogram_pair, view_card
from repro.app.session import ZiggySession
from repro.app.api import ZiggyApi
from repro.app.demo import run_demo_script

__all__ = [
    "ascii_scatter",
    "ascii_histogram_pair",
    "view_card",
    "ZiggySession",
    "ZiggyApi",
    "run_demo_script",
]
