"""The legacy (v1) dict API — now a thin adapter over protocol v2.

:class:`ZiggyApi` keeps the original stringly-typed contract — plain-dict
requests with an ``"action"`` key, plain-dict responses with ``"ok"`` —
but every action is translated onto the typed v2 service
(:class:`~repro.service.service.ZiggyService`), so the demo, notebooks
and old tests keep working unchanged while new deployments talk v2
directly.

Success responses are shape-identical to the original implementation.
Error responses additionally carry a machine-readable ``"code"`` (the v2
error code) next to the original ``"error"`` string.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.app.session import ZiggySession
from repro.errors import ReproError
from repro.service.protocol import (
    CharacterizeRequest,
    ConfigureRequest,
    ErrorCode,
    ViewPageRequest,
    component_to_dict,
    error_code_for,
    json_safe,
    view_to_dict,
)

if TYPE_CHECKING:  # imported lazily at runtime (app <-> service cycle)
    from repro.service.service import ZiggyService

__all__ = ["ZiggyApi", "component_to_dict", "view_to_dict", "_json_safe"]

#: The client ID the adapter parks its session under in the service.
V1_CLIENT_ID = "v1"

#: The v1 action vocabulary (advertised on unknown actions).
V1_ACTIONS = ("list_tables", "query", "views", "view_detail", "dendrogram",
              "set_weights", "set_option")


def _json_safe(value):
    """Recursively JSON-safe conversion (kept under the old name for
    backward compatibility; now handles nested containers too)."""
    return json_safe(value)


class ZiggyApi:
    """Dispatches v1 dict requests onto the v2 service.

    Supported actions: ``list_tables``, ``query``, ``views``,
    ``view_detail``, ``dendrogram``, ``set_weights``, ``set_option``.
    Errors come back as ``{"ok": False, "error": ..., "code": ...}``
    rather than raising — a web handler must never 500 on a user typo.

    Args:
        session: an existing session to adopt (the pre-service calling
            convention); a fresh one is created when omitted.
        service: an existing service to share (the server passes its
            own, so ``/v1`` and ``/v2`` traffic see the same catalog).
    """

    def __init__(self, session: ZiggySession | None = None,
                 service: ZiggyService | None = None):
        from repro.service.service import ZiggyService
        if service is not None:
            self.service = service
            self.session = service.session(V1_CLIENT_ID)
            if session is not None:
                self.service.attach_session(V1_CLIENT_ID, session)
                self.session = session
        else:
            self.session = session if session is not None else ZiggySession()
            self.service = ZiggyService(database=self.session.database)
            self.service.attach_session(V1_CLIENT_ID, self.session)

    def handle(self, request: dict[str, Any]) -> dict[str, Any]:
        """Process one request dict and return the response dict."""
        action = request.get("action")
        handler = getattr(self, f"_handle_{action}", None)
        if action is None or handler is None:
            return {"ok": False,
                    "error": f"unknown action {action!r}",
                    "code": ErrorCode.UNKNOWN_ACTION,
                    "available": list(V1_ACTIONS)}
        try:
            payload = handler(request)
        except ReproError as exc:
            return {"ok": False, "error": str(exc),
                    "code": error_code_for(exc)}
        except (ValueError, TypeError, KeyError) as exc:
            return {"ok": False, "error": f"{type(exc).__name__}: {exc}",
                    "code": ErrorCode.BAD_REQUEST}
        payload["ok"] = True
        return payload

    # -- handlers ----------------------------------------------------------------

    def _handle_list_tables(self, request: dict) -> dict:
        catalog = self.service.list_tables()
        return {"tables": [t.to_dict() for t in catalog.tables]}

    def _handle_query(self, request: dict) -> dict:
        response = self.service.characterize(CharacterizeRequest(
            where=request["where"],
            table=request.get("table"),
            client_id=V1_CLIENT_ID,
            page_size=None,  # v1 always returned every view
        ))
        return {
            "predicate": response.predicate,
            "n_inside": response.n_inside,
            "n_outside": response.n_outside,
            "n_views": response.n_views,
            "timings_ms": dict(response.timings_ms),
            "views": [dict(v) for v in response.views.items],
            "notes": list(response.notes),
        }

    def _handle_views(self, request: dict) -> dict:
        page = self.service.view_page(ViewPageRequest(
            client_id=V1_CLIENT_ID, page=1, page_size=None))
        return {"views": [dict(v) for v in page.items]}

    def _handle_view_detail(self, request: dict) -> dict:
        rank = int(request["rank"])
        panel = self.service.view_detail(V1_CLIENT_ID, rank)
        return {"rank": rank, "panel": panel}

    def _handle_dendrogram(self, request: dict) -> dict:
        return {"dendrogram": self.service.dendrogram(V1_CLIENT_ID)}

    def _handle_set_weights(self, request: dict) -> dict:
        weights = {str(k): float(v)
                   for k, v in request.get("weights", {}).items()}
        result = self.service.configure(ConfigureRequest(
            client_id=V1_CLIENT_ID, weights=weights))
        return {"weights": dict(result.weights)}

    def _handle_set_option(self, request: dict) -> dict:
        options = dict(request.get("options", {}))
        result = self.service.configure(ConfigureRequest(
            client_id=V1_CLIENT_ID, options=options))
        return {"applied": list(result.applied)}
