"""JSON-able request/response API — what the demo's web server speaks.

The middle layer of the paper's architecture is "the query
characterization engine and a Web server".  :class:`ZiggyApi` is that
server's handler, minus the socket: it accepts plain-dict requests and
returns plain-dict responses (every value JSON-serializable), so an HTTP
veneer, a notebook, or a test can drive it identically.
"""

from __future__ import annotations

import math
from typing import Any

from repro.app.session import ZiggySession
from repro.core.views import ComponentScore, ViewResult
from repro.errors import ReproError


def _json_safe(value: float) -> float | None:
    if isinstance(value, float) and not math.isfinite(value):
        return None
    return value


def component_to_dict(score: ComponentScore) -> dict[str, Any]:
    """Serialize one component score."""
    return {
        "component": score.component,
        "columns": list(score.columns),
        "raw": _json_safe(score.raw),
        "normalized": _json_safe(score.normalized),
        "weight": score.weight,
        "direction": score.direction,
        "p_value": _json_safe(score.p_value),
        "detail": {k: (list(v) if isinstance(v, tuple) else v)
                   for k, v in score.detail.items()},
    }


def view_to_dict(result: ViewResult, rank: int) -> dict[str, Any]:
    """Serialize one ranked view."""
    return {
        "rank": rank,
        "columns": list(result.columns),
        "score": _json_safe(result.score),
        "tightness": _json_safe(result.tightness),
        "p_value": _json_safe(result.p_value),
        "significant": result.significant,
        "explanation": result.explanation,
        "components": [component_to_dict(c) for c in result.components],
    }


class ZiggyApi:
    """Dispatches dict requests onto a :class:`ZiggySession`.

    Supported actions: ``list_tables``, ``query``, ``views``,
    ``view_detail``, ``dendrogram``, ``set_weights``, ``set_option``.
    Errors come back as ``{"ok": False, "error": ...}`` rather than
    raising — a web handler must never 500 on a user typo.
    """

    def __init__(self, session: ZiggySession | None = None):
        self.session = session if session is not None else ZiggySession()

    def handle(self, request: dict[str, Any]) -> dict[str, Any]:
        """Process one request dict and return the response dict."""
        action = request.get("action")
        handler = getattr(self, f"_handle_{action}", None)
        if action is None or handler is None:
            return {"ok": False,
                    "error": f"unknown action {action!r}",
                    "available": ["list_tables", "query", "views",
                                  "view_detail", "dendrogram",
                                  "set_weights", "set_option"]}
        try:
            payload = handler(request)
        except ReproError as exc:
            return {"ok": False, "error": str(exc)}
        except (ValueError, TypeError, KeyError) as exc:
            return {"ok": False, "error": f"{type(exc).__name__}: {exc}"}
        payload["ok"] = True
        return payload

    # -- handlers ----------------------------------------------------------------

    def _handle_list_tables(self, request: dict) -> dict:
        tables = []
        for name in self.session.tables():
            table = self.session.database.table(name)
            tables.append({
                "name": name,
                "rows": table.n_rows,
                "columns": table.n_columns,
                "column_names": list(table.column_names),
            })
        return {"tables": tables}

    def _handle_query(self, request: dict) -> dict:
        where = request["where"]
        table = request.get("table")
        result = self.session.run(where, table=table)
        return {
            "predicate": result.predicate,
            "n_inside": result.n_inside,
            "n_outside": result.n_outside,
            "n_views": len(result.views),
            "timings_ms": {k: v * 1000.0 for k, v in result.timings.items()},
            "views": [view_to_dict(v, i)
                      for i, v in enumerate(result.views, start=1)],
            "notes": list(result.notes),
        }

    def _handle_views(self, request: dict) -> dict:
        result = self.session.current.result
        return {"views": [view_to_dict(v, i)
                          for i, v in enumerate(result.views, start=1)]}

    def _handle_view_detail(self, request: dict) -> dict:
        rank = int(request["rank"])
        return {"rank": rank, "panel": self.session.view_detail(rank)}

    def _handle_dendrogram(self, request: dict) -> dict:
        return {"dendrogram": self.session.dendrogram()}

    def _handle_set_weights(self, request: dict) -> dict:
        weights = {str(k): float(v)
                   for k, v in request.get("weights", {}).items()}
        self.session.set_weights(**weights)
        return {"weights": dict(self.session.config.weights)}

    def _handle_set_option(self, request: dict) -> dict:
        options = dict(request.get("options", {}))
        self.session.set_option(**options)
        return {"applied": sorted(options)}
