"""The interactive session — Figure 5's panels as a Python object.

A :class:`ZiggySession` is what the demo's web server holds per visitor:
the registered datasets, the current query, the ranked views, and the
rendering of any view the user clicks.  It also exposes the dendrogram
(the paper's tuning aid for ``MIN_tight``) and lets the visitor adjust
component weights mid-session, reproducing the demo's interactivity.

Sessions no longer own cross-request state: per-table statistics caches
are **borrowed** from a :class:`~repro.runtime.ZiggyRuntime` (the
process-wide one by default), so every session characterizing the same
table — in this process, under any service client — shares one set of
global statistics, and the runtime's eviction policy bounds their
memory.  While a query runs the session holds a lease on its table, so
eviction never races active work.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.app.render import view_card
from repro.core.config import ZiggyConfig
from repro.core.pipeline import Ziggy
from repro.core.views import CharacterizationResult, ViewResult
from repro.engine.database import Database, Selection
from repro.engine.table import Table
from repro.errors import ReproError
from repro.runtime import ZiggyRuntime, get_runtime

#: Distinguishes anonymous sessions in the registry's borrower ledger.
_session_ids = itertools.count(1)


@dataclass
class SessionEntry:
    """One executed characterization in the session history."""

    query_text: str
    table_name: str
    result: CharacterizationResult
    selection: Selection = field(repr=False, default=None)  # type: ignore[assignment]


class ZiggySession:
    """Query box -> ranked views -> detail panel, with history.

    Example::

        session = ZiggySession()
        session.add_table(load_dataset("boxoffice"))
        session.run("gross > 200000000", table="boxoffice")
        print(session.view_list())
        print(session.view_detail(1))
    """

    def __init__(self, database: Database | None = None,
                 config: ZiggyConfig | None = None,
                 runtime: ZiggyRuntime | None = None,
                 client_id: str | None = None):
        self.database = database if database is not None else Database()
        self.config = config if config is not None else ZiggyConfig()
        self.runtime = runtime if runtime is not None else get_runtime()
        self.client_id = (client_id if client_id is not None
                          else f"session-{next(_session_ids)}")
        self._engines: dict[str, Ziggy] = {}
        self.history: list[SessionEntry] = []

    # -- catalog ------------------------------------------------------------------

    def add_table(self, table: Table, name: str | None = None) -> None:
        """Register a dataset with the session."""
        self.database.register(table, name=name)

    def tables(self) -> tuple[str, ...]:
        """Names of the registered datasets."""
        return self.database.table_names()

    # -- configuration -------------------------------------------------------------

    def set_weights(self, **weights: float) -> None:
        """Adjust component weights (Section 2.2's user preferences).

        Takes effect for subsequent queries; engines keep their caches.
        """
        merged = dict(self.config.weights)
        merged.update(weights)
        self.config = self.config.with_overrides(weights=merged)

    def set_option(self, **options) -> None:
        """Adjust any :class:`ZiggyConfig` field (validated)."""
        self.config = self.config.with_overrides(**options)

    # -- the query box -----------------------------------------------------------------

    def run(self, where: str, table: str | None = None,
            progress=None, emit=None) -> CharacterizationResult:
        """Execute a predicate and characterize its selection.

        ``progress`` is an optional
        :data:`~repro.core.pipeline.ProgressCallback`; ``emit`` receives
        the typed :class:`~repro.core.events.StageEvent` stream.  Both are
        threaded through to the engine (per-view streaming, cooperative
        cancellation).  The table is leased from the runtime for the
        duration, so store eviction never interrupts the run.
        """
        table_name = self.resolve_table(table)
        selection = self.database.select(table_name, where)
        return self._characterize(selection, table_name, where,
                                  progress=progress, emit=emit)

    def run_many(self, wheres: list[str] | tuple[str, ...],
                 table: str | None = None,
                 progress=None, emit=None) -> list[CharacterizationResult]:
        """Characterize a batch of predicates against one table.

        All predicates share one engine (and therefore one statistics
        cache); each result is appended to the session history.
        """
        from repro.core.events import BATCH_ITEM, StageEvent

        table_name = self.resolve_table(table)
        results: list[CharacterizationResult] = []
        for index, where in enumerate(wheres):
            result = self.run(where, table=table_name, progress=progress,
                              emit=emit)
            results.append(result)
            if emit is not None:
                emit(StageEvent(BATCH_ITEM, (index, result)))
            if progress is not None:
                progress("batch_item", (index, result))
        return results

    def run_sql(self, sql: str, progress=None,
                emit=None) -> CharacterizationResult:
        """Execute a full SELECT and characterize its WHERE clause."""
        selection = self.database.selection_for_query(sql)
        return self._characterize(selection, selection.table.name, sql,
                                  progress=progress, emit=emit)

    def _characterize(self, selection: Selection, table_name: str,
                      query_text: str, progress=None,
                      emit=None) -> CharacterizationResult:
        """The shared core of :meth:`run` and :meth:`run_sql`: lease the
        table, converge the engine onto the registry's current cache,
        execute, record history."""
        engine = self.engine_for(table_name, table=selection.table)
        with self.runtime.lease(selection.table,
                                borrower=self.client_id) as cache:
            # The registry may have recreated the cache since this engine
            # first borrowed (table-store eviction); converge on the
            # current shared instance rather than a stale private one.
            if engine.cache is not cache:
                engine.rebind_cache(cache)
            result = engine.characterize_selection(
                selection, config=self.config, progress=progress, emit=emit)
        self.history.append(SessionEntry(
            query_text=query_text, table_name=table_name, result=result,
            selection=selection))
        return result

    # -- panels --------------------------------------------------------------------------

    @property
    def current(self) -> SessionEntry:
        """The latest executed characterization."""
        if not self.history:
            raise ReproError("no query has been run in this session")
        return self.history[-1]

    def view_list(self) -> str:
        """The left panel: ranked views, one line each."""
        entry = self.current
        lines = [f"table: {entry.table_name}   query: {entry.query_text}",
                 f"selection: {entry.result.n_inside} rows "
                 f"({entry.result.n_inside + entry.result.n_outside} total)"]
        if not entry.result.views:
            lines.append("  (no significant views found)")
        for i, vr in enumerate(entry.result.views, start=1):
            lines.append(f"  {i}. {vr.summary_line()}")
        return "\n".join(lines)

    def view(self, rank: int) -> ViewResult:
        """The view at 1-based ``rank`` in the current result."""
        views = self.current.result.views
        if not 1 <= rank <= len(views):
            raise ReproError(
                f"view rank {rank} out of range (1..{len(views)})")
        return views[rank - 1]

    def view_detail(self, rank: int) -> str:
        """The right panel: plot + explanation for one view."""
        entry = self.current
        return view_card(self.view(rank), entry.selection, rank=rank)

    def explanations(self) -> list[str]:
        """All explanations of the current result, in rank order."""
        return [vr.explanation for vr in self.current.result.views]

    def dendrogram(self) -> str:
        """The tuning aid: the last search's dendrogram (if linkage ran)."""
        engine = self._engines.get(self.current.table_name)
        text = engine.dendrogram_text() if engine is not None else None
        return text or "(no dendrogram available)"

    # -- internals -------------------------------------------------------------------------

    def resolve_table(self, table: str | None) -> str:
        """The effective table name for a request (explicit, or the only
        registered table)."""
        if table is not None:
            return table
        names = self.database.table_names()
        if len(names) == 1:
            return names[0]
        raise ReproError(
            f"session has {len(names)} tables; pass table=... "
            f"(available: {', '.join(names)})")

    # backward-compatible alias
    _resolve_table = resolve_table

    def engine_for(self, table_name: str, table: Table | None = None) -> Ziggy:
        """The (lazily created) engine bound to one table.

        Engines are per-table, but their statistics cache is *borrowed*
        from the shared runtime: every session/engine touching the same
        table content shares one cache, so global statistics are computed
        once per table across the whole process.  ``table`` short-circuits
        the catalog lookup when the caller already holds the object (e.g.
        a SQL run whose table's own name differs from its catalog name).
        """
        engine = self._engines.get(table_name)
        if engine is None:
            if table is None:
                table = self.database.table(table_name)
            cache = self.runtime.stats_for(table, borrower=self.client_id)
            engine = Ziggy(self.database, config=self.config, cache=cache)
            self._engines[table_name] = engine
        return engine

    # backward-compatible alias
    _engine_for = engine_for
