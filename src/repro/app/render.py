"""ASCII rendering of characteristic views.

Figure 1 of the paper shows scatter plots where the selection ('+') sits
against the rest of the data ('·').  These renderers reproduce that in
plain text: two-column numeric views become scatter plots, single
columns become back-to-back histograms, categorical columns become
frequency bars.
"""

from __future__ import annotations

import numpy as np

from repro.core.views import ViewResult
from repro.engine.column import CategoricalColumn
from repro.engine.database import Selection

#: Glyphs: selection, complement, both-in-cell.
GLYPH_IN, GLYPH_OUT, GLYPH_BOTH = "+", ".", "#"


def _finite_pairs(x: np.ndarray, y: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    keep = ~(np.isnan(x) | np.isnan(y))
    return x[keep], y[keep]


def ascii_scatter(x_inside: np.ndarray, y_inside: np.ndarray,
                  x_outside: np.ndarray, y_outside: np.ndarray,
                  x_label: str = "x", y_label: str = "y",
                  width: int = 56, height: int = 18) -> str:
    """Figure-1-style scatter plot: '+' = selection, '.' = complement.

    Cells containing both groups render '#'.  Axes are annotated with the
    data ranges so users can "inspect the charts and check whether they
    hold" (Section 2.2's verifiability argument).
    """
    xi, yi = _finite_pairs(np.asarray(x_inside, float),
                           np.asarray(y_inside, float))
    xo, yo = _finite_pairs(np.asarray(x_outside, float),
                           np.asarray(y_outside, float))
    all_x = np.concatenate([xi, xo])
    all_y = np.concatenate([yi, yo])
    if all_x.size == 0:
        return "(no complete data points to plot)"
    x_lo, x_hi = float(all_x.min()), float(all_x.max())
    y_lo, y_hi = float(all_y.min()), float(all_y.max())
    if x_hi == x_lo:
        x_hi = x_lo + 1.0
    if y_hi == y_lo:
        y_hi = y_lo + 1.0

    grid = [[" "] * width for _ in range(height)]

    def mark(xs: np.ndarray, ys: np.ndarray, glyph: str) -> None:
        if xs.size == 0:
            return
        cols = np.clip(((xs - x_lo) / (x_hi - x_lo) * (width - 1)).astype(int),
                       0, width - 1)
        rows = np.clip(((ys - y_lo) / (y_hi - y_lo) * (height - 1)).astype(int),
                       0, height - 1)
        for c, r in zip(cols, rows):
            row = height - 1 - r  # origin bottom-left
            cell = grid[row][c]
            if cell == " ":
                grid[row][c] = glyph
            elif cell != glyph:
                grid[row][c] = GLYPH_BOTH

    mark(xo, yo, GLYPH_OUT)
    mark(xi, yi, GLYPH_IN)

    lines = [f"{y_label}  ({y_lo:.3g} .. {y_hi:.3g})"]
    for row in grid:
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * width)
    lines.append(f" {x_label}  ({x_lo:.3g} .. {x_hi:.3g})"
                 f"    [{GLYPH_IN}]=selection [{GLYPH_OUT}]=others "
                 f"[{GLYPH_BOTH}]=both")
    return "\n".join(lines)


def ascii_histogram_pair(inside: np.ndarray, outside: np.ndarray,
                         label: str = "", bins: int = 16,
                         width: int = 40) -> str:
    """Back-to-back density bars for a single-column view.

    Both groups are binned on a shared grid and scaled to relative
    frequency, so different group sizes remain comparable.
    """
    ins = np.asarray(inside, float)
    out = np.asarray(outside, float)
    ins = ins[~np.isnan(ins)]
    out = out[~np.isnan(out)]
    pooled = np.concatenate([ins, out])
    if pooled.size == 0:
        return "(no data)"
    lo, hi = float(pooled.min()), float(pooled.max())
    if lo == hi:
        hi = lo + 1.0
    edges = np.linspace(lo, hi, bins + 1)
    dens_in, _ = np.histogram(ins, bins=edges)
    dens_out, _ = np.histogram(out, bins=edges)
    f_in = dens_in / dens_in.sum() if dens_in.sum() else dens_in.astype(float)
    f_out = (dens_out / dens_out.sum() if dens_out.sum()
             else dens_out.astype(float))
    peak = max(f_in.max(initial=0.0), f_out.max(initial=0.0), 1e-9)
    lines = [f"{label}   (left: selection {GLYPH_IN} | right: others {GLYPH_OUT})"]
    for b in range(bins):
        left = int(round(f_in[b] / peak * (width // 2)))
        right = int(round(f_out[b] / peak * (width // 2)))
        center = f"{edges[b]:>10.3g}"
        lines.append(
            f"{GLYPH_IN * left:>{width // 2}} |{center}| {GLYPH_OUT * right}")
    return "\n".join(lines)


def ascii_category_bars(view_result: ViewResult, selection: Selection,
                        column: str, width: int = 32,
                        max_categories: int = 10) -> str:
    """Side-by-side proportion bars for a categorical column."""
    col = selection.table.column(column)
    if not isinstance(col, CategoricalColumn):
        raise TypeError(f"{column!r} is not categorical")
    codes = col.codes
    labels = col.labels
    lines = [f"{column}   (selection vs others, proportions)"]
    mask = selection.mask
    n_in = max(int(((codes >= 0) & mask).sum()), 1)
    n_out = max(int(((codes >= 0) & ~mask).sum()), 1)
    shown = list(enumerate(labels))[:max_categories]
    for code, label in shown:
        p_in = float(((codes == code) & mask).sum()) / n_in
        p_out = float(((codes == code) & ~mask).sum()) / n_out
        bar_in = GLYPH_IN * int(round(p_in * width))
        bar_out = GLYPH_OUT * int(round(p_out * width))
        lines.append(f"  {str(label)[:18]:<18} {p_in:6.1%} {bar_in}")
        lines.append(f"  {'':<18} {p_out:6.1%} {bar_out}")
    if len(labels) > max_categories:
        lines.append(f"  ... ({len(labels) - max_categories} more categories)")
    return "\n".join(lines)


def view_card(view_result: ViewResult, selection: Selection,
              rank: int | None = None) -> str:
    """The full detail panel for one view: header, plot, explanation.

    This is the right-hand side of Figure 5 for the selected view.
    """
    header = f"View {rank}: " if rank is not None else "View: "
    header += ", ".join(view_result.columns)
    meta = (f"score={view_result.score:.3f}  "
            f"tightness={view_result.tightness:.3f}  "
            f"p={view_result.p_value:.2e}")
    table = selection.table
    mask = selection.mask
    numeric = [c for c in view_result.columns
               if not isinstance(table.column(c), CategoricalColumn)]
    categorical = [c for c in view_result.columns
                   if isinstance(table.column(c), CategoricalColumn)]
    plots: list[str] = []
    if len(numeric) >= 2:
        x = table.column(numeric[0]).numeric_values()
        y = table.column(numeric[1]).numeric_values()
        plots.append(ascii_scatter(x[mask], y[mask], x[~mask], y[~mask],
                                   x_label=numeric[0], y_label=numeric[1]))
    elif len(numeric) == 1:
        v = table.column(numeric[0]).numeric_values()
        plots.append(ascii_histogram_pair(v[mask], v[~mask],
                                          label=numeric[0]))
    for c in categorical:
        plots.append(ascii_category_bars(view_result, selection, c))
    parts = [header, meta] + plots + ["", view_result.explanation]
    return "\n".join(parts)
