"""Cross-query statistics cache — the paper's computation-sharing strategy.

Section 3 ("Preparation"): "This is often the most time consuming step.
In our full paper, we present a strategy to share computations between
queries, and therefore reduce the amount of data to read."

The cache exploits two algebraic facts:

1. :class:`~repro.stats.descriptive.SummaryStats` (centered moments up to
   order 4) and :class:`~repro.stats.correlation.PairwiseMoments` are
   *additive over disjoint row sets*.  Whole-table ("global") statistics
   are computed once per table; for each query only the **inside** group
   is scanned, and the **outside** group's statistics are derived as
   ``global - inside``.  Since explorers' selections are typically small
   slices of a big table, this removes the dominant share of the scan.
2. Inside-group statistics depend only on the predicate's canonical
   fingerprint, so re-running, refining the projection of, or re-ranking
   the same selection costs nothing.

Tables are immutable in this engine, so cache entries never go stale.
Entries are keyed by :meth:`~repro.engine.table.Table.fingerprint` — a
content hash — so the cache holds **no reference to the tables
themselves**: dropping a table frees its rows even while its derived
moments stay cached, and two loads of identical content share one set of
entries.  (Earlier revisions pinned a strong reference per table to keep
``id(table)`` stable; that leaked every table the cache ever saw.)

Accessors are serialized with a reentrant lock so one cache instance can
be shared across client sessions and job threads — the basis of the
process-wide :class:`~repro.runtime.SharedStatsRegistry`.  Computation
happens under the lock, which is exactly the sharing contract: the first
arrival pays for a table-level statistic, every concurrent and later
arrival reuses it.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

import numpy as np

from repro.core.dependency import DependencyMatrix, compute_dependency_matrix
from repro.engine.database import Selection
from repro.engine.table import Table
from repro.stats.correlation import PairwiseMoments
from repro.stats.descriptive import SummaryStats, summarize


@dataclass
class CacheCounters:
    """Hit/miss counters, exposed for the caching benchmark (EXT-CACHE)."""

    column_hits: int = 0
    column_misses: int = 0
    inside_hits: int = 0
    inside_misses: int = 0
    moments_hits: int = 0
    moments_misses: int = 0
    dependency_hits: int = 0
    dependency_misses: int = 0

    @property
    def hits(self) -> int:
        """Total hits across all entry kinds."""
        return (self.column_hits + self.inside_hits + self.moments_hits
                + self.dependency_hits)

    @property
    def misses(self) -> int:
        """Total misses across all entry kinds."""
        return (self.column_misses + self.inside_misses + self.moments_misses
                + self.dependency_misses)


@dataclass
class StatsCache:
    """Shared statistics across queries over immutable tables.

    All accessors take the objects (table / selection) rather than keys;
    key construction is internal (content fingerprints, never object
    identity).  Safe to share across threads.
    """

    counters: CacheCounters = field(default_factory=CacheCounters)

    def __post_init__(self):
        self._lock = threading.RLock()
        self._column_stats: dict[tuple[str, str], SummaryStats] = {}
        self._inside_stats: dict[tuple[str, str, str], SummaryStats] = {}
        self._global_moments: dict[tuple[str, tuple[str, ...]], PairwiseMoments] = {}
        self._inside_moments: dict[tuple[str, str, tuple[str, ...]], PairwiseMoments] = {}
        self._dependency: dict[tuple[str, str, int, tuple[str, ...]], DependencyMatrix] = {}

    # -- serialization -----------------------------------------------------------

    #: The entry stores pickled by ``__getstate__``, in declaration order.
    _STORES = ("_column_stats", "_inside_stats", "_global_moments",
               "_inside_moments", "_dependency")

    def __getstate__(self) -> dict:
        """Pickle the entries and counters, never the lock.

        Entries are :class:`SummaryStats` / :class:`PairwiseMoments` /
        :class:`DependencyMatrix` values keyed by content fingerprints, so
        a cache snapshot is self-contained: executor backends ship it to
        worker processes to warm a shard without re-scanning the table.
        """
        with self._lock:
            state = {name: dict(getattr(self, name)) for name in self._STORES}
            state["counters"] = self.counters
            return state

    def __setstate__(self, state: dict) -> None:
        self.counters = state.pop("counters", None) or CacheCounters()
        self._lock = threading.RLock()
        for name in self._STORES:
            setattr(self, name, dict(state.get(name) or {}))

    def snapshot(self) -> "StatsCache":
        """A detached, picklable copy of this cache's current entries.

        Counters start fresh on the copy (they describe *this* cache's
        history, not the snapshot's).  This is what the process executor
        ships when it replays table registrations into a respawned
        worker shard: snapshotting at replay time — rather than reusing
        the registration-time object — means statistics computed since
        registration warm-restore too.
        """
        clone = StatsCache()
        clone.merge_from(self)
        return clone

    def entry_signature(self) -> int:
        """Order-independent hash of the cached entry *keys*.

        Keys are content fingerprints (plus predicate/column/config
        parts) and every value is derived deterministically from its
        key, so two caches with equal signatures hold equal entries.
        This is the snapshot store's change detector: it catches a cache
        whose entries were invalidated and replaced without the total
        count moving, which a size comparison cannot.  Process-local
        (``hash`` of strings is seed-randomized) — never persist it.
        """
        with self._lock:
            return hash(frozenset(
                (name, key) for name in self._STORES
                for key in getattr(self, name)))

    def merge_from(self, other: "StatsCache") -> int:
        """Absorb another cache's entries (existing keys win); returns the
        number of entries copied.  This is how a worker shard adopts a
        pre-warmed snapshot shipped from the coordinating process."""
        copied = 0
        with other._lock:
            snapshots = [dict(getattr(other, name)) for name in self._STORES]
        with self._lock:
            for name, snap in zip(self._STORES, snapshots):
                store = getattr(self, name)
                for key, value in snap.items():
                    if key not in store:
                        store[key] = value
                        copied += 1
        return copied

    # -- keys -------------------------------------------------------------------

    @staticmethod
    def _key(table: Table) -> str:
        return table.fingerprint()

    # -- per-column summaries ------------------------------------------------------

    def global_column_stats(self, table: Table, column: str) -> SummaryStats:
        """Whole-table summary of one numeric column (computed once)."""
        key = (self._key(table), column)
        with self._lock:
            cached = self._column_stats.get(key)
            if cached is not None:
                self.counters.column_hits += 1
                return cached
            self.counters.column_misses += 1
            stats = summarize(table.column(column).numeric_values())
            self._column_stats[key] = stats
            return stats

    def inside_column_stats(self, selection: Selection, column: str) -> SummaryStats:
        """Summary of the selected rows of one column (per-predicate memo)."""
        key = (self._key(selection.table), selection.fingerprint, column)
        with self._lock:
            cached = self._inside_stats.get(key)
            if cached is not None:
                self.counters.inside_hits += 1
                return cached
            self.counters.inside_misses += 1
            values = selection.table.column(column).numeric_values()[selection.mask]
            stats = summarize(values)
            self._inside_stats[key] = stats
            return stats

    def outside_column_stats(self, selection: Selection, column: str) -> SummaryStats:
        """Complement summary, derived without scanning the complement."""
        return self.global_column_stats(selection.table, column).subtract(
            self.inside_column_stats(selection, column))

    # -- pairwise moments ------------------------------------------------------------

    def global_moments(self, table: Table,
                       columns: tuple[str, ...]) -> PairwiseMoments:
        """Whole-table pairwise moments over the numeric columns."""
        key = (self._key(table), columns)
        with self._lock:
            cached = self._global_moments.get(key)
            if cached is not None:
                self.counters.moments_hits += 1
                return cached
            self.counters.moments_misses += 1
            moments = PairwiseMoments.from_matrix(table.numeric_matrix(columns))
            self._global_moments[key] = moments
            return moments

    def inside_moments(self, selection: Selection,
                       columns: tuple[str, ...]) -> PairwiseMoments:
        """Pairwise moments of the selected rows (per-predicate memo)."""
        key = (self._key(selection.table), selection.fingerprint, columns)
        with self._lock:
            cached = self._inside_moments.get(key)
            if cached is not None:
                self.counters.moments_hits += 1
                return cached
            self.counters.moments_misses += 1
            data = selection.table.numeric_matrix(columns)[selection.mask]
            moments = PairwiseMoments.from_matrix(data)
            self._inside_moments[key] = moments
            return moments

    def group_correlations(self, selection: Selection,
                           columns: tuple[str, ...]) -> tuple[
                               np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """``(corr_in, n_in, corr_out, n_out)`` for the numeric columns.

        The outside matrices come from moment subtraction — the core of
        the sharing strategy.
        """
        inside = self.inside_moments(selection, columns)
        global_ = self.global_moments(selection.table, columns)
        outside = global_.subtract(inside)
        corr_in, n_in = inside.correlations()
        corr_out, n_out = outside.correlations()
        return corr_in, n_in, corr_out, n_out

    # -- dependency matrix -------------------------------------------------------------

    def dependency_matrix(self, table: Table, columns: tuple[str, ...],
                          method: str, mi_bins: int) -> DependencyMatrix:
        """Whole-table dependency matrix (query-independent, so shared)."""
        key = (self._key(table), method, mi_bins, columns)
        with self._lock:
            cached = self._dependency.get(key)
            if cached is not None:
                self.counters.dependency_hits += 1
                return cached
            self.counters.dependency_misses += 1
            matrix = compute_dependency_matrix(table, columns, method=method,
                                               mi_bins=mi_bins)
            self._dependency[key] = matrix
            return matrix

    # -- maintenance ---------------------------------------------------------------------

    def invalidate_table(self, table: Table) -> None:
        """Drop every entry for one table (for completeness; tables are
        immutable so this is rarely needed)."""
        self.invalidate_fingerprint(table.fingerprint())

    def invalidate_fingerprint(self, fingerprint: str) -> None:
        """Drop every entry keyed under one table fingerprint (what the
        runtime's table store calls on eviction — the table object may
        already be gone)."""
        with self._lock:
            for store in (self._column_stats, self._inside_stats,
                          self._global_moments, self._inside_moments,
                          self._dependency):
                stale = [k for k in store if k[0] == fingerprint]
                for k in stale:
                    del store[k]

    def clear(self) -> None:
        """Drop everything (counters are preserved)."""
        with self._lock:
            self._column_stats.clear()
            self._inside_stats.clear()
            self._global_moments.clear()
            self._inside_moments.clear()
            self._dependency.clear()

    @property
    def size(self) -> int:
        """Total number of cached entries."""
        with self._lock:
            return (len(self._column_stats) + len(self._inside_stats)
                    + len(self._global_moments) + len(self._inside_moments)
                    + len(self._dependency))
